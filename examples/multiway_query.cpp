// k-way intersection: the k-bitmap AND prunes segments that any of the k
// sets misses, so cost tracks the (tiny) k-way intersection, not the inputs
// (paper Sec. VI).
//
//   ./examples/multiway_query
#include <cstdio>
#include <vector>

#include "baselines/kway.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "util/timer.h"

int main() {
  constexpr size_t kN = 500000;
  for (size_t k : {2, 3, 4, 5}) {
    auto raw = fesia::datagen::KSetsWithDensity(k, kN, 0.1, k);
    std::vector<fesia::FesiaSet> sets;
    for (const auto& r : raw) sets.push_back(fesia::FesiaSet::Build(r));
    std::vector<const fesia::FesiaSet*> ptrs;
    for (const auto& s : sets) ptrs.push_back(&s);

    fesia::WallTimer timer;
    size_t fesia_count = fesia::IntersectCountKWay(ptrs);
    double fesia_ms = timer.Millis();

    std::vector<fesia::baselines::SetView> views;
    for (const auto& r : raw) views.push_back({r.data(), r.size()});
    timer.Restart();
    size_t merge_count = fesia::baselines::KWayMerge(views);
    double merge_ms = timer.Millis();

    std::printf(
        "k=%zu  |∩|=%zu  FESIA %.2f ms  scalar merge %.2f ms  (%.1fx)\n", k,
        fesia_count, fesia_ms, merge_ms, merge_ms / fesia_ms);
    if (fesia_count != merge_count) {
      std::printf("MISMATCH: %zu vs %zu\n", fesia_count, merge_count);
      return 1;
    }
  }
  return 0;
}
