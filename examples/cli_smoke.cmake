# End-to-end smoke test of fesia_cli: generate -> encode -> info ->
# intersect with FESIA and a baseline, then verify both report the same
# intersection size.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_cli out_var)
  execute_process(COMMAND ${CLI} ${ARGN}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fesia_cli ${ARGN} failed (${rc}): ${out}${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_cli(out generate-pair --n1 20000 --n2 50000 --selectivity 0.25
        --seed 9 --out-a ${WORK_DIR}/a.bin --out-b ${WORK_DIR}/b.bin)
run_cli(out encode --in ${WORK_DIR}/a.bin --out ${WORK_DIR}/a.fesia)
run_cli(out info --in ${WORK_DIR}/a.fesia)
if(NOT out MATCHES "keys: *20000")
  message(FATAL_ERROR "info did not report 20000 keys: ${out}")
endif()

run_cli(fesia_out intersect --a ${WORK_DIR}/a.fesia --b ${WORK_DIR}/b.bin
        --method fesia --reps 1)
run_cli(scalar_out intersect --a ${WORK_DIR}/a.bin --b ${WORK_DIR}/b.bin
        --method Scalar --reps 1)

string(REGEX MATCH "∩ B\\| = ([0-9]+)" _ "${fesia_out}")
set(fesia_count ${CMAKE_MATCH_1})
string(REGEX MATCH "∩ B\\| = ([0-9]+)" _ "${scalar_out}")
set(scalar_count ${CMAKE_MATCH_1})
if(NOT fesia_count STREQUAL scalar_count)
  message(FATAL_ERROR
          "count mismatch: fesia=${fesia_count} scalar=${scalar_count}")
endif()
if(NOT fesia_count STREQUAL "5000")
  message(FATAL_ERROR "expected 5000 common keys, got ${fesia_count}")
endif()
message(STATUS "cli smoke ok: ${fesia_count} common keys")
