// Triangle counting on a power-law graph — the graph-analytics workload of
// Fig. 13. Adjacency-list intersections dominate; FESIA prunes them with
// per-vertex segmented bitmaps.
//
//   ./examples/triangle_count
#include <cstdio>

#include "baselines/registry.h"
#include "graph/generators.h"
#include "graph/triangle.h"
#include "util/timer.h"

int main() {
  fesia::graph::RmatParams rp;
  rp.num_nodes = 1 << 17;
  rp.num_edges = 16ull << 17;
  std::printf("generating RMAT graph (%u nodes, %llu edges)...\n",
              rp.num_nodes,
              static_cast<unsigned long long>(rp.num_edges));
  fesia::graph::Graph g = fesia::graph::GenerateRmatGraph(rp);
  fesia::graph::Graph dag = g.DegreeOrientedDag();
  std::printf("after dedup: %llu undirected edges, max degree %u\n",
              static_cast<unsigned long long>(g.num_edges()), g.MaxDegree());

  fesia::WallTimer timer;
  uint64_t scalar_count = fesia::graph::CountTriangles(
      dag, fesia::baselines::FindBaseline("Scalar")->fn);
  std::printf("%-18s %12llu triangles  %8.3f s\n", "Scalar merge",
              static_cast<unsigned long long>(scalar_count), timer.Seconds());

  timer.Restart();
  uint64_t shuffling_count = fesia::graph::CountTriangles(
      dag, fesia::baselines::FindBaseline("Shuffling")->fn);
  std::printf("%-18s %12llu triangles  %8.3f s\n", "SIMD shuffling",
              static_cast<unsigned long long>(shuffling_count),
              timer.Seconds());

  fesia::graph::FesiaTriangleCounter counter(&dag, fesia::FesiaParams{});
  std::printf("FESIA construction: %.3f s, %.1f MB\n",
              counter.construction_seconds(),
              static_cast<double>(counter.memory_bytes()) / 1e6);
  timer.Restart();
  uint64_t fesia_count = counter.Count();
  std::printf("%-18s %12llu triangles  %8.3f s\n", "FESIA",
              static_cast<unsigned long long>(fesia_count), timer.Seconds());

  timer.Restart();
  uint64_t fesia_mt = counter.Count(fesia::SimdLevel::kAuto, 4);
  std::printf("%-18s %12llu triangles  %8.3f s\n", "FESIA (4 threads)",
              static_cast<unsigned long long>(fesia_mt), timer.Seconds());
  return scalar_count == fesia_count && fesia_count == shuffling_count &&
                 fesia_mt == fesia_count
             ? 0
             : 1;
}
