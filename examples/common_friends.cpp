// Common-neighbor search: "the common friends of two people on a social
// network can be computed through a set intersection" (paper Sec. I).
// Demonstrates per-vertex FESIA structures answering online friend-of-friend
// queries, including the auto merge/hash strategy pick when one user has
// few friends and the other has millions of followers.
//
//   ./examples/common_friends
#include <cstdio>
#include <vector>

#include "fesia/fesia.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  // A social-network-shaped (power-law) graph.
  fesia::graph::RmatParams rp;
  rp.num_nodes = 1 << 16;
  rp.num_edges = 24ull << 16;
  fesia::graph::Graph g = fesia::graph::GenerateRmatGraph(rp);
  std::printf("social graph: %u users, %llu friendships, max degree %u\n",
              g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()), g.MaxDegree());

  // Offline: one FESIA structure per user's friend list.
  fesia::WallTimer build_timer;
  std::vector<fesia::FesiaSet> friends;
  friends.reserve(g.num_nodes());
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    friends.push_back(fesia::FesiaSet::Build(g.Neighbors(u)));
  }
  std::printf("encoded all friend lists in %.2f s\n", build_timer.Seconds());

  // Online: common-friend queries between random user pairs, preferring
  // high-degree users so the lists are interesting.
  fesia::Rng rng(7);
  std::vector<std::pair<uint32_t, uint32_t>> queries;
  while (queries.size() < 8) {
    auto u = static_cast<uint32_t>(rng.Below(g.num_nodes()));
    auto v = static_cast<uint32_t>(rng.Below(g.num_nodes()));
    if (u != v && g.Degree(u) >= 16 && g.Degree(v) >= 16) {
      queries.push_back({u, v});
    }
  }

  std::printf("\n%-18s %-10s %-10s %-9s %s\n", "query", "deg(u)", "deg(v)",
              "common", "strategy");
  for (auto [u, v] : queries) {
    const fesia::FesiaSet& fu = friends[u];
    const fesia::FesiaSet& fv = friends[v];
    size_t common = fesia::IntersectCountAuto(fu, fv);
    const char* strategy =
        fesia::ChooseStrategy(fu, fv) == fesia::IntersectStrategy::kHash
            ? "hash"
            : "merge";
    std::printf("%6u ~ %-9u %-10u %-10u %-9zu %s\n", u, v, g.Degree(u),
                g.Degree(v), common, strategy);
  }

  // Materialize one friend-of-friend suggestion list.
  auto [u, v] = queries.front();
  std::vector<uint32_t> mutuals;
  fesia::IntersectInto(friends[u], friends[v], &mutuals);
  std::printf("\nmutual friends of %u and %u:", u, v);
  for (size_t i = 0; i < mutuals.size() && i < 10; ++i) {
    std::printf(" %u", mutuals[i]);
  }
  std::printf("%s\n", mutuals.size() > 10 ? " ..." : "");
  return 0;
}
