// Document search: multi-keyword AND queries over an inverted index — the
// database workload that motivates FESIA (paper Sec. I, Fig. 12).
//
//   ./examples/document_search
#include <cstdio>
#include <vector>

#include "baselines/registry.h"
#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "util/timer.h"

int main() {
  // Synthetic web-scale-shaped corpus: Zipf-distributed posting lengths.
  fesia::index::CorpusParams cp;
  cp.num_docs = 200000;
  cp.num_terms = 20000;
  cp.avg_terms_per_doc = 30;
  std::printf("building corpus: %u docs, %u terms...\n", cp.num_docs,
              cp.num_terms);
  fesia::index::InvertedIndex idx =
      fesia::index::InvertedIndex::BuildSynthetic(cp);
  std::printf("index has %u terms, %zu postings\n", idx.num_terms(),
              idx.total_postings());

  // Offline phase: one FESIA structure per posting list.
  fesia::index::QueryEngine engine(&idx, fesia::FesiaParams{});
  std::printf("FESIA construction: %.3f s\n", engine.construction_seconds());

  // A two-keyword query over the two most frequent terms and a
  // three-keyword query with a mid-frequency term mixed in.
  std::vector<uint32_t> q2 = {0, 1};
  auto mids = idx.TermsWithPostingLength(1000, 10000);
  std::vector<uint32_t> q3 = {0, 1, mids.empty() ? 2 : mids.front()};

  for (const auto& [label, terms] :
       {std::pair<const char*, std::vector<uint32_t>>{"2-keyword", q2},
        std::pair<const char*, std::vector<uint32_t>>{"3-keyword", q3}}) {
    std::printf("\n%s query (list sizes:", label);
    for (uint32_t t : terms) std::printf(" %zu", idx.Postings(t).size());
    std::printf(")\n");

    fesia::WallTimer timer;
    size_t fesia_count = engine.CountFesia(terms);
    double fesia_ms = timer.Millis();
    std::printf("  %-16s %8zu docs  %8.3f ms\n", "FESIA", fesia_count,
                fesia_ms);
    for (const char* m : {"Scalar", "Shuffling", "BMiss", "SIMDGalloping"}) {
      timer.Restart();
      size_t c = engine.CountBaseline(terms, m);
      double ms = timer.Millis();
      std::printf("  %-16s %8zu docs  %8.3f ms\n", m, c, ms);
    }
  }
  return 0;
}
