// Quickstart: build two FESIA sets and intersect them every way the public
// API offers.
//
//   ./examples/quickstart
#include <cstdio>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/fesia.h"

int main() {
  // Two sorted sets of one million 32-bit keys with a 1% intersection.
  fesia::datagen::SetPair pair =
      fesia::datagen::PairWithSelectivity(1000000, 1000000, 0.01, /*seed=*/1);

  // Offline: encode each set as a segmented bitmap. All knobs have sensible
  // defaults (segment width 16 bits, bitmap size n*sqrt(SIMD width)).
  fesia::FesiaSet a = fesia::FesiaSet::Build(pair.a);
  fesia::FesiaSet b = fesia::FesiaSet::Build(pair.b);

  // Online: count the intersection. kAuto picks the widest SIMD level the
  // CPU supports (SSE / AVX2 / AVX-512).
  size_t count = fesia::IntersectCount(a, b);
  std::printf("|A| = %u, |B| = %u, |A ∩ B| = %zu (expected %zu)\n", a.size(),
              b.size(), count, pair.intersection_size);

  // Materialize the actual elements.
  std::vector<uint32_t> result;
  fesia::IntersectInto(a, b, &result);
  std::printf("first common elements:");
  for (size_t i = 0; i < result.size() && i < 5; ++i) {
    std::printf(" %u", result[i]);
  }
  std::printf(" ...\n");

  // Strategy selection: for skewed inputs the hash strategy is faster; the
  // auto dispatcher applies the paper's 1/4 skew threshold.
  fesia::FesiaSet tiny = fesia::FesiaSet::Build(
      fesia::datagen::SortedUniform(1000, 1u << 24, 2));
  std::printf("auto strategy for 1K vs 1M sets: %s\n",
              fesia::ChooseStrategy(tiny, b) == fesia::IntersectStrategy::kHash
                  ? "hash"
                  : "merge");
  std::printf("|tiny ∩ B| = %zu\n", fesia::IntersectCountAuto(tiny, b));

  // Multicore: segments are independent, so the count parallelizes.
  std::printf("parallel(4 threads) count = %zu\n",
              fesia::IntersectCountParallel(a, b, 4));
  return 0;
}
