# Smoke test of fesia_cli's error discipline: each failure class must map
# to its documented exit code (2 usage, 3 I/O or invalid input, 4 corrupt,
# 5 deadline exhaustion, 6 unrecoverable store, 8 bind failure) with a
# stderr message, and must never crash.
file(MAKE_DIRECTORY ${WORK_DIR})

function(expect_rc expected_rc label)
  execute_process(COMMAND ${CLI} ${ARGN}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "${label}: expected exit ${expected_rc}, got ${rc}: ${out}${err}")
  endif()
  if(NOT expected_rc EQUAL 0 AND err STREQUAL "")
    message(FATAL_ERROR "${label}: non-zero exit but empty stderr")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
endfunction()

# Asserts the most recent expect_rc/expect_rc_env stdout contains `needle`
# (used to pin machine-readable output shapes, e.g. recover's JSON lines).
function(require_contains label needle)
  string(FIND "${last_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
            "${label}: output missing '${needle}':\n${last_out}")
  endif()
endfunction()

# Usage errors -> 2.
expect_rc(2 "no-arguments")
expect_rc(2 "unknown-command" frobnicate --in x)
expect_rc(2 "malformed-n" generate --n notanumber --out ${WORK_DIR}/x.bin)
expect_rc(2 "negative-n" generate --n -5 --out ${WORK_DIR}/x.bin)
expect_rc(2 "bad-segment-bits" encode --in ${WORK_DIR}/x.bin
          --out ${WORK_DIR}/y.bin --segment-bits 7)
expect_rc(2 "bad-level" intersect --a ${WORK_DIR}/x.bin --b ${WORK_DIR}/x.bin
          --level turbo)
expect_rc(2 "unknown-method" intersect --a ${WORK_DIR}/ok.bin
          --b ${WORK_DIR}/ok.bin --method NoSuchMethod)
expect_rc(2 "batch-malformed-deadline" batch --queries 4 --deadline-ms junk)
expect_rc(2 "batch-negative-deadline" batch --queries 4 --deadline-ms -1)
expect_rc(2 "batch-zero-queries" batch --queries 0)
expect_rc(2 "batch-bad-level" batch --queries 4 --level turbo)

# I/O errors -> 3.
expect_rc(3 "missing-input" info --in ${WORK_DIR}/does-not-exist.bin)
expect_rc(3 "unwritable-output" generate --n 64
          --out ${WORK_DIR}/no-such-dir/out.bin)

# Corrupt snapshots -> 4. A magic-tagged file that fails validation must be
# rejected, not silently reinterpreted as raw uint32 data.
file(WRITE ${WORK_DIR}/corrupt.fesia "FESIASETgarbage-trailing-bytes")
expect_rc(4 "corrupt-snapshot" info --in ${WORK_DIR}/corrupt.fesia)
# A raw file with trailing bytes is invalid input -> 3 (the tail is never
# silently dropped).
file(WRITE ${WORK_DIR}/odd.bin "xyz")
expect_rc(3 "odd-sized-raw" info --in ${WORK_DIR}/odd.bin)

# Storage faults injected through the FESIA_FAULTS harness: a bit flipped
# deep in the payload (bit 1000, past the magic) and a truncated tail must
# both surface as exit 4, proving the CRC/structure validation catches
# in-flight corruption end to end.
expect_rc(0 "gen-ok" generate --n 1000 --seed 3 --out ${WORK_DIR}/ok.bin)
expect_rc(0 "encode-ok" encode --in ${WORK_DIR}/ok.bin
          --out ${WORK_DIR}/ok.fesia)

function(expect_rc_env faults expected_rc label)
  execute_process(COMMAND ${CMAKE_COMMAND} -E env FESIA_FAULTS=${faults}
                  ${CLI} ${ARGN}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
            "${label}: expected exit ${expected_rc}, got ${rc}: ${out}${err}")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
endfunction()

expect_rc_env("snapshot-bitflip:0:1000" 4 "bitflip-snapshot"
              info --in ${WORK_DIR}/ok.fesia)
expect_rc_env("snapshot-truncate:0:8" 4 "truncated-snapshot"
              info --in ${WORK_DIR}/ok.fesia)

# Deadline exhaustion -> 5, made deterministic by injecting a 20 ms stall
# into the single query's only attempt against a 5 ms budget.
expect_rc_env("query-delay:0:20000" 5 "batch-deadline-exhaustion"
              batch --queries 1 --docs 4000 --terms 100 --deadline-ms 5)

# A generous budget over the same corpus completes every query.
expect_rc(0 "batch-ok" batch --queries 8 --docs 4000 --terms 100
          --deadline-ms 10000)

# Success path still exits 0.
expect_rc(0 "info-ok" info --in ${WORK_DIR}/ok.fesia)

# --- Crash-safe snapshot store -----------------------------------------
# Usage errors -> 2.
expect_rc(2 "snapshot-no-sub" snapshot)
expect_rc(2 "snapshot-bad-sub" snapshot frobnicate --dir ${WORK_DIR}/store)
expect_rc(2 "snapshot-no-dir" snapshot save --in ${WORK_DIR}/ok.fesia)
expect_rc(2 "snapshot-zero-keep" snapshot save --dir ${WORK_DIR}/store
          --in ${WORK_DIR}/ok.fesia --keep 0)

# Save/load round trip: the extracted payload is byte-identical. Store
# directories persist state by design, so wipe them for a deterministic
# (re)run.
set(STORE ${WORK_DIR}/store)
file(REMOVE_RECURSE ${STORE} ${WORK_DIR}/deadstore)
expect_rc(0 "snapshot-save-1" snapshot save --dir ${STORE}
          --in ${WORK_DIR}/ok.fesia)
expect_rc(0 "snapshot-load-1" snapshot load --dir ${STORE}
          --out ${WORK_DIR}/roundtrip.fesia)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/ok.fesia ${WORK_DIR}/roundtrip.fesia
                RESULT_VARIABLE cmp)
if(NOT cmp EQUAL 0)
  message(FATAL_ERROR "snapshot round trip: payload differs")
endif()

# Kill-point rehearsal: crash the save at each injected point, then prove
# recovery still serves the committed generation's exact bytes.
expect_rc(0 "gen-v2" generate --n 500 --seed 9 --out ${WORK_DIR}/v2.bin)
foreach(crash io-short-write crash-before-rename crash-after-rename)
  expect_rc_env(${crash} 3 "snapshot-save-${crash}"
                snapshot save --dir ${STORE} --in ${WORK_DIR}/v2.bin)
  expect_rc(0 "snapshot-recover-${crash}" snapshot recover --dir ${STORE})
  # Recovery reports are line-oriented JSON with a fixed event shape.
  require_contains("snapshot-recover-${crash}" "{\"event\":\"resumed\"")
  require_contains("snapshot-recover-${crash}" "{\"event\":\"store\",\"ok\":true")
  expect_rc(0 "snapshot-load-${crash}" snapshot load --dir ${STORE}
            --out ${WORK_DIR}/after-${crash}.fesia)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK_DIR}/ok.fesia ${WORK_DIR}/after-${crash}.fesia
                  RESULT_VARIABLE cmp)
  if(NOT cmp EQUAL 0)
    message(FATAL_ERROR
            "snapshot-${crash}: recovered payload differs from last good")
  endif()
endforeach()

# A store whose every generation is corrupt is unrecoverable -> 6.
set(DEADSTORE ${WORK_DIR}/deadstore)
expect_rc(0 "snapshot-save-dead" snapshot save --dir ${DEADSTORE}
          --in ${WORK_DIR}/ok.fesia)
file(GLOB dead_gens ${DEADSTORE}/snap.*)
foreach(gen ${dead_gens})
  file(WRITE ${gen} "rotten bytes that cannot possibly validate")
endforeach()
expect_rc(6 "snapshot-recover-dead" snapshot recover --dir ${DEADSTORE})
require_contains("snapshot-recover-dead" "{\"event\":\"quarantined\"")
require_contains("snapshot-recover-dead" "\"ok\":false,\"code\":\"data-loss\"")
expect_rc(6 "snapshot-load-dead" snapshot load --dir ${DEADSTORE}
          --out ${WORK_DIR}/never.fesia)

# --- Sharded index ------------------------------------------------------
# Usage errors -> 2.
set(SHARDSTORE ${WORK_DIR}/shardstore)
file(REMOVE_RECURSE ${SHARDSTORE})
expect_rc(2 "build-no-dir" build --shards 2)
expect_rc(2 "build-too-many-shards" build --dir ${SHARDSTORE} --shards 300)
expect_rc(2 "batch-too-many-shards" batch --queries 4 --shards 300)
expect_rc(2 "shards-on-save" snapshot save --dir ${SHARDSTORE}
          --in ${WORK_DIR}/ok.fesia --shards 2)

# Build + per-shard recover; every JSON line carries its shard id.
expect_rc(0 "build-sharded" build --dir ${SHARDSTORE} --shards 2
          --docs 2000 --terms 80)
require_contains("build-sharded" "shard-01: saved generation 1")
expect_rc(0 "recover-sharded" snapshot recover --dir ${SHARDSTORE}
          --shards 2)
require_contains("recover-sharded" "{\"event\":\"resumed\",\"shard\":0")
require_contains("recover-sharded" "{\"event\":\"store\",\"shard\":1,\"ok\":true")

# Reopening the store under a different shard map is refused -> 4.
expect_rc(4 "build-shardmap-mismatch" build --dir ${SHARDSTORE} --shards 3
          --docs 2000 --terms 80)

# Rot one shard's every generation: recover reports the dead shard (and
# escalates to its exit code 6) while the healthy shard still reads ok.
file(GLOB shard1_gens ${SHARDSTORE}/shard-01/snap.*)
foreach(gen ${shard1_gens})
  file(WRITE ${gen} "rotten bytes that cannot possibly validate")
endforeach()
expect_rc(6 "recover-sharded-dead" snapshot recover --dir ${SHARDSTORE}
          --shards 2)
require_contains("recover-sharded-dead" "{\"event\":\"quarantined\",\"shard\":1")
require_contains("recover-sharded-dead" "{\"event\":\"store\",\"shard\":0,\"ok\":true")
require_contains("recover-sharded-dead" "\"shard\":1,\"ok\":false,\"code\":\"data-loss\"")

# Scatter-gather batch: complete gathers exit 0; a stalled sub-query under
# a tight budget leaves zero complete queries -> 5, same contract as the
# unsharded path.
expect_rc(0 "batch-sharded" batch --queries 8 --docs 4000 --terms 100
          --shards 4 --deadline-ms 10000)
require_contains("batch-sharded" "gather: complete 8, partial 0")
require_contains("batch-sharded" "shard-03: ok 8")
expect_rc_env("query-delay:0:20000" 5 "batch-sharded-deadline-exhaustion"
              batch --queries 1 --docs 4000 --terms 100 --shards 2
              --deadline-ms 5)

# --- Network front door -------------------------------------------------
# Usage errors -> 2; a serve that cannot bind/listen -> 8 (the process
# exits before it would start reading stdin, so no input plumbing needed).
expect_rc(2 "serve-bad-port" serve --port notaport)
expect_rc(2 "serve-port-out-of-range" serve --port 70000)
expect_rc(2 "serve-too-many-shards" serve --port 0 --shards 300)
expect_rc(8 "serve-unparseable-bind" serve --port 0 --bind 999.0.0.1
          --docs 500 --terms 20)
expect_rc(8 "serve-unroutable-bind" serve --port 0 --bind 203.0.113.7
          --docs 500 --terms 20)

message(STATUS "cli error-path smoke ok")
