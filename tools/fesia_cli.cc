// fesia_cli — command-line front end to the FESIA library.
//
// Subcommands:
//   generate   write a synthetic sorted set (or pair) to disk
//   encode     build a FesiaSet from a raw set file and serialize it
//   intersect  intersect two set files with any method in the registry
//   info       print the structural statistics of a set file
//   batch      run a conjunctive-query batch with deadlines and overload
//              controls against a synthetic corpus; --shards N routes the
//              batch through a sharded index and scatter-gather router
//   build      shard a synthetic corpus N ways and persist one snapshot
//              generation per shard under DIR/shard-NN/
//   mutate     append one durable upsert/delete to the owning shard's
//              write-ahead log (fsynced before the ack is printed)
//   flush      merge each shard's pending WAL/delta mutations into a new
//              snapshot generation and truncate its log
//   snapshot   save/load/recover payloads through the crash-safe
//              generational SnapshotStore (atomic writes + manifest);
//              recover emits machine-readable JSON, one line per event,
//              including each store's write-ahead-log replay
//   serve      network front door: epoll TCP server answering batch
//              count/query over the line-JSON protocol (docs/API.md,
//              "Serving"), with an epoch-invalidated result cache;
//              serves a synthetic corpus or a store built by `build`
//
// Set files hold raw little-endian uint32 values ("raw" format) or a
// serialized FesiaSet ("fesia" format, magic-tagged; auto-detected).
//
// Exit codes: 0 ok, 2 usage, 3 I/O, 4 corrupt, 5 deadline exhaustion,
// 6 unrecoverable store, 7 resource exhausted (memory budget), 8 bind
// failure (serve) — the authoritative table lives in docs/API.md
// ("Exit codes").
#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "shard/shard_map.h"
#include "shard/shard_router.h"
#include "shard/sharded_index.h"
#include "store/snapshot_store.h"
#include "store/wal.h"
#include "util/cpu.h"
#include "util/file_io.h"
#include "util/json.h"
#include "util/memory_budget.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

using fesia::FesiaParams;
using fesia::FesiaSet;
using fesia::SimdLevel;
using fesia::Status;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitCorrupt = 4;
constexpr int kExitDeadline = 5;
constexpr int kExitUnrecoverable = 6;
constexpr int kExitResource = 7;
constexpr int kExitBind = 8;

int Usage() {
  std::fprintf(stderr, R"(usage: fesia_cli <command> [options]

commands:
  generate --n N [--universe U] [--seed S] --out FILE
      write a sorted duplicate-free uniform set of N uint32 keys
  generate-pair --n1 N --n2 N --selectivity S [--seed S] --out-a F --out-b F
      write a pair with an exact intersection size
  encode --in FILE --out FILE [--segment-bits 8|16|32] [--stride 1|2|4|8]
      build a FesiaSet from a raw set file and serialize it
  intersect --a FILE --b FILE [--method M] [--level L] [--reps R]
      intersect two files; M is fesia|fesia-hash|fesia-auto or a baseline
      (Scalar, ScalarGalloping, Shuffling, BMiss, SIMDGalloping, Hash);
      L is scalar|sse|avx2|avx512|auto
  info --in FILE
      structural statistics of a raw or encoded set file
  batch [--queries N] [--query-terms K] [--docs D] [--terms T] [--seed S]
        [--threads P] [--deadline-ms MS] [--batch-deadline-ms MS]
        [--capacity C] [--retries R] [--level L] [--shards N]
        [--memory-budget BYTES]
      run N K-term AND queries against a synthetic Zipf corpus with the
      deadline/overload controls of the batch executor; prints outcome
      counters and latency percentiles. --shards N >= 1 routes the batch
      through an N-way sharded index (scatter-gather, per-shard stats,
      explicit partial results)
  build --dir DIR [--shards N] [--replicas R] [--ack all|quorum]
        [--docs D] [--terms T] [--seed S] [--keep K]
      build a synthetic corpus, hash-partition it into N shards (default
      1), and persist one snapshot generation per shard under
      DIR/shard-NN/ (the shard map is pinned as DIR/SHARDMAP). --replicas
      R >= 2 keeps R full store replicas per shard under
      DIR/shard-NN/replica-MM/ (pinned as DIR/TOPOLOGY); mutations are
      fanned out durably under the --ack policy, reads fail over between
      replicas, and anti-entropy repair re-syncs a damaged replica from
      its healthy peer
  mutate --dir DIR (--upsert DOC [--set-terms T1,T2,...] | --delete DOC)
         [--shards N] [--replicas R] [--ack all|quorum]
         [--docs D] [--terms T] [--seed S] [--memory-budget BYTES]
      durably append one mutation to the write-ahead log of every live
      replica of the shard owning DOC (fsynced everywhere the ack policy
      requires before the ack is printed); --upsert replaces DOC's term
      set wholesale, --delete tombstones it. The corpus and topology
      flags must match the build
  flush --dir DIR [--shards N] [--replicas R] [--ack all|quorum]
        [--docs D] [--terms T] [--seed S] [--keep K]
        [--memory-budget BYTES]
      merge every replica's pending WAL/delta mutations into a new
      snapshot generation of its own store and truncate its log (stores
      with none are a no-op), emitting one JSON line per shard with
      pending_docs/pending_bytes; the corpus and topology flags must
      match the build

  --memory-budget BYTES (batch, mutate, flush; 0 = unlimited, suffixes
      K/M/G accepted) caps the bytes the run may hold: mutations past the
      cap are rejected with exit 7 after a flush is requested, and queries
      degrade (low-priority shed, the rest forced onto O(1)-scratch
      serial paths) while the budget is over its high watermark
  serve [--port P] [--bind ADDR] [--dir DIR] [--shards N] [--replicas R]
        [--ack all|quorum] [--docs D] [--terms T] [--seed S] [--keep K]
        [--workers W] [--max-connections C] [--max-line-bytes B]
        [--memory-budget BYTES] [--cache-bytes BYTES]
        [--max-deadline-ms MS] [--threads P] [--capacity C] [--retries R]
      start the network front door: an epoll TCP server answering batch
      count/query requests over the line-JSON protocol (docs/API.md,
      "Serving"). Without --dir it serves the synthetic corpus in memory;
      with --dir it reloads the shards `build` persisted (replaying each
      shard's WAL) and rebuilds any shard whose store is empty. --port 0
      (the default) binds an ephemeral port; the actual one is announced
      on stdout as {"event":"serving","port":N,...} once the server is
      ready. Results are cached in an epoch-invalidated LRU capped at
      --cache-bytes (0 disables). Runs until stdin closes or
      SIGINT/SIGTERM, then prints {"event":"served",...} totals.
      exit 8 if the address cannot be bound
  snapshot save --dir DIR --in FILE [--keep N]
      durably append FILE's bytes as a new store generation (atomic write
      + manifest commit; N generations retained, default 3)
  snapshot load --dir DIR --out FILE
      validate and extract the store's current generation into FILE
  snapshot recover --dir DIR [--shards N] [--replicas R]
      open the store, quarantining whatever fails validation, and emit
      what recovery found as JSON (one line per event); also replays the
      store's write-ahead log, repairing torn tails (suspect bytes are
      quarantined, never deleted). exit 6 if no generation validates.
      --shards N recovers DIR/shard-NN stores instead, reporting the
      worst shard's exit code; with --replicas R >= 2 every
      DIR/shard-NN/replica-MM store is recovered independently (a dead
      replica degrades the exit code but never hides its peers)

exit codes: 0 ok, 2 usage, 3 I/O failure or invalid input,
            4 corrupt snapshot,
            5 deadline exhaustion (no query in the batch completed),
            6 unrecoverable snapshot store,
            7 resource exhausted: memory budget,
            8 bind failure: serve could not bind/listen (see docs/API.md)
)");
  return kExitUsage;
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    flags[key.substr(2)] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& def) {
  auto it = flags.find(key);
  return it == flags.end() ? def : it->second;
}

// Strict numeric flag parsers: the whole value must be consumed, and a
// malformed value is a usage error rather than an exception or garbage.
bool ParseU64Flag(const std::map<std::string, std::string>& flags,
                  const std::string& key, uint64_t def, uint64_t* out) {
  auto it = flags.find(key);
  if (it == flags.end()) {
    *out = def;
    return true;
  }
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || it->second[0] == '-') {
    std::fprintf(stderr, "fesia_cli: --%s expects a non-negative integer, "
                 "got \"%s\"\n", key.c_str(), s);
    return false;
  }
  *out = v;
  return true;
}

bool ParseIntFlag(const std::map<std::string, std::string>& flags,
                  const std::string& key, int def, int* out) {
  uint64_t v = 0;
  if (!ParseU64Flag(flags, key, static_cast<uint64_t>(def), &v)) return false;
  if (v > 1u << 30) {
    std::fprintf(stderr, "fesia_cli: --%s value %llu out of range\n",
                 key.c_str(), static_cast<unsigned long long>(v));
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

// Comma-separated uint32 list (`--set-terms 3,17,42`). A missing flag or
// an explicitly empty value is an empty list (an upsert clearing every
// term); any malformed token is a usage error.
bool ParseU32ListFlag(const std::map<std::string, std::string>& flags,
                      const std::string& key, std::vector<uint32_t>* out) {
  out->clear();
  auto it = flags.find(key);
  if (it == flags.end() || it->second.empty()) return true;
  const std::string& value = it->second;
  size_t pos = 0;
  while (pos <= value.size()) {
    const size_t comma = value.find(',', pos);
    const std::string tok =
        value.substr(pos, comma == std::string::npos ? std::string::npos
                                                     : comma - pos);
    const char* s = tok.c_str();
    char* end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (tok.empty() || errno != 0 || end == s || *end != '\0' ||
        tok[0] == '-' || v > 0xFFFFFFFFull) {
      std::fprintf(stderr, "fesia_cli: --%s expects a comma-separated list "
                   "of uint32 values, got \"%s\"\n", key.c_str(),
                   value.c_str());
      return false;
    }
    out->push_back(static_cast<uint32_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

// Byte-size flag (`--memory-budget 64M`): a non-negative integer with an
// optional K/M/G binary suffix. 0 means "no budget".
bool ParseSizeFlag(const std::map<std::string, std::string>& flags,
                   const std::string& key, uint64_t def, uint64_t* out) {
  auto it = flags.find(key);
  if (it == flags.end()) {
    *out = def;
    return true;
  }
  const std::string& value = it->second;
  const char* s = value.c_str();
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s, &end, 10);
  uint64_t mult = 1;
  if (end != s && *end != '\0' && end[1] == '\0') {
    switch (*end) {
      case 'K': case 'k': mult = 1ull << 10; ++end; break;
      case 'M': case 'm': mult = 1ull << 20; ++end; break;
      case 'G': case 'g': mult = 1ull << 30; ++end; break;
      default: break;
    }
  }
  if (errno != 0 || end == s || *end != '\0' || value[0] == '-' ||
      v > UINT64_MAX / mult) {
    std::fprintf(stderr, "fesia_cli: --%s expects a byte count with an "
                 "optional K/M/G suffix, got \"%s\"\n", key.c_str(), s);
    return false;
  }
  *out = v * mult;
  return true;
}

bool ParseDoubleFlag(const std::map<std::string, std::string>& flags,
                     const std::string& key, double def, double* out) {
  auto it = flags.find(key);
  if (it == flags.end()) {
    *out = def;
    return true;
  }
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') {
    std::fprintf(stderr, "fesia_cli: --%s expects a number, got \"%s\"\n",
                 key.c_str(), s);
    return false;
  }
  *out = v;
  return true;
}

int ReportIo(const Status& s) {
  std::fprintf(stderr, "fesia_cli: %s\n", s.ToString().c_str());
  return kExitIo;
}

bool WriteOrFail(const std::string& path, const void* data, size_t bytes,
                 int* exit_code) {
  Status s = fesia::WriteFileBytes(path, data, bytes);
  if (!s.ok()) {
    *exit_code = ReportIo(s);
    return false;
  }
  return true;
}

bool HasSnapshotMagic(const std::vector<uint8_t>& bytes) {
  static constexpr char kMagic[8] = {'F', 'E', 'S', 'I', 'A', 'S', 'E', 'T'};
  return bytes.size() >= sizeof(kMagic) &&
         std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
}

// Loads either a serialized FesiaSet or a raw uint32 file (re-encoding it
// with default parameters). On failure, prints a message and sets
// *exit_code: a magic-tagged file that fails validation is corrupt (4),
// never silently reinterpreted as raw data.
bool LoadAsFesia(const std::string& path, FesiaSet* set,
                 std::vector<uint32_t>* raw, int* exit_code) {
  std::vector<uint8_t> bytes;
  Status s = fesia::ReadFileBytes(path, &bytes);
  if (!s.ok()) {
    *exit_code = ReportIo(s);
    return false;
  }
  if (HasSnapshotMagic(bytes)) {
    Status parsed = FesiaSet::Deserialize(bytes, set);
    if (!parsed.ok()) {
      std::fprintf(stderr, "fesia_cli: %s: %s\n", path.c_str(),
                   parsed.ToString().c_str());
      *exit_code = kExitCorrupt;
      return false;
    }
    *raw = set->ToSortedVector();
    return true;
  }
  // A raw uint32 file with trailing bytes is invalid input, not a
  // corrupt snapshot: reject it outright rather than dropping the tail.
  if (bytes.size() % 4 != 0) {
    std::fprintf(stderr, "fesia_cli: %s: not a FesiaSet and size %% 4 != 0\n",
                 path.c_str());
    *exit_code = kExitIo;
    return false;
  }
  raw->resize(bytes.size() / 4);
  std::memcpy(raw->data(), bytes.data(), bytes.size());
  *set = FesiaSet::Build(*raw);
  return true;
}

bool ParseLevelFlag(const std::map<std::string, std::string>& flags,
                    SimdLevel* out) {
  std::string s = FlagOr(flags, "level", "auto");
  if (!fesia::ParseSimdLevel(s.c_str(), out)) {
    std::fprintf(stderr, "fesia_cli: unknown --level \"%s\" (expected "
                 "scalar|sse|avx2|avx512|auto)\n", s.c_str());
    return false;
  }
  return true;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  uint64_t n = 0, universe = 0, seed = 0;
  if (!ParseU64Flag(flags, "n", 0, &n) ||
      !ParseU64Flag(flags, "universe", 0, &universe) ||
      !ParseU64Flag(flags, "seed", 1, &seed)) {
    return kExitUsage;
  }
  if (universe == 0) universe = 16 * n + 64;
  std::string out = FlagOr(flags, "out", "");
  if (n == 0 || out.empty()) return Usage();
  std::vector<uint32_t> v = fesia::datagen::SortedUniform(n, universe, seed);
  int exit_code = kExitOk;
  if (!WriteOrFail(out, v.data(), v.size() * 4, &exit_code)) return exit_code;
  std::printf("wrote %zu keys to %s\n", v.size(), out.c_str());
  return kExitOk;
}

int CmdGeneratePair(const std::map<std::string, std::string>& flags) {
  uint64_t n1 = 0, n2 = 0, seed = 0;
  double sel = 0;
  if (!ParseU64Flag(flags, "n1", 0, &n1) ||
      !ParseU64Flag(flags, "n2", 0, &n2) ||
      !ParseDoubleFlag(flags, "selectivity", 0.1, &sel) ||
      !ParseU64Flag(flags, "seed", 1, &seed)) {
    return kExitUsage;
  }
  std::string out_a = FlagOr(flags, "out-a", "");
  std::string out_b = FlagOr(flags, "out-b", "");
  if (n1 == 0 || n2 == 0 || out_a.empty() || out_b.empty()) return Usage();
  auto pair = fesia::datagen::PairWithSelectivity(n1, n2, sel, seed);
  int exit_code = kExitOk;
  if (!WriteOrFail(out_a, pair.a.data(), pair.a.size() * 4, &exit_code)) {
    return exit_code;
  }
  if (!WriteOrFail(out_b, pair.b.data(), pair.b.size() * 4, &exit_code)) {
    return exit_code;
  }
  std::printf("wrote %zu + %zu keys, |A ∩ B| = %zu\n", pair.a.size(),
              pair.b.size(), pair.intersection_size);
  return kExitOk;
}

int CmdEncode(const std::map<std::string, std::string>& flags) {
  std::string in = FlagOr(flags, "in", "");
  std::string out = FlagOr(flags, "out", "");
  if (in.empty() || out.empty()) return Usage();
  // Validate every flag before touching the filesystem, so malformed
  // arguments report as usage errors even when the input is also missing.
  FesiaParams params;
  if (!ParseIntFlag(flags, "segment-bits", 16, &params.segment_bits) ||
      !ParseIntFlag(flags, "stride", 1, &params.kernel_stride)) {
    return kExitUsage;
  }
  if (params.segment_bits != 8 && params.segment_bits != 16 &&
      params.segment_bits != 32) {
    std::fprintf(stderr, "fesia_cli: --segment-bits must be 8, 16, or 32\n");
    return kExitUsage;
  }
  if (params.kernel_stride != 1 && params.kernel_stride != 2 &&
      params.kernel_stride != 4 && params.kernel_stride != 8) {
    std::fprintf(stderr, "fesia_cli: --stride must be 1, 2, 4, or 8\n");
    return kExitUsage;
  }
  std::vector<uint8_t> bytes;
  Status s = fesia::ReadFileBytes(in, &bytes);
  if (!s.ok()) return ReportIo(s);
  if (bytes.size() % 4 != 0) {
    std::fprintf(stderr, "fesia_cli: %s: raw set size %% 4 != 0\n",
                 in.c_str());
    return kExitIo;
  }
  std::vector<uint32_t> raw(bytes.size() / 4);
  std::memcpy(raw.data(), bytes.data(), bytes.size());
  fesia::WallTimer timer;
  FesiaSet set = FesiaSet::Build(raw, params);
  double build_s = timer.Seconds();
  std::vector<uint8_t> blob = set.Serialize();
  int exit_code = kExitOk;
  if (!WriteOrFail(out, blob.data(), blob.size(), &exit_code)) {
    return exit_code;
  }
  std::printf(
      "encoded %u keys in %.3f s: m = %u bits, %u segments, %zu bytes\n",
      set.size(), build_s, set.bitmap_bits(), set.num_segments(),
      blob.size());
  return kExitOk;
}

int CmdIntersect(const std::map<std::string, std::string>& flags) {
  std::string file_a = FlagOr(flags, "a", "");
  std::string file_b = FlagOr(flags, "b", "");
  if (file_a.empty() || file_b.empty()) return Usage();
  std::string method = FlagOr(flags, "method", "fesia");
  SimdLevel level = SimdLevel::kAuto;
  int reps = 0;
  if (!ParseLevelFlag(flags, &level) ||
      !ParseIntFlag(flags, "reps", 5, &reps)) {
    return kExitUsage;
  }
  if (reps <= 0) {
    std::fprintf(stderr, "fesia_cli: --reps must be positive\n");
    return kExitUsage;
  }
  bool is_fesia_method = method == "fesia" || method == "fesia-hash" ||
                         method == "fesia-auto";
  if (!is_fesia_method && fesia::baselines::FindBaseline(method) == nullptr) {
    std::fprintf(stderr, "fesia_cli: unknown method %s\n", method.c_str());
    return kExitUsage;
  }

  FesiaSet fa, fb;
  std::vector<uint32_t> raw_a, raw_b;
  int exit_code = kExitOk;
  if (!LoadAsFesia(file_a, &fa, &raw_a, &exit_code)) return exit_code;
  if (!LoadAsFesia(file_b, &fb, &raw_b, &exit_code)) return exit_code;

  size_t result = 0;
  double best_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    fesia::WallTimer timer;
    if (method == "fesia") {
      result = fesia::IntersectCount(fa, fb, level);
    } else if (method == "fesia-hash") {
      result = fesia::IntersectCountHash(fa, fb, level);
    } else if (method == "fesia-auto") {
      result = fesia::IntersectCountAuto(fa, fb, level);
    } else {
      const auto* m = fesia::baselines::FindBaseline(method);
      if (m == nullptr) {
        std::fprintf(stderr, "fesia_cli: unknown method %s\n", method.c_str());
        return kExitUsage;
      }
      result = m->fn(raw_a.data(), raw_a.size(), raw_b.data(), raw_b.size());
    }
    best_ms = std::min(best_ms, timer.Millis());
  }
  std::printf("|A| = %zu, |B| = %zu, |A ∩ B| = %zu, method = %s, "
              "best of %d: %.3f ms\n",
              raw_a.size(), raw_b.size(), result, method.c_str(), reps,
              best_ms);
  return kExitOk;
}

int CmdInfo(const std::map<std::string, std::string>& flags) {
  std::string in = FlagOr(flags, "in", "");
  if (in.empty()) return Usage();
  FesiaSet set;
  std::vector<uint32_t> raw;
  int exit_code = kExitOk;
  if (!LoadAsFesia(in, &set, &raw, &exit_code)) return exit_code;
  FesiaSet::Stats st = set.ComputeStats();
  std::printf("keys:              %u\n", set.size());
  std::printf("bitmap bits (m):   %u\n", set.bitmap_bits());
  std::printf("segment bits (s):  %d\n", set.segment_bits());
  std::printf("segments:          %u (%u non-empty)\n", set.num_segments(),
              st.nonempty_segments);
  std::printf("max segment size:  %u\n", st.max_segment_size);
  std::printf("kernel stride:     %d (%u padding slots)\n",
              set.kernel_stride(), st.padded_elements);
  std::printf("memory:            %zu bytes\n", st.memory_bytes);
  std::printf("host SIMD:         %s\n",
              fesia::SimdLevelName(fesia::DetectSimdLevel()));
  return kExitOk;
}

// Scatter-gather variant of the batch command: routes the same query mix
// through an N-way hash-sharded memory-only index. Exit-code contract
// matches the unsharded path, restated over routed results: 5 when zero
// queries completed on every shard while at least one missed a deadline.
int RunShardedBatch(const fesia::index::InvertedIndex& idx,
                    const std::vector<std::vector<uint32_t>>& queries,
                    uint32_t shards,
                    const fesia::shard::RouterOptions& ropts) {
  fesia::WallTimer build_timer;
  fesia::shard::ShardedIndexOptions sopts;
  auto sharded = fesia::shard::ShardedIndex::Create(
      &idx, fesia::shard::ShardMap::Hash(shards), sopts);
  if (!sharded.ok()) return ReportIo(sharded.status());
  Status built = sharded->RebuildAll();
  if (!built.ok()) return ReportIo(built);
  std::printf("sharded: %u shards (%u serving) built in %.3f s\n",
              sharded->num_shards(), sharded->serving_shards(),
              build_timer.Seconds());

  fesia::shard::ShardRouter router(&*sharded);
  fesia::shard::ShardBatchStats stats;
  std::vector<fesia::shard::RoutedQueryResult> routed =
      router.CountBatch(queries, ropts, &stats);

  size_t ok = 0, deadline = 0, shed = 0, failed = 0;
  for (const auto& r : routed) {
    switch (r.outcome) {
      case fesia::index::QueryOutcome::kOk: ++ok; break;
      case fesia::index::QueryOutcome::kDeadlineExceeded: ++deadline; break;
      case fesia::index::QueryOutcome::kShed: ++shed; break;
      case fesia::index::QueryOutcome::kFailed: ++failed; break;
    }
  }
  std::printf("batch: %zu queries in %.3f s (%.0f q/s)\n", routed.size(),
              stats.wall_seconds, stats.queries_per_second);
  std::printf("outcomes: ok %zu, deadline-exceeded %zu, shed %zu, "
              "failed %zu\n", ok, deadline, shed, failed);
  std::printf("gather: complete %zu, partial %zu (%u/%u shards serving)\n",
              stats.complete_queries, stats.partial_queries,
              stats.shards_serving, stats.shards_total);
  for (uint32_t s = 0; s < stats.shards_total; ++s) {
    const fesia::index::BatchStats& ps = stats.per_shard[s];
    std::printf("%s: ok %zu, deadline-exceeded %zu, shed %zu, failed %zu, "
                "retries %zu, downgrades %zu, p95 %.3f ms\n",
                stats.shard_labels[s].c_str(), ps.ok, ps.deadline_exceeded,
                ps.shed, ps.failed, ps.retries, ps.downgrades,
                ps.latency_p95 * 1e3);
  }
  std::printf("merged: retries %zu, downgrades %zu, pressure-shed %zu, "
              "pressure-downgrades %zu, sub-queries ok %zu of %zu\n",
              stats.merged.retries, stats.merged.downgrades,
              stats.merged.pressure_shed, stats.merged.pressure_downgrades,
              stats.merged.ok, stats.merged.latency_seconds.size());
  std::printf("latency ms: p50 %.3f, p95 %.3f, p99 %.3f, max %.3f\n",
              stats.latency_p50 * 1e3, stats.latency_p95 * 1e3,
              stats.latency_p99 * 1e3, stats.latency_max * 1e3);
  if (ok == 0 && deadline > 0) {
    std::fprintf(stderr, "fesia_cli: deadline exhaustion: no query "
                 "completed within budget\n");
    return kExitDeadline;
  }
  return kExitOk;
}

int CmdBatch(const std::map<std::string, std::string>& flags) {
  uint64_t num_queries = 0, docs = 0, terms = 0, seed = 0, threads = 0;
  uint64_t capacity = 0, shards = 0, budget_bytes = 0;
  int query_terms = 0, retries = 0;
  double deadline_ms = 0, batch_deadline_ms = 0;
  SimdLevel level = SimdLevel::kAuto;
  if (!ParseU64Flag(flags, "queries", 64, &num_queries) ||
      !ParseU64Flag(flags, "docs", 20000, &docs) ||
      !ParseU64Flag(flags, "terms", 500, &terms) ||
      !ParseU64Flag(flags, "seed", 1, &seed) ||
      !ParseU64Flag(flags, "threads", 0, &threads) ||
      !ParseU64Flag(flags, "capacity", 0, &capacity) ||
      !ParseU64Flag(flags, "shards", 0, &shards) ||
      !ParseSizeFlag(flags, "memory-budget", 0, &budget_bytes) ||
      !ParseIntFlag(flags, "query-terms", 2, &query_terms) ||
      !ParseIntFlag(flags, "retries", 1, &retries) ||
      !ParseDoubleFlag(flags, "deadline-ms", 0, &deadline_ms) ||
      !ParseDoubleFlag(flags, "batch-deadline-ms", 0, &batch_deadline_ms) ||
      !ParseLevelFlag(flags, &level)) {
    return kExitUsage;
  }
  if (num_queries == 0 || docs == 0 || terms == 0 || query_terms <= 0 ||
      retries <= 0) {
    std::fprintf(stderr, "fesia_cli: --queries, --docs, --terms, "
                 "--query-terms, and --retries must be positive\n");
    return kExitUsage;
  }
  if (deadline_ms < 0 || batch_deadline_ms < 0) {
    std::fprintf(stderr, "fesia_cli: deadlines must be non-negative\n");
    return kExitUsage;
  }
  if (shards > 256) {
    std::fprintf(stderr, "fesia_cli: --shards must be at most 256\n");
    return kExitUsage;
  }

  fesia::index::CorpusParams cp;
  cp.num_docs = static_cast<uint32_t>(docs);
  cp.num_terms = static_cast<uint32_t>(terms);
  cp.avg_terms_per_doc = 20;
  cp.seed = seed;
  fesia::WallTimer build_timer;
  fesia::index::InvertedIndex idx =
      fesia::index::InvertedIndex::BuildSynthetic(cp);

  // Deterministic query mix: stride across term ranks so every batch spans
  // head (expensive) and tail (cheap) posting lists.
  std::vector<std::vector<uint32_t>> queries(num_queries);
  for (uint64_t q = 0; q < num_queries; ++q) {
    for (int t = 0; t < query_terms; ++t) {
      queries[q].push_back(static_cast<uint32_t>(
          (q * static_cast<uint64_t>(query_terms) + t) % idx.num_terms()));
    }
  }

  // One run-scoped budget for both paths (0 keeps the nullptr default,
  // i.e. MemoryBudget::Unlimited() and byte-identical results).
  std::unique_ptr<fesia::MemoryBudget> budget;
  if (budget_bytes > 0) {
    budget = std::make_unique<fesia::MemoryBudget>(budget_bytes, nullptr,
                                                   "cli-batch");
  }

  if (shards > 0) {
    std::printf("corpus: %u docs, %u terms\n", idx.num_docs(),
                idx.num_terms());
    fesia::shard::RouterOptions ropts;
    ropts.num_threads = threads;
    ropts.level = level;
    ropts.query_deadline_seconds = deadline_ms / 1000.0;
    ropts.batch_deadline_seconds = batch_deadline_ms / 1000.0;
    ropts.admission_capacity = capacity;
    ropts.retry.max_attempts = retries;
    ropts.budget = budget.get();
    return RunShardedBatch(idx, queries, static_cast<uint32_t>(shards),
                           ropts);
  }

  fesia::index::QueryEngine engine(&idx, FesiaParams{});
  std::printf("corpus: %u docs, %zu terms, engine built in %.3f s\n",
              idx.num_docs(), engine.num_terms(), build_timer.Seconds());

  fesia::index::BatchOptions opts;
  opts.num_threads = threads;
  opts.level = level;
  opts.query_deadline_seconds = deadline_ms / 1000.0;
  opts.batch_deadline_seconds = batch_deadline_ms / 1000.0;
  opts.admission_capacity = capacity;
  opts.retry.max_attempts = retries;
  opts.budget = budget.get();
  fesia::index::BatchStats stats;
  std::vector<fesia::index::QueryResult> results =
      engine.CountBatch(queries, opts, &stats);

  std::printf("batch: %zu queries in %.3f s (%.0f q/s)\n", results.size(),
              stats.wall_seconds, stats.queries_per_second);
  std::printf("outcomes: ok %zu, deadline-exceeded %zu, shed %zu, "
              "failed %zu\n",
              stats.ok, stats.deadline_exceeded, stats.shed, stats.failed);
  std::printf("resilience: retries %zu, downgrades %zu, pressure-shed %zu, "
              "pressure-downgrades %zu\n", stats.retries, stats.downgrades,
              stats.pressure_shed, stats.pressure_downgrades);
  std::printf("latency ms: p50 %.3f, p95 %.3f, max %.3f\n",
              stats.latency_p50 * 1e3, stats.latency_p95 * 1e3,
              stats.latency_max * 1e3);
  if (stats.ok == 0 && stats.deadline_exceeded > 0) {
    std::fprintf(stderr, "fesia_cli: deadline exhaustion: no query "
                 "completed within budget\n");
    return kExitDeadline;
  }
  return kExitOk;
}

// Store failures map onto the documented exit codes: an unrecoverable
// store (nothing validates) is 6, validation failures are 4, a memory
// budget rejection is 7, everything the OS refused is 3.
int StoreExitCode(const Status& s) {
  switch (s.code()) {
    case fesia::StatusCode::kDataLoss:
      return kExitUnrecoverable;
    case fesia::StatusCode::kCorruption:
    case fesia::StatusCode::kFailedPrecondition:
      return kExitCorrupt;
    case fesia::StatusCode::kResourceExhausted:
      return kExitResource;
    default:
      return kExitIo;
  }
}

int ReportStore(const Status& s) {
  std::fprintf(stderr, "fesia_cli: %s\n", s.ToString().c_str());
  return StoreExitCode(s);
}

// Parses the replication topology flags shared by build/mutate/flush:
// --replicas R in [1, 8] and --ack all|quorum. The TOPOLOGY pin written
// at build time makes a mismatched --replicas on a later command a
// kFailedPrecondition (exit 4) rather than a silent divergence.
bool ParseTopologyFlags(const std::map<std::string, std::string>& flags,
                        uint32_t* replicas,
                        fesia::shard::AckPolicy* policy) {
  uint64_t r = 0;
  if (!ParseU64Flag(flags, "replicas", 1, &r)) return false;
  if (r == 0 || r > 8) {
    std::fprintf(stderr, "fesia_cli: --replicas must be in [1, 8]\n");
    return false;
  }
  *replicas = static_cast<uint32_t>(r);
  const std::string ack = FlagOr(flags, "ack", "all");
  if (ack == "all") {
    *policy = fesia::shard::AckPolicy::kAll;
  } else if (ack == "quorum") {
    *policy = fesia::shard::AckPolicy::kQuorum;
  } else {
    std::fprintf(stderr, "fesia_cli: --ack must be \"all\" or \"quorum\"\n");
    return false;
  }
  return true;
}

int CmdBuild(const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "dir", "");
  uint64_t shards = 0, docs = 0, terms = 0, seed = 0, keep = 0;
  uint32_t replicas = 1;
  fesia::shard::AckPolicy ack = fesia::shard::AckPolicy::kAll;
  if (!ParseU64Flag(flags, "shards", 1, &shards) ||
      !ParseU64Flag(flags, "docs", 20000, &docs) ||
      !ParseU64Flag(flags, "terms", 500, &terms) ||
      !ParseU64Flag(flags, "seed", 1, &seed) ||
      !ParseU64Flag(flags, "keep", 3, &keep) ||
      !ParseTopologyFlags(flags, &replicas, &ack)) {
    return kExitUsage;
  }
  if (dir.empty()) return Usage();
  if (shards == 0 || shards > 256) {
    std::fprintf(stderr, "fesia_cli: --shards must be in [1, 256]\n");
    return kExitUsage;
  }
  if (docs == 0 || terms == 0 || keep == 0) {
    std::fprintf(stderr,
                 "fesia_cli: --docs, --terms, and --keep must be positive\n");
    return kExitUsage;
  }

  fesia::index::CorpusParams cp;
  cp.num_docs = static_cast<uint32_t>(docs);
  cp.num_terms = static_cast<uint32_t>(terms);
  cp.avg_terms_per_doc = 20;
  cp.seed = seed;
  fesia::WallTimer timer;
  fesia::index::InvertedIndex idx =
      fesia::index::InvertedIndex::BuildSynthetic(cp);

  fesia::shard::ShardedIndexOptions sopts;
  sopts.store_dir = dir;
  sopts.max_generations = keep;
  sopts.replication_factor = replicas;
  sopts.ack_policy = ack;
  auto sharded = fesia::shard::ShardedIndex::Create(
      &idx, fesia::shard::ShardMap::Hash(static_cast<uint32_t>(shards)),
      sopts);
  if (!sharded.ok()) return ReportStore(sharded.status());
  Status built = sharded->RebuildAll();
  if (!built.ok()) return ReportStore(built);
  for (uint32_t s = 0; s < sharded->num_shards(); ++s) {
    uint64_t generation = 0;
    Status saved = sharded->SaveShard(s, &generation);
    if (!saved.ok()) return ReportStore(saved);
    if (replicas > 1) {
      std::printf("shard-%02u: saved generation %llu on %u replica(s)\n", s,
                  static_cast<unsigned long long>(generation), replicas);
    } else {
      std::printf("shard-%02u: saved generation %llu\n", s,
                  static_cast<unsigned long long>(generation));
    }
  }
  std::printf("built %u shard(s) x %u replica(s) over %u docs / %u terms "
              "into %s in %.3f s\n",
              sharded->num_shards(), replicas, idx.num_docs(),
              idx.num_terms(), dir.c_str(), timer.Seconds());
  return kExitOk;
}

// Rebuilds the synthetic corpus a `build` invocation persisted. mutate
// and flush need it because each shard's base sub-index is the reference
// the WAL replays over: the SHARDMAP pin catches a wrong --shards, but
// --docs/--terms/--seed must be repeated verbatim by the caller.
fesia::index::InvertedIndex RebuildCorpus(uint64_t docs, uint64_t terms,
                                          uint64_t seed) {
  fesia::index::CorpusParams cp;
  cp.num_docs = static_cast<uint32_t>(docs);
  cp.num_terms = static_cast<uint32_t>(terms);
  cp.avg_terms_per_doc = 20;
  cp.seed = seed;
  return fesia::index::InvertedIndex::BuildSynthetic(cp);
}

int CmdMutate(const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "dir", "");
  uint64_t shards = 0, docs = 0, terms = 0, seed = 0, keep = 0;
  uint64_t budget_bytes = 0;
  uint32_t replicas = 1;
  fesia::shard::AckPolicy ack = fesia::shard::AckPolicy::kAll;
  if (!ParseU64Flag(flags, "shards", 1, &shards) ||
      !ParseU64Flag(flags, "docs", 20000, &docs) ||
      !ParseU64Flag(flags, "terms", 500, &terms) ||
      !ParseU64Flag(flags, "seed", 1, &seed) ||
      !ParseU64Flag(flags, "keep", 3, &keep) ||
      !ParseSizeFlag(flags, "memory-budget", 0, &budget_bytes) ||
      !ParseTopologyFlags(flags, &replicas, &ack)) {
    return kExitUsage;
  }
  if (dir.empty()) return Usage();
  if (shards == 0 || shards > 256 || docs == 0 || terms == 0 || keep == 0) {
    std::fprintf(stderr, "fesia_cli: --shards must be in [1, 256]; --docs, "
                 "--terms, and --keep must be positive\n");
    return kExitUsage;
  }
  const bool has_upsert = flags.count("upsert") != 0;
  const bool has_delete = flags.count("delete") != 0;
  if (has_upsert == has_delete) {
    std::fprintf(stderr,
                 "fesia_cli: mutate needs exactly one of --upsert DOC or "
                 "--delete DOC\n");
    return kExitUsage;
  }
  if (has_delete && flags.count("set-terms") != 0) {
    std::fprintf(stderr, "fesia_cli: --set-terms applies only to --upsert\n");
    return kExitUsage;
  }
  uint64_t doc = 0;
  std::vector<uint32_t> set_terms;
  if (!ParseU64Flag(flags, has_upsert ? "upsert" : "delete", 0, &doc) ||
      !ParseU32ListFlag(flags, "set-terms", &set_terms)) {
    return kExitUsage;
  }
  if (doc >= docs) {
    std::fprintf(stderr, "fesia_cli: document %llu out of range [0, %llu)\n",
                 static_cast<unsigned long long>(doc),
                 static_cast<unsigned long long>(docs));
    return kExitUsage;
  }

  fesia::index::InvertedIndex idx = RebuildCorpus(docs, terms, seed);
  std::unique_ptr<fesia::MemoryBudget> budget;
  fesia::shard::ShardedIndexOptions sopts;
  sopts.store_dir = dir;
  sopts.max_generations = keep;
  sopts.replication_factor = replicas;
  sopts.ack_policy = ack;
  if (budget_bytes > 0) {
    budget = std::make_unique<fesia::MemoryBudget>(budget_bytes, nullptr,
                                                   "cli-mutate");
    sopts.budget = budget.get();
    // Backpressure bounds derived from the budget: request an early flush
    // at half the cap, soft-fail (exit 7) at the cap while one is running.
    sopts.mutation_soft_bytes = budget_bytes / 2;
    sopts.mutation_hard_bytes = budget_bytes;
  }
  auto sharded = fesia::shard::ShardedIndex::Create(
      &idx, fesia::shard::ShardMap::Hash(static_cast<uint32_t>(shards)),
      sopts);
  if (!sharded.ok()) return ReportStore(sharded.status());

  // Reload before opening the log: a shard that already merged mutations
  // must resume sequence numbering past the merge point (the truncated
  // WAL alone would restart at 1 and collide with merged records). An
  // empty store (kDataLoss) genuinely starts at zero.
  const uint32_t owner = sharded->shard_map().ShardOf(
      static_cast<uint32_t>(doc));
  Status reloaded = sharded->ReloadShard(owner);
  if (!reloaded.ok() &&
      reloaded.code() != fesia::StatusCode::kDataLoss) {
    return ReportStore(reloaded);
  }
  fesia::store::WalReplayReport wal_report;
  Status opened_log = sharded->OpenMutationLog(owner, &wal_report);
  if (!opened_log.ok()) return ReportStore(opened_log);
  if (!wal_report.clean()) {
    std::fprintf(stderr, "fesia_cli: shard-%02u wal replay repaired: %s\n",
                 owner, wal_report.ToString().c_str());
  }

  uint64_t seq = 0;
  uint32_t routed_shard = 0;
  Status applied =
      has_upsert ? sharded->Upsert(static_cast<uint32_t>(doc), set_terms,
                                   &seq, &routed_shard)
                 : sharded->Delete(static_cast<uint32_t>(doc), &seq,
                                   &routed_shard);
  if (!applied.ok()) return ReportStore(applied);
  if (has_upsert) {
    std::printf("shard-%02u: upsert doc %llu (%zu terms) durable at seq "
                "%llu\n", routed_shard,
                static_cast<unsigned long long>(doc), set_terms.size(),
                static_cast<unsigned long long>(seq));
  } else {
    std::printf("shard-%02u: delete doc %llu durable at seq %llu\n",
                routed_shard, static_cast<unsigned long long>(doc),
                static_cast<unsigned long long>(seq));
  }
  const fesia::store::IndexManager::MutationStats ms =
      sharded->manager(routed_shard)->mutation_stats();
  std::printf("pending in shard-%02u: %zu doc(s), %llu overlay byte(s), "
              "%llu open wal byte(s)\n", routed_shard, ms.pending_docs,
              static_cast<unsigned long long>(ms.pending_bytes),
              static_cast<unsigned long long>(ms.wal_open_bytes));
  if (replicas > 1) {
    fesia::shard::ReplicaSet* rs = sharded->replica_set(routed_shard);
    if (rs != nullptr) {
      std::printf("replication in shard-%02u: %u/%u replica(s) serving, "
                  "acked through seq %llu\n", routed_shard,
                  rs->serving_replicas(), rs->num_replicas(),
                  static_cast<unsigned long long>(rs->last_acked_seq()));
    }
  }
  return kExitOk;
}

int CmdFlush(const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "dir", "");
  uint64_t shards = 0, docs = 0, terms = 0, seed = 0, keep = 0;
  uint64_t budget_bytes = 0;
  uint32_t replicas = 1;
  fesia::shard::AckPolicy ack = fesia::shard::AckPolicy::kAll;
  if (!ParseU64Flag(flags, "shards", 1, &shards) ||
      !ParseU64Flag(flags, "docs", 20000, &docs) ||
      !ParseU64Flag(flags, "terms", 500, &terms) ||
      !ParseU64Flag(flags, "seed", 1, &seed) ||
      !ParseU64Flag(flags, "keep", 3, &keep) ||
      !ParseSizeFlag(flags, "memory-budget", 0, &budget_bytes) ||
      !ParseTopologyFlags(flags, &replicas, &ack)) {
    return kExitUsage;
  }
  if (dir.empty()) return Usage();
  if (shards == 0 || shards > 256 || docs == 0 || terms == 0 || keep == 0) {
    std::fprintf(stderr, "fesia_cli: --shards must be in [1, 256]; --docs, "
                 "--terms, and --keep must be positive\n");
    return kExitUsage;
  }

  fesia::index::InvertedIndex idx = RebuildCorpus(docs, terms, seed);
  std::unique_ptr<fesia::MemoryBudget> budget;
  fesia::shard::ShardedIndexOptions sopts;
  sopts.store_dir = dir;
  sopts.max_generations = keep;
  sopts.replication_factor = replicas;
  sopts.ack_policy = ack;
  if (budget_bytes > 0) {
    budget = std::make_unique<fesia::MemoryBudget>(budget_bytes, nullptr,
                                                   "cli-flush");
    sopts.budget = budget.get();
  }
  auto sharded = fesia::shard::ShardedIndex::Create(
      &idx, fesia::shard::ShardMap::Hash(static_cast<uint32_t>(shards)),
      sopts);
  if (!sharded.ok()) return ReportStore(sharded.status());

  // Per-shard merges are independent: one failing shard degrades the exit
  // code but never blocks the others.
  int worst = kExitOk;
  size_t merged_total = 0;
  for (uint32_t s = 0; s < sharded->num_shards(); ++s) {
    Status serving = sharded->ReloadShard(s);
    if (!serving.ok() &&
        serving.code() == fesia::StatusCode::kDataLoss) {
      // No generation to serve from: merge over the freshly built corpus
      // base instead (the WAL still replays in full).
      serving = sharded->RebuildShard(s);
    }
    if (!serving.ok()) {
      std::fprintf(stderr, "fesia_cli: shard-%02u: %s\n", s,
                   serving.ToString().c_str());
      worst = std::max(worst, StoreExitCode(serving));
      continue;
    }
    fesia::store::WalReplayReport wal_report;
    Status opened_log = sharded->OpenMutationLog(s, &wal_report);
    if (!opened_log.ok()) {
      std::fprintf(stderr, "fesia_cli: shard-%02u: %s\n", s,
                   opened_log.ToString().c_str());
      worst = std::max(worst, StoreExitCode(opened_log));
      continue;
    }
    if (!wal_report.clean()) {
      std::fprintf(stderr, "fesia_cli: shard-%02u wal replay repaired: %s\n",
                   s, wal_report.ToString().c_str());
    }
    const size_t pending = sharded->manager(s)->pending_mutations();
    const uint64_t pending_bytes = sharded->manager(s)->pending_bytes();
    if (pending == 0) {
      std::printf("{\"event\":\"flush\",\"shard\":%u,\"pending_docs\":0,"
                  "\"pending_bytes\":0,\"merged\":false}\n", s);
      continue;
    }
    uint64_t generation = 0;
    Status flushed = sharded->FlushShard(s, &generation);
    if (!flushed.ok()) {
      std::fprintf(stderr, "fesia_cli: shard-%02u: %s\n", s,
                   flushed.ToString().c_str());
      worst = std::max(worst, StoreExitCode(flushed));
      continue;
    }
    std::printf("{\"event\":\"flush\",\"shard\":%u,\"pending_docs\":%llu,"
                "\"pending_bytes\":%llu,\"merged\":true,"
                "\"generation\":%llu}\n",
                s, static_cast<unsigned long long>(pending),
                static_cast<unsigned long long>(pending_bytes),
                static_cast<unsigned long long>(generation));
    merged_total += pending;
  }
  std::printf("flushed %zu mutation(s) across %u shard(s) in %s\n",
              merged_total, sharded->num_shards(), dir.c_str());
  return worst;
}

// Recovery reporting is machine-readable: one JSON object per line
// ({"event":"quarantined"|"resumed"|"store",...}), so operators can
// stream `snapshot recover` into jq or a log pipeline. Human-oriented
// errors stay on stderr.
void PrintRecoveryEventsJson(const fesia::store::RecoveryReport& report,
                             const std::string& dir, int shard, int replica) {
  // The store path goes through JsonQuote: a dir containing `"`, `\`, or
  // non-ASCII bytes must still emit one valid JSON object per line.
  // `dir` is always the LAST field: cli_errors.cmake pins the line shapes
  // by prefix ({"event":"store","shard":1,"ok":true...), and the quoted
  // path is the one variable-width field.
  const std::string dir_json = fesia::JsonQuote(dir);
  auto common_fields = [&] {
    if (shard >= 0) std::printf(",\"shard\":%d", shard);
    if (replica >= 0) std::printf(",\"replica\":%d", replica);
  };
  for (uint64_t g : report.quarantined) {
    std::printf("{\"event\":\"quarantined\"");
    common_fields();
    std::printf(",\"generation\":%llu,\"dir\":%s}\n",
                static_cast<unsigned long long>(g), dir_json.c_str());
  }
  std::printf("{\"event\":\"resumed\"");
  common_fields();
  std::printf(",\"generation\":%llu,\"manifest_missing\":%s,"
              "\"manifest_corrupt\":%s,\"temp_files_removed\":%llu,"
              "\"missing_files\":%llu,\"clean\":%s,\"dir\":%s}\n",
              static_cast<unsigned long long>(report.recovered_generation),
              report.manifest_missing ? "true" : "false",
              report.manifest_corrupt ? "true" : "false",
              static_cast<unsigned long long>(report.temp_files_removed),
              static_cast<unsigned long long>(report.missing_files),
              report.clean() ? "true" : "false", dir_json.c_str());
}

// Opens (and recovers) one store, emitting its JSON event lines; `shard`
// >= 0 tags every line with the shard id, `replica` >= 0 with the replica
// id (replicated layouts only). Returns the store's exit code.
int RecoverOneStore(const std::string& dir, uint64_t keep, int shard,
                    int replica = -1) {
  fesia::store::SnapshotStoreOptions opts;
  opts.dir = dir;
  opts.max_generations = keep;
  fesia::store::RecoveryReport report;
  auto opened = fesia::store::SnapshotStore::Open(opts, &report);
  PrintRecoveryEventsJson(report, dir, shard, replica);
  const std::string dir_json = fesia::JsonQuote(dir);
  std::printf("{\"event\":\"store\"");
  if (shard >= 0) std::printf(",\"shard\":%d", shard);
  if (replica >= 0) std::printf(",\"replica\":%d", replica);
  int code = kExitOk;
  if (opened.ok()) {
    std::printf(",\"ok\":true,\"generations\":%llu,\"current\":%llu,"
                "\"dir\":%s}\n",
                static_cast<unsigned long long>(opened->num_generations()),
                static_cast<unsigned long long>(
                    opened->current_generation()),
                dir_json.c_str());
  } else {
    std::printf(",\"ok\":false,\"code\":%s,\"dir\":%s}\n",
                fesia::JsonQuote(
                    fesia::StatusCodeName(opened.status().code())).c_str(),
                dir_json.c_str());
    std::fprintf(stderr, "fesia_cli: %s\n",
                 opened.status().ToString().c_str());
    code = StoreExitCode(opened.status());
  }

  // Replay the store's write-ahead log as its own event: a torn tail is
  // truncated with the suspect bytes quarantined beside the segments.
  // Opening is lazy, so a store that never took mutations reports zero
  // segments without any file being created.
  fesia::store::WalReplayReport wal;
  auto log = fesia::store::WriteAheadLog::Open(dir, nullptr, &wal);
  std::printf("{\"event\":\"wal\"");
  if (shard >= 0) std::printf(",\"shard\":%d", shard);
  if (replica >= 0) std::printf(",\"replica\":%d", replica);
  if (log.ok()) {
    std::printf(",\"ok\":true,\"segments\":%llu,\"records\":%llu,"
                "\"last_seq\":%llu,\"replayed_bytes\":%llu,"
                "\"open_bytes\":%llu,\"torn_tail_bytes\":%llu,"
                "\"quarantined_segments\":%llu,\"clean\":%s,\"dir\":%s}\n",
                static_cast<unsigned long long>(wal.segments),
                static_cast<unsigned long long>(wal.records),
                static_cast<unsigned long long>(wal.last_seq),
                static_cast<unsigned long long>(wal.replayed_bytes),
                static_cast<unsigned long long>(log->open_bytes()),
                static_cast<unsigned long long>(wal.torn_tail_bytes),
                static_cast<unsigned long long>(wal.quarantined_segments),
                wal.clean() ? "true" : "false", dir_json.c_str());
  } else {
    std::printf(",\"ok\":false,\"code\":%s,\"dir\":%s}\n",
                fesia::JsonQuote(
                    fesia::StatusCodeName(log.status().code())).c_str(),
                dir_json.c_str());
    std::fprintf(stderr, "fesia_cli: %s\n",
                 log.status().ToString().c_str());
    code = std::max(code, kExitIo);
  }
  return code;
}

int CmdSnapshot(const std::string& sub,
                const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "dir", "");
  if (dir.empty()) return Usage();
  uint64_t keep = 0, shards = 0, replicas = 1;
  if (!ParseU64Flag(flags, "keep", 3, &keep) ||
      !ParseU64Flag(flags, "shards", 0, &shards) ||
      !ParseU64Flag(flags, "replicas", 1, &replicas)) {
    return kExitUsage;
  }
  if (keep == 0) {
    std::fprintf(stderr, "fesia_cli: --keep must be positive\n");
    return kExitUsage;
  }
  if ((shards > 0 || replicas > 1) && sub != "recover") {
    std::fprintf(stderr, "fesia_cli: --shards and --replicas apply only to "
                 "snapshot recover\n");
    return kExitUsage;
  }
  if (shards > 256) {
    std::fprintf(stderr, "fesia_cli: --shards must be at most 256\n");
    return kExitUsage;
  }
  if (replicas == 0 || replicas > 8) {
    std::fprintf(stderr, "fesia_cli: --replicas must be in [1, 8]\n");
    return kExitUsage;
  }
  if (replicas > 1 && shards == 0) {
    std::fprintf(stderr, "fesia_cli: --replicas requires --shards (the "
                 "replicated layout is DIR/shard-NN/replica-MM)\n");
    return kExitUsage;
  }
  if (sub == "recover") {
    if (shards == 0) return RecoverOneStore(dir, keep, /*shard=*/-1);
    // Sharded layout: recover every DIR/shard-NN store (or, replicated,
    // every DIR/shard-NN/replica-MM store) independently and report the
    // worst exit code, so one dead store is visible without hiding the
    // healthy ones.
    int worst = kExitOk;
    for (uint64_t s = 0; s < shards; ++s) {
      char sub_dir[32];
      std::snprintf(sub_dir, sizeof(sub_dir), "shard-%02llu",
                    static_cast<unsigned long long>(s));
      if (replicas == 1) {
        worst = std::max(worst, RecoverOneStore(dir + "/" + sub_dir, keep,
                                                static_cast<int>(s)));
        continue;
      }
      for (uint64_t r = 0; r < replicas; ++r) {
        char rep_dir[32];
        std::snprintf(rep_dir, sizeof(rep_dir), "replica-%02llu",
                      static_cast<unsigned long long>(r));
        worst = std::max(
            worst, RecoverOneStore(dir + "/" + sub_dir + "/" + rep_dir, keep,
                                   static_cast<int>(s), static_cast<int>(r)));
      }
    }
    return worst;
  }

  fesia::store::SnapshotStoreOptions opts;
  opts.dir = dir;
  opts.max_generations = keep;
  auto opened = fesia::store::SnapshotStore::Open(opts);
  if (!opened.ok()) return ReportStore(opened.status());
  fesia::store::SnapshotStore& snapshots = *opened;

  if (sub == "save") {
    std::string in = FlagOr(flags, "in", "");
    if (in.empty()) return Usage();
    std::vector<uint8_t> payload;
    Status s = fesia::ReadFileBytes(in, &payload);
    if (!s.ok()) return ReportIo(s);
    uint64_t generation = 0;
    s = snapshots.Save(payload, /*format_version=*/0, &generation);
    if (!s.ok()) return ReportStore(s);
    std::printf("saved generation %llu (%zu bytes) to %s\n",
                static_cast<unsigned long long>(generation), payload.size(),
                dir.c_str());
    return kExitOk;
  }
  if (sub == "load") {
    std::string out = FlagOr(flags, "out", "");
    if (out.empty()) return Usage();
    uint64_t generation = 0;
    auto payload = snapshots.ReadCurrent(&generation);
    if (!payload.ok()) return ReportStore(payload.status());
    Status s = fesia::AtomicWriteFileBytes(out, payload->data(),
                                           payload->size());
    if (!s.ok()) return ReportIo(s);
    std::printf("loaded generation %llu (%zu bytes) into %s\n",
                static_cast<unsigned long long>(generation),
                payload->size(), out.c_str());
    return kExitOk;
  }
  std::fprintf(stderr, "fesia_cli: unknown snapshot subcommand \"%s\"\n",
               sub.c_str());
  return Usage();
}

}  // namespace

volatile std::sig_atomic_t g_serve_stop = 0;

void HandleServeSignal(int) { g_serve_stop = 1; }

// The network front door (docs/ROBUSTNESS.md, "Network front door"):
// builds or reloads a sharded index, then serves batch count/query over
// TCP until stdin closes or a signal arrives. Bind failure is exit 8 so
// scripts can tell "port taken" from "store broken".
int CmdServe(const std::map<std::string, std::string>& flags) {
  std::string dir = FlagOr(flags, "dir", "");
  std::string bind = FlagOr(flags, "bind", "127.0.0.1");
  uint64_t port = 0, shards = 0, docs = 0, terms = 0, seed = 0, keep = 0;
  uint64_t workers = 0, max_conns = 0, max_line = 0, threads = 0;
  uint64_t capacity = 0, budget_bytes = 0, cache_bytes = 0;
  int retries = 0;
  double max_deadline_ms = 0;
  uint32_t replicas = 1;
  fesia::shard::AckPolicy ack = fesia::shard::AckPolicy::kAll;
  if (!ParseU64Flag(flags, "port", 0, &port) ||
      !ParseU64Flag(flags, "shards", 1, &shards) ||
      !ParseU64Flag(flags, "docs", 20000, &docs) ||
      !ParseU64Flag(flags, "terms", 500, &terms) ||
      !ParseU64Flag(flags, "seed", 1, &seed) ||
      !ParseU64Flag(flags, "keep", 3, &keep) ||
      !ParseU64Flag(flags, "workers", 4, &workers) ||
      !ParseU64Flag(flags, "max-connections", 1024, &max_conns) ||
      !ParseSizeFlag(flags, "max-line-bytes", 1u << 20, &max_line) ||
      !ParseU64Flag(flags, "threads", 0, &threads) ||
      !ParseU64Flag(flags, "capacity", 0, &capacity) ||
      !ParseIntFlag(flags, "retries", 1, &retries) ||
      !ParseSizeFlag(flags, "memory-budget", 0, &budget_bytes) ||
      !ParseSizeFlag(flags, "cache-bytes", 64u << 20, &cache_bytes) ||
      !ParseDoubleFlag(flags, "max-deadline-ms", 60000, &max_deadline_ms) ||
      !ParseTopologyFlags(flags, &replicas, &ack)) {
    return kExitUsage;
  }
  if (port > 65535) {
    std::fprintf(stderr, "fesia_cli: --port must be in [0, 65535]\n");
    return kExitUsage;
  }
  if (shards == 0 || shards > 256 || docs == 0 || terms == 0 || keep == 0 ||
      workers == 0 || max_conns == 0 || max_line == 0 || retries <= 0 ||
      max_deadline_ms < 0) {
    std::fprintf(stderr, "fesia_cli: --shards must be in [1, 256]; --docs, "
                 "--terms, --keep, --workers, --max-connections, "
                 "--max-line-bytes, and --retries must be positive\n");
    return kExitUsage;
  }

  fesia::index::InvertedIndex idx = RebuildCorpus(docs, terms, seed);
  std::unique_ptr<fesia::MemoryBudget> budget;
  fesia::shard::ShardedIndexOptions sopts;
  if (budget_bytes > 0) {
    budget = std::make_unique<fesia::MemoryBudget>(budget_bytes, nullptr,
                                                   "cli-serve");
    sopts.budget = budget.get();
  }
  if (!dir.empty()) {
    sopts.store_dir = dir;
    sopts.max_generations = keep;
    sopts.replication_factor = replicas;
    sopts.ack_policy = ack;
  }
  auto sharded = fesia::shard::ShardedIndex::Create(
      &idx, fesia::shard::ShardMap::Hash(static_cast<uint32_t>(shards)),
      sopts);
  if (!sharded.ok()) return ReportStore(sharded.status());

  if (dir.empty()) {
    Status built = sharded->RebuildAll();
    if (!built.ok()) return ReportStore(built);
  } else {
    // Serve what `build` persisted; a shard whose store is still empty
    // (kDataLoss) is rebuilt from the corpus instead of failing startup.
    for (uint32_t s = 0; s < sharded->num_shards(); ++s) {
      Status reloaded = sharded->ReloadShard(s);
      if (reloaded.ok()) continue;
      if (reloaded.code() != fesia::StatusCode::kDataLoss) {
        return ReportStore(reloaded);
      }
      Status rebuilt = sharded->RebuildShard(s);
      if (!rebuilt.ok()) return ReportStore(rebuilt);
    }
    // Replay pending WALs so mutations appended since the last flush are
    // visible to queries.
    Status logs = sharded->OpenMutationLogs();
    if (!logs.ok()) return ReportStore(logs);
  }

  fesia::serve::RouterBackend::Options bopts;
  bopts.num_threads = threads;
  bopts.admission_capacity = capacity;
  bopts.retry.max_attempts = retries;
  bopts.budget = budget.get();
  fesia::serve::RouterBackend backend(&*sharded, bopts);

  std::unique_ptr<fesia::serve::ResultCache> cache;
  if (cache_bytes > 0) {
    fesia::serve::ResultCache::Options copts;
    copts.max_bytes = cache_bytes;
    copts.budget = budget.get();
    cache = std::make_unique<fesia::serve::ResultCache>(copts);
  }

  fesia::serve::ServerOptions server_opts;
  server_opts.bind_address = bind;
  server_opts.port = static_cast<uint16_t>(port);
  server_opts.num_workers = workers;
  server_opts.max_connections = max_conns;
  server_opts.max_line_bytes = max_line;
  server_opts.max_deadline_seconds = max_deadline_ms / 1000.0;
  server_opts.budget = budget.get();
  server_opts.cache = cache.get();
  fesia::serve::Server server(&backend, server_opts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "fesia_cli: %s\n", started.ToString().c_str());
    return kExitBind;
  }

  // Machine-readable readiness line: harnesses parse the ephemeral port
  // from here. Flushed so a pipe reader sees it immediately.
  std::printf("{\"event\":\"serving\",\"port\":%u,\"bind\":%s,"
              "\"shards\":%u,\"workers\":%llu,\"cache_bytes\":%llu}\n",
              server.port(), fesia::JsonQuote(bind).c_str(),
              sharded->num_shards(),
              static_cast<unsigned long long>(workers),
              static_cast<unsigned long long>(cache_bytes));
  std::fflush(stdout);

  g_serve_stop = 0;
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  std::signal(SIGPIPE, SIG_IGN);
  // Park until the operator says stop: stdin EOF (pipe harnesses) or a
  // signal (interactive ^C / service managers).
  while (g_serve_stop == 0) {
    pollfd pfd{};
    pfd.fd = 0;
    pfd.events = POLLIN;
    const int n = ::poll(&pfd, 1, 200);
    if (n < 0 && errno != EINTR) break;
    if (n > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
      char buf[4096];
      const ssize_t r = ::read(0, buf, sizeof(buf));
      if (r <= 0) break;  // EOF: shut down
    }
  }

  server.Shutdown();
  const fesia::serve::ServerStatsSnapshot stats = server.stats();
  std::printf("{\"event\":\"served\",\"connections\":%llu,"
              "\"requests\":%llu,\"responses\":%llu,\"parse_errors\":%llu,"
              "\"oversized_lines\":%llu,\"budget_refusals\":%llu,"
              "\"cancelled_inflight\":%llu,\"cache_hits\":%llu,"
              "\"cache_misses\":%llu,\"bytes_in\":%llu,"
              "\"bytes_out\":%llu}\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.responses),
              static_cast<unsigned long long>(stats.parse_errors),
              static_cast<unsigned long long>(stats.oversized_lines),
              static_cast<unsigned long long>(stats.budget_refusals),
              static_cast<unsigned long long>(stats.cancelled_inflight),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.bytes_in),
              static_cast<unsigned long long>(stats.bytes_out));
  return kExitOk;
}

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "generate-pair") return CmdGeneratePair(flags);
  if (cmd == "encode") return CmdEncode(flags);
  if (cmd == "intersect") return CmdIntersect(flags);
  if (cmd == "info") return CmdInfo(flags);
  if (cmd == "batch") return CmdBatch(flags);
  if (cmd == "build") return CmdBuild(flags);
  if (cmd == "mutate") return CmdMutate(flags);
  if (cmd == "flush") return CmdFlush(flags);
  if (cmd == "serve") return CmdServe(flags);
  if (cmd == "snapshot") {
    if (argc < 3) return Usage();
    return CmdSnapshot(argv[2], ParseFlags(argc, argv, 3));
  }
  std::fprintf(stderr, "fesia_cli: unknown command \"%s\"\n", cmd.c_str());
  return Usage();
}
