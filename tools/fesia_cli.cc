// fesia_cli — command-line front end to the FESIA library.
//
// Subcommands:
//   generate   write a synthetic sorted set (or pair) to disk
//   encode     build a FesiaSet from a raw set file and serialize it
//   intersect  intersect two set files with any method in the registry
//   info       print the structural statistics of a set file
//
// Set files hold raw little-endian uint32 values ("raw" format) or a
// serialized FesiaSet ("fesia" format, magic-tagged; auto-detected).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "util/cpu.h"
#include "util/timer.h"

namespace {

using fesia::FesiaParams;
using fesia::FesiaSet;
using fesia::SimdLevel;

int Usage() {
  std::fprintf(stderr, R"(usage: fesia_cli <command> [options]

commands:
  generate --n N [--universe U] [--seed S] --out FILE
      write a sorted duplicate-free uniform set of N uint32 keys
  generate-pair --n1 N --n2 N --selectivity S [--seed S] --out-a F --out-b F
      write a pair with an exact intersection size
  encode --in FILE --out FILE [--segment-bits 8|16|32] [--stride 1|2|4|8]
      build a FesiaSet from a raw set file and serialize it
  intersect --a FILE --b FILE [--method M] [--level L] [--reps R]
      intersect two files; M is fesia|fesia-hash|fesia-auto or a baseline
      (Scalar, ScalarGalloping, Shuffling, BMiss, SIMDGalloping, Hash);
      L is scalar|sse|avx2|avx512|auto
  info --in FILE
      structural statistics of a raw or encoded set file
)");
  return 2;
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    flags[key.substr(2)] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& def) {
  auto it = flags.find(key);
  return it == flags.end() ? def : it->second;
}

bool WriteFile(const std::string& path, const void* data, size_t bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  return out.good();
}

bool ReadFile(const std::string& path, std::vector<uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::streamsize size = in.tellg();
  in.seekg(0);
  bytes->resize(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes->data()), size);
  return in.good();
}

// Loads either a serialized FesiaSet or a raw uint32 file (re-encoding it
// with default parameters). Returns false on error.
bool LoadAsFesia(const std::string& path, FesiaSet* set,
                 std::vector<uint32_t>* raw) {
  std::vector<uint8_t> bytes;
  if (!ReadFile(path, &bytes)) return false;
  if (FesiaSet::Deserialize(bytes, set)) {
    *raw = set->ToSortedVector();
    return true;
  }
  if (bytes.size() % 4 != 0) {
    std::fprintf(stderr, "%s: not a FesiaSet and size %% 4 != 0\n",
                 path.c_str());
    return false;
  }
  raw->resize(bytes.size() / 4);
  std::memcpy(raw->data(), bytes.data(), bytes.size());
  *set = FesiaSet::Build(*raw);
  return true;
}

SimdLevel ParseLevel(const std::string& s) {
  if (s == "scalar") return SimdLevel::kScalar;
  if (s == "sse") return SimdLevel::kSse;
  if (s == "avx2") return SimdLevel::kAvx2;
  if (s == "avx512") return SimdLevel::kAvx512;
  return SimdLevel::kAuto;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  size_t n = std::stoull(FlagOr(flags, "n", "0"));
  uint64_t universe = std::stoull(FlagOr(flags, "universe", "0"));
  if (universe == 0) universe = 16 * n + 64;
  uint64_t seed = std::stoull(FlagOr(flags, "seed", "1"));
  std::string out = FlagOr(flags, "out", "");
  if (n == 0 || out.empty()) return Usage();
  std::vector<uint32_t> v = fesia::datagen::SortedUniform(n, universe, seed);
  if (!WriteFile(out, v.data(), v.size() * 4)) return 1;
  std::printf("wrote %zu keys to %s\n", v.size(), out.c_str());
  return 0;
}

int CmdGeneratePair(const std::map<std::string, std::string>& flags) {
  size_t n1 = std::stoull(FlagOr(flags, "n1", "0"));
  size_t n2 = std::stoull(FlagOr(flags, "n2", "0"));
  double sel = std::stod(FlagOr(flags, "selectivity", "0.1"));
  uint64_t seed = std::stoull(FlagOr(flags, "seed", "1"));
  std::string out_a = FlagOr(flags, "out-a", "");
  std::string out_b = FlagOr(flags, "out-b", "");
  if (n1 == 0 || n2 == 0 || out_a.empty() || out_b.empty()) return Usage();
  auto pair = fesia::datagen::PairWithSelectivity(n1, n2, sel, seed);
  if (!WriteFile(out_a, pair.a.data(), pair.a.size() * 4)) return 1;
  if (!WriteFile(out_b, pair.b.data(), pair.b.size() * 4)) return 1;
  std::printf("wrote %zu + %zu keys, |A ∩ B| = %zu\n", pair.a.size(),
              pair.b.size(), pair.intersection_size);
  return 0;
}

int CmdEncode(const std::map<std::string, std::string>& flags) {
  std::string in = FlagOr(flags, "in", "");
  std::string out = FlagOr(flags, "out", "");
  if (in.empty() || out.empty()) return Usage();
  std::vector<uint8_t> bytes;
  if (!ReadFile(in, &bytes) || bytes.size() % 4 != 0) return 1;
  std::vector<uint32_t> raw(bytes.size() / 4);
  std::memcpy(raw.data(), bytes.data(), bytes.size());
  FesiaParams params;
  params.segment_bits = std::stoi(FlagOr(flags, "segment-bits", "16"));
  params.kernel_stride = std::stoi(FlagOr(flags, "stride", "1"));
  fesia::WallTimer timer;
  FesiaSet set = FesiaSet::Build(raw, params);
  double build_s = timer.Seconds();
  std::vector<uint8_t> blob = set.Serialize();
  if (!WriteFile(out, blob.data(), blob.size())) return 1;
  std::printf(
      "encoded %u keys in %.3f s: m = %u bits, %u segments, %zu bytes\n",
      set.size(), build_s, set.bitmap_bits(), set.num_segments(),
      blob.size());
  return 0;
}

int CmdIntersect(const std::map<std::string, std::string>& flags) {
  std::string file_a = FlagOr(flags, "a", "");
  std::string file_b = FlagOr(flags, "b", "");
  if (file_a.empty() || file_b.empty()) return Usage();
  std::string method = FlagOr(flags, "method", "fesia");
  SimdLevel level = ParseLevel(FlagOr(flags, "level", "auto"));
  int reps = std::stoi(FlagOr(flags, "reps", "5"));

  FesiaSet fa, fb;
  std::vector<uint32_t> raw_a, raw_b;
  if (!LoadAsFesia(file_a, &fa, &raw_a)) return 1;
  if (!LoadAsFesia(file_b, &fb, &raw_b)) return 1;

  size_t result = 0;
  double best_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    fesia::WallTimer timer;
    if (method == "fesia") {
      result = fesia::IntersectCount(fa, fb, level);
    } else if (method == "fesia-hash") {
      result = fesia::IntersectCountHash(fa, fb, level);
    } else if (method == "fesia-auto") {
      result = fesia::IntersectCountAuto(fa, fb, level);
    } else {
      const auto* m = fesia::baselines::FindBaseline(method);
      if (m == nullptr) {
        std::fprintf(stderr, "unknown method %s\n", method.c_str());
        return 2;
      }
      result = m->fn(raw_a.data(), raw_a.size(), raw_b.data(), raw_b.size());
    }
    best_ms = std::min(best_ms, timer.Millis());
  }
  std::printf("|A| = %zu, |B| = %zu, |A ∩ B| = %zu, method = %s, "
              "best of %d: %.3f ms\n",
              raw_a.size(), raw_b.size(), result, method.c_str(), reps,
              best_ms);
  return 0;
}

int CmdInfo(const std::map<std::string, std::string>& flags) {
  std::string in = FlagOr(flags, "in", "");
  if (in.empty()) return Usage();
  FesiaSet set;
  std::vector<uint32_t> raw;
  if (!LoadAsFesia(in, &set, &raw)) return 1;
  FesiaSet::Stats st = set.ComputeStats();
  std::printf("keys:              %u\n", set.size());
  std::printf("bitmap bits (m):   %u\n", set.bitmap_bits());
  std::printf("segment bits (s):  %d\n", set.segment_bits());
  std::printf("segments:          %u (%u non-empty)\n", set.num_segments(),
              st.nonempty_segments);
  std::printf("max segment size:  %u\n", st.max_segment_size);
  std::printf("kernel stride:     %d (%u padding slots)\n",
              set.kernel_stride(), st.padded_elements);
  std::printf("memory:            %zu bytes\n", st.memory_bytes);
  std::printf("host SIMD:         %s\n",
              fesia::SimdLevelName(fesia::DetectSimdLevel()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "generate-pair") return CmdGeneratePair(flags);
  if (cmd == "encode") return CmdEncode(flags);
  if (cmd == "intersect") return CmdIntersect(flags);
  if (cmd == "info") return CmdInfo(flags);
  return Usage();
}
