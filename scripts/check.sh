#!/usr/bin/env bash
# Robustness gate: build and run the full test suite under ASan, UBSan and
# TSan in addition to the plain release build. Every fault-injection and
# corruption test must pass with zero sanitizer reports; TSan race-checks
# the shared-pool executor and the parallel intersection/batch-query paths.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

for preset in default asan ubsan tsan; do
  echo "=== [$preset] configure + build ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset" -j "$jobs"
done

echo "All presets passed."
