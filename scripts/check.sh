#!/usr/bin/env bash
# Robustness gate: build and run the full test suite under ASan, UBSan and
# TSan in addition to the plain release build. Every fault-injection and
# corruption test must pass with zero sanitizer reports; TSan race-checks
# the shared-pool executor and the parallel intersection/batch-query paths.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

for preset in default asan ubsan tsan; do
  echo "=== [$preset] configure + build ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset" -j "$jobs"
  # The deadline-storm stress suite is excluded from tier-1 ctest (label
  # "stress", DISABLED) because its runtime is load-dependent; run the
  # binary directly with a hard wall-clock cap instead. TSan is its
  # primary habitat: it races cancellation, admission, and retry state
  # across the shared pool.
  bindir="build-$preset"
  [ "$preset" = default ] && bindir="build"
  echo "=== [$preset] batch stress (timeout-capped) ==="
  timeout 600 "$bindir/tests/batch_stress_test" \
    || { echo "batch stress failed or timed out under $preset"; exit 1; }
  # Crash-recovery gate: re-run the snapshot-store suite (kill-point save
  # loop, corruption walk-back, hot-swap under traffic) by label so a
  # durability regression is attributable at a glance. Default + ASan
  # cover the write/recover paths; the full TSan ctest above already
  # race-checks the RCU engine swap.
  if [ "$preset" = default ] || [ "$preset" = asan ]; then
    echo "=== [$preset] crash recovery (ctest -L store) ==="
    ctest --preset "$preset" -L store -j "$jobs"
  fi
  # Scatter-gather gate: the sharded-index suite (golden equivalence,
  # quarantine and partial-result semantics, reload storm) by label. TSan
  # is load-bearing here: it races the router's per-batch engine snapshots
  # against concurrent per-shard hot swaps and a forced rollback.
  if [ "$preset" = default ] || [ "$preset" = asan ] || [ "$preset" = tsan ]; then
    echo "=== [$preset] sharded scatter-gather (ctest -L shard) ==="
    ctest --preset "$preset" -L shard -j "$jobs"
  fi
  # Live-mutation gate: the WAL / delta-overlay / merge-recovery suite
  # (torn-tail quarantine, flush kill points, overlay-vs-rebuild oracle)
  # by label. ASan covers the framing and replay buffers; TSan races
  # concurrent mutations and queries against a mid-flight flush.
  if [ "$preset" = default ] || [ "$preset" = asan ] || [ "$preset" = tsan ]; then
    echo "=== [$preset] live mutation (ctest -L mutation) ==="
    ctest --preset "$preset" -L mutation -j "$jobs"
  fi
  # Replication gate: per-shard replica groups (fan-out ack policies,
  # failover/hedged reads, the anti-entropy repair kill-point sweep, cold
  # reopen convergence) by label. ASan covers the snapshot export/import
  # and catch-up buffers; TSan races failover traffic against concurrent
  # replica kills and repairs.
  if [ "$preset" = default ] || [ "$preset" = asan ] || [ "$preset" = tsan ]; then
    echo "=== [$preset] replication (ctest -L replica) ==="
    ctest --preset "$preset" -L replica -j "$jobs"
  fi
  # Resource-governance gate: memory budgets, chunked WAL replay, mutation
  # backpressure, and pressure-aware query degradation by label. ASan
  # covers the replay window and charge-rollback paths; TSan races the
  # hard-cap storm (mutators vs. an in-flight flush) and the concurrent
  # charge/uncharge accounting.
  if [ "$preset" = default ] || [ "$preset" = asan ] || [ "$preset" = tsan ]; then
    echo "=== [$preset] resource governance (ctest -L resource) ==="
    ctest --preset "$preset" -L resource -j "$jobs"
  fi
  # Count-path gate: the fused AND+popcount oracle sweep (byte-identical
  # counts vs. the interleaved pipeline, tiny-small-set wrap cases, range
  # slice sums) by label. ASan is load-bearing for the wrap regressions and
  # the deferred extraction buffer; TSan re-checks the fused parallel and
  # cancellable count routing.
  if [ "$preset" = default ] || [ "$preset" = asan ] || [ "$preset" = tsan ]; then
    echo "=== [$preset] fused count path (ctest -L countpath) ==="
    ctest --preset "$preset" -L countpath -j "$jobs"
  fi
  # Front-door gate: the serve suite (protocol fuzz corpus, result-cache
  # epoch rules, live-socket e2e incl. slowloris/oversize/mid-batch
  # disconnect, the cached-vs-uncached byte-identity oracle) by label.
  # ASan covers the framing and response buffers; TSan is load-bearing for
  # the epoll loop racing workers, shutdown, and hot-swap epoch bumps.
  if [ "$preset" = default ] || [ "$preset" = asan ] || [ "$preset" = tsan ]; then
    echo "=== [$preset] network front door (ctest -L serve) ==="
    ctest --preset "$preset" -L serve -j "$jobs"
  fi
  # Closed-loop socket smoke: drive the server through real loopback
  # connections at quick scale (seconds, not minutes). Default preset only
  # — the sanitizer presets build with FESIA_BUILD_BENCHMARKS=OFF.
  if [ "$preset" = default ]; then
    echo "=== [$preset] serve load smoke (bench_serve, quick scale) ==="
    timeout 300 "$bindir/bench/bench_serve" /tmp/BENCH_serve_smoke.json \
      || { echo "bench_serve smoke failed under $preset"; exit 1; }
  fi
done

echo "All presets passed."
