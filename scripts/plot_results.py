#!/usr/bin/env python3
"""Plot FESIA benchmark output.

Run the benches in CSV mode and feed the files to this script:

    FESIA_TABLE_FORMAT=csv ./build/bench/bench_fig7_varying_size > fig7.csv
    python3 scripts/plot_results.py fig7.csv fig8.csv ...

Each CSV produced by util/table_printer.cc holds one table: an optional
"# title" line, a header row, then data rows whose first column is the
x-axis label. Numeric columns become one line series each ("3.42x" speedup
suffixes are stripped). One PNG is written next to each input file.

matplotlib is optional; without it the script prints the parsed series so
the data is still usable.
"""

import csv
import pathlib
import re
import sys


def parse_table(path):
    title = pathlib.Path(path).stem
    header, rows = None, []
    with open(path, newline="", encoding="utf-8") as fh:
        for record in csv.reader(
            line for line in fh if not line.startswith("====")
        ):
            if not record:
                continue
            if record[0].startswith("#"):
                title = record[0].lstrip("# ").strip()
                continue
            if header is None:
                header = record
            else:
                rows.append(record)
    return title, header, rows


def to_number(cell):
    match = re.fullmatch(r"(-?[0-9.]+)x?%?", cell.strip())
    return float(match.group(1)) if match else None


def series_from(header, rows):
    xs = [row[0] for row in rows]
    series = {}
    for col in range(1, len(header)):
        values = [to_number(row[col]) if col < len(row) else None
                  for row in rows]
        if all(v is not None for v in values):
            series[header[col]] = values
    return xs, series


def main(paths):
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib not available; printing parsed series instead")

    for path in paths:
        title, header, rows = parse_table(path)
        if not header or not rows:
            print(f"{path}: no table found, skipping")
            continue
        xs, series = series_from(header, rows)
        if not series:
            print(f"{path}: no numeric columns, skipping")
            continue
        if plt is None:
            print(f"== {title} ==")
            print("x:", xs)
            for name, values in series.items():
                print(f"{name}: {values}")
            continue
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for name, values in series.items():
            ax.plot(range(len(xs)), values, marker="o", label=name)
        ax.set_xticks(range(len(xs)))
        ax.set_xticklabels(xs, rotation=30, ha="right")
        ax.set_title(title)
        ax.set_xlabel(header[0])
        ax.legend(fontsize=8)
        ax.grid(True, alpha=0.3)
        out = pathlib.Path(path).with_suffix(".png")
        fig.tight_layout()
        fig.savefig(out, dpi=130)
        print(f"wrote {out}")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    main(sys.argv[1:])
