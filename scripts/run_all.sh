#!/usr/bin/env bash
# Full verification sweep: build, tests, every benchmark.
# Produces test_output.txt and bench_output.txt at the repo root.
set -u
cd "$(dirname "$0")/.."
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt
