#include "shard/replica_set.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/check.h"
#include "util/fault_injection.h"

namespace fesia::shard {
namespace {

std::string ReplicaDirName(uint32_t replica) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "replica-%02u", replica);
  return buf;
}

}  // namespace

void ReplicaSet::SetQuarantined(Replica& rep, bool q) {
  if (rep.quarantined.exchange(q, std::memory_order_relaxed) != q) {
    topology_epoch_.fetch_add(1, std::memory_order_release);
  }
}

uint64_t ReplicaSet::content_epoch() const {
  uint64_t epoch = topology_epoch_.load(std::memory_order_acquire);
  for (const auto& rep : replicas_) {
    if (rep->manager != nullptr) epoch += rep->manager->content_epoch();
  }
  return epoch;
}

StatusOr<std::unique_ptr<ReplicaSet>> ReplicaSet::Open(
    const index::InvertedIndex* idx, const ReplicaSetOptions& options) {
  FESIA_CHECK(idx != nullptr);
  FESIA_CHECK(options.replication_factor >= 1);
  FESIA_CHECK(!options.dir.empty());

  auto set = std::unique_ptr<ReplicaSet>(new ReplicaSet());
  set->idx_ = idx;
  set->options_ = options;

  size_t usable = 0;
  Status first_error;
  for (uint32_t r = 0; r < options.replication_factor; ++r) {
    auto replica = std::make_unique<Replica>();
    store::SnapshotStoreOptions store_opts;
    // Factor 1 keeps the store directly in the shard directory so
    // unreplicated stores reopen byte-identically.
    store_opts.dir = options.replication_factor == 1
                         ? options.dir
                         : options.dir + "/" + ReplicaDirName(r);
    store_opts.max_generations = options.max_generations;
    auto opened = store::SnapshotStore::Open(store_opts);
    if (!opened.ok()) {
      replica->SetStatus(opened.status());
      set->SetQuarantined(*replica, true);
      if (first_error.ok()) first_error = opened.status();
      set->replicas_.push_back(std::move(replica));
      continue;
    }
    replica->store =
        std::make_unique<store::SnapshotStore>(*std::move(opened));
    store::IndexManager::Options mgr_opts;
    mgr_opts.params = options.params;
    mgr_opts.format_version = options.format_version;
    mgr_opts.budget = options.budget;
    mgr_opts.mutation_soft_bytes = options.mutation_soft_bytes;
    mgr_opts.mutation_hard_bytes = options.mutation_hard_bytes;
    replica->manager = std::make_unique<store::IndexManager>(
        idx, replica->store.get(), mgr_opts);
    set->replicas_.push_back(std::move(replica));
    ++usable;
  }
  if (usable == 0) {
    return first_error.ok()
               ? Status::IoError("no replica store could be opened")
               : first_error;
  }
  return set;
}

ReplicaSet::~ReplicaSet() { StopRepair(); }

store::IndexManager* ReplicaSet::manager(uint32_t replica) const {
  FESIA_CHECK(replica < replicas_.size());
  return replicas_[replica]->manager.get();
}

store::SnapshotStore* ReplicaSet::store(uint32_t replica) const {
  FESIA_CHECK(replica < replicas_.size());
  return replicas_[replica]->store.get();
}

Status ReplicaSet::Rebuild() {
  Status first_error;
  for (auto& rep : replicas_) {
    if (rep->manager == nullptr) continue;
    Status st = rep->manager->Rebuild();
    rep->SetStatus(st);
    if (st.ok()) {
      SetQuarantined(*rep, false);
    } else if (first_error.ok()) {
      first_error = st;
    }
  }
  return first_error;
}

Status ReplicaSet::Save() {
  Status first_error;
  for (auto& rep : replicas_) {
    if (rep->manager == nullptr) continue;
    Status st = rep->manager->SaveSnapshot();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status ReplicaSet::Reload() {
  Status first_error;
  for (auto& rep : replicas_) {
    if (rep->manager == nullptr) continue;
    Status st = rep->manager->Reload();
    rep->SetStatus(st);
    if (st.ok()) {
      SetQuarantined(*rep, false);
    } else if (first_error.ok()) {
      first_error = st;
    }
  }
  return first_error;
}

Status ReplicaSet::OpenMutationLogs(store::WalReplayReport* report) {
  Status first_error;
  store::WalReplayReport worst;
  bool have_report = false;
  for (auto& rep : replicas_) {
    if (rep->manager == nullptr) continue;
    store::WalReplayReport one;
    Status st = rep->manager->OpenMutationLog(&one);
    if (!st.ok()) {
      if (first_error.ok()) first_error = st;
      continue;
    }
    if (!have_report || (worst.clean() && !one.clean())) worst = one;
    have_report = true;
  }
  if (report != nullptr) *report = worst;

  // Cold-open sync point: the highest seq durable on any replica might
  // have been acknowledged before the crash, so it is conservatively
  // treated as acked. A replica that trails it is pulled from routing
  // until repair catches it up — serving it would answer without
  // potentially-acknowledged writes.
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t max_durable = 0;
  for (auto& rep : replicas_) {
    if (rep->manager == nullptr) continue;
    max_durable = std::max(max_durable, rep->manager->durable_seq());
  }
  last_acked_ = std::max(last_acked_, max_durable);
  next_seq_ = std::max(next_seq_, max_durable + 1);
  if (replicas_.size() > 1) {
    for (auto& rep : replicas_) {
      if (rep->manager == nullptr) continue;
      if (rep->manager->durable_seq() < max_durable &&
          !rep->quarantined.load(std::memory_order_relaxed)) {
        rep->SetStatus(Status::Unavailable(
            "replica trails the acknowledged seq after cold open; "
            "awaiting anti-entropy repair"));
        SetQuarantined(*rep, true);
      }
    }
  }
  return first_error;
}

Status ReplicaSet::ApplyMutation(store::WalRecord record, uint64_t* seq) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> targets;
  uint64_t assigned = next_seq_;
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    Replica& rep = *replicas_[r];
    if (rep.manager == nullptr) continue;
    if (rep.quarantined.load(std::memory_order_relaxed)) continue;
    targets.push_back(r);
    // A replica revived by repair may hold seqs this set never assigned
    // (e.g. catch-up from a peer opened earlier); never reuse one.
    assigned = std::max(assigned, rep.manager->durable_seq() + 1);
  }
  if (targets.empty()) {
    return Status::Unavailable("no live replica can take writes");
  }
  record.seq = assigned;

  size_t acks = 0;
  Status first_failure;
  for (uint32_t r : targets) {
    Replica& rep = *replicas_[r];
    Status st = rep.manager->ApplyReplicated(record);
    if (st.ok()) {
      ++acks;
      continue;
    }
    if (acks == 0 && (st.code() == StatusCode::kFailedPrecondition ||
                      st.code() == StatusCode::kInvalidArgument ||
                      st.code() == StatusCode::kResourceExhausted)) {
      // Deterministic or admission refusal before anything was appended:
      // the mutation aborts whole — nothing durable anywhere, nothing
      // acked, no replica diverged, the seq is never consumed.
      return st;
    }
    // The replica missed a record its peers may acknowledge: serving it
    // would answer stale, so it leaves routing until repair re-syncs it.
    // With a single replica there is no peer to diverge from — the store
    // keeps serving its incumbent engine, exactly as an unreplicated
    // manager would after a failed append.
    if (replicas_.size() > 1) {
      rep.SetStatus(st);
      SetQuarantined(rep, true);
    }
    if (first_failure.ok()) first_failure = st;
  }
  if (acks == 0) return first_failure;
  next_seq_ = record.seq + 1;

  const size_t required =
      options_.ack_policy == AckPolicy::kQuorum
          ? static_cast<size_t>(replicas_.size()) / 2 + 1
          : targets.size();
  if (acks < required) {
    // Durable on some replicas but not acknowledged: like a torn write,
    // the caller must retry; repair converges the replicas either way.
    if (!first_failure.ok()) return first_failure;
    return Status::Unavailable(
        "ack policy not satisfied: " + std::to_string(acks) + " of " +
        std::to_string(required) + " required acknowledgements");
  }
  last_acked_ = record.seq;
  if (seq != nullptr) *seq = record.seq;
  return Status::Ok();
}

Status ReplicaSet::Upsert(uint32_t doc, std::vector<uint32_t> terms,
                          uint64_t* seq) {
  if (doc >= idx_->num_docs()) {
    return Status::InvalidArgument("upsert: document id out of range");
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (uint32_t t : terms) {
    if (t >= idx_->num_terms()) {
      return Status::InvalidArgument("upsert: term id out of range");
    }
  }
  store::WalRecord rec;
  rec.kind = store::WalRecord::Kind::kUpsert;
  rec.doc = doc;
  rec.terms = std::move(terms);
  return ApplyMutation(std::move(rec), seq);
}

Status ReplicaSet::Delete(uint32_t doc, uint64_t* seq) {
  if (doc >= idx_->num_docs()) {
    return Status::InvalidArgument("delete: document id out of range");
  }
  store::WalRecord rec;
  rec.kind = store::WalRecord::Kind::kDelete;
  rec.doc = doc;
  return ApplyMutation(std::move(rec), seq);
}

Status ReplicaSet::Flush(uint64_t* generation) {
  Status first_error;
  for (auto& rep : replicas_) {
    if (rep->manager == nullptr) continue;
    if (rep->quarantined.load(std::memory_order_relaxed)) continue;
    Status st = rep->manager->FlushDelta();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  if (generation != nullptr) {
    const int pref = PreferredReplica();
    *generation =
        pref >= 0 ? replicas_[pref]->manager->serving_generation() : 0;
  }
  return first_error;
}

int ReplicaSet::PreferredReplica() const { return NextLiveReplica(-1); }

int ReplicaSet::NextLiveReplica(int after) const {
  for (uint32_t r = static_cast<uint32_t>(after + 1); r < replicas_.size();
       ++r) {
    const Replica& rep = *replicas_[r];
    if (rep.quarantined.load(std::memory_order_relaxed)) continue;
    if (rep.manager == nullptr) continue;
    if (rep.manager->engine() == nullptr) continue;
    return static_cast<int>(r);
  }
  return -1;
}

store::IndexManager::MutationView ReplicaSet::View(uint32_t replica) const {
  FESIA_CHECK(replica < replicas_.size());
  if (replicas_[replica]->manager == nullptr) return {};
  return replicas_[replica]->manager->AcquireView();
}

store::IndexManager::MutationView ReplicaSet::PreferredView() const {
  const int pref = PreferredReplica();
  if (pref < 0) return {};
  return View(static_cast<uint32_t>(pref));
}

bool ReplicaSet::replica_quarantined(uint32_t replica) const {
  FESIA_CHECK(replica < replicas_.size());
  return replicas_[replica]->quarantined.load(std::memory_order_relaxed);
}

void ReplicaSet::QuarantineReplica(uint32_t replica) {
  FESIA_CHECK(replica < replicas_.size());
  SetQuarantined(*replicas_[replica], true);
}

void ReplicaSet::ReviveReplica(uint32_t replica) {
  FESIA_CHECK(replica < replicas_.size());
  SetQuarantined(*replicas_[replica], false);
}

Status ReplicaSet::replica_status(uint32_t replica) const {
  FESIA_CHECK(replica < replicas_.size());
  const Replica& rep = *replicas_[replica];
  std::lock_guard<std::mutex> lock(rep.status_mu);
  return rep.status;
}

uint32_t ReplicaSet::serving_replicas() const {
  uint32_t serving = 0;
  for (int r = PreferredReplica(); r >= 0; r = NextLiveReplica(r)) {
    ++serving;
  }
  return serving;
}

uint64_t ReplicaSet::last_acked_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_acked_;
}

uint64_t ReplicaSet::replica_durable_seq(uint32_t replica) const {
  FESIA_CHECK(replica < replicas_.size());
  if (replicas_[replica]->manager == nullptr) return 0;
  return replicas_[replica]->manager->durable_seq();
}

bool ReplicaSet::NeedsRepair(uint32_t replica) const {
  FESIA_CHECK(replica < replicas_.size());
  const Replica& rep = *replicas_[replica];
  if (rep.manager == nullptr) return false;  // needs store re-open, not repair
  bool peer_serves = false;
  for (uint32_t s = 0; s < replicas_.size(); ++s) {
    if (s == replica) continue;
    const Replica& peer = *replicas_[s];
    if (peer.quarantined.load(std::memory_order_relaxed)) continue;
    if (peer.manager == nullptr || peer.manager->engine() == nullptr) {
      continue;
    }
    peer_serves = true;
    break;
  }
  if (!peer_serves) return false;  // nothing to sync from
  if (rep.quarantined.load(std::memory_order_relaxed)) return true;
  if (rep.manager->engine() == nullptr) return true;
  // Lag against the acknowledged stream (advanced only after a completed
  // fan-out, so an in-flight mutation never reads as divergence).
  return rep.manager->durable_seq() < last_acked_seq();
}

int ReplicaSet::HealthiestPeer(uint32_t exclude) const {
  int best = -1;
  uint64_t best_durable = 0;
  bool best_serving = false;
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    if (r == exclude) continue;
    const Replica& rep = *replicas_[r];
    if (rep.manager == nullptr || rep.manager->engine() == nullptr) continue;
    const bool serving = !rep.quarantined.load(std::memory_order_relaxed);
    const uint64_t durable = rep.manager->durable_seq();
    // Serving peers outrank quarantined ones (a quarantined source is the
    // last resort when every replica failed); durable seq breaks ties.
    if (best < 0 || (serving && !best_serving) ||
        (serving == best_serving && durable > best_durable)) {
      best = static_cast<int>(r);
      best_durable = durable;
      best_serving = serving;
    }
  }
  return best;
}

Status ReplicaSet::CatchUpFromPeer(
    store::IndexManager* target,
    const store::IndexManager::MutationView& peer_view) {
  if (peer_view.delta == nullptr) return Status::Ok();
  const uint64_t durable = target->durable_seq();
  std::vector<store::WalRecord> records;
  records.reserve(peer_view.delta->size());
  for (const auto& [doc, dd] : *peer_view.delta) {
    if (dd.seq <= durable) continue;
    store::WalRecord rec;
    rec.seq = dd.seq;
    rec.kind = dd.tombstone ? store::WalRecord::Kind::kDelete
                            : store::WalRecord::Kind::kUpsert;
    rec.doc = doc;
    rec.terms = dd.terms;
    records.push_back(std::move(rec));
  }
  // The peer's overlay is collapsed per document (last writer wins), so
  // replaying its entries in seq order is equivalent to replaying the
  // full log: superseded records are exactly the ones that no longer
  // affect any query answer or rebuild.
  std::sort(records.begin(), records.end(),
            [](const store::WalRecord& a, const store::WalRecord& b) {
              return a.seq < b.seq;
            });
  for (const store::WalRecord& rec : records) {
    FESIA_RETURN_IF_ERROR(target->ApplyReplicated(rec));
  }
  return Status::Ok();
}

Status ReplicaSet::RepairReplica(uint32_t replica) {
  FESIA_CHECK(replica < replicas_.size());
  Replica& rep = *replicas_[replica];
  if (rep.manager == nullptr) {
    return Status::FailedPrecondition(
        "replica store was unrecoverable at open; a process restart "
        "re-runs store recovery");
  }
  auto fail = [&](Status s) {
    rep.SetStatus(s);
    repair_failures_.fetch_add(1, std::memory_order_relaxed);
    return s;
  };

  const int src = HealthiestPeer(replica);
  if (src < 0) {
    return fail(
        Status::Unavailable("no healthy peer replica to repair from"));
  }
  store::IndexManager* source = replicas_[src]->manager.get();
  store::IndexManager* target = rep.manager.get();

  if (fault::ShouldFail(fault::FaultPoint::kRepairCrashBeforeImport)) {
    return fail(Status::IoError(
        "injected fault: repair crashed before snapshot import"));
  }

  // The target may just need its own disk (e.g. quarantined by an
  // operator with a healthy store); a failed local reload is not an
  // error here — the peer copy below covers it.
  if (target->engine() == nullptr) (void)target->Reload();

  // Phase 1: snapshot copy. Re-attempted when the source flushes
  // mid-repair (its delta prunes records the exported generation now
  // carries, so the export must be refreshed).
  store::IndexManager::MutationView source_view;
  bool synced = false;
  for (int attempt = 0; attempt < 4 && !synced; ++attempt) {
    if (target->engine() == nullptr ||
        target->applied_seq() < source->applied_seq()) {
      // The source's serving state must exist as a committed generation
      // to copy; persist it when the store does not reflect it.
      if (source->serving_generation() == 0 ||
          (replicas_[src]->store != nullptr &&
           replicas_[src]->store->current_generation() !=
               source->serving_generation())) {
        Status st = source->SaveSnapshot();
        if (!st.ok()) return fail(st);
      }
      uint32_t format_version = 0;
      auto payload = source->ExportSnapshot(&format_version);
      if (!payload.ok()) return fail(payload.status());
      Status st = target->ImportSnapshot(*payload, format_version);
      if (!st.ok()) return fail(st);
    }
    source_view = source->AcquireView();
    // A source flush between export and view acquisition leaves records
    // in (target applied, source applied] visible only in the newer
    // generation; go around and import that instead.
    synced = source_view.applied_seq <= target->applied_seq();
  }
  if (!synced) {
    return fail(Status::Unavailable(
        "source replica kept flushing mid-repair; backing off"));
  }

  if (fault::ShouldFail(fault::FaultPoint::kRepairCrashBeforeCatchup)) {
    return fail(Status::IoError(
        "injected fault: repair crashed before WAL catch-up"));
  }

  // Phase 2: bulk WAL catch-up off the mutation lock — queries and
  // fan-out keep flowing while the seq gap replays.
  if (Status st = CatchUpFromPeer(target, source_view); !st.ok()) {
    return fail(st);
  }

  if (fault::ShouldFail(fault::FaultPoint::kRepairCrashBeforeRevive)) {
    return fail(Status::IoError(
        "injected fault: repair crashed before revive"));
  }

  // Phase 3: final catch-up and revive under the mutation lock, so no
  // acknowledged write can land between the sync check and the revive —
  // a revived replica is never behind the acked stream.
  {
    std::lock_guard<std::mutex> lock(mu_);
    const store::IndexManager::MutationView fresh = source->AcquireView();
    if (Status st = CatchUpFromPeer(target, fresh); !st.ok()) {
      return fail(st);
    }
    uint64_t goal = fresh.applied_seq;
    if (fresh.delta != nullptr) {
      for (const auto& [doc, dd] : *fresh.delta) {
        goal = std::max(goal, dd.seq);
      }
    }
    if (target->durable_seq() < goal) {
      // A concurrent source flush pruned part of the gap after the final
      // export; the next cycle re-imports the newer generation.
      return fail(Status::Unavailable(
          "source replica advanced mid-repair; retrying next cycle"));
    }
    next_seq_ = std::max(next_seq_, target->durable_seq() + 1);
    rep.SetStatus(Status::Ok());
    SetQuarantined(rep, false);
  }
  repairs_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status ReplicaSet::RepairOnce() {
  Status first_error;
  for (uint32_t r = 0; r < replicas_.size(); ++r) {
    if (!NeedsRepair(r)) continue;
    Status st = RepairReplica(r);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

void ReplicaSet::RepairLoop(double interval_seconds) {
  const auto interval = std::chrono::duration<double>(interval_seconds);
  std::unique_lock<std::mutex> lock(repair_mu_);
  while (!repair_cv_.wait_for(lock, interval,
                              [this] { return repair_stop_; })) {
    lock.unlock();
    const auto now = std::chrono::steady_clock::now();
    for (uint32_t r = 0; r < replicas_.size(); ++r) {
      // Backoff state is only ever touched by this thread (StartRepair
      // joins the previous loop before spawning a new one).
      Replica& rep = *replicas_[r];
      if (!NeedsRepair(r)) {
        rep.backoff_seconds = 0;
        continue;
      }
      if (now < rep.next_attempt) continue;
      if (RepairReplica(r).ok()) {
        rep.backoff_seconds = 0;
      } else {
        rep.backoff_seconds =
            rep.backoff_seconds == 0
                ? interval_seconds
                : std::min(rep.backoff_seconds * 2,
                           options_.repair_backoff_max_seconds);
        rep.next_attempt =
            now + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(rep.backoff_seconds));
      }
    }
    lock.lock();
  }
}

void ReplicaSet::StartRepair(double interval_seconds) {
  StopRepair();
  FESIA_CHECK(interval_seconds > 0);
  {
    std::lock_guard<std::mutex> lock(repair_mu_);
    repair_stop_ = false;
  }
  repair_thread_ =
      std::thread([this, interval_seconds] { RepairLoop(interval_seconds); });
}

void ReplicaSet::StopRepair() {
  {
    std::lock_guard<std::mutex> lock(repair_mu_);
    repair_stop_ = true;
  }
  repair_cv_.notify_all();
  if (repair_thread_.joinable()) repair_thread_.join();
}

}  // namespace fesia::shard
