#include "shard/sharded_index.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>

#include "util/check.h"
#include "util/file_io.h"

namespace fesia::shard {
namespace {

std::string ShardDirName(uint32_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%02u", shard);
  return buf;
}

/// Deterministic per-store jitter factor in [1.0, 1.5): spreads the
/// maintenance ticks of shard×replica stores that were all started in the
/// same call, so scrubs and flushes never line up into one I/O spike.
double JitterFactor(uint32_t shard, uint32_t replica) {
  uint32_t h = shard * 2654435761u + replica * 40503u + 0x9e3779b9u;
  h ^= h >> 16;
  h *= 0x45d9f3bu;
  h ^= h >> 16;
  return 1.0 + 0.5 * static_cast<double>(h % 997) / 997.0;
}

/// The replication factor is pinned to the store directory like the
/// SHARDMAP: per-shard replica layouts are meaningless under any other
/// factor, so a mismatched reopen is refused. Factor-1 stores carry no
/// TOPOLOGY file — exactly the legacy unreplicated layout.
constexpr char kTopologyPrefix[] = "replicas=";

Status PinTopology(const std::string& store_dir, uint32_t factor) {
  const std::string path = store_dir + "/TOPOLOGY";
  if (std::filesystem::exists(path)) {
    std::vector<uint8_t> bytes;
    FESIA_RETURN_IF_ERROR(ReadFileBytes(path, &bytes));
    const std::string text(bytes.begin(), bytes.end());
    uint32_t stored = 0;
    if (text.rfind(kTopologyPrefix, 0) != 0 ||
        std::sscanf(text.c_str() + sizeof(kTopologyPrefix) - 1, "%u",
                    &stored) != 1 ||
        stored < 1) {
      return Status::Corruption("unparsable TOPOLOGY file at " + path);
    }
    if (stored != factor) {
      return Status::FailedPrecondition(
          "shard store " + store_dir + " was created with " +
          std::to_string(stored) +
          " replica(s) per shard; refusing to reopen with " +
          std::to_string(factor));
    }
    return Status::Ok();
  }
  if (factor == 1) return Status::Ok();  // legacy layout, nothing to pin
  // A store that already has unreplicated shard data must not be
  // silently shadowed by empty replica-MM subdirectories.
  if (std::filesystem::exists(store_dir + "/shard-00/MANIFEST")) {
    return Status::FailedPrecondition(
        "shard store " + store_dir +
        " was created without replication; refusing to reopen with " +
        std::to_string(factor) + " replicas per shard");
  }
  const std::string text =
      std::string(kTopologyPrefix) + std::to_string(factor) + "\n";
  return AtomicWriteFileBytes(
      path, reinterpret_cast<const uint8_t*>(text.data()), text.size());
}

}  // namespace

StatusOr<ShardedIndex> ShardedIndex::Create(const index::InvertedIndex* full,
                                            const ShardMap& map,
                                            const ShardedIndexOptions& options) {
  FESIA_CHECK(full != nullptr);
  FESIA_CHECK(map.num_shards() >= 1);
  if (options.replication_factor < 1) {
    return Status::InvalidArgument("replication_factor must be >= 1");
  }

  ShardedIndex sharded;
  sharded.full_ = full;
  sharded.map_ = map;
  sharded.options_ = options;

  // Partition every posting list by document shard in one pass. Term ids
  // are preserved (a term with no postings in a shard keeps an empty list),
  // so per-shard engines accept exactly the queries the full engine does.
  const uint32_t num_shards = map.num_shards();
  std::vector<std::vector<std::vector<uint32_t>>> split(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    split[s].resize(full->num_terms());
  }
  for (uint32_t t = 0; t < full->num_terms(); ++t) {
    for (uint32_t doc : full->Postings(t)) {
      split[map.ShardOf(doc)][t].push_back(doc);
    }
  }

  sharded.shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->idx = std::make_unique<index::InvertedIndex>(
        index::InvertedIndex::FromPostings(full->num_docs(),
                                           std::move(split[s])));
    sharded.shards_.push_back(std::move(shard));
  }

  if (options.store_dir.empty()) return sharded;  // memory-only

  // Persistent mode: pin the partitioning (and the replica topology) to
  // the directory before any shard store is touched. A mismatched
  // SHARDMAP means the generations in shard-NN/ were written under a
  // different partitioning — refusing is the only safe answer.
  std::error_code ec;
  std::filesystem::create_directories(options.store_dir, ec);
  if (ec) {
    return Status::IoError("cannot create shard root " + options.store_dir +
                           ": " + ec.message());
  }
  const std::string map_path = options.store_dir + "/SHARDMAP";
  std::vector<uint8_t> map_bytes = map.Serialize();
  if (std::filesystem::exists(map_path)) {
    std::vector<uint8_t> existing;
    FESIA_RETURN_IF_ERROR(ReadFileBytes(map_path, &existing));
    auto stored = ShardMap::Deserialize(existing);
    if (!stored.ok()) return stored.status();
    if (*stored != map) {
      return Status::FailedPrecondition(
          "shard store " + options.store_dir + " was created with " +
          std::to_string(stored->num_shards()) +
          " shard(s) and a different shard map; refusing to reopen with " +
          std::to_string(map.num_shards()));
    }
  } else {
    FESIA_RETURN_IF_ERROR(
        AtomicWriteFileBytes(map_path, map_bytes.data(), map_bytes.size()));
  }
  FESIA_RETURN_IF_ERROR(
      PinTopology(options.store_dir, options.replication_factor));

  // Open (and recover) every shard's replica group. A shard whose every
  // replica store is unrecoverable quarantines only that shard: the error
  // is retained and the remaining shards keep their independent
  // lifecycles.
  size_t usable = 0;
  Status first_error;
  for (uint32_t s = 0; s < num_shards; ++s) {
    Shard& shard = *sharded.shards_[s];
    ReplicaSetOptions rs_opts;
    rs_opts.params = options.params;
    rs_opts.dir = options.store_dir + "/" + ShardDirName(s);
    rs_opts.replication_factor = options.replication_factor;
    rs_opts.ack_policy = options.ack_policy;
    rs_opts.max_generations = options.max_generations;
    rs_opts.format_version = options.format_version;
    rs_opts.mutation_soft_bytes = options.mutation_soft_bytes;
    rs_opts.mutation_hard_bytes = options.mutation_hard_bytes;
    if (options.budget != nullptr || options.shard_budget_bytes > 0) {
      // Each shard charges through a private child: a per-shard cap (when
      // configured) plus roll-up into the shared parent budget. Replicas
      // of one shard share the shard's allowance.
      shard.budget = std::make_unique<MemoryBudget>(
          options.shard_budget_bytes > 0 ? options.shard_budget_bytes
                                         : MemoryBudget::kNoLimit,
          options.budget, ShardDirName(s));
      rs_opts.budget = shard.budget.get();
    }
    auto replicas = ReplicaSet::Open(shard.idx.get(), rs_opts);
    if (!replicas.ok()) {
      shard.SetStatus(replicas.status());
      shard.SetQuarantined(true);
      if (first_error.ok()) first_error = replicas.status();
      continue;
    }
    shard.replicas = *std::move(replicas);
    ++usable;
  }
  if (usable == 0 && !first_error.ok()) return first_error;
  return sharded;
}

ShardedIndex::~ShardedIndex() { StopReviveProbes(); }

uint32_t ShardedIndex::replication_factor() const {
  return options_.store_dir.empty() ? 1 : options_.replication_factor;
}

const index::InvertedIndex& ShardedIndex::shard_index(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  return *shards_[shard]->idx;
}

store::IndexManager* ShardedIndex::PrimaryManager(uint32_t shard) const {
  const Shard& s = *shards_[shard];
  if (s.replicas == nullptr) return nullptr;
  const int pref = s.replicas->PreferredReplica();
  if (pref >= 0) return s.replicas->manager(static_cast<uint32_t>(pref));
  for (uint32_t r = 0; r < s.replicas->num_replicas(); ++r) {
    if (s.replicas->manager(r) != nullptr) return s.replicas->manager(r);
  }
  return nullptr;
}

store::IndexManager* ShardedIndex::manager(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  return PrimaryManager(shard);
}

ReplicaSet* ShardedIndex::replica_set(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  return shards_[shard]->replicas.get();
}

std::shared_ptr<const index::QueryEngine> ShardedIndex::engine(
    uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  const Shard& s = *shards_[shard];
  if (s.replicas != nullptr) {
    store::IndexManager* mgr = PrimaryManager(shard);
    return mgr != nullptr ? mgr->engine() : nullptr;
  }
  return s.local_engine.load();
}

Status ShardedIndex::RebuildShard(uint32_t shard) {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  if (s.replicas != nullptr) {
    Status st = s.replicas->Rebuild();
    s.SetStatus(st);
    // One dead replica degrades the group, not the shard: it serves as
    // long as any replica does.
    if (st.ok() || s.replicas->serving_replicas() > 0) {
      s.SetQuarantined(false);
    }
    return st;
  }
  auto built = std::make_shared<index::QueryEngine>(s.idx.get(),
                                                    options_.params);
  s.local_engine.store(std::move(built));
  // Epoch bump after the publish: cached results computed on the old
  // engine now carry a stale epoch (see content_epoch()).
  s.local_epoch.fetch_add(1, std::memory_order_release);
  s.SetStatus(Status::Ok());
  s.SetQuarantined(false);
  return Status::Ok();
}

Status ShardedIndex::RebuildAll() {
  Status first_error;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    Status st = RebuildShard(s);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status ShardedIndex::SaveShard(uint32_t shard, uint64_t* generation) {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  if (s.replicas == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  Status st = s.replicas->Save();
  if (generation != nullptr) {
    store::IndexManager* mgr = PrimaryManager(shard);
    *generation = mgr != nullptr ? mgr->serving_generation() : 0;
  }
  return st;
}

Status ShardedIndex::SaveAll() {
  Status first_error;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    Status st = SaveShard(s);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status ShardedIndex::ReloadShard(uint32_t shard) {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  if (s.replicas == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  Status st = s.replicas->Reload();
  s.SetStatus(st);
  if (st.ok() || s.replicas->serving_replicas() > 0) {
    s.SetQuarantined(false);
  }
  return st;
}

Status ShardedIndex::OpenMutationLog(uint32_t shard,
                                     store::WalReplayReport* report) {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  if (s.replicas == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  return s.replicas->OpenMutationLogs(report);
}

Status ShardedIndex::OpenMutationLogs() {
  Status first_error;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    Status st = OpenMutationLog(s);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status ShardedIndex::Upsert(uint32_t doc, std::vector<uint32_t> terms,
                            uint64_t* seq, uint32_t* shard) {
  const uint32_t owner = map_.ShardOf(doc);
  if (shard != nullptr) *shard = owner;
  Shard& s = *shards_[owner];
  if (s.replicas == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(owner) +
        " owning document " + std::to_string(doc) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  return s.replicas->Upsert(doc, std::move(terms), seq);
}

Status ShardedIndex::Delete(uint32_t doc, uint64_t* seq, uint32_t* shard) {
  const uint32_t owner = map_.ShardOf(doc);
  if (shard != nullptr) *shard = owner;
  Shard& s = *shards_[owner];
  if (s.replicas == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(owner) +
        " owning document " + std::to_string(doc) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  return s.replicas->Delete(doc, seq);
}

Status ShardedIndex::FlushShard(uint32_t shard, uint64_t* generation) {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  if (s.replicas == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  return s.replicas->Flush(generation);
}

Status ShardedIndex::FlushAll() {
  Status first_error;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (shards_[s]->replicas == nullptr) continue;
    store::IndexManager* mgr = PrimaryManager(s);
    if (mgr == nullptr || mgr->pending_mutations() == 0) continue;
    Status st = FlushShard(s);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

store::IndexManager::MutationView ShardedIndex::View(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  const Shard& s = *shards_[shard];
  if (s.replicas != nullptr) return s.replicas->PreferredView();
  store::IndexManager::MutationView v;
  v.engine = s.local_engine.load();
  v.base = s.idx.get();
  return v;
}

size_t ShardedIndex::pending_mutations() const {
  size_t pending = 0;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    store::IndexManager* mgr = PrimaryManager(s);
    if (mgr != nullptr) pending += mgr->pending_mutations();
  }
  return pending;
}

uint64_t ShardedIndex::pending_bytes() const {
  uint64_t pending = 0;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    store::IndexManager* mgr = PrimaryManager(s);
    if (mgr != nullptr) pending += mgr->pending_bytes();
  }
  return pending;
}

MemoryBudget* ShardedIndex::shard_budget(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  return shards_[shard]->budget.get();
}

bool ShardedIndex::shard_quarantined(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  return shards_[shard]->quarantined.load(std::memory_order_relaxed);
}

void ShardedIndex::QuarantineShard(uint32_t shard) {
  FESIA_CHECK(shard < shards_.size());
  shards_[shard]->SetQuarantined(true);
}

void ShardedIndex::ReviveShard(uint32_t shard) {
  FESIA_CHECK(shard < shards_.size());
  shards_[shard]->SetQuarantined(false);
}

Status ShardedIndex::shard_status(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.status_mu);
  return s.status;
}

uint32_t ShardedIndex::serving_shards() const {
  uint32_t serving = 0;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (!shard_quarantined(s) && engine(s) != nullptr) ++serving;
  }
  return serving;
}

uint64_t ShardedIndex::content_epoch() const {
  uint64_t epoch = 0;
  for (const auto& s : shards_) {
    epoch += s->local_epoch.load(std::memory_order_acquire);
    if (s->replicas != nullptr) epoch += s->replicas->content_epoch();
  }
  return epoch;
}

Status ShardedIndex::RepairOnce() {
  Status first_error;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (shards_[s]->replicas == nullptr) continue;
    Status st = shards_[s]->replicas->RepairOnce();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

void ShardedIndex::StartRepair(double interval_seconds) {
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (shards_[s]->replicas != nullptr) {
      shards_[s]->replicas->StartRepair(interval_seconds);
    }
  }
}

void ShardedIndex::StopRepair() {
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (shards_[s]->replicas != nullptr) shards_[s]->replicas->StopRepair();
  }
}

void ShardedIndex::ReviveProbeLoop(double interval_seconds) {
  const auto interval = std::chrono::duration<double>(interval_seconds);
  ReviveProbeState& st = *probe_;
  std::unique_lock<std::mutex> lock(st.mu);
  while (!st.cv.wait_for(lock, interval, [&st] { return st.stop; })) {
    lock.unlock();
    const auto now = std::chrono::steady_clock::now();
    for (uint32_t s = 0; s < num_shards(); ++s) {
      if (!shard_quarantined(s)) {
        st.backoff_seconds[s] = 0;
        continue;
      }
      if (now < st.next_attempt[s]) continue;
      st.attempts.fetch_add(1, std::memory_order_relaxed);
      bool revived = false;
      if (engine(s) != nullptr) {
        // The engine survived the quarantine (an operator pull or a
        // transient failure): revival is instant.
        ReviveShard(s);
        revived = true;
      } else if (shards_[s]->replicas != nullptr) {
        // Engine lost: a reload from the shard's own stores both
        // validates the disk state and clears the quarantine.
        revived = ReloadShard(s).ok() || !shard_quarantined(s);
      }
      if (revived) {
        st.revives.fetch_add(1, std::memory_order_relaxed);
        st.backoff_seconds[s] = 0;
      } else {
        st.backoff_seconds[s] =
            st.backoff_seconds[s] == 0
                ? interval_seconds
                : std::min(st.backoff_seconds[s] * 2, 30.0);
        st.next_attempt[s] =
            now + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(st.backoff_seconds[s]));
      }
    }
    lock.lock();
  }
}

void ShardedIndex::StartReviveProbes(double interval_seconds) {
  StopReviveProbes();
  FESIA_CHECK(interval_seconds > 0);
  auto state = std::make_unique<ReviveProbeState>();
  if (probe_ != nullptr) {
    // Counters survive a restart of the loop.
    state->attempts.store(probe_->attempts.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    state->revives.store(probe_->revives.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  state->backoff_seconds.assign(num_shards(), 0.0);
  state->next_attempt.assign(num_shards(),
                             std::chrono::steady_clock::time_point{});
  probe_ = std::move(state);
  probe_->thread = std::thread(
      [this, interval_seconds] { ReviveProbeLoop(interval_seconds); });
}

void ShardedIndex::StopReviveProbes() {
  if (probe_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(probe_->mu);
    probe_->stop = true;
  }
  probe_->cv.notify_all();
  if (probe_->thread.joinable()) probe_->thread.join();
}

uint64_t ShardedIndex::revive_probe_attempts() const {
  return probe_ != nullptr
             ? probe_->attempts.load(std::memory_order_relaxed)
             : 0;
}

uint64_t ShardedIndex::auto_revives() const {
  return probe_ != nullptr ? probe_->revives.load(std::memory_order_relaxed)
                           : 0;
}

void ShardedIndex::StartScrubAll(double interval_seconds) {
  FESIA_CHECK(interval_seconds > 0);
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (shards_[s]->replicas == nullptr) continue;
    ReplicaSet& rs = *shards_[s]->replicas;
    for (uint32_t r = 0; r < rs.num_replicas(); ++r) {
      if (rs.manager(r) != nullptr) {
        rs.manager(r)->StartScrub(interval_seconds * JitterFactor(s, r));
      }
    }
  }
}

void ShardedIndex::StopScrubAll() {
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (shards_[s]->replicas == nullptr) continue;
    ReplicaSet& rs = *shards_[s]->replicas;
    for (uint32_t r = 0; r < rs.num_replicas(); ++r) {
      if (rs.manager(r) != nullptr) rs.manager(r)->StopScrub();
    }
  }
}

void ShardedIndex::StartAutoFlushAll(double interval_seconds) {
  FESIA_CHECK(interval_seconds > 0);
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (shards_[s]->replicas == nullptr) continue;
    ReplicaSet& rs = *shards_[s]->replicas;
    for (uint32_t r = 0; r < rs.num_replicas(); ++r) {
      if (rs.manager(r) != nullptr) {
        rs.manager(r)->StartAutoFlush(interval_seconds * JitterFactor(s, r));
      }
    }
  }
}

void ShardedIndex::StopAutoFlushAll() {
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (shards_[s]->replicas == nullptr) continue;
    ReplicaSet& rs = *shards_[s]->replicas;
    for (uint32_t r = 0; r < rs.num_replicas(); ++r) {
      if (rs.manager(r) != nullptr) rs.manager(r)->StopAutoFlush();
    }
  }
}

}  // namespace fesia::shard
