#include "shard/sharded_index.h"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "util/check.h"
#include "util/file_io.h"

namespace fesia::shard {
namespace {

std::string ShardDirName(uint32_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%02u", shard);
  return buf;
}

}  // namespace

StatusOr<ShardedIndex> ShardedIndex::Create(const index::InvertedIndex* full,
                                            const ShardMap& map,
                                            const ShardedIndexOptions& options) {
  FESIA_CHECK(full != nullptr);
  FESIA_CHECK(map.num_shards() >= 1);

  ShardedIndex sharded;
  sharded.full_ = full;
  sharded.map_ = map;
  sharded.options_ = options;

  // Partition every posting list by document shard in one pass. Term ids
  // are preserved (a term with no postings in a shard keeps an empty list),
  // so per-shard engines accept exactly the queries the full engine does.
  const uint32_t num_shards = map.num_shards();
  std::vector<std::vector<std::vector<uint32_t>>> split(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    split[s].resize(full->num_terms());
  }
  for (uint32_t t = 0; t < full->num_terms(); ++t) {
    for (uint32_t doc : full->Postings(t)) {
      split[map.ShardOf(doc)][t].push_back(doc);
    }
  }

  sharded.shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->idx = std::make_unique<index::InvertedIndex>(
        index::InvertedIndex::FromPostings(full->num_docs(),
                                           std::move(split[s])));
    sharded.shards_.push_back(std::move(shard));
  }

  if (options.store_dir.empty()) return sharded;  // memory-only

  // Persistent mode: pin the partitioning to the directory before any
  // shard store is touched. A mismatched SHARDMAP means the generations in
  // shard-NN/ were written under a different partitioning — refusing is
  // the only safe answer.
  std::error_code ec;
  std::filesystem::create_directories(options.store_dir, ec);
  if (ec) {
    return Status::IoError("cannot create shard root " + options.store_dir +
                           ": " + ec.message());
  }
  const std::string map_path = options.store_dir + "/SHARDMAP";
  std::vector<uint8_t> map_bytes = map.Serialize();
  if (std::filesystem::exists(map_path)) {
    std::vector<uint8_t> existing;
    FESIA_RETURN_IF_ERROR(ReadFileBytes(map_path, &existing));
    auto stored = ShardMap::Deserialize(existing);
    if (!stored.ok()) return stored.status();
    if (*stored != map) {
      return Status::FailedPrecondition(
          "shard store " + options.store_dir + " was created with " +
          std::to_string(stored->num_shards()) +
          " shard(s) and a different shard map; refusing to reopen with " +
          std::to_string(map.num_shards()));
    }
  } else {
    FESIA_RETURN_IF_ERROR(
        AtomicWriteFileBytes(map_path, map_bytes.data(), map_bytes.size()));
  }

  // Open (and recover) every shard store. An unrecoverable store
  // quarantines only its shard: the error is retained and the remaining
  // shards keep their independent lifecycles.
  size_t usable = 0;
  Status first_error;
  for (uint32_t s = 0; s < num_shards; ++s) {
    Shard& shard = *sharded.shards_[s];
    store::SnapshotStoreOptions store_opts;
    store_opts.dir = options.store_dir + "/" + ShardDirName(s);
    store_opts.max_generations = options.max_generations;
    auto opened = store::SnapshotStore::Open(store_opts);
    if (!opened.ok()) {
      shard.SetStatus(opened.status());
      shard.quarantined.store(true, std::memory_order_relaxed);
      if (first_error.ok()) first_error = opened.status();
      continue;
    }
    shard.store = std::make_unique<store::SnapshotStore>(*std::move(opened));
    store::IndexManager::Options mgr_opts;
    mgr_opts.params = options.params;
    mgr_opts.format_version = options.format_version;
    mgr_opts.mutation_soft_bytes = options.mutation_soft_bytes;
    mgr_opts.mutation_hard_bytes = options.mutation_hard_bytes;
    if (options.budget != nullptr || options.shard_budget_bytes > 0) {
      // Each shard charges through a private child: a per-shard cap (when
      // configured) plus roll-up into the shared parent budget.
      shard.budget = std::make_unique<MemoryBudget>(
          options.shard_budget_bytes > 0 ? options.shard_budget_bytes
                                         : MemoryBudget::kNoLimit,
          options.budget, ShardDirName(s));
      mgr_opts.budget = shard.budget.get();
    }
    shard.manager = std::make_unique<store::IndexManager>(
        shard.idx.get(), shard.store.get(), mgr_opts);
    ++usable;
  }
  if (usable == 0 && !first_error.ok()) return first_error;
  return sharded;
}

const index::InvertedIndex& ShardedIndex::shard_index(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  return *shards_[shard]->idx;
}

store::IndexManager* ShardedIndex::manager(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  return shards_[shard]->manager.get();
}

std::shared_ptr<const index::QueryEngine> ShardedIndex::engine(
    uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  const Shard& s = *shards_[shard];
  if (s.manager != nullptr) return s.manager->engine();
  return s.local_engine.load();
}

Status ShardedIndex::RebuildShard(uint32_t shard) {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  if (s.manager != nullptr) {
    Status st = s.manager->Rebuild();
    s.SetStatus(st);
    if (st.ok()) s.quarantined.store(false, std::memory_order_relaxed);
    return st;
  }
  auto built = std::make_shared<index::QueryEngine>(s.idx.get(),
                                                    options_.params);
  s.local_engine.store(std::move(built));
  s.SetStatus(Status::Ok());
  s.quarantined.store(false, std::memory_order_relaxed);
  return Status::Ok();
}

Status ShardedIndex::RebuildAll() {
  Status first_error;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    Status st = RebuildShard(s);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status ShardedIndex::SaveShard(uint32_t shard, uint64_t* generation) {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  if (s.manager == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  return s.manager->SaveSnapshot(generation);
}

Status ShardedIndex::SaveAll() {
  Status first_error;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    Status st = SaveShard(s);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status ShardedIndex::ReloadShard(uint32_t shard) {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  if (s.manager == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  Status st = s.manager->Reload();
  s.SetStatus(st);
  if (st.ok()) s.quarantined.store(false, std::memory_order_relaxed);
  return st;
}

Status ShardedIndex::OpenMutationLog(uint32_t shard,
                                     store::WalReplayReport* report) {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  if (s.manager == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  return s.manager->OpenMutationLog(report);
}

Status ShardedIndex::OpenMutationLogs() {
  Status first_error;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    Status st = OpenMutationLog(s);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status ShardedIndex::Upsert(uint32_t doc, std::vector<uint32_t> terms,
                            uint64_t* seq, uint32_t* shard) {
  const uint32_t owner = map_.ShardOf(doc);
  if (shard != nullptr) *shard = owner;
  Shard& s = *shards_[owner];
  if (s.manager == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(owner) +
        " owning document " + std::to_string(doc) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  return s.manager->Upsert(doc, std::move(terms), seq);
}

Status ShardedIndex::Delete(uint32_t doc, uint64_t* seq, uint32_t* shard) {
  const uint32_t owner = map_.ShardOf(doc);
  if (shard != nullptr) *shard = owner;
  Shard& s = *shards_[owner];
  if (s.manager == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(owner) +
        " owning document " + std::to_string(doc) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  return s.manager->Delete(doc, seq);
}

Status ShardedIndex::FlushShard(uint32_t shard, uint64_t* generation) {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  if (s.manager == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " has no snapshot store (memory-only or unrecoverable at open)");
  }
  return s.manager->FlushDelta(generation);
}

Status ShardedIndex::FlushAll() {
  Status first_error;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (shards_[s]->manager == nullptr) continue;
    if (shards_[s]->manager->pending_mutations() == 0) continue;
    Status st = FlushShard(s);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

store::IndexManager::MutationView ShardedIndex::View(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  const Shard& s = *shards_[shard];
  if (s.manager != nullptr) return s.manager->AcquireView();
  store::IndexManager::MutationView v;
  v.engine = s.local_engine.load();
  v.base = s.idx.get();
  return v;
}

size_t ShardedIndex::pending_mutations() const {
  size_t pending = 0;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (shards_[s]->manager != nullptr) {
      pending += shards_[s]->manager->pending_mutations();
    }
  }
  return pending;
}

uint64_t ShardedIndex::pending_bytes() const {
  uint64_t pending = 0;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (shards_[s]->manager != nullptr) {
      pending += shards_[s]->manager->pending_bytes();
    }
  }
  return pending;
}

MemoryBudget* ShardedIndex::shard_budget(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  return shards_[shard]->budget.get();
}

bool ShardedIndex::shard_quarantined(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  return shards_[shard]->quarantined.load(std::memory_order_relaxed);
}

void ShardedIndex::QuarantineShard(uint32_t shard) {
  FESIA_CHECK(shard < shards_.size());
  shards_[shard]->quarantined.store(true, std::memory_order_relaxed);
}

void ShardedIndex::ReviveShard(uint32_t shard) {
  FESIA_CHECK(shard < shards_.size());
  shards_[shard]->quarantined.store(false, std::memory_order_relaxed);
}

Status ShardedIndex::shard_status(uint32_t shard) const {
  FESIA_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.status_mu);
  return s.status;
}

uint32_t ShardedIndex::serving_shards() const {
  uint32_t serving = 0;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    if (!shard_quarantined(s) && engine(s) != nullptr) ++serving;
  }
  return serving;
}

}  // namespace fesia::shard
