// Scatter-gather query routing over a ShardedIndex.
//
// Every conjunctive query is planned into one sub-query per serving shard
// (documents are partitioned, so per-shard results are disjoint: counts
// add and sorted doc lists merge without deduplication). Sub-batches are
// scattered over the shared Executor and gathered into one RoutedQueryResult
// per query, with the deadline/cancellation machinery of the batch
// executor threaded through:
//
//   * the per-query budget is split across scatter waves — when W workers
//     cover S serving shards in ceil(S/W) sequential waves, each shard
//     sub-query gets budget/waves so the end-to-end per-query latency
//     still honors the caller's budget;
//   * the batch deadline and the caller's cancel token are shared by every
//     shard, so one Cancel() drains the whole scatter;
//   * each shard degrades independently along the existing
//     parallel → serial-SIMD → scalar retry ladder, and admission control
//     applies per shard engine.
//
// Replicated shards add two availability levers (see shard/replica_set.h):
//
//   * failover — each shard sub-batch runs against the preferred replica,
//     and queries it could not answer are retried on the shard's next
//     live replicas before the query is reported partial. Replicas hold
//     identical logical content, so failover changes availability, never
//     answers;
//   * hedged requests — with hedge_delay_seconds > 0, a shard sub-batch
//     still unanswered after the delay is duplicated on the next live
//     replica and the first answer wins, bounding the tail latency a
//     single slow replica can impose.
//
// Partial results are explicit, never silent: a query answered by only
// some shards (a shard missed its deadline, was shed, failed, or is
// quarantined/engine-less — and, when replicated, exhausted every live
// replica) carries shards_answered < shards_total, a non-OK outcome, and
// the merged result of the shards that did answer. Callers choose per
// query whether a partial answer is usable.
#ifndef FESIA_SHARD_SHARD_ROUTER_H_
#define FESIA_SHARD_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "index/query_engine.h"
#include "shard/sharded_index.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace fesia::shard {

/// Options for one routed batch; mirrors index::BatchOptions with the
/// router's own scatter knobs.
struct RouterOptions {
  /// Workers scattering shard sub-batches; 0 uses the executor pool's
  /// width. With one serving shard the sub-batch instead runs with this
  /// many workers *inside* the shard, so N=1 behaves like the engine path.
  size_t num_threads = 0;
  SimdLevel level = SimdLevel::kAuto;
  Executor executor = {};

  /// End-to-end per-query budget in seconds (0 = none), split across
  /// scatter waves as described in the file comment.
  double query_deadline_seconds = 0;
  /// Whole-batch budget in seconds (0 = none), anchored once at scatter
  /// start; every shard sub-batch gets the remaining budget at its start.
  double batch_deadline_seconds = 0;
  /// Caller-driven cancellation shared by every shard sub-batch.
  CancellationToken cancel;
  /// Per-shard-engine admission capacity (see BatchOptions).
  size_t admission_capacity = 0;
  index::RetryPolicy retry;
  size_t intra_query_threads = 1;
  double slow_query_seconds = 0;
  /// Memory budget consulted by every shard sub-batch's admission (see
  /// BatchOptions::budget). nullptr defaults each sub-batch to its shard's
  /// own sub-budget (when the index was created with one), so pressure in
  /// one shard degrades only that shard's sub-queries.
  MemoryBudget* budget = nullptr;
  /// Priority under memory pressure, forwarded to every shard sub-batch
  /// (see BatchOptions::priority).
  index::QueryPriority priority = index::QueryPriority::kNormal;

  /// Per-query failover across a shard's live replicas: sub-queries the
  /// preferred replica could not answer (failed, shed, or past deadline)
  /// are retried on the next live replicas before the query is reported
  /// partial. On by default; no-op for unreplicated shards. Failover
  /// retries run after the primary sub-batch, so a rescued query may
  /// exceed its per-query deadline budget — availability is bought with
  /// latency, explicitly.
  bool replica_failover = true;
  /// When > 0 and a shard has >= 2 live replicas, a shard sub-batch that
  /// has not answered after this many seconds is duplicated on the next
  /// live replica; the first answer wins and the loser is discarded.
  /// 0 disables hedging.
  double hedge_delay_seconds = 0;
};

/// Gathered outcome of one query across all shards.
struct RoutedQueryResult {
  /// kOk iff every shard answered; otherwise the dominant reason shards
  /// are missing (deadline > shed > failed/quarantined).
  index::QueryOutcome outcome = index::QueryOutcome::kOk;
  Status status;
  /// Sum of per-shard counts over the shards that answered. Exact iff
  /// complete(); a lower bound on a partial answer.
  size_t count = 0;
  /// Merged result documents, ascending (QueryBatch only); partial when
  /// shards are missing.
  std::vector<uint32_t> docs;
  /// The explicit partial-result marker.
  uint32_t shards_answered = 0;
  uint32_t shards_total = 0;
  /// True when any shard sub-query took a degradation rung.
  bool downgraded = false;
  /// True when memory pressure shed or downgraded any shard sub-query
  /// (see index::QueryResult::pressure_affected).
  bool pressure_affected = false;
  /// Attempts consumed by the slowest-retrying shard sub-query (max across
  /// shards, counting failed sub-queries too); 0 when no shard ran it.
  int attempts = 0;
  /// Slowest shard sub-query latency (the query's critical path).
  double latency_seconds = 0;

  bool complete() const { return shards_answered == shards_total; }
  bool ok() const { return outcome == index::QueryOutcome::kOk; }
};

/// Merges per-shard batch statistics: outcome/retry/downgrade counters
/// add, per-sub-query latencies pool and the quantiles are recomputed,
/// wall time is the slowest shard's.
index::BatchStats MergeBatchStats(std::span<const index::BatchStats> stats);

/// Per-shard-labelled statistics roll-up of one routed batch.
struct ShardBatchStats {
  /// "shard-00", "shard-01", … — index-aligned with per_shard, covering
  /// every shard (quarantined ones carry zeroed stats).
  std::vector<std::string> shard_labels;
  std::vector<index::BatchStats> per_shard;
  /// MergeBatchStats over the serving shards' sub-batches.
  index::BatchStats merged;

  /// Routed-query view: end-to-end wall time, throughput, and per-query
  /// critical-path latencies (max over shards), index-aligned with the
  /// input batch.
  double wall_seconds = 0;
  double queries_per_second = 0;
  std::vector<double> latency_seconds;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;
  double latency_max = 0;

  /// Queries answered by every shard / only some shards.
  size_t complete_queries = 0;
  size_t partial_queries = 0;
  uint32_t shards_total = 0;
  uint32_t shards_serving = 0;

  /// Replica-availability accounting (see RouterOptions). per_shard stats
  /// cover each shard's winning sub-batch; hedge losers and failover
  /// retries count only here.
  size_t hedged_requests = 0;  ///< Shard sub-batches that issued a hedge.
  size_t hedge_wins = 0;       ///< Hedges that answered before the primary.
  size_t failover_queries = 0; ///< Sub-queries rescued by a backup replica.
};

/// Plans and executes query batches against a ShardedIndex. Stateless
/// beyond the index pointer: safe to share across threads, and every batch
/// re-acquires the per-shard engines, so hot-swaps between batches are
/// picked up automatically.
class ShardRouter {
 public:
  /// `index` must outlive the router.
  explicit ShardRouter(const ShardedIndex* index);

  /// Scatter-gathered CountBatch: one RoutedQueryResult per query,
  /// index-aligned with `queries`. See the file comment for the deadline,
  /// cancellation, and partial-result contract.
  std::vector<RoutedQueryResult> CountBatch(
      std::span<const std::vector<uint32_t>> queries,
      const RouterOptions& options = {},
      ShardBatchStats* stats = nullptr) const;

  /// Scatter-gathered QueryBatch: merged result documents (ascending) in
  /// RoutedQueryResult::docs.
  std::vector<RoutedQueryResult> QueryBatch(
      std::span<const std::vector<uint32_t>> queries,
      const RouterOptions& options = {},
      ShardBatchStats* stats = nullptr) const;

 private:
  std::vector<RoutedQueryResult> Run(
      std::span<const std::vector<uint32_t>> queries,
      const RouterOptions& options, ShardBatchStats* stats,
      bool materialize) const;

  const ShardedIndex* index_;
};

}  // namespace fesia::shard

#endif  // FESIA_SHARD_SHARD_ROUTER_H_
