// Deterministic partitioning of the document universe into N shards.
//
// The ShardMap is the contract every other shard component builds on: the
// same map must be used to partition postings at build time, to place
// per-shard snapshot generations on disk, and to gather per-shard results
// at query time. It is therefore tiny, exactly serializable, and persisted
// alongside the shard stores (`SHARDMAP` file, see shard/sharded_index.h)
// so a store directory can never be silently reopened with a different
// partitioning.
//
// Two partition kinds are provided:
//   kHash  — shard = Fmix32(doc ^ salt) % N. Near-uniform shard mass for
//            any document-id distribution; the default.
//   kRange — contiguous doc-id ranges of ceil(universe / N) documents.
//            Cache-friendly per shard, but shard mass follows the doc-id
//            distribution.
//
// Because every document belongs to exactly one shard, a conjunctive query
// decomposes into independent per-shard conjunctions whose results are
// disjoint: counts add, and sorted result lists merge without deduplication
// (the property shard/shard_router.h relies on).
#ifndef FESIA_SHARD_SHARD_MAP_H_
#define FESIA_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "fesia/hashing.h"
#include "util/status.h"

namespace fesia::shard {

class ShardMap {
 public:
  enum class Partition : uint32_t { kHash = 0, kRange = 1 };

  /// Single-shard identity map (everything routes to shard 0).
  ShardMap() = default;

  /// Hash partitioning over `num_shards` shards (>= 1, FESIA_CHECK).
  /// Documents spread near-uniformly regardless of id distribution.
  static ShardMap Hash(uint32_t num_shards, uint32_t salt = 0x9E3779B9u);

  /// Range partitioning of [0, universe) into `num_shards` contiguous
  /// ranges of ceil(universe / num_shards) ids each (both >= 1,
  /// FESIA_CHECK). Ids at or above `universe` fold into the last shard.
  static ShardMap Range(uint32_t num_shards, uint32_t universe);

  uint32_t ShardOf(uint32_t doc) const {
    if (num_shards_ == 1) return 0;
    if (partition_ == Partition::kHash) {
      return Fmix32(doc ^ salt_) % num_shards_;
    }
    uint32_t s = doc / range_width_;
    return s < num_shards_ ? s : num_shards_ - 1;
  }

  uint32_t num_shards() const { return num_shards_; }
  Partition partition() const { return partition_; }
  uint32_t salt() const { return salt_; }
  /// Documents per shard for kRange maps (1 for kHash).
  uint32_t range_width() const { return range_width_; }

  bool operator==(const ShardMap& other) const {
    return num_shards_ == other.num_shards_ &&
           partition_ == other.partition_ && salt_ == other.salt_ &&
           range_width_ == other.range_width_;
  }
  bool operator!=(const ShardMap& other) const { return !(*this == other); }

  /// Serializes to a magic-tagged ("FESIASHM"), CRC32C-checksummed
  /// container; the bytes are stable across hosts.
  std::vector<uint8_t> Serialize() const;

  /// Reconstructs a map from Serialize() output. Corrupt, truncated, or
  /// structurally invalid containers yield a non-OK Status.
  static StatusOr<ShardMap> Deserialize(std::span<const uint8_t> bytes);

 private:
  uint32_t num_shards_ = 1;
  Partition partition_ = Partition::kHash;
  uint32_t salt_ = 0x9E3779B9u;
  uint32_t range_width_ = 1;
};

}  // namespace fesia::shard

#endif  // FESIA_SHARD_SHARD_MAP_H_
