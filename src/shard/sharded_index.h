// A sharded serving index: one IndexManager-backed QueryEngine per shard.
//
// The full InvertedIndex's posting lists are partitioned by the ShardMap
// into per-shard sub-indexes (same term ids, global document ids, each doc
// in exactly one shard), so index size, rebuild time, and hot-swap blast
// radius scale with 1/N instead of the whole corpus. Every shard owns its
// own lifecycle:
//
//   * a per-shard ReplicaSet under `<store_dir>/shard-NN/` — one replica
//     store with the unreplicated layout by default, or
//     `replication_factor` full replicas (each an IndexManager over its
//     own SnapshotStore + WAL) under `shard-NN/replica-MM/`, with
//     fanned-out mutations, failover reads, and anti-entropy repair (see
//     shard/replica_set.h);
//   * per-shard lifecycle isolation, so Rebuild/SaveSnapshot/Reload/
//     rollback on one shard never stalls or disturbs the engines of the
//     others (each manager serializes only its own mutations);
//   * a quarantine bit: a shard whose store is unrecoverable (or that an
//     operator pulled) stops being routed to, and the ShardRouter reports
//     queries as partial (`shards_answered < shards_total`) instead of
//     failing them.
//
// The ShardMap is persisted as `<store_dir>/SHARDMAP` (atomic write) when
// the index is first created; reopening the directory with a different map
// is refused (kFailedPrecondition) — per-shard generations are meaningless
// under any other partitioning.
//
// With an empty store_dir the index is memory-only: engines are built
// directly and hot-swapped through the same accessor, and the persistence
// calls return kFailedPrecondition. This is the mode benchmarks and the
// CLI `batch --shards` path use.
//
// Thread safety: engine()/shard_quarantined()/serving_shards() are
// wait-free and safe from any thread (the TSan hot-swap-under-traffic test
// exercises them against concurrent reloads); the per-shard mutating calls
// are serialized per shard by the underlying IndexManager, and calls for
// different shards may run concurrently.
#ifndef FESIA_SHARD_SHARDED_INDEX_H_
#define FESIA_SHARD_SHARDED_INDEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "shard/replica_set.h"
#include "shard/shard_map.h"
#include "store/index_manager.h"
#include "store/snapshot_store.h"
#include "util/memory_budget.h"
#include "util/shared_ptr_cell.h"

namespace fesia::shard {

struct ShardedIndexOptions {
  /// Build parameters for every per-shard engine.
  FesiaParams params;
  /// Root directory of the shard stores; empty builds a memory-only index
  /// (no SHARDMAP, no stores, persistence calls fail).
  std::string store_dir;
  /// Replica stores per shard (see shard/replica_set.h). 1 keeps the
  /// unreplicated on-disk layout and behavior byte-identical; >= 2 stores
  /// replicas under `shard-NN/replica-MM/` and is pinned to the directory
  /// through `<store_dir>/TOPOLOGY` (reopening with a different factor is
  /// refused). Ignored in memory-only mode.
  uint32_t replication_factor = 1;
  /// Acknowledgement policy for fanned-out mutations (all/quorum).
  AckPolicy ack_policy = AckPolicy::kAll;
  /// Generations retained per shard store.
  size_t max_generations = 3;
  /// Format version stamped on saved generations.
  uint32_t format_version = 1;
  /// Process/store-level memory budget the per-shard sub-budgets charge
  /// into; nullptr means MemoryBudget::Unlimited() (no pressure, byte-
  /// identical behavior). Must outlive the index.
  MemoryBudget* budget = nullptr;
  /// Hard cap of each shard's private sub-budget; 0 leaves the sub-budget
  /// unlimited (charges still roll up into `budget`). One slow/bloated
  /// shard then exhausts only its own allowance instead of starving the
  /// siblings out of the shared parent.
  uint64_t shard_budget_bytes = 0;
  /// Mutation backpressure bounds forwarded to every per-shard
  /// IndexManager (see IndexManager::Options::mutation_soft_bytes /
  /// mutation_hard_bytes); 0 disables. Bounds apply per shard.
  uint64_t mutation_soft_bytes = 0;
  uint64_t mutation_hard_bytes = 0;
};

class ShardedIndex {
 public:
  /// Partitions `full` (which must outlive the index) by `map`, opens (and
  /// recovers) the per-shard stores, and persists/validates the SHARDMAP.
  /// A shard whose store is unrecoverable is quarantined with its error
  /// retained in shard_status() — the remaining shards still serve; only
  /// when the root directory itself is unusable (or the SHARDMAP
  /// mismatches) does Create fail.
  ///
  /// No engines are built yet: follow with RebuildAll() or per-shard
  /// ReloadShard() from existing generations.
  static StatusOr<ShardedIndex> Create(const index::InvertedIndex* full,
                                       const ShardMap& map,
                                       const ShardedIndexOptions& options = {});

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  const ShardMap& shard_map() const { return map_; }
  /// Replica stores per shard (1 for memory-only indexes).
  uint32_t replication_factor() const;
  /// The shard's private sub-index (global doc ids, full term-id space).
  const index::InvertedIndex& shard_index(uint32_t shard) const;
  /// Lifecycle manager of the shard's preferred replica; null for
  /// memory-only indexes and for shards whose stores were all
  /// unrecoverable at Create. Replica-aware callers should use
  /// replica_set() instead.
  store::IndexManager* manager(uint32_t shard) const;
  /// The shard's replica group; null for memory-only indexes and shards
  /// with no usable replica store.
  ReplicaSet* replica_set(uint32_t shard) const;

  /// Serving engine of one shard (null before its first successful
  /// rebuild/reload). Same RCU contract as IndexManager::engine(): the
  /// returned reference stays valid for the caller's whole batch across
  /// concurrent swaps.
  std::shared_ptr<const index::QueryEngine> engine(uint32_t shard) const;

  /// Builds shard `shard`'s engine from its sub-index and publishes it.
  /// Works even for a shard whose store is dead (the engine then serves
  /// memory-only) and clears the quarantine bit on success.
  Status RebuildShard(uint32_t shard);
  /// RebuildShard on every shard; returns the first error but keeps going,
  /// so one bad shard degrades instead of disabling the rest.
  Status RebuildAll();

  /// Persists shard `shard`'s serving engine as a new generation of its
  /// store. kFailedPrecondition when memory-only, quarantined-at-open, or
  /// nothing is being served.
  Status SaveShard(uint32_t shard, uint64_t* generation = nullptr);
  /// SaveShard on every shard; first error, keeps going.
  Status SaveAll();

  /// Hot-swaps shard `shard` to its store's current generation. On failure
  /// the shard's incumbent engine keeps serving untouched (rollback), and
  /// no other shard is affected.
  Status ReloadShard(uint32_t shard);

  // --- Live mutation (routed by the ShardMap) ---------------------------

  /// Opens (or recovers) shard `shard`'s write-ahead log (see
  /// IndexManager::OpenMutationLog). kFailedPrecondition for memory-only
  /// indexes and shards whose store was unrecoverable at Create.
  Status OpenMutationLog(uint32_t shard,
                         store::WalReplayReport* report = nullptr);
  /// OpenMutationLog on every shard; first error, keeps going.
  Status OpenMutationLogs();

  /// Routes the mutation to the shard owning `doc` (per the ShardMap) and
  /// applies IndexManager::Upsert/Delete there — an OK return means the
  /// record is fsynced in that shard's WAL and visible to routed queries.
  /// *shard (when non-null) receives the owning shard.
  Status Upsert(uint32_t doc, std::vector<uint32_t> terms,
                uint64_t* seq = nullptr, uint32_t* shard = nullptr);
  Status Delete(uint32_t doc, uint64_t* seq = nullptr,
                uint32_t* shard = nullptr);

  /// Merges one shard's pending delta into a new generation of its store
  /// (IndexManager::FlushDelta); other shards are untouched — per-shard
  /// merges are fully independent.
  Status FlushShard(uint32_t shard, uint64_t* generation = nullptr);
  /// FlushShard on every shard with pending mutations; first error, keeps
  /// going.
  Status FlushAll();

  /// Consistent per-shard read view (see IndexManager::AcquireView). For
  /// manager-less shards the view wraps the local engine with no delta.
  store::IndexManager::MutationView View(uint32_t shard) const;

  /// Documents with unmerged mutations, summed across shards.
  size_t pending_mutations() const;
  /// Overlay + open-WAL bytes with unmerged mutations, summed across
  /// shards (see IndexManager::pending_bytes()).
  uint64_t pending_bytes() const;

  /// The shard's private sub-budget (child of
  /// ShardedIndexOptions::budget); null when no budget governance was
  /// configured or the shard has no store-backed manager.
  MemoryBudget* shard_budget(uint32_t shard) const;

  /// True when the shard is not being routed to.
  bool shard_quarantined(uint32_t shard) const;
  /// Pulls a shard out of routing / returns it. The engine (if any) is
  /// kept, so revival is instant.
  void QuarantineShard(uint32_t shard);
  void ReviveShard(uint32_t shard);
  /// Last lifecycle status of the shard (the store-open error for shards
  /// quarantined at Create).
  Status shard_status(uint32_t shard) const;

  /// Shards that are neither quarantined nor engine-less — what the router
  /// can actually answer from.
  uint32_t serving_shards() const;

  /// Monotonic counter that advances whenever a routed query's answer may
  /// have changed anywhere in the index: the sum over shards of the
  /// shard-local epoch (local-engine publishes, quarantine/revive) and
  /// each replica group's content_epoch() (mutations, flush publishes,
  /// reloads, repair). The serve-layer result cache (serve/result_cache.h)
  /// reads this before executing a request and invalidates entries from
  /// older epochs; over-counting costs only a miss, never a stale answer.
  uint64_t content_epoch() const;

  // --- Background robustness loops --------------------------------------
  //
  // All Start*/Stop* pairs are idempotent and stopped by the destructor.
  // Stop every loop before moving the index: the loop threads hold a
  // pointer to it.

  /// One anti-entropy repair sweep across every shard's replica group
  /// (ReplicaSet::RepairOnce; first error, keeps going).
  Status RepairOnce();
  /// Starts/stops the background repair loop on every replica group.
  void StartRepair(double interval_seconds);
  void StopRepair();

  /// Starts/stops a background loop that probes quarantined shards every
  /// `interval_seconds` and revives them automatically: instantly when
  /// the shard still holds a serving engine, via ReloadShard otherwise,
  /// with per-shard exponential backoff on repeated failures. Starting
  /// the loop opts shard quarantine into automatic recovery — including
  /// operator-initiated QuarantineShard calls.
  void StartReviveProbes(double interval_seconds);
  void StopReviveProbes();
  /// Probe attempts on quarantined shards / successful automatic revives.
  uint64_t revive_probe_attempts() const;
  uint64_t auto_revives() const;

  /// Fans IndexManager::StartScrub / StartAutoFlush across every replica
  /// of every shard, jittering each replica's interval deterministically
  /// (up to +50%) so the per-store maintenance ticks never align into a
  /// synchronized I/O spike. No-ops in memory-only mode.
  void StartScrubAll(double interval_seconds);
  void StopScrubAll();
  void StartAutoFlushAll(double interval_seconds);
  void StopAutoFlushAll();

  ~ShardedIndex();
  ShardedIndex(ShardedIndex&&) = default;
  ShardedIndex& operator=(ShardedIndex&&) = default;

 private:
  // Per-shard state lives behind a unique_ptr so the atomics and mutexes
  // never move.
  struct Shard {
    std::unique_ptr<index::InvertedIndex> idx;
    /// Child of ShardedIndexOptions::budget; must outlive `replicas`,
    /// whose managers hold a raw pointer to it.
    std::unique_ptr<MemoryBudget> budget;
    /// The shard's replica group (store + manager per replica); null in
    /// memory-only mode and when every replica store was unrecoverable.
    std::unique_ptr<ReplicaSet> replicas;
    /// Serving engine for replica-less shards (memory-only mode or dead
    /// stores); same publication discipline as IndexManager's pointer.
    SharedPtrCell<const index::QueryEngine> local_engine;
    std::atomic<bool> quarantined{false};
    /// Shard-local term of ShardedIndex::content_epoch(): bumped after a
    /// local-engine publish and on every quarantine/revive transition
    /// (routing changes are content changes from the cache's view).
    std::atomic<uint64_t> local_epoch{0};
    std::mutex status_mu;
    Status status;

    void SetStatus(Status s) {
      std::lock_guard<std::mutex> lock(status_mu);
      status = std::move(s);
    }

    void SetQuarantined(bool q) {
      if (quarantined.exchange(q, std::memory_order_relaxed) != q) {
        local_epoch.fetch_add(1, std::memory_order_release);
      }
    }
  };

  /// Revive-probe loop state; behind a unique_ptr so the index stays
  /// movable (move only while the loop is stopped).
  struct ReviveProbeState {
    std::mutex mu;
    std::condition_variable cv;
    bool stop = false;
    std::thread thread;
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> revives{0};
    /// Only the probe thread touches the backoff state.
    std::vector<double> backoff_seconds;
    std::vector<std::chrono::steady_clock::time_point> next_attempt;
  };

  ShardedIndex() = default;

  /// Preferred replica's manager; falls back to the first replica with a
  /// manager (so lifecycle calls still reach a fully-quarantined group).
  store::IndexManager* PrimaryManager(uint32_t shard) const;
  void ReviveProbeLoop(double interval_seconds);

  const index::InvertedIndex* full_ = nullptr;
  ShardMap map_;
  ShardedIndexOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ReviveProbeState> probe_;
};

}  // namespace fesia::shard

#endif  // FESIA_SHARD_SHARDED_INDEX_H_
