#include "shard/shard_map.h"

#include <cstring>

#include "util/byte_io.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace fesia::shard {
namespace {

// "FESIASHM" as a little-endian u64.
constexpr uint64_t kShardMapMagic = 0x4D48534149534546ull;
constexpr uint32_t kShardMapVersion = 1;

}  // namespace

ShardMap ShardMap::Hash(uint32_t num_shards, uint32_t salt) {
  FESIA_CHECK(num_shards >= 1);
  ShardMap map;
  map.num_shards_ = num_shards;
  map.partition_ = Partition::kHash;
  map.salt_ = salt;
  map.range_width_ = 1;
  return map;
}

ShardMap ShardMap::Range(uint32_t num_shards, uint32_t universe) {
  FESIA_CHECK(num_shards >= 1);
  FESIA_CHECK(universe >= 1);
  ShardMap map;
  map.num_shards_ = num_shards;
  map.partition_ = Partition::kRange;
  map.salt_ = 0;
  map.range_width_ = (universe + num_shards - 1) / num_shards;
  if (map.range_width_ == 0) map.range_width_ = 1;
  return map;
}

std::vector<uint8_t> ShardMap::Serialize() const {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.Put(kShardMapMagic);
  w.Put(kShardMapVersion);
  w.Put(num_shards_);
  w.Put(static_cast<uint32_t>(partition_));
  w.Put(salt_);
  w.Put(range_width_);
  w.Put(Crc32c(out.data(), out.size()));
  return out;
}

StatusOr<ShardMap> ShardMap::Deserialize(std::span<const uint8_t> bytes) {
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::Corruption("shard map shorter than its footer");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (stored_crc != Crc32c(bytes.data(), bytes.size() - sizeof(uint32_t))) {
    return Status::Corruption("shard map checksum mismatch");
  }

  ByteReader r(bytes);
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!r.Get(&magic) || magic != kShardMapMagic) {
    return Status::Corruption("bad shard map magic");
  }
  if (!r.Get(&version)) return Status::Corruption("truncated shard map");
  if (version != kShardMapVersion) {
    return Status::InvalidArgument("unsupported shard map version " +
                                   std::to_string(version));
  }
  ShardMap map;
  uint32_t partition = 0;
  if (!r.Get(&map.num_shards_) || !r.Get(&partition) || !r.Get(&map.salt_) ||
      !r.Get(&map.range_width_)) {
    return Status::Corruption("truncated shard map");
  }
  if (map.num_shards_ == 0) {
    return Status::Corruption("shard map names zero shards");
  }
  if (partition != static_cast<uint32_t>(Partition::kHash) &&
      partition != static_cast<uint32_t>(Partition::kRange)) {
    return Status::Corruption("unknown shard map partition kind " +
                              std::to_string(partition));
  }
  map.partition_ = static_cast<Partition>(partition);
  if (map.range_width_ == 0) {
    return Status::Corruption("shard map range width is zero");
  }
  if (r.pos() + sizeof(uint32_t) != bytes.size()) {
    return Status::Corruption("trailing bytes after shard map payload");
  }
  return map;
}

}  // namespace fesia::shard
