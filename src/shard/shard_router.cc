#include "shard/shard_router.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/stats.h"
#include "util/timer.h"

namespace fesia::shard {
namespace {

std::string ShardLabel(uint32_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%02u", shard);
  return buf;
}

// Dominance of reasons a shard is missing from a query's answer: a
// deadline miss outranks shedding outranks failure/unavailability, so a
// partial result reports the most actionable cause.
int MissRank(index::QueryOutcome outcome) {
  switch (outcome) {
    case index::QueryOutcome::kDeadlineExceeded:
      return 3;
    case index::QueryOutcome::kShed:
      return 2;
    default:
      return 1;
  }
}

index::QueryOutcome RankOutcome(int rank) {
  switch (rank) {
    case 3:
      return index::QueryOutcome::kDeadlineExceeded;
    case 2:
      return index::QueryOutcome::kShed;
    default:
      return index::QueryOutcome::kFailed;
  }
}

}  // namespace

index::BatchStats MergeBatchStats(std::span<const index::BatchStats> stats) {
  index::BatchStats merged;
  for (const index::BatchStats& s : stats) {
    // Shard sub-batches overlap in time, so the roll-up wall time is the
    // slowest shard's, not the sum.
    merged.wall_seconds = std::max(merged.wall_seconds, s.wall_seconds);
    merged.latency_seconds.insert(merged.latency_seconds.end(),
                                  s.latency_seconds.begin(),
                                  s.latency_seconds.end());
    merged.ok += s.ok;
    merged.deadline_exceeded += s.deadline_exceeded;
    merged.shed += s.shed;
    merged.failed += s.failed;
    merged.retries += s.retries;
    merged.downgrades += s.downgrades;
    merged.slow_queries += s.slow_queries;
    merged.pressure_shed += s.pressure_shed;
    merged.pressure_downgrades += s.pressure_downgrades;
  }
  if (!merged.latency_seconds.empty()) {
    merged.latency_p50 = Quantile(merged.latency_seconds, 0.5);
    merged.latency_p95 = Quantile(merged.latency_seconds, 0.95);
    merged.latency_max = *std::max_element(merged.latency_seconds.begin(),
                                           merged.latency_seconds.end());
  }
  if (merged.wall_seconds > 0) {
    merged.queries_per_second =
        static_cast<double>(merged.latency_seconds.size()) /
        merged.wall_seconds;
  }
  return merged;
}

ShardRouter::ShardRouter(const ShardedIndex* index) : index_(index) {
  FESIA_CHECK(index != nullptr);
}

std::vector<RoutedQueryResult> ShardRouter::CountBatch(
    std::span<const std::vector<uint32_t>> queries,
    const RouterOptions& options, ShardBatchStats* stats) const {
  return Run(queries, options, stats, /*materialize=*/false);
}

std::vector<RoutedQueryResult> ShardRouter::QueryBatch(
    std::span<const std::vector<uint32_t>> queries,
    const RouterOptions& options, ShardBatchStats* stats) const {
  return Run(queries, options, stats, /*materialize=*/true);
}

std::vector<RoutedQueryResult> ShardRouter::Run(
    std::span<const std::vector<uint32_t>> queries,
    const RouterOptions& options, ShardBatchStats* stats,
    bool materialize) const {
  WallTimer timer;
  const uint32_t total = index_->num_shards();

  // Snapshot one consistent failover chain per serving shard: the
  // preferred replica's view first, then every other live replica's, in
  // failover order. The whole batch runs against one set of engine
  // generations and delta snapshots even if shards hot-swap, take
  // mutations, or quarantine replicas mid-batch (the views' shared_ptrs
  // keep each snapshot alive until the gather finishes).
  struct LiveShard {
    uint32_t shard;
    std::vector<store::IndexManager::MutationView> chain;
  };
  std::vector<LiveShard> live;
  live.reserve(total);
  for (uint32_t s = 0; s < total; ++s) {
    if (index_->shard_quarantined(s)) continue;
    LiveShard ls;
    ls.shard = s;
    if (ReplicaSet* rs = index_->replica_set(s); rs != nullptr) {
      for (int r = rs->PreferredReplica(); r >= 0; r = rs->NextLiveReplica(r)) {
        auto view = rs->View(static_cast<uint32_t>(r));
        if (view.engine != nullptr) ls.chain.push_back(std::move(view));
      }
    } else {
      // Memory-only shards (and shards with no usable replica store)
      // serve one replica-less view.
      auto view = index_->View(s);
      if (view.engine != nullptr) ls.chain.push_back(std::move(view));
    }
    if (!ls.chain.empty()) live.push_back(std::move(ls));
  }
  const uint32_t dead = total - static_cast<uint32_t>(live.size());

  std::vector<RoutedQueryResult> routed(queries.size());
  for (RoutedQueryResult& r : routed) r.shards_total = total;

  std::vector<index::BatchStats> per_shard(total);
  std::vector<std::vector<index::QueryResult>> shard_results(live.size());
  std::atomic<size_t> hedged_requests{0};
  std::atomic<size_t> hedge_wins{0};
  std::atomic<size_t> failover_queries{0};

  if (!live.empty()) {
    size_t width = options.num_threads != 0
                       ? options.num_threads
                       : options.executor.pool().num_threads();
    if (width == 0) width = 1;
    if (width > live.size()) width = live.size();

    // Scatter waves: W workers cover S shards in ceil(S/W) sequential
    // rounds, so each shard sub-query gets 1/waves of the per-query budget
    // to keep the end-to-end latency inside the caller's bound.
    const size_t waves = (live.size() + width - 1) / width;
    const double shard_query_budget =
        options.query_deadline_seconds > 0
            ? options.query_deadline_seconds / static_cast<double>(waves)
            : 0;
    const Deadline batch_deadline =
        options.batch_deadline_seconds > 0
            ? Deadline::After(options.batch_deadline_seconds)
            : Deadline::Infinite();

    // One replica sub-batch: engine batch + delta overlay against a
    // single view. Unmerged mutations overlay the shard's answers before
    // the gather; deltas are routed by document, so per-shard adjustments
    // stay disjoint and compose exactly like the base results do.
    auto run_view = [&](uint32_t shard,
                        const store::IndexManager::MutationView& view,
                        std::span<const std::vector<uint32_t>> qs,
                        size_t sub_threads, index::BatchStats* sub_stats) {
      index::BatchOptions sub;
      sub.num_threads = sub_threads;
      sub.level = options.level;
      sub.executor = options.executor;
      sub.query_deadline_seconds = shard_query_budget;
      if (!batch_deadline.infinite()) {
        // 0 means "no deadline" to the engine; an exhausted batch budget
        // must drain, so clamp to a tiny positive budget instead.
        sub.batch_deadline_seconds =
            std::max(batch_deadline.seconds_left(), 1e-9);
      }
      sub.cancel = options.cancel;
      sub.admission_capacity = options.admission_capacity;
      sub.retry = options.retry;
      sub.intra_query_threads = options.intra_query_threads;
      sub.slow_query_seconds = options.slow_query_seconds;
      sub.budget = options.budget != nullptr ? options.budget
                                             : index_->shard_budget(shard);
      sub.priority = options.priority;
      std::vector<index::QueryResult> results =
          materialize ? view.engine->QueryBatch(qs, sub, sub_stats)
                      : view.engine->CountBatch(qs, sub, sub_stats);
      if (view.delta != nullptr) {
        store::OverlayAdjustResults(*view.base, *view.delta, qs, materialize,
                                    results);
      }
      return results;
    };

    auto run_shard = [&](size_t li, size_t sub_threads) {
      const LiveShard& ls = live[li];
      const auto& chain = ls.chain;
      std::vector<index::QueryResult> results;
      index::BatchStats win_stats;
      size_t winner = 0;  // chain index that produced `results`

      if (options.hedge_delay_seconds > 0 && chain.size() >= 2) {
        // Hedged sub-batch: the primary runs on a helper thread; if it
        // has not answered after the hedge delay the same sub-batch runs
        // on the next live replica, and whichever finishes first wins.
        // Content is identical either way — the hedge trades duplicated
        // work for a bound on single-replica tail latency.
        std::mutex mu;
        std::condition_variable cv;
        bool primary_done = false;
        std::vector<index::QueryResult> primary_results;
        index::BatchStats primary_stats;
        std::thread primary([&] {
          primary_results =
              run_view(ls.shard, chain[0], queries, sub_threads,
                       &primary_stats);
          {
            std::lock_guard<std::mutex> lock(mu);
            primary_done = true;
          }
          cv.notify_all();
        });
        bool issue_hedge = false;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait_for(
              lock,
              std::chrono::duration<double>(options.hedge_delay_seconds),
              [&] { return primary_done; });
          issue_hedge = !primary_done;
        }
        bool hedge_won = false;
        std::vector<index::QueryResult> hedge_results;
        index::BatchStats hedge_stats;
        if (issue_hedge) {
          hedged_requests.fetch_add(1, std::memory_order_relaxed);
          hedge_results = run_view(ls.shard, chain[1], queries, sub_threads,
                                   &hedge_stats);
          std::lock_guard<std::mutex> lock(mu);
          hedge_won = !primary_done;
        }
        primary.join();
        if (hedge_won) {
          hedge_wins.fetch_add(1, std::memory_order_relaxed);
          results = std::move(hedge_results);
          win_stats = std::move(hedge_stats);
          winner = 1;
        } else {
          results = std::move(primary_results);
          win_stats = std::move(primary_stats);
        }
      } else {
        results =
            run_view(ls.shard, chain[0], queries, sub_threads, &win_stats);
      }

      // Failover: re-ask the remaining live replicas for exactly the
      // sub-queries the winning replica could not answer. Rescued answers
      // are byte-identical to the primary's (replicas hold the same
      // acknowledged content), so this recovers availability without
      // changing any result.
      if (options.replica_failover && chain.size() > 1) {
        std::vector<size_t> failed;
        for (size_t q = 0; q < results.size(); ++q) {
          if (!results[q].ok()) failed.push_back(q);
        }
        for (size_t ci = 0; ci < chain.size() && !failed.empty(); ++ci) {
          if (ci == winner) continue;
          std::vector<std::vector<uint32_t>> subset;
          subset.reserve(failed.size());
          for (size_t q : failed) subset.push_back(queries[q]);
          index::BatchStats retry_stats;
          auto retried =
              run_view(ls.shard, chain[ci], subset, 1, &retry_stats);
          std::vector<size_t> still_failed;
          for (size_t i = 0; i < failed.size(); ++i) {
            if (retried[i].ok()) {
              results[failed[i]] = std::move(retried[i]);
              failover_queries.fetch_add(1, std::memory_order_relaxed);
            } else {
              still_failed.push_back(failed[i]);
            }
          }
          failed = std::move(still_failed);
        }
      }

      per_shard[ls.shard] = std::move(win_stats);
      shard_results[li] = std::move(results);
    };

    if (live.size() == 1) {
      // Single serving shard: no scatter — give the shard the caller's
      // full parallelism so N=1 matches the plain engine path.
      run_shard(0, options.num_threads);
    } else {
      std::atomic<size_t> next{0};
      ParallelFor(
          0, width, width,
          [&](size_t, size_t, size_t) {
            for (size_t li = next.fetch_add(1); li < live.size();
                 li = next.fetch_add(1)) {
              run_shard(li, 1);
            }
          },
          options.executor);
    }
  }

  // Gather. Documents are shard-disjoint: counts add and doc lists merge
  // by sorting the concatenation, reproducing the single-engine result
  // byte for byte when every shard answers.
  std::vector<int> miss_rank(queries.size(), dead > 0 ? 1 : 0);
  std::vector<Status> miss_status(
      queries.size(),
      dead > 0 ? Status::Unavailable(std::to_string(dead) +
                                     " shard(s) quarantined or not serving")
               : Status::Ok());
  for (size_t li = 0; li < shard_results.size(); ++li) {
    const std::vector<index::QueryResult>& sub = shard_results[li];
    FESIA_CHECK(sub.size() == queries.size());
    for (size_t q = 0; q < sub.size(); ++q) {
      const index::QueryResult& r = sub[q];
      RoutedQueryResult& out = routed[q];
      out.latency_seconds = std::max(out.latency_seconds, r.latency_seconds);
      out.attempts = std::max(out.attempts, r.attempts);
      out.pressure_affected |= r.pressure_affected;
      if (r.ok()) {
        ++out.shards_answered;
        out.count += r.count;
        out.downgraded |= r.downgraded;
        if (materialize) {
          out.docs.insert(out.docs.end(), r.docs.begin(), r.docs.end());
        }
      } else {
        const int rank = MissRank(r.outcome);
        if (rank > miss_rank[q]) {
          miss_rank[q] = rank;
          miss_status[q] = r.status;
        }
      }
    }
  }

  size_t complete = 0;
  for (size_t q = 0; q < routed.size(); ++q) {
    RoutedQueryResult& out = routed[q];
    if (materialize) std::sort(out.docs.begin(), out.docs.end());
    if (out.complete()) {
      out.outcome = index::QueryOutcome::kOk;
      out.status = Status::Ok();
      ++complete;
    } else {
      out.outcome = RankOutcome(miss_rank[q]);
      out.status = miss_status[q];
    }
  }

  if (stats != nullptr) {
    *stats = ShardBatchStats{};
    stats->shard_labels.reserve(total);
    for (uint32_t s = 0; s < total; ++s) {
      stats->shard_labels.push_back(ShardLabel(s));
    }
    std::vector<index::BatchStats> serving;
    serving.reserve(live.size());
    for (const LiveShard& ls : live) serving.push_back(per_shard[ls.shard]);
    stats->per_shard = std::move(per_shard);
    stats->merged = MergeBatchStats(serving);

    stats->wall_seconds = timer.Seconds();
    if (stats->wall_seconds > 0) {
      stats->queries_per_second =
          static_cast<double>(queries.size()) / stats->wall_seconds;
    }
    stats->latency_seconds.reserve(routed.size());
    for (const RoutedQueryResult& r : routed) {
      stats->latency_seconds.push_back(r.latency_seconds);
    }
    if (!stats->latency_seconds.empty()) {
      stats->latency_p50 = Quantile(stats->latency_seconds, 0.5);
      stats->latency_p95 = Quantile(stats->latency_seconds, 0.95);
      stats->latency_p99 = Quantile(stats->latency_seconds, 0.99);
      stats->latency_max = *std::max_element(stats->latency_seconds.begin(),
                                             stats->latency_seconds.end());
    }
    stats->complete_queries = complete;
    stats->partial_queries = routed.size() - complete;
    stats->shards_total = total;
    stats->shards_serving = static_cast<uint32_t>(live.size());
    stats->hedged_requests = hedged_requests.load(std::memory_order_relaxed);
    stats->hedge_wins = hedge_wins.load(std::memory_order_relaxed);
    stats->failover_queries =
        failover_queries.load(std::memory_order_relaxed);
  }
  return routed;
}

}  // namespace fesia::shard
