#include "shard/shard_router.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <utility>

#include "util/check.h"
#include "util/stats.h"
#include "util/timer.h"

namespace fesia::shard {
namespace {

std::string ShardLabel(uint32_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%02u", shard);
  return buf;
}

// Dominance of reasons a shard is missing from a query's answer: a
// deadline miss outranks shedding outranks failure/unavailability, so a
// partial result reports the most actionable cause.
int MissRank(index::QueryOutcome outcome) {
  switch (outcome) {
    case index::QueryOutcome::kDeadlineExceeded:
      return 3;
    case index::QueryOutcome::kShed:
      return 2;
    default:
      return 1;
  }
}

index::QueryOutcome RankOutcome(int rank) {
  switch (rank) {
    case 3:
      return index::QueryOutcome::kDeadlineExceeded;
    case 2:
      return index::QueryOutcome::kShed;
    default:
      return index::QueryOutcome::kFailed;
  }
}

}  // namespace

index::BatchStats MergeBatchStats(std::span<const index::BatchStats> stats) {
  index::BatchStats merged;
  for (const index::BatchStats& s : stats) {
    // Shard sub-batches overlap in time, so the roll-up wall time is the
    // slowest shard's, not the sum.
    merged.wall_seconds = std::max(merged.wall_seconds, s.wall_seconds);
    merged.latency_seconds.insert(merged.latency_seconds.end(),
                                  s.latency_seconds.begin(),
                                  s.latency_seconds.end());
    merged.ok += s.ok;
    merged.deadline_exceeded += s.deadline_exceeded;
    merged.shed += s.shed;
    merged.failed += s.failed;
    merged.retries += s.retries;
    merged.downgrades += s.downgrades;
    merged.slow_queries += s.slow_queries;
    merged.pressure_shed += s.pressure_shed;
    merged.pressure_downgrades += s.pressure_downgrades;
  }
  if (!merged.latency_seconds.empty()) {
    merged.latency_p50 = Quantile(merged.latency_seconds, 0.5);
    merged.latency_p95 = Quantile(merged.latency_seconds, 0.95);
    merged.latency_max = *std::max_element(merged.latency_seconds.begin(),
                                           merged.latency_seconds.end());
  }
  if (merged.wall_seconds > 0) {
    merged.queries_per_second =
        static_cast<double>(merged.latency_seconds.size()) /
        merged.wall_seconds;
  }
  return merged;
}

ShardRouter::ShardRouter(const ShardedIndex* index) : index_(index) {
  FESIA_CHECK(index != nullptr);
}

std::vector<RoutedQueryResult> ShardRouter::CountBatch(
    std::span<const std::vector<uint32_t>> queries,
    const RouterOptions& options, ShardBatchStats* stats) const {
  return Run(queries, options, stats, /*materialize=*/false);
}

std::vector<RoutedQueryResult> ShardRouter::QueryBatch(
    std::span<const std::vector<uint32_t>> queries,
    const RouterOptions& options, ShardBatchStats* stats) const {
  return Run(queries, options, stats, /*materialize=*/true);
}

std::vector<RoutedQueryResult> ShardRouter::Run(
    std::span<const std::vector<uint32_t>> queries,
    const RouterOptions& options, ShardBatchStats* stats,
    bool materialize) const {
  WallTimer timer;
  const uint32_t total = index_->num_shards();

  // Snapshot one consistent view per serving shard: the whole batch runs
  // against one set of engine generations and delta snapshots even if
  // shards hot-swap or take mutations mid-batch (the view's shared_ptrs
  // keep each snapshot alive until the gather finishes).
  struct LiveShard {
    uint32_t shard;
    store::IndexManager::MutationView view;
  };
  std::vector<LiveShard> live;
  live.reserve(total);
  for (uint32_t s = 0; s < total; ++s) {
    if (index_->shard_quarantined(s)) continue;
    auto view = index_->View(s);
    if (view.engine != nullptr) live.push_back({s, std::move(view)});
  }
  const uint32_t dead = total - static_cast<uint32_t>(live.size());

  std::vector<RoutedQueryResult> routed(queries.size());
  for (RoutedQueryResult& r : routed) r.shards_total = total;

  std::vector<index::BatchStats> per_shard(total);
  std::vector<std::vector<index::QueryResult>> shard_results(live.size());

  if (!live.empty()) {
    size_t width = options.num_threads != 0
                       ? options.num_threads
                       : options.executor.pool().num_threads();
    if (width == 0) width = 1;
    if (width > live.size()) width = live.size();

    // Scatter waves: W workers cover S shards in ceil(S/W) sequential
    // rounds, so each shard sub-query gets 1/waves of the per-query budget
    // to keep the end-to-end latency inside the caller's bound.
    const size_t waves = (live.size() + width - 1) / width;
    const double shard_query_budget =
        options.query_deadline_seconds > 0
            ? options.query_deadline_seconds / static_cast<double>(waves)
            : 0;
    const Deadline batch_deadline =
        options.batch_deadline_seconds > 0
            ? Deadline::After(options.batch_deadline_seconds)
            : Deadline::Infinite();

    auto run_shard = [&](size_t li, size_t sub_threads) {
      index::BatchOptions sub;
      sub.num_threads = sub_threads;
      sub.level = options.level;
      sub.executor = options.executor;
      sub.query_deadline_seconds = shard_query_budget;
      if (!batch_deadline.infinite()) {
        // 0 means "no deadline" to the engine; an exhausted batch budget
        // must drain, so clamp to a tiny positive budget instead.
        sub.batch_deadline_seconds =
            std::max(batch_deadline.seconds_left(), 1e-9);
      }
      sub.cancel = options.cancel;
      sub.admission_capacity = options.admission_capacity;
      sub.retry = options.retry;
      sub.intra_query_threads = options.intra_query_threads;
      sub.slow_query_seconds = options.slow_query_seconds;
      sub.budget = options.budget != nullptr
                       ? options.budget
                       : index_->shard_budget(live[li].shard);
      sub.priority = options.priority;
      index::BatchStats* sub_stats = &per_shard[live[li].shard];
      const store::IndexManager::MutationView& view = live[li].view;
      shard_results[li] =
          materialize ? view.engine->QueryBatch(queries, sub, sub_stats)
                      : view.engine->CountBatch(queries, sub, sub_stats);
      // Unmerged mutations overlay this shard's answers before the gather;
      // deltas are routed by document, so per-shard adjustments stay
      // disjoint and compose exactly like the base results do.
      if (view.delta != nullptr) {
        store::OverlayAdjustResults(*view.base, *view.delta, queries,
                                    materialize, shard_results[li]);
      }
    };

    if (live.size() == 1) {
      // Single serving shard: no scatter — give the shard the caller's
      // full parallelism so N=1 matches the plain engine path.
      run_shard(0, options.num_threads);
    } else {
      std::atomic<size_t> next{0};
      ParallelFor(
          0, width, width,
          [&](size_t, size_t, size_t) {
            for (size_t li = next.fetch_add(1); li < live.size();
                 li = next.fetch_add(1)) {
              run_shard(li, 1);
            }
          },
          options.executor);
    }
  }

  // Gather. Documents are shard-disjoint: counts add and doc lists merge
  // by sorting the concatenation, reproducing the single-engine result
  // byte for byte when every shard answers.
  std::vector<int> miss_rank(queries.size(), dead > 0 ? 1 : 0);
  std::vector<Status> miss_status(
      queries.size(),
      dead > 0 ? Status::Unavailable(std::to_string(dead) +
                                     " shard(s) quarantined or not serving")
               : Status::Ok());
  for (size_t li = 0; li < shard_results.size(); ++li) {
    const std::vector<index::QueryResult>& sub = shard_results[li];
    FESIA_CHECK(sub.size() == queries.size());
    for (size_t q = 0; q < sub.size(); ++q) {
      const index::QueryResult& r = sub[q];
      RoutedQueryResult& out = routed[q];
      out.latency_seconds = std::max(out.latency_seconds, r.latency_seconds);
      if (r.ok()) {
        ++out.shards_answered;
        out.count += r.count;
        out.downgraded |= r.downgraded;
        if (materialize) {
          out.docs.insert(out.docs.end(), r.docs.begin(), r.docs.end());
        }
      } else {
        const int rank = MissRank(r.outcome);
        if (rank > miss_rank[q]) {
          miss_rank[q] = rank;
          miss_status[q] = r.status;
        }
      }
    }
  }

  size_t complete = 0;
  for (size_t q = 0; q < routed.size(); ++q) {
    RoutedQueryResult& out = routed[q];
    if (materialize) std::sort(out.docs.begin(), out.docs.end());
    if (out.complete()) {
      out.outcome = index::QueryOutcome::kOk;
      out.status = Status::Ok();
      ++complete;
    } else {
      out.outcome = RankOutcome(miss_rank[q]);
      out.status = miss_status[q];
    }
  }

  if (stats != nullptr) {
    *stats = ShardBatchStats{};
    stats->shard_labels.reserve(total);
    for (uint32_t s = 0; s < total; ++s) {
      stats->shard_labels.push_back(ShardLabel(s));
    }
    std::vector<index::BatchStats> serving;
    serving.reserve(live.size());
    for (const LiveShard& ls : live) serving.push_back(per_shard[ls.shard]);
    stats->per_shard = std::move(per_shard);
    stats->merged = MergeBatchStats(serving);

    stats->wall_seconds = timer.Seconds();
    if (stats->wall_seconds > 0) {
      stats->queries_per_second =
          static_cast<double>(queries.size()) / stats->wall_seconds;
    }
    stats->latency_seconds.reserve(routed.size());
    for (const RoutedQueryResult& r : routed) {
      stats->latency_seconds.push_back(r.latency_seconds);
    }
    if (!stats->latency_seconds.empty()) {
      stats->latency_p50 = Quantile(stats->latency_seconds, 0.5);
      stats->latency_p95 = Quantile(stats->latency_seconds, 0.95);
      stats->latency_p99 = Quantile(stats->latency_seconds, 0.99);
      stats->latency_max = *std::max_element(stats->latency_seconds.begin(),
                                             stats->latency_seconds.end());
    }
    stats->complete_queries = complete;
    stats->partial_queries = routed.size() - complete;
    stats->shards_total = total;
    stats->shards_serving = static_cast<uint32_t>(live.size());
  }
  return routed;
}

}  // namespace fesia::shard
