// Per-shard replication: a group of replica stores serving one shard
// (docs/ROBUSTNESS.md, "Replication, failover, and repair").
//
// A ReplicaSet owns `replication_factor` full store replicas of a single
// shard, each an IndexManager over its own SnapshotStore + WAL. With
// replication_factor == 1 the replica lives directly in the shard
// directory — byte-identical on disk and in behavior to the unreplicated
// layout, so existing stores reopen unchanged. With factor >= 2 each
// replica lives under `<dir>/replica-MM/` with its own generations,
// manifest, and log.
//
// Mutations are sequenced once by the set and fanned out to every live
// replica with the same seq (IndexManager::ApplyReplicated), durable
// before acknowledged, under a configurable ack policy:
//
//   * kAll    — every live (non-quarantined) replica must acknowledge;
//     a replica that fails mid-fan-out is quarantined as stale and the
//     mutation reports the failure (it may still be durable on the
//     replicas that acknowledged — repair reconciles them);
//   * kQuorum — a majority of *all* replicas (floor(rf/2)+1) must
//     acknowledge; failed replicas are quarantined and repaired in the
//     background while writes keep flowing.
//
// Reads pick the preferred replica (lowest-index serving one) and the
// ShardRouter fails over to the next live replica on failure; replicas
// hold identical logical content, so failover answers are byte-identical.
// A replica that misses an acknowledged write is pulled from read routing
// (quarantined) rather than allowed to serve stale answers.
//
// Anti-entropy repair: RepairReplica re-syncs a lagging or quarantined
// replica from the healthiest peer — snapshot copy through the
// atomic-write protocol (ExportSnapshot/ImportSnapshot), then WAL
// catch-up of the seq gap from the peer's delta overlay, then a final
// catch-up under the mutation lock so no write can slip between sync and
// revive. Every step is idempotent: a crash anywhere (the
// repair-crash-before-* fault points) leaves the replica quarantined and
// the next cycle completes the job with zero acked-mutation loss.
// StartRepair runs the loop in the background with per-replica
// exponential backoff.
//
// Thread safety: mutations and repair serialize on an internal mutex;
// read-side accessors (PreferredReplica/View/replica_quarantined) are
// safe from any thread under the same RCU discipline as IndexManager.
#ifndef FESIA_SHARD_REPLICA_SET_H_
#define FESIA_SHARD_REPLICA_SET_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "index/inverted_index.h"
#include "store/index_manager.h"
#include "store/snapshot_store.h"
#include "util/memory_budget.h"

namespace fesia::shard {

/// When a fanned-out mutation counts as acknowledged (see file comment).
enum class AckPolicy {
  kAll = 0,
  kQuorum = 1,
};

struct ReplicaSetOptions {
  /// Build parameters for every replica's engine.
  FesiaParams params;
  /// Shard store directory. Factor 1 stores directly here; factor >= 2
  /// stores under `<dir>/replica-MM/`.
  std::string dir;
  /// Replica stores per shard; must be >= 1.
  uint32_t replication_factor = 1;
  AckPolicy ack_policy = AckPolicy::kAll;
  /// Generations retained per replica store.
  size_t max_generations = 3;
  /// Format version stamped on saved generations.
  uint32_t format_version = 1;
  /// Budget every replica's manager charges into (typically the shard's
  /// sub-budget); nullptr means MemoryBudget::Unlimited(). Must outlive
  /// the set.
  MemoryBudget* budget = nullptr;
  /// Mutation backpressure bounds forwarded to every replica's manager;
  /// 0 disables. Bounds apply per replica.
  uint64_t mutation_soft_bytes = 0;
  uint64_t mutation_hard_bytes = 0;
  /// Ceiling of the repair loop's per-replica exponential backoff.
  double repair_backoff_max_seconds = 30.0;
};

class ReplicaSet {
 public:
  /// Opens (and recovers) every replica store under `options.dir`. A
  /// replica whose store is unrecoverable is quarantined with its error
  /// retained in replica_status() — the set still serves as long as at
  /// least one replica opened; only when every replica is unusable does
  /// Open fail. `idx` (the shard's sub-index) must outlive the set.
  static StatusOr<std::unique_ptr<ReplicaSet>> Open(
      const index::InvertedIndex* idx, const ReplicaSetOptions& options);

  ~ReplicaSet();
  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  uint32_t num_replicas() const {
    return static_cast<uint32_t>(replicas_.size());
  }
  /// Lifecycle manager of one replica; null when its store was
  /// unrecoverable at Open.
  store::IndexManager* manager(uint32_t replica) const;
  /// The replica's snapshot store; null when unrecoverable at Open.
  store::SnapshotStore* store(uint32_t replica) const;

  // --- Lifecycle fan-out (first error, keeps going) ---------------------

  /// Rebuilds every usable replica's engine from the shard sub-index and
  /// clears its quarantine on success.
  Status Rebuild();
  /// Persists every serving replica's engine as a new generation of its
  /// own store.
  Status Save();
  /// Hot-swaps every usable replica to its store's current generation;
  /// clears the replica's quarantine on success.
  Status Reload();
  /// Opens (or recovers) every usable replica's write-ahead log. *report
  /// (when non-null) receives the report of the dirtiest replay.
  Status OpenMutationLogs(store::WalReplayReport* report = nullptr);

  // --- Mutations (sequenced once, fanned out) ---------------------------

  /// Durably records the mutation on the live replicas under the ack
  /// policy; OK means it is acknowledged (fsynced everywhere the policy
  /// requires) and visible to routed queries. A live replica that fails
  /// the apply is quarantined as stale. kUnavailable when no replica can
  /// take writes or the policy's ack count is not reached. *seq (when
  /// non-null) receives the assigned seq.
  Status Upsert(uint32_t doc, std::vector<uint32_t> terms,
                uint64_t* seq = nullptr);
  Status Delete(uint32_t doc, uint64_t* seq = nullptr);

  /// Merges every serving replica's pending delta into a new generation
  /// of its own store (first error, keeps going). *generation (when
  /// non-null) receives the preferred replica's serving generation.
  Status Flush(uint64_t* generation = nullptr);

  // --- Reads ------------------------------------------------------------

  /// Lowest-index serving replica (not quarantined, engine published), or
  /// -1 when none serves. Deterministic preference keeps factor-1 reads
  /// on the one replica and makes failover order predictable.
  int PreferredReplica() const;
  /// Next serving replica with index > `after`, or -1. Chain
  /// PreferredReplica/NextLiveReplica to enumerate the failover order.
  int NextLiveReplica(int after) const;
  /// Consistent read view of one replica (see IndexManager::AcquireView).
  store::IndexManager::MutationView View(uint32_t replica) const;
  /// View of the preferred replica; an empty view when none serves.
  store::IndexManager::MutationView PreferredView() const;

  // --- Quarantine and status --------------------------------------------

  bool replica_quarantined(uint32_t replica) const;
  /// Pulls a replica out of read routing and mutation fan-out / returns
  /// it. The engine (if any) is kept, so revival is instant.
  void QuarantineReplica(uint32_t replica);
  void ReviveReplica(uint32_t replica);
  /// Last lifecycle status of the replica (the store-open error for
  /// replicas quarantined at Open, the last repair error for replicas the
  /// repair loop is still chasing).
  Status replica_status(uint32_t replica) const;
  /// Replicas that are neither quarantined nor engine-less.
  uint32_t serving_replicas() const;

  // --- Sync points ------------------------------------------------------

  /// Highest seq this set acknowledged under its ack policy (0 before any
  /// mutation; after a cold open, the highest seq durable on any replica
  /// — conservatively treated as acked so repair converges everyone).
  uint64_t last_acked_seq() const;
  /// The replica's durable seq (see IndexManager::durable_seq); 0 for a
  /// replica with no manager.
  uint64_t replica_durable_seq(uint32_t replica) const;

  // --- Anti-entropy repair ----------------------------------------------

  /// True when the replica diverged from its healthiest peer: it is
  /// quarantined, serves no engine while a peer does, or its durable seq
  /// trails the maximum across serving replicas.
  bool NeedsRepair(uint32_t replica) const;

  /// Re-syncs one replica from the healthiest serving peer (see the file
  /// comment for the protocol) and revives it. kFailedPrecondition for a
  /// replica with no manager (store unrecoverable at Open — a process
  /// restart re-runs store recovery); kUnavailable when no peer can act
  /// as a source. Idempotent under crash-retry.
  Status RepairReplica(uint32_t replica);

  /// One repair sweep: RepairReplica on every replica needing it (first
  /// error, keeps going; backoff is not consulted — this is the direct
  /// entry point the background loop and operators share).
  Status RepairOnce();

  /// Starts/stops the background repair loop: every `interval_seconds` it
  /// sweeps for diverged replicas and repairs them, backing off
  /// per-replica exponentially (up to repair_backoff_max_seconds) on
  /// repeated failures. Idempotent; the destructor stops it.
  void StartRepair(double interval_seconds);
  void StopRepair();

  /// Monotonic counter that advances whenever a routed read through this
  /// set may answer differently: the sum of every replica manager's
  /// content_epoch() (mutations, flush publishes, reloads, repair imports)
  /// plus a topology term bumped on every quarantine/revive transition
  /// (which moves reads onto a different replica). The serve-layer result
  /// cache invalidates on any change; over-counting only costs a cache
  /// miss, never a stale answer.
  uint64_t content_epoch() const;

  /// Replicas successfully re-synced and revived by RepairReplica.
  uint64_t repairs() const {
    return repairs_.load(std::memory_order_relaxed);
  }
  /// Failed repair attempts (visible backoff pressure).
  uint64_t repair_failures() const {
    return repair_failures_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-replica state behind a unique_ptr so atomics and mutexes never
  /// move.
  struct Replica {
    std::unique_ptr<store::SnapshotStore> store;
    std::unique_ptr<store::IndexManager> manager;
    std::atomic<bool> quarantined{false};
    mutable std::mutex status_mu;
    Status status;
    /// Repair-loop backoff state; guarded by repair_mu_.
    double backoff_seconds = 0;
    std::chrono::steady_clock::time_point next_attempt{};

    void SetStatus(Status s) {
      std::lock_guard<std::mutex> lock(status_mu);
      status = std::move(s);
    }
  };

  ReplicaSet() = default;

  /// Sequencing + fan-out shared by Upsert/Delete. Caller passes a
  /// validated, normalized record body (seq assigned inside).
  Status ApplyMutation(store::WalRecord record, uint64_t* seq);
  /// Applies the catch-up suffix (peer delta records with seq above the
  /// target's durable seq) to `target`.
  Status CatchUpFromPeer(store::IndexManager* target,
                         const store::IndexManager::MutationView& peer_view);
  /// Serving replica with the highest durable seq, excluding `exclude`;
  /// -1 when none.
  int HealthiestPeer(uint32_t exclude) const;
  /// Sets the replica's quarantine flag, bumping topology_epoch_ on an
  /// actual transition so cached results keyed on content_epoch() are
  /// invalidated whenever read routing changes.
  void SetQuarantined(Replica& rep, bool q);
  void RepairLoop(double interval_seconds);

  const index::InvertedIndex* idx_ = nullptr;
  ReplicaSetOptions options_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  /// Serializes mutation sequencing/fan-out and the repair commit step.
  mutable std::mutex mu_;
  uint64_t next_seq_ = 1;     // guarded by mu_
  uint64_t last_acked_ = 0;   // guarded by mu_

  std::atomic<uint64_t> repairs_{0};
  std::atomic<uint64_t> repair_failures_{0};
  /// Topology term of content_epoch(): bumped on every quarantine/revive
  /// transition, including the quarantines Open and the mutation fan-out
  /// impose and the revive at the end of a successful repair.
  std::atomic<uint64_t> topology_epoch_{0};

  std::mutex repair_mu_;
  std::condition_variable repair_cv_;
  bool repair_stop_ = false;
  std::thread repair_thread_;
};

}  // namespace fesia::shard

#endif  // FESIA_SHARD_REPLICA_SET_H_
