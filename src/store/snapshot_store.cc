#include "store/snapshot_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "util/byte_io.h"
#include "util/crc32c.h"

namespace fesia::store {
namespace {

namespace fs = std::filesystem;

// "FESIASNP" / "FESIAMAN" as little-endian u64.
constexpr uint64_t kGenerationMagic = 0x504E534149534546ull;
constexpr uint64_t kManifestMagic = 0x4E414D4149534546ull;
constexpr uint32_t kWrapperVersion = 1;
constexpr uint32_t kManifestVersion = 1;
// magic + wrapper version + format version + generation + payload size.
constexpr size_t kWrapperHeaderBytes = 8 + 4 + 4 + 8 + 8;
constexpr size_t kCrcBytes = sizeof(uint32_t);

std::string GenerationFileName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snap.%06llu",
                static_cast<unsigned long long>(generation));
  return buf;
}

// snap.NNNNNN (digits only after the dot) -> generation id.
bool ParseGenerationFileName(const std::string& name, uint64_t* generation) {
  if (name.rfind("snap.", 0) != 0 || name.size() <= 5) return false;
  uint64_t g = 0;
  for (size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    g = g * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *generation = g;
  return true;
}

// Parses and fully validates one generation file: whole-file CRC first,
// then the header fields. On success fills *info (payload_crc computed
// from the payload) and *payload.
Status ParseGenerationFile(std::span<const uint8_t> bytes,
                           SnapshotStore::GenerationInfo* info,
                           std::vector<uint8_t>* payload) {
  if (bytes.size() < kWrapperHeaderBytes + kCrcBytes) {
    return Status::Corruption("generation file shorter than its header");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - kCrcBytes,
              kCrcBytes);
  if (stored_crc != Crc32c(bytes.data(), bytes.size() - kCrcBytes)) {
    return Status::Corruption("generation file checksum mismatch");
  }
  ByteReader r(bytes);
  uint64_t magic = 0;
  uint32_t wrapper_version = 0;
  if (!r.Get(&magic) || magic != kGenerationMagic) {
    return Status::Corruption("bad generation file magic");
  }
  if (!r.Get(&wrapper_version) || wrapper_version != kWrapperVersion) {
    return Status::Corruption("unsupported generation wrapper version");
  }
  uint64_t payload_bytes = 0;
  if (!r.Get(&info->format_version) || !r.Get(&info->generation) ||
      !r.Get(&payload_bytes)) {
    return Status::Corruption("truncated generation header");
  }
  if (payload_bytes != bytes.size() - kWrapperHeaderBytes - kCrcBytes) {
    return Status::Corruption("generation payload size disagrees with file");
  }
  FESIA_RETURN_IF_ERROR(r.GetRawArray(payload, payload_bytes));
  info->payload_bytes = payload_bytes;
  info->payload_crc = Crc32c(payload->data(), payload->size());
  return Status::Ok();
}

Status ParseManifest(std::span<const uint8_t> bytes,
                     std::vector<SnapshotStore::GenerationInfo>* entries) {
  if (bytes.size() < 8 + 4 + 4 + kCrcBytes) {
    return Status::Corruption("manifest shorter than its header");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - kCrcBytes,
              kCrcBytes);
  if (stored_crc != Crc32c(bytes.data(), bytes.size() - kCrcBytes)) {
    return Status::Corruption("manifest checksum mismatch");
  }
  ByteReader r(bytes);
  uint64_t magic = 0;
  uint32_t version = 0, count = 0;
  if (!r.Get(&magic) || magic != kManifestMagic) {
    return Status::Corruption("bad manifest magic");
  }
  if (!r.Get(&version) || version != kManifestVersion) {
    return Status::Corruption("unsupported manifest version");
  }
  if (!r.Get(&count)) return Status::Corruption("truncated manifest header");
  entries->clear();
  uint64_t prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    SnapshotStore::GenerationInfo e;
    if (!r.Get(&e.generation) || !r.Get(&e.payload_bytes) ||
        !r.Get(&e.payload_crc) || !r.Get(&e.format_version)) {
      return Status::Corruption("truncated manifest entry");
    }
    if (e.generation == 0 || e.generation <= prev) {
      return Status::Corruption("manifest generations not ascending");
    }
    prev = e.generation;
    entries->push_back(e);
  }
  if (r.remaining() != kCrcBytes) {
    return Status::Corruption("trailing bytes after manifest entries");
  }
  return Status::Ok();
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::string s = recovered_generation == 0
                      ? "store empty"
                      : "recovered generation " +
                            std::to_string(recovered_generation);
  if (manifest_missing) s += ", manifest missing";
  if (manifest_corrupt) s += ", manifest corrupt";
  if (!quarantined.empty()) {
    s += ", quarantined";
    for (uint64_t g : quarantined) s += " " + std::to_string(g);
  }
  if (missing_files > 0) {
    s += ", " + std::to_string(missing_files) + " manifest entries missing "
         "their file";
  }
  if (temp_files_removed > 0) {
    s += ", " + std::to_string(temp_files_removed) + " temp files removed";
  }
  return s;
}

std::string SnapshotStore::GenerationPath(uint64_t generation) const {
  return options_.dir + "/" + GenerationFileName(generation);
}

std::string SnapshotStore::ManifestPath() const {
  return options_.dir + "/MANIFEST";
}

Status SnapshotStore::WriteManifest() const {
  std::vector<uint8_t> bytes;
  ByteWriter w(&bytes);
  w.Put(kManifestMagic);
  w.Put(kManifestVersion);
  w.Put(static_cast<uint32_t>(entries_.size()));
  for (const GenerationInfo& e : entries_) {
    w.Put(e.generation);
    w.Put(e.payload_bytes);
    w.Put(e.payload_crc);
    w.Put(e.format_version);
  }
  w.Put(Crc32c(bytes.data(), bytes.size()));
  return AtomicWriteFileBytes(ManifestPath(), bytes.data(), bytes.size());
}

Status SnapshotStore::ReadAndValidate(const GenerationInfo& info,
                                      std::vector<uint8_t>* payload) const {
  std::vector<uint8_t> bytes;
  FESIA_RETURN_IF_ERROR(ReadFileBytes(GenerationPath(info.generation),
                                      &bytes, options_.max_snapshot_bytes));
  GenerationInfo got;
  FESIA_RETURN_IF_ERROR(ParseGenerationFile(bytes, &got, payload));
  if (got.generation != info.generation ||
      got.payload_bytes != info.payload_bytes ||
      got.payload_crc != info.payload_crc ||
      got.format_version != info.format_version) {
    return Status::Corruption(
        "generation " + std::to_string(info.generation) +
        " disagrees with its manifest entry");
  }
  return Status::Ok();
}

Status SnapshotStore::QuarantineFile(uint64_t generation) {
  const std::string src = GenerationPath(generation);
  // Never delete suspect bytes: rename aside to the first free
  // .quarantine[.k] name so an operator can inspect them later.
  for (int k = 0; k < 1000; ++k) {
    std::string dst = src;
    dst += ".quarantine";
    if (k > 0) dst += "." + std::to_string(k);
    std::error_code ec;
    if (fs::exists(dst, ec)) continue;
    fs::rename(src, dst, ec);
    if (ec) {
      return Status::IoError("cannot quarantine " + src + ": " +
                             ec.message());
    }
    return Status::Ok();
  }
  return Status::IoError("no free quarantine name for " + src);
}

StatusOr<SnapshotStore> SnapshotStore::Open(
    const SnapshotStoreOptions& options, RecoveryReport* report) {
  RecoveryReport rep;
  if (report != nullptr) *report = rep;
  if (options.dir.empty()) {
    return Status::InvalidArgument("snapshot store directory is empty");
  }
  if (options.max_generations == 0) {
    return Status::InvalidArgument("max_generations must be >= 1");
  }

  SnapshotStore store;
  store.options_ = options;

  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + options.dir + ": " +
                           ec.message());
  }

  // Pass 1: sweep the directory — delete abandoned atomic-write temp
  // files, collect generation files (quarantined ones are left alone).
  std::vector<uint64_t> disk_generations;
  for (const auto& entry : fs::directory_iterator(options.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      std::error_code rm;
      fs::remove(entry.path(), rm);
      if (!rm) ++rep.temp_files_removed;
      continue;
    }
    uint64_t g = 0;
    if (ParseGenerationFileName(name, &g)) disk_generations.push_back(g);
  }
  if (ec) {
    return Status::IoError("cannot list " + options.dir + ": " +
                           ec.message());
  }
  std::sort(disk_generations.begin(), disk_generations.end());

  // Pass 2: load the manifest — the commit record. Without one (missing
  // or corrupt) fall back to the self-validating generation files.
  std::vector<GenerationInfo> manifest;
  bool manifest_usable = false;
  const bool manifest_exists = fs::exists(store.ManifestPath(), ec);
  if (manifest_exists) {
    std::vector<uint8_t> bytes;
    Status rs = ReadFileBytes(store.ManifestPath(), &bytes,
                              options.max_snapshot_bytes);
    if (rs.ok()) rs = ParseManifest(bytes, &manifest);
    if (rs.ok()) {
      manifest_usable = true;
    } else {
      rep.manifest_corrupt = true;
    }
  } else if (!disk_generations.empty()) {
    rep.manifest_missing = true;
  }

  // Pass 3: rebuild the committed set. With a manifest, an entry survives
  // iff its file validates against it, and on-disk generations newer than
  // the newest manifest entry are uncommitted orphans. Without one, every
  // standalone-validating file is accepted (the commit record is gone;
  // best effort keeps the newest intact payload).
  const bool had_candidates = !disk_generations.empty() || !manifest.empty();
  if (manifest_usable) {
    const uint64_t committed_max =
        manifest.empty() ? 0 : manifest.back().generation;
    for (uint64_t g : disk_generations) {
      if (g > committed_max) {
        Status q = store.QuarantineFile(g);
        if (!q.ok()) return q;
        rep.quarantined.push_back(g);
      }
    }
    for (const GenerationInfo& e : manifest) {
      std::vector<uint8_t> payload;
      Status v = store.ReadAndValidate(e, &payload);
      if (v.ok()) {
        store.entries_.push_back(e);
        continue;
      }
      if (!fs::exists(store.GenerationPath(e.generation), ec)) {
        ++rep.missing_files;
        continue;
      }
      Status q = store.QuarantineFile(e.generation);
      if (!q.ok()) return q;
      rep.quarantined.push_back(e.generation);
    }
  } else {
    for (uint64_t g : disk_generations) {
      std::vector<uint8_t> bytes, payload;
      GenerationInfo info;
      Status v = ReadFileBytes(store.GenerationPath(g), &bytes,
                               options.max_snapshot_bytes);
      if (v.ok()) v = ParseGenerationFile(bytes, &info, &payload);
      if (v.ok() && info.generation != g) {
        v = Status::Corruption("generation id disagrees with file name");
      }
      if (v.ok()) {
        store.entries_.push_back(info);
      } else {
        Status q = store.QuarantineFile(g);
        if (!q.ok()) return q;
        rep.quarantined.push_back(g);
      }
    }
  }
  // Newest-first reporting reads naturally in logs.
  std::sort(rep.quarantined.rbegin(), rep.quarantined.rend());

  rep.recovered_generation = store.current_generation();
  const bool dirty = rep.manifest_missing || rep.manifest_corrupt ||
                     !rep.quarantined.empty() || rep.missing_files > 0;
  if (report != nullptr) *report = rep;

  if (store.entries_.empty() && had_candidates) {
    return Status::DataLoss("snapshot store at " + options.dir +
                            " has no validating generation");
  }
  // Re-commit the recovered state so the next Open starts clean.
  if (dirty) FESIA_RETURN_IF_ERROR(store.WriteManifest());
  return store;
}

Status SnapshotStore::Save(std::span<const uint8_t> payload,
                           uint32_t format_version, uint64_t* generation) {
  const uint64_t gen = current_generation() + 1;

  std::vector<uint8_t> bytes;
  bytes.reserve(kWrapperHeaderBytes + payload.size() + kCrcBytes);
  ByteWriter w(&bytes);
  w.Put(kGenerationMagic);
  w.Put(kWrapperVersion);
  w.Put(format_version);
  w.Put(gen);
  w.Put(static_cast<uint64_t>(payload.size()));
  w.PutRaw(payload.data(), payload.size());
  w.Put(Crc32c(bytes.data(), bytes.size()));

  // Step 1: publish the payload. A crash here (torn temp file, complete
  // temp file, or renamed-but-uncommitted generation) leaves the previous
  // generation authoritative; Open() cleans up the debris.
  FESIA_RETURN_IF_ERROR(
      AtomicWriteFileBytes(GenerationPath(gen), bytes.data(), bytes.size()));

  // Step 2: commit through the manifest, pruning the retention window in
  // the same atomic write. Files are only deleted after the commit lands.
  std::vector<GenerationInfo> rollback = entries_;
  entries_.push_back(GenerationInfo{gen, payload.size(),
                                    Crc32c(payload.data(), payload.size()),
                                    format_version});
  std::vector<GenerationInfo> pruned;
  while (entries_.size() > options_.max_generations) {
    pruned.push_back(entries_.front());
    entries_.erase(entries_.begin());
  }
  Status ms = WriteManifest();
  if (!ms.ok()) {
    entries_ = std::move(rollback);
    return ms;
  }

  // Step 3: retention. Best effort — a leftover pruned file is re-deleted
  // or quarantined by a later Open.
  for (const GenerationInfo& e : pruned) {
    std::error_code ec;
    fs::remove(GenerationPath(e.generation), ec);
  }
  if (generation != nullptr) *generation = gen;
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> SnapshotStore::ReadCurrent(
    uint64_t* generation) const {
  if (entries_.empty()) {
    return Status::DataLoss("snapshot store at " + options_.dir +
                            " has no generations");
  }
  if (generation != nullptr) *generation = entries_.back().generation;
  return ReadGeneration(entries_.back().generation);
}

StatusOr<std::vector<uint8_t>> SnapshotStore::ReadGeneration(
    uint64_t generation) const {
  for (const GenerationInfo& e : entries_) {
    if (e.generation != generation) continue;
    std::vector<uint8_t> payload;
    FESIA_RETURN_IF_ERROR(ReadAndValidate(e, &payload));
    return payload;
  }
  return Status::FailedPrecondition("generation " +
                                    std::to_string(generation) +
                                    " is not committed in this store");
}

Status SnapshotStore::VerifyGeneration(uint64_t generation) const {
  return ReadGeneration(generation).status();
}

Status SnapshotStore::Quarantine(uint64_t generation) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const GenerationInfo& e) {
                           return e.generation == generation;
                         });
  if (it == entries_.end()) {
    return Status::FailedPrecondition("generation " +
                                      std::to_string(generation) +
                                      " is not committed in this store");
  }
  FESIA_RETURN_IF_ERROR(QuarantineFile(generation));
  entries_.erase(it);
  return WriteManifest();
}

}  // namespace fesia::store
