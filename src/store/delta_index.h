// In-memory mutation overlay over an immutable base index
// (docs/ROBUSTNESS.md, "Live mutation, WAL, and merge recovery").
//
// The DeltaIndex holds the net effect of every WAL record not yet merged
// into a snapshot generation: per document, either its complete current
// term set (an upsert) or a tombstone (a delete). Queries run against the
// immutable base engine and are then *adjusted* per delta document —
// membership in the base is subtracted, membership in the overlay is added
// — so CountBatch/QueryBatch results are byte-identical to a from-scratch
// rebuild of base+delta (the property fuzz_test asserts across random
// interleavings). Keeping the mutable side a small per-document map and
// probing it against the large immutable side follows the mutable-overlay
// designs surveyed in PAPERS.md (Roaring's mutable containers, Ding &
// König's small-vs-large probing).
//
// Thread safety: none. The IndexManager guards the live DeltaIndex with
// its view mutex and hands immutable snapshots to readers.
#ifndef FESIA_STORE_DELTA_INDEX_H_
#define FESIA_STORE_DELTA_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "store/wal.h"
#include "util/status.h"

namespace fesia::store {

/// Net overlay state of one document.
struct DeltaDoc {
  /// True: the document is deleted (terms is empty). False: `terms` is the
  /// document's complete current term set, sorted ascending.
  bool tombstone = false;
  std::vector<uint32_t> terms;
  /// Seq of the WAL record that last wrote this entry.
  uint64_t seq = 0;
};

/// Immutable copy of the overlay, ordered by document id. Readers adjust
/// query results against one snapshot for a whole batch, so a mutation
/// landing mid-batch never produces a torn view.
using DeltaSnapshot = std::map<uint32_t, DeltaDoc>;

class DeltaIndex {
 public:
  /// Applies one WAL record; last write per document wins.
  void Apply(const WalRecord& record);

  /// Drops every entry with seq <= `seq` — called after those mutations
  /// are durable in a committed snapshot generation.
  void PruneThrough(uint64_t seq);

  /// Immutable copy of the current overlay (cached until the next
  /// Apply/PruneThrough).
  std::shared_ptr<const DeltaSnapshot> Snapshot() const;

  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  /// Estimated heap bytes the overlay holds: term payloads plus a
  /// per-entry constant covering the map node, key, and DeltaDoc header
  /// (tombstones count the constant alone). Maintained incrementally by
  /// Apply/PruneThrough — this is the overlay half of the byte bound
  /// mutation backpressure enforces, alongside the WAL's open_bytes().
  uint64_t pending_bytes() const { return pending_bytes_; }

 private:
  static uint64_t EntryBytes(const DeltaDoc& doc);

  DeltaSnapshot docs_;
  uint64_t pending_bytes_ = 0;
  mutable std::shared_ptr<const DeltaSnapshot> cache_;
};

/// True iff `doc` appears in the base posting list of every term in
/// `terms` (terms need not be sorted; out-of-range terms are the caller's
/// responsibility — see OverlayAdjustResults).
bool BaseContainsAll(const index::InvertedIndex& base, uint32_t doc,
                     std::span<const uint32_t> terms);

/// True iff the sorted `doc_terms` contain every element of `query_terms`.
bool DocTermsContainAll(std::span<const uint32_t> doc_terms,
                        std::span<const uint32_t> query_terms);

/// Adjusts engine results computed over `base` so they equal what an
/// engine rebuilt over base+delta would return: per delta document, base
/// membership in the conjunction is subtracted and overlay membership is
/// added. Only results with ok() are touched; `results` must be
/// index-aligned with `queries`. With `materialize`, QueryResult::docs is
/// patched (sorted removals/insertions) as well as the count. Queries that
/// are empty or contain an out-of-range term are left alone: both the base
/// and the rebuilt engine answer those identically by construction.
void OverlayAdjustResults(const index::InvertedIndex& base,
                          const DeltaSnapshot& delta,
                          std::span<const std::vector<uint32_t>> queries,
                          bool materialize,
                          std::span<index::QueryResult> results);

/// Materializes base+delta as posting lists (index-aligned with the base's
/// terms, each strictly ascending) — the merge step's input to
/// InvertedIndex::FromPostings, and the reference the tests rebuild from.
std::vector<std::vector<uint32_t>> ApplyDeltaToPostings(
    const index::InvertedIndex& base, const DeltaSnapshot& delta);

/// Snapshot payload of a merged (mutable-path) generation: the serialized
/// base index plus the engine term-set container plus the highest WAL seq
/// folded in, so a reload knows which log records are already merged.
/// Distinguished from the legacy term-set-only payload by its magic
/// ("FESIAMUT" vs "FESIAQRY").
struct MutablePayload {
  uint64_t applied_seq = 0;
  std::vector<uint8_t> index_bytes;
  std::vector<uint8_t> term_set_bytes;
};

/// True when `bytes` start with the mutable-payload magic.
bool HasMutablePayloadMagic(std::span<const uint8_t> bytes);

std::vector<uint8_t> EncodeMutablePayload(const MutablePayload& payload);

/// Validates magic, version, framing, and the whole-payload CRC32C;
/// kCorruption on any mismatch.
StatusOr<MutablePayload> DecodeMutablePayload(std::span<const uint8_t> bytes);

}  // namespace fesia::store

#endif  // FESIA_STORE_DELTA_INDEX_H_
