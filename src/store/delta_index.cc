#include "store/delta_index.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <utility>

#include "util/byte_io.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace fesia::store {
namespace {

constexpr uint8_t kMutableMagic[8] = {'F', 'E', 'S', 'I', 'A', 'M', 'U', 'T'};
constexpr uint32_t kMutableVersion = 1;

}  // namespace

uint64_t DeltaIndex::EntryBytes(const DeltaDoc& doc) {
  // Deliberate estimate (backpressure signal, not an allocator audit): the
  // term payload plus a constant for the map node, key, and DeltaDoc.
  return 64 + doc.terms.size() * sizeof(uint32_t);
}

void DeltaIndex::Apply(const WalRecord& record) {
  auto [it, inserted] = docs_.try_emplace(record.doc);
  DeltaDoc& doc = it->second;
  if (!inserted) pending_bytes_ -= EntryBytes(doc);
  doc.tombstone = record.kind == WalRecord::Kind::kDelete;
  doc.terms = record.terms;
  doc.seq = record.seq;
  pending_bytes_ += EntryBytes(doc);
  cache_.reset();
}

void DeltaIndex::PruneThrough(uint64_t seq) {
  bool changed = false;
  for (auto it = docs_.begin(); it != docs_.end();) {
    if (it->second.seq <= seq) {
      pending_bytes_ -= EntryBytes(it->second);
      it = docs_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) cache_.reset();
}

std::shared_ptr<const DeltaSnapshot> DeltaIndex::Snapshot() const {
  if (cache_ == nullptr) cache_ = std::make_shared<DeltaSnapshot>(docs_);
  return cache_;
}

bool BaseContainsAll(const index::InvertedIndex& base, uint32_t doc,
                     std::span<const uint32_t> terms) {
  for (uint32_t term : terms) {
    std::span<const uint32_t> post = base.Postings(term);
    if (!std::binary_search(post.begin(), post.end(), doc)) return false;
  }
  return true;
}

bool DocTermsContainAll(std::span<const uint32_t> doc_terms,
                        std::span<const uint32_t> query_terms) {
  for (uint32_t term : query_terms) {
    if (!std::binary_search(doc_terms.begin(), doc_terms.end(), term)) {
      return false;
    }
  }
  return true;
}

void OverlayAdjustResults(const index::InvertedIndex& base,
                          const DeltaSnapshot& delta,
                          std::span<const std::vector<uint32_t>> queries,
                          bool materialize,
                          std::span<index::QueryResult> results) {
  if (delta.empty()) return;
  FESIA_CHECK(queries.size() == results.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    index::QueryResult& r = results[q];
    if (!r.ok()) continue;
    std::span<const uint32_t> terms = queries[q];
    if (terms.empty()) continue;
    // A term at or beyond num_terms() makes the conjunction empty in the
    // base engine and in any rebuilt engine alike (the merge preserves the
    // term-id space), so such queries need no adjustment — and skipping
    // them keeps Postings() in bounds.
    if (std::any_of(terms.begin(), terms.end(), [&](uint32_t t) {
          return t >= base.num_terms();
        })) {
      continue;
    }

    std::vector<uint32_t> adds, removes;  // ascending: delta iterates by doc
    for (const auto& [doc, dd] : delta) {
      const bool in_base = BaseContainsAll(base, doc, terms);
      const bool in_new =
          !dd.tombstone && DocTermsContainAll(dd.terms, terms);
      if (in_base == in_new) continue;
      if (in_new) {
        ++r.count;
        if (materialize) adds.push_back(doc);
      } else {
        --r.count;
        if (materialize) removes.push_back(doc);
      }
    }
    if (materialize && (!adds.empty() || !removes.empty())) {
      std::vector<uint32_t> pruned;
      pruned.reserve(r.docs.size());
      std::set_difference(r.docs.begin(), r.docs.end(), removes.begin(),
                          removes.end(), std::back_inserter(pruned));
      std::vector<uint32_t> merged;
      merged.reserve(pruned.size() + adds.size());
      std::merge(pruned.begin(), pruned.end(), adds.begin(), adds.end(),
                 std::back_inserter(merged));
      r.docs = std::move(merged);
    }
  }
}

std::vector<std::vector<uint32_t>> ApplyDeltaToPostings(
    const index::InvertedIndex& base, const DeltaSnapshot& delta) {
  // Every delta document is rewritten wholesale: its base postings are
  // removed everywhere and its overlay terms (none for a tombstone) are
  // re-inserted, so the last write wins per document.
  std::vector<uint32_t> touched;
  touched.reserve(delta.size());
  for (const auto& [doc, dd] : delta) touched.push_back(doc);

  std::vector<std::vector<uint32_t>> out(base.num_terms());
  for (uint32_t t = 0; t < base.num_terms(); ++t) {
    std::span<const uint32_t> post = base.Postings(t);
    std::vector<uint32_t> kept;
    kept.reserve(post.size());
    std::set_difference(post.begin(), post.end(), touched.begin(),
                        touched.end(), std::back_inserter(kept));
    std::vector<uint32_t> adds;
    for (const auto& [doc, dd] : delta) {
      if (!dd.tombstone &&
          std::binary_search(dd.terms.begin(), dd.terms.end(), t)) {
        adds.push_back(doc);
      }
    }
    out[t].reserve(kept.size() + adds.size());
    std::merge(kept.begin(), kept.end(), adds.begin(), adds.end(),
               std::back_inserter(out[t]));
  }
  return out;
}

bool HasMutablePayloadMagic(std::span<const uint8_t> bytes) {
  return bytes.size() >= sizeof(kMutableMagic) &&
         std::memcmp(bytes.data(), kMutableMagic, sizeof(kMutableMagic)) == 0;
}

std::vector<uint8_t> EncodeMutablePayload(const MutablePayload& payload) {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.PutRaw(kMutableMagic, sizeof(kMutableMagic));
  w.Put<uint32_t>(kMutableVersion);
  w.Put<uint64_t>(payload.applied_seq);
  w.Put<uint64_t>(payload.index_bytes.size());
  w.PutRaw(payload.index_bytes.data(), payload.index_bytes.size());
  w.Put<uint64_t>(payload.term_set_bytes.size());
  w.PutRaw(payload.term_set_bytes.data(), payload.term_set_bytes.size());
  w.Put<uint32_t>(Crc32c(out.data(), out.size()));
  return out;
}

StatusOr<MutablePayload> DecodeMutablePayload(
    std::span<const uint8_t> bytes) {
  constexpr size_t kMinBytes =
      sizeof(kMutableMagic) + 4 + 8 + 8 + 8 + 4;  // empty blobs + crc
  if (bytes.size() < kMinBytes) {
    return Status::Corruption("mutable payload truncated");
  }
  if (!HasMutablePayloadMagic(bytes)) {
    return Status::Corruption("mutable payload magic mismatch");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32c(bytes.data(), bytes.size() - 4) != stored_crc) {
    return Status::Corruption("mutable payload checksum mismatch");
  }

  ByteReader r(bytes.subspan(sizeof(kMutableMagic),
                             bytes.size() - sizeof(kMutableMagic) - 4));
  uint32_t version = 0;
  MutablePayload payload;
  if (!r.Get(&version) || version != kMutableVersion) {
    return Status::Corruption("mutable payload version unsupported");
  }
  if (!r.Get(&payload.applied_seq)) {
    return Status::Corruption("mutable payload truncated");
  }
  FESIA_RETURN_IF_ERROR(r.GetCountedArray(&payload.index_bytes));
  FESIA_RETURN_IF_ERROR(r.GetCountedArray(&payload.term_set_bytes));
  if (!r.AtEnd()) {
    return Status::Corruption("mutable payload carries trailing bytes");
  }
  return payload;
}

}  // namespace fesia::store
