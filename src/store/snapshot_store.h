// Crash-safe, generational snapshot storage (docs/ROBUSTNESS.md,
// "Durability and recovery").
//
// A SnapshotStore is a directory holding up to N payload generations
// (`snap.000001`, `snap.000002`, …) behind a checksummed MANIFEST that
// records, per generation: id, payload CRC32C, payload byte size, and a
// caller-defined format version. Every file — generations and the
// manifest alike — is published with AtomicWriteFileBytes (temp + fsync +
// rename + directory fsync), so no crash can leave a torn file at a live
// path. A save is *committed* only once the manifest naming it is durable;
// a generation file without a manifest entry is an uncommitted orphan.
//
// Open() recovers from arbitrary crash debris: stray temp files are
// removed, orphans and generations that fail validation are quarantined
// (renamed aside with a `.quarantine` suffix — never deleted, so an
// operator can inspect them), and the store resumes from the newest
// generation that validates. What was skipped is reported through
// RecoveryReport. Only when no generation validates at all does Open()
// fail, with StatusCode::kDataLoss.
//
// The store is payload-agnostic: callers persist any byte string (the
// QueryEngine term-set container, a serialized FesiaSet, …). Each
// generation file carries its own header + whole-file CRC32C, so a
// generation validates standalone even when the manifest itself is lost.
//
// Thread safety: none. Callers (see store/index_manager.h) serialize
// access externally.
#ifndef FESIA_STORE_SNAPSHOT_STORE_H_
#define FESIA_STORE_SNAPSHOT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/file_io.h"
#include "util/status.h"

namespace fesia::store {

struct SnapshotStoreOptions {
  /// Directory holding the generations and MANIFEST; created if missing.
  std::string dir;
  /// Committed generations retained; older ones are deleted after a
  /// successful save. Must be >= 1.
  size_t max_generations = 3;
  /// Per-file read cap forwarded to ReadFileBytes.
  size_t max_snapshot_bytes = kDefaultMaxReadFileBytes;
};

/// What Open() found and did to bring the store back to a valid state.
struct RecoveryReport {
  bool manifest_missing = false;
  bool manifest_corrupt = false;
  /// Generation now serving as current; 0 when the store is empty.
  uint64_t recovered_generation = 0;
  /// Abandoned atomic-write temp files deleted.
  size_t temp_files_removed = 0;
  /// Generations renamed aside (corrupt payloads and uncommitted orphans),
  /// newest first.
  std::vector<uint64_t> quarantined;
  /// Manifest entries dropped because their file had vanished.
  size_t missing_files = 0;

  bool clean() const {
    return !manifest_missing && !manifest_corrupt && quarantined.empty() &&
           temp_files_removed == 0 && missing_files == 0;
  }
  /// One-line human summary ("recovered generation 17, quarantined 18, …").
  std::string ToString() const;
};

class SnapshotStore {
 public:
  /// One committed generation as recorded in the manifest.
  struct GenerationInfo {
    uint64_t generation = 0;
    uint64_t payload_bytes = 0;
    uint32_t payload_crc = 0;
    uint32_t format_version = 0;
  };

  /// Opens (and if needed recovers) the store at options.dir, creating the
  /// directory for a fresh store. Fills *report (when non-null) with what
  /// recovery found even when Open fails. kDataLoss when generations were
  /// present but none validates; kIoError/kInvalidArgument otherwise.
  static StatusOr<SnapshotStore> Open(const SnapshotStoreOptions& options,
                                      RecoveryReport* report = nullptr);

  /// Durably appends `payload` as the next generation: atomic payload
  /// write, then atomic manifest commit, then retention pruning. On any
  /// failure the previous current generation is untouched and still
  /// served; an interrupted save leaves at most an orphan or temp file for
  /// the next Open() to clean up. *generation (when non-null) receives the
  /// committed id.
  Status Save(std::span<const uint8_t> payload, uint32_t format_version = 0,
              uint64_t* generation = nullptr);

  /// Reads and fully validates the current generation's payload (wrapper
  /// magic + CRC, manifest cross-check). kDataLoss when the store holds no
  /// generation; kCorruption when the stored bytes fail validation —
  /// corrupt bytes are never returned.
  StatusOr<std::vector<uint8_t>> ReadCurrent(
      uint64_t* generation = nullptr) const;

  /// ReadCurrent for one specific committed generation.
  StatusOr<std::vector<uint8_t>> ReadGeneration(uint64_t generation) const;

  /// Re-reads `generation` from disk and revalidates it end to end — the
  /// scrub primitive. OK iff ReadGeneration would succeed.
  Status VerifyGeneration(uint64_t generation) const;

  /// Renames `generation`'s file aside (`snap.NNNNNN.quarantine[.k]`) and
  /// drops it from the manifest, atomically re-committing the latter. The
  /// previous generation (if any) becomes current.
  Status Quarantine(uint64_t generation);

  /// Newest committed generation id; 0 when empty.
  uint64_t current_generation() const {
    return entries_.empty() ? 0 : entries_.back().generation;
  }
  size_t num_generations() const { return entries_.size(); }
  /// Committed generations, oldest first.
  const std::vector<GenerationInfo>& generations() const { return entries_; }
  const std::string& dir() const { return options_.dir; }

  SnapshotStore(SnapshotStore&&) = default;
  SnapshotStore& operator=(SnapshotStore&&) = default;

 private:
  SnapshotStore() = default;

  std::string GenerationPath(uint64_t generation) const;
  std::string ManifestPath() const;
  Status WriteManifest() const;
  /// Reads + validates one generation file against `info`.
  Status ReadAndValidate(const GenerationInfo& info,
                         std::vector<uint8_t>* payload) const;
  /// Renames a generation file aside; returns the quarantine path used.
  Status QuarantineFile(uint64_t generation);

  SnapshotStoreOptions options_;
  std::vector<GenerationInfo> entries_;  // ascending by generation
};

}  // namespace fesia::store

#endif  // FESIA_STORE_SNAPSHOT_STORE_H_
