// Append-only write-ahead log for live mutations (docs/ROBUSTNESS.md,
// "Live mutation, WAL, and merge recovery").
//
// The WAL lives in the same directory as the SnapshotStore generations
// (segment files `wal.000001`, `wal.000002`, …; the store's recovery sweep
// ignores them). Each record is framed as
//
//   u32 frame_bytes | u32 crc32c(payload) | payload
//   payload = u64 seq | u8 kind | u32 doc | u32 num_terms | u32 terms[]
//
// and appended with write + fsync, so an Append that returns OK is durable
// — an acknowledged mutation survives any crash. A crash mid-append leaves
// a torn tail; Open() replays every segment in id order, validates each
// frame (CRC, kind, sorted terms, monotonically increasing seq), copies any
// suspect suffix aside to `wal.NNNNNN.quarantine[.k]` (never deleted, like
// the snapshot store's quarantine), and truncates the segment back to its
// last valid frame. Replay therefore recovers exactly the acknowledged
// prefix, with zero acknowledged-write loss.
//
// Segments seal on Rotate() (the merge protocol rotates before building a
// merged generation) and are deleted by DropThrough(seq) only once every
// record they hold is durable in a committed snapshot generation — the
// crash-before-wal-truncate fault point rehearses a crash between the
// manifest commit and that deletion, which replay must (and does) tolerate
// idempotently.
//
// Thread safety: none. The IndexManager serializes access under its
// mutation mutex.
#ifndef FESIA_STORE_WAL_H_
#define FESIA_STORE_WAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/memory_budget.h"
#include "util/status.h"

namespace fesia::store {

/// One logged mutation. `terms` must be strictly ascending and empty for
/// kDelete; `seq` is caller-assigned and must be strictly greater than
/// every previously appended seq.
struct WalRecord {
  enum class Kind : uint8_t { kUpsert = 0, kDelete = 1 };
  uint64_t seq = 0;
  Kind kind = Kind::kUpsert;
  uint32_t doc = 0;
  std::vector<uint32_t> terms;
};

/// Replay tuning. Defaults reproduce the stock behavior with a modest
/// fixed-size buffer; tests shrink the chunk to exercise refill seams and
/// pass a small budget to prove replay memory stays O(chunk).
struct WalOpenOptions {
  /// Replay buffer size. Segments are streamed through a buffer of this
  /// many bytes with frame-aligned resume, so open memory is O(chunk)
  /// regardless of segment size (the buffer grows past the chunk only for
  /// a single frame bigger than it, bounded by the frame-length cap).
  size_t replay_chunk_bytes = size_t{4} << 20;
  /// Budget charged for the replay buffer while Open() runs (released
  /// before it returns). nullptr means MemoryBudget::Unlimited().
  MemoryBudget* budget = nullptr;
};

/// What Open() found while replaying the log.
struct WalReplayReport {
  /// Segment files present before replay.
  size_t segments = 0;
  /// Valid records replayed.
  size_t records = 0;
  /// Highest replayed seq; 0 when the log was empty.
  uint64_t last_seq = 0;
  /// Bytes of valid frames replayed across all segments.
  uint64_t replayed_bytes = 0;
  /// Bytes cut from torn or corrupt segment tails (copied aside first).
  size_t torn_tail_bytes = 0;
  /// Segments that had a suspect suffix quarantined.
  size_t quarantined_segments = 0;

  bool clean() const {
    return torn_tail_bytes == 0 && quarantined_segments == 0;
  }
  /// One-line human summary.
  std::string ToString() const;
};

class WriteAheadLog {
 public:
  /// Opens the log in `dir` (created if missing), replaying all segments in
  /// id order. Valid records are appended to *records (when non-null) in
  /// seq order; *report (when non-null) receives what replay found and
  /// repaired. Existing segments are sealed — new appends go to a fresh
  /// segment — so a later DropThrough can retire replayed data without
  /// touching the live tail. Fails only on I/O or resource errors;
  /// corruption is repaired (quarantine + truncate), not fatal.
  static StatusOr<WriteAheadLog> Open(const std::string& dir,
                                      std::vector<WalRecord>* records = nullptr,
                                      WalReplayReport* report = nullptr,
                                      const WalOpenOptions& options = {});

  ~WriteAheadLog();
  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Durably appends one record: OK means the frame and its directory
  /// entry are fsynced — the write is acknowledged. Any failure (including
  /// the wal-append-short-write fault, which leaves half a frame on disk)
  /// poisons the active segment: further appends return
  /// kFailedPrecondition until Rotate() seals the torn segment or a fresh
  /// Open() repairs it. kInvalidArgument for a non-monotonic seq, unsorted
  /// terms, or a delete carrying terms.
  Status Append(const WalRecord& record);

  /// Seals the active segment (if it has any bytes) so DropThrough can
  /// retire it; subsequent appends start a fresh segment. Clears append
  /// poisoning — acknowledged records always precede a torn tail, and
  /// replay truncates the tear away.
  Status Rotate();

  /// Deletes every sealed segment whose records all have seq <= `seq`
  /// (they are durable elsewhere — this is the post-merge-commit
  /// truncation). Never touches the active segment. The
  /// crash-before-wal-truncate fault point fails the call with all
  /// segments intact; replaying retained segments is idempotent for the
  /// caller, so the only cost is disk space until the next merge.
  Status DropThrough(uint64_t seq);

  /// Highest seq ever acknowledged (replayed or appended); 0 when none.
  uint64_t last_seq() const { return last_seq_; }
  /// Sealed segments plus the active one if it has bytes.
  size_t num_segments() const {
    return sealed_.size() + (fd_ >= 0 ? 1 : 0);
  }
  /// Bytes across every live segment (sealed + active), i.e. the disk the
  /// log pins and the upper bound on what the next replay must stream.
  /// Shrinks when DropThrough retires segments — the quantity mutation
  /// backpressure bounds together with the overlay's pending_bytes().
  uint64_t open_bytes() const { return sealed_bytes_ + active_bytes_; }
  const std::string& dir() const { return dir_; }

 private:
  WriteAheadLog() = default;

  struct SealedSegment {
    uint64_t id = 0;
    uint64_t max_seq = 0;  // 0 when the segment holds no valid records
    uint64_t bytes = 0;    // on-disk size (post-truncation for replayed ones)
  };

  std::string SegmentPath(uint64_t id) const;
  /// Closes fd_ and records the active segment as sealed (no-op when the
  /// active segment was never created).
  void SealActiveLocked();

  std::string dir_;
  std::vector<SealedSegment> sealed_;  // ascending by id
  uint64_t active_id_ = 1;             // created lazily on first Append
  int fd_ = -1;
  uint64_t active_max_seq_ = 0;
  uint64_t last_seq_ = 0;
  uint64_t sealed_bytes_ = 0;  // sum of sealed_[i].bytes
  uint64_t active_bytes_ = 0;  // bytes written to the active segment
  bool poisoned_ = false;
};

}  // namespace fesia::store

#endif  // FESIA_STORE_WAL_H_
