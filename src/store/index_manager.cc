#include "store/index_manager.h"

#include <chrono>
#include <utility>

#include "util/check.h"

namespace fesia::store {

IndexManager::IndexManager(const index::InvertedIndex* idx,
                           SnapshotStore* snapshots)
    : IndexManager(idx, snapshots, Options()) {}

IndexManager::IndexManager(const index::InvertedIndex* idx,
                           SnapshotStore* snapshots, Options options)
    : idx_(idx), snapshots_(snapshots), options_(options) {
  FESIA_CHECK(idx_ != nullptr);
  FESIA_CHECK(snapshots_ != nullptr);
}

IndexManager::~IndexManager() { StopScrub(); }

void IndexManager::Publish(std::shared_ptr<const index::QueryEngine> next,
                           uint64_t generation) {
  // Order matters for readers that correlate the two: generation first,
  // then the engine pointer. In-flight batches keep their acquired
  // shared_ptr; the old engine dies when the last one finishes.
  serving_generation_.store(generation, std::memory_order_relaxed);
  engine_.store(std::move(next));
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

Status IndexManager::Rebuild() {
  std::lock_guard<std::mutex> lock(mu_);
  auto built = std::make_shared<index::QueryEngine>(idx_, options_.params);
  Publish(std::move(built), 0);
  return Status::Ok();
}

Status IndexManager::SaveSnapshot(uint64_t* generation) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const index::QueryEngine> serving = engine_.load();
  if (serving == nullptr) {
    return Status::FailedPrecondition(
        "nothing to save: no engine is being served");
  }
  std::vector<uint8_t> payload = serving->SerializeTermSets();
  uint64_t gen = 0;
  FESIA_RETURN_IF_ERROR(
      snapshots_->Save(payload, options_.format_version, &gen));
  // The serving engine now corresponds to a durable generation.
  serving_generation_.store(gen, std::memory_order_relaxed);
  if (generation != nullptr) *generation = gen;
  return Status::Ok();
}

Status IndexManager::LoadCurrentLocked() {
  uint64_t gen = 0;
  auto payload = snapshots_->ReadCurrent(&gen);
  if (!payload.ok()) return payload.status();
  auto loaded = index::QueryEngine::Load(idx_, *payload);
  if (!loaded.ok()) return loaded.status();
  Publish(std::make_shared<index::QueryEngine>(*std::move(loaded)), gen);
  return Status::Ok();
}

Status IndexManager::Reload() {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = LoadCurrentLocked();
  if (!s.ok()) rollbacks_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status IndexManager::ScrubOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  scrub_cycles_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t gen = serving_generation_.load(std::memory_order_relaxed);
  if (gen == 0) return Status::Ok();  // in-memory build: nothing on disk
  Status v = snapshots_->VerifyGeneration(gen);
  if (v.ok()) return v;

  // The active generation rotted on disk. Quarantine it and walk back to
  // the newest generation that still validates and loads; the incumbent
  // in-memory engine keeps serving throughout (and remains if nothing on
  // disk is usable — stale but valid beats down).
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  FESIA_RETURN_IF_ERROR(snapshots_->Quarantine(gen));
  while (snapshots_->num_generations() > 0) {
    Status s = LoadCurrentLocked();
    if (s.ok()) return s;
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    FESIA_RETURN_IF_ERROR(
        snapshots_->Quarantine(snapshots_->current_generation()));
  }
  return Status::DataLoss(
      "scrub quarantined every generation; serving the in-memory engine");
}

void IndexManager::StartScrub(double interval_seconds) {
  StopScrub();
  FESIA_CHECK(interval_seconds > 0);
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = false;
  }
  scrub_thread_ = std::thread([this, interval_seconds] {
    const auto interval = std::chrono::duration<double>(interval_seconds);
    std::unique_lock<std::mutex> lock(scrub_mu_);
    while (!scrub_cv_.wait_for(lock, interval,
                               [this] { return scrub_stop_; })) {
      lock.unlock();
      (void)ScrubOnce();  // failures are visible through the counters
      lock.lock();
    }
  });
}

void IndexManager::StopScrub() {
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = true;
  }
  scrub_cv_.notify_all();
  if (scrub_thread_.joinable()) scrub_thread_.join();
}

}  // namespace fesia::store
