#include "store/index_manager.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/check.h"

namespace fesia::store {
namespace {

/// Wraps a loaded engine so its shared_ptr also keeps the merged base
/// index alive: readers that hold only the engine (the legacy engine()
/// accessor) must never outlive the index it references. The engine's
/// budget charge travels the same way — it releases when the last reader
/// drops the engine, so after a hot swap the old generation's bytes stay
/// charged exactly as long as they stay resident.
std::shared_ptr<const index::QueryEngine> WrapEngineWithBase(
    index::QueryEngine&& engine,
    std::shared_ptr<const index::InvertedIndex> base,
    ScopedCharge charge = {}) {
  auto* raw = new index::QueryEngine(std::move(engine));
  // shared_ptr deleters must be copyable; park the move-only charge behind
  // a shared holder.
  auto held = std::make_shared<ScopedCharge>(std::move(charge));
  return std::shared_ptr<const index::QueryEngine>(
      raw, [base = std::move(base), held = std::move(held)](
               const index::QueryEngine* e) { delete e; });
}

/// Steady-state footprint estimate of an engine built over `idx`: posting
/// elements plus FESIA bitmap/offset overhead, ~3 words per element. An
/// estimate is enough — budgets govern trends, they don't audit malloc.
uint64_t EngineFootprintBytes(const index::InvertedIndex& idx) {
  return static_cast<uint64_t>(idx.total_postings()) * 12;
}

}  // namespace

IndexManager::IndexManager(const index::InvertedIndex* idx,
                           SnapshotStore* snapshots)
    : IndexManager(idx, snapshots, Options()) {}

IndexManager::IndexManager(const index::InvertedIndex* idx,
                           SnapshotStore* snapshots, Options options)
    : idx_(idx), snapshots_(snapshots), options_(options) {
  FESIA_CHECK(idx_ != nullptr);
  FESIA_CHECK(snapshots_ != nullptr);
}

IndexManager::~IndexManager() {
  StopAutoFlush();
  StopScrub();
}

void IndexManager::Publish(std::shared_ptr<const index::QueryEngine> next,
                           uint64_t generation,
                           std::shared_ptr<const index::InvertedIndex>
                               owned_base,
                           uint64_t applied_seq, bool prune_delta) {
  // Order matters for readers that correlate the two: generation first,
  // then the engine pointer. In-flight batches keep their acquired
  // shared_ptr (and, through AcquireView, the base it references); the old
  // engine dies when the last one finishes.
  serving_generation_.store(generation, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> vlock(view_mu_);
    view_engine_ = next;
    owned_base_ = std::move(owned_base);
    applied_seq_ = applied_seq;
    if (prune_delta) delta_.PruneThrough(applied_seq);
  }
  engine_.store(std::move(next));
  swaps_.fetch_add(1, std::memory_order_relaxed);
  // Epoch bump strictly after the new view is what queries see: a cached
  // result computed before this point carries the pre-bump epoch and is
  // invalidated, never served stale (see content_epoch()).
  content_epoch_.fetch_add(1, std::memory_order_release);
}

Status IndexManager::Rebuild() {
  std::lock_guard<std::mutex> lock(mu_);
  // Admission before the build allocates: a refused charge leaves the
  // incumbent serving and surfaces kResourceExhausted instead of an OOM.
  ScopedCharge charge(Budget());
  FESIA_RETURN_IF_ERROR(
      charge.Add(EngineFootprintBytes(*idx_), "engine rebuild"));
  index::QueryEngine built(idx_, options_.params);
  // An idx-rebuild serves the construction-time corpus: outstanding delta
  // entries keep overlaying it, but mutations already merged into a
  // generation (and pruned) are not part of it — reload the generation to
  // get those back.
  Publish(WrapEngineWithBase(std::move(built), nullptr, std::move(charge)),
          0, nullptr, /*applied_seq=*/0, /*prune_delta=*/false);
  return Status::Ok();
}

Status IndexManager::SaveSnapshot(uint64_t* generation) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const index::QueryEngine> serving;
  std::shared_ptr<const index::InvertedIndex> owned;
  uint64_t applied = 0;
  {
    std::lock_guard<std::mutex> vlock(view_mu_);
    serving = view_engine_;
    owned = owned_base_;
    applied = applied_seq_;
  }
  if (serving == nullptr) {
    return Status::FailedPrecondition(
        "nothing to save: no engine is being served");
  }
  std::vector<uint8_t> payload;
  if (owned != nullptr) {
    MutablePayload p;
    p.applied_seq = applied;
    p.index_bytes = owned->Serialize();
    p.term_set_bytes = serving->SerializeTermSets();
    payload = EncodeMutablePayload(p);
  } else {
    payload = serving->SerializeTermSets();
  }
  uint64_t gen = 0;
  FESIA_RETURN_IF_ERROR(
      snapshots_->Save(payload, options_.format_version, &gen));
  // The serving engine now corresponds to a durable generation.
  serving_generation_.store(gen, std::memory_order_relaxed);
  if (generation != nullptr) *generation = gen;
  return Status::Ok();
}

Status IndexManager::LoadCurrentLocked() {
  uint64_t gen = 0;
  auto payload = snapshots_->ReadCurrent(&gen);
  if (!payload.ok()) return payload.status();
  // The raw payload is charged for the load's duration; the decoded
  // engine's footprint is charged separately and rides the published
  // engine's lifetime. Any refusal aborts the load with the incumbent
  // untouched — the same rollback contract as a validation failure.
  ScopedCharge payload_charge(Budget());
  FESIA_RETURN_IF_ERROR(
      payload_charge.Add(payload->size(), "snapshot payload"));

  if (HasMutablePayloadMagic(*payload)) {
    // Merged (mutable-path) generation: the base index travels with it.
    auto decoded = DecodeMutablePayload(*payload);
    if (!decoded.ok()) return decoded.status();
    auto base_or = index::InvertedIndex::Deserialize(decoded->index_bytes);
    if (!base_or.ok()) return base_or.status();
    auto base = std::make_shared<const index::InvertedIndex>(
        *std::move(base_or));
    ScopedCharge engine_charge(Budget());
    FESIA_RETURN_IF_ERROR(
        engine_charge.Add(EngineFootprintBytes(*base), "loaded engine"));
    auto loaded = index::QueryEngine::Load(base.get(),
                                           decoded->term_set_bytes);
    if (!loaded.ok()) return loaded.status();
    const uint64_t applied = decoded->applied_seq;
    Publish(WrapEngineWithBase(*std::move(loaded), base,
                               std::move(engine_charge)),
            gen, base, applied, /*prune_delta=*/true);
    next_seq_ = std::max(next_seq_, applied + 1);
    return Status::Ok();
  }

  ScopedCharge engine_charge(Budget());
  FESIA_RETURN_IF_ERROR(
      engine_charge.Add(EngineFootprintBytes(*idx_), "loaded engine"));
  auto loaded = index::QueryEngine::Load(idx_, *payload);
  if (!loaded.ok()) return loaded.status();
  Publish(WrapEngineWithBase(*std::move(loaded), nullptr,
                             std::move(engine_charge)),
          gen, nullptr, /*applied_seq=*/0, /*prune_delta=*/false);
  return Status::Ok();
}

Status IndexManager::Reload() {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = LoadCurrentLocked();
  if (!s.ok()) rollbacks_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status IndexManager::ScrubOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  scrub_cycles_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t gen = serving_generation_.load(std::memory_order_relaxed);
  if (gen == 0) return Status::Ok();  // in-memory build: nothing on disk
  Status v = snapshots_->VerifyGeneration(gen);
  if (v.ok()) return v;

  // The active generation rotted on disk. Quarantine it and walk back to
  // the newest generation that still validates and loads; the incumbent
  // in-memory engine keeps serving throughout (and remains if nothing on
  // disk is usable — stale but valid beats down).
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  FESIA_RETURN_IF_ERROR(snapshots_->Quarantine(gen));
  while (snapshots_->num_generations() > 0) {
    Status s = LoadCurrentLocked();
    if (s.ok()) return s;
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    FESIA_RETURN_IF_ERROR(
        snapshots_->Quarantine(snapshots_->current_generation()));
  }
  return Status::DataLoss(
      "scrub quarantined every generation; serving the in-memory engine");
}

void IndexManager::StartScrub(double interval_seconds) {
  StopScrub();
  FESIA_CHECK(interval_seconds > 0);
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = false;
  }
  scrub_thread_ = std::thread([this, interval_seconds] {
    const auto interval = std::chrono::duration<double>(interval_seconds);
    std::unique_lock<std::mutex> lock(scrub_mu_);
    while (!scrub_cv_.wait_for(lock, interval,
                               [this] { return scrub_stop_; })) {
      lock.unlock();
      (void)ScrubOnce();  // failures are visible through the counters
      lock.lock();
    }
  });
}

void IndexManager::StopScrub() {
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = true;
  }
  scrub_cv_.notify_all();
  if (scrub_thread_.joinable()) scrub_thread_.join();
}

Status IndexManager::OpenMutationLog(WalReplayReport* report) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("mutation log already open");
  }
  std::vector<WalRecord> records;
  WalReplayReport rep;
  WalOpenOptions wal_opts;
  wal_opts.budget = Budget();
  auto wal = WriteAheadLog::Open(snapshots_->dir(), &records, &rep,
                                 wal_opts);
  if (!wal.ok()) return wal.status();
  wal_ = std::make_unique<WriteAheadLog>(*std::move(wal));
  {
    std::lock_guard<std::mutex> vlock(view_mu_);
    // Records at or below the serving base's applied seq are already
    // merged into a committed generation; re-applying them would be
    // harmless for upserts but would resurrect pruned tombstones' docs, so
    // the replay filter keeps exactly the unmerged suffix.
    for (WalRecord& r : records) {
      if (r.seq > applied_seq_) delta_.Apply(r);
    }
    next_seq_ = std::max({next_seq_, wal_->last_seq() + 1, applied_seq_ + 1});
  }
  if (report != nullptr) *report = rep;
  return Status::Ok();
}

Status IndexManager::Upsert(uint32_t doc, std::vector<uint32_t> terms,
                            uint64_t* seq) {
  if (doc >= idx_->num_docs()) {
    return Status::InvalidArgument("upsert: document id out of range");
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (uint32_t t : terms) {
    if (t >= idx_->num_terms()) {
      return Status::InvalidArgument("upsert: term id out of range");
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "mutation log not open: call OpenMutationLog first");
  }
  // Backpressure before durability: a rejected mutation was never
  // appended, so nothing acknowledged is ever dropped.
  FESIA_RETURN_IF_ERROR(CheckMutationPressureLocked());
  WalRecord rec;
  rec.seq = next_seq_;
  rec.kind = WalRecord::Kind::kUpsert;
  rec.doc = doc;
  rec.terms = std::move(terms);
  // Durability before visibility: the record is fsynced (acknowledged)
  // before the overlay — and therefore any query — can see it.
  FESIA_RETURN_IF_ERROR(wal_->Append(rec));
  ++next_seq_;
  {
    std::lock_guard<std::mutex> vlock(view_mu_);
    delta_.Apply(rec);
  }
  content_epoch_.fetch_add(1, std::memory_order_release);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  // The pre-append gate only reacts to bytes already pending, so the
  // accept that first crosses the soft bound must itself request the
  // size-based flush — otherwise a lone over-bound mutation sits in the
  // overlay until the next timer tick or mutation.
  NotifySoftBoundLocked();
  if (seq != nullptr) *seq = rec.seq;
  return Status::Ok();
}

Status IndexManager::Delete(uint32_t doc, uint64_t* seq) {
  if (doc >= idx_->num_docs()) {
    return Status::InvalidArgument("delete: document id out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "mutation log not open: call OpenMutationLog first");
  }
  FESIA_RETURN_IF_ERROR(CheckMutationPressureLocked());
  WalRecord rec;
  rec.seq = next_seq_;
  rec.kind = WalRecord::Kind::kDelete;
  rec.doc = doc;
  FESIA_RETURN_IF_ERROR(wal_->Append(rec));
  ++next_seq_;
  {
    std::lock_guard<std::mutex> vlock(view_mu_);
    delta_.Apply(rec);
  }
  content_epoch_.fetch_add(1, std::memory_order_release);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  // The pre-append gate only reacts to bytes already pending, so the
  // accept that first crosses the soft bound must itself request the
  // size-based flush — otherwise a lone over-bound mutation sits in the
  // overlay until the next timer tick or mutation.
  NotifySoftBoundLocked();
  if (seq != nullptr) *seq = rec.seq;
  return Status::Ok();
}

Status IndexManager::ApplyReplicated(const WalRecord& record) {
  if (record.seq == 0) {
    return Status::InvalidArgument("replicated record: seq must be >= 1");
  }
  if (record.doc >= idx_->num_docs()) {
    return Status::InvalidArgument(
        "replicated record: document id out of range");
  }
  for (size_t i = 0; i < record.terms.size(); ++i) {
    if (record.terms[i] >= idx_->num_terms()) {
      return Status::InvalidArgument(
          "replicated record: term id out of range");
    }
    if (i > 0 && record.terms[i] <= record.terms[i - 1]) {
      return Status::InvalidArgument(
          "replicated record: terms must be strictly ascending");
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "mutation log not open: call OpenMutationLog first");
  }
  {
    std::lock_guard<std::mutex> vlock(view_mu_);
    // Already durable here (merged into the base or acknowledged in the
    // WAL): the peer is re-sending history, which repair retries do by
    // design. Same seq means same record, so skipping is exact.
    if (record.seq <= std::max(applied_seq_, wal_->last_seq())) {
      return Status::Ok();
    }
  }
  FESIA_RETURN_IF_ERROR(CheckMutationPressureLocked());
  FESIA_RETURN_IF_ERROR(wal_->Append(record));
  next_seq_ = std::max(next_seq_, record.seq + 1);
  {
    std::lock_guard<std::mutex> vlock(view_mu_);
    delta_.Apply(record);
  }
  content_epoch_.fetch_add(1, std::memory_order_release);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  NotifySoftBoundLocked();
  return Status::Ok();
}

uint64_t IndexManager::applied_seq() const {
  std::lock_guard<std::mutex> vlock(view_mu_);
  return applied_seq_;
}

uint64_t IndexManager::durable_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t wal_seq = wal_ != nullptr ? wal_->last_seq() : 0;
  std::lock_guard<std::mutex> vlock(view_mu_);
  return std::max(applied_seq_, wal_seq);
}

StatusOr<std::vector<uint8_t>> IndexManager::ExportSnapshot(
    uint32_t* format_version, uint64_t* generation) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t gen = 0;
  auto payload = snapshots_->ReadCurrent(&gen);
  if (!payload.ok()) return payload.status();
  if (format_version != nullptr) {
    *format_version = snapshots_->generations().back().format_version;
  }
  if (generation != nullptr) *generation = gen;
  return payload;
}

Status IndexManager::ImportSnapshot(std::span<const uint8_t> payload,
                                    uint32_t format_version,
                                    uint64_t* generation) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t gen = 0;
  FESIA_RETURN_IF_ERROR(snapshots_->Save(payload, format_version, &gen));
  // The just-committed bytes must validate and swap in exactly as a
  // reload would serve them; a failure leaves the incumbent serving (the
  // committed generation stays for the next Open/scrub to judge).
  Status s = LoadCurrentLocked();
  if (!s.ok()) {
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  if (generation != nullptr) *generation = gen;
  return Status::Ok();
}

uint64_t IndexManager::MutationBytesLocked() const {
  uint64_t pending = 0;
  {
    std::lock_guard<std::mutex> vlock(view_mu_);
    pending = delta_.pending_bytes();
  }
  return pending + (wal_ != nullptr ? wal_->open_bytes() : 0);
}

Status IndexManager::CheckMutationPressureLocked() {
  const uint64_t soft = options_.mutation_soft_bytes;
  const uint64_t hard = options_.mutation_hard_bytes;
  if (soft == 0 && hard == 0) return Status::Ok();
  const uint64_t total = MutationBytesLocked();
  if (hard != 0 && total >= hard) {
    if (flush_in_progress_) {
      // The merge already draining the overlay is the only relief valve;
      // piling more on while it runs is how the OOM killer gets involved.
      // Nothing was appended, so the caller lost nothing acknowledged.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "mutation backpressure: overlay+wal at " + std::to_string(total) +
          " bytes, hard cap " + std::to_string(hard) +
          ", flush in flight; retry after it completes");
    }
    RequestFlush();
    return Status::Ok();  // accepted; an urgent flush will drain the bytes
  }
  if (soft != 0 && total >= soft) RequestFlush();
  return Status::Ok();
}

void IndexManager::NotifySoftBoundLocked() {
  const uint64_t soft = options_.mutation_soft_bytes;
  if (soft != 0 && MutationBytesLocked() >= soft) RequestFlush();
}

void IndexManager::RequestFlush() {
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_requested_ = true;
  }
  flush_cv_.notify_all();
}

Status IndexManager::FlushDelta(uint64_t* generation) {
  // Phase 1 (under mu_): freeze the overlay and rotate the WAL so records
  // being merged are in sealed segments while new appends land in a fresh
  // one.
  std::shared_ptr<const DeltaSnapshot> frozen;
  std::shared_ptr<const index::InvertedIndex> frozen_owned;
  const index::InvertedIndex* frozen_base = nullptr;
  uint64_t upto = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (wal_ == nullptr) {
      return Status::FailedPrecondition(
          "mutation log not open: call OpenMutationLog first");
    }
    if (flush_in_progress_) {
      return Status::FailedPrecondition("a flush is already in progress");
    }
    {
      std::lock_guard<std::mutex> vlock(view_mu_);
      if (view_engine_ == nullptr) {
        return Status::FailedPrecondition(
            "nothing serving: Rebuild or Reload before flushing");
      }
      if (delta_.empty()) {
        if (generation != nullptr) {
          *generation =
              serving_generation_.load(std::memory_order_relaxed);
        }
        return Status::Ok();
      }
      frozen = delta_.Snapshot();
      frozen_owned = owned_base_;
      frozen_base = owned_base_ != nullptr ? owned_base_.get() : idx_;
    }
    for (const auto& [doc, dd] : *frozen) upto = std::max(upto, dd.seq);
    FESIA_RETURN_IF_ERROR(wal_->Rotate());
    flush_in_progress_ = true;
  }

  auto fail = [&](Status s) {
    std::lock_guard<std::mutex> lock(mu_);
    flush_in_progress_ = false;
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    return s;
  };

  // Phase 2 (off-lock; queries and new mutations keep flowing): build the
  // merged generation, then validate by decoding the encoded payload and
  // loading the round-tripped engine — what gets published is exactly what
  // a reload of the committed bytes would serve. The candidate's footprint
  // is charged before the merge materializes anything; a refusal rolls
  // back to the incumbent exactly like a validation failure, and on
  // success the charge rides the published engine.
  ScopedCharge merge_charge(Budget());
  if (Status cs = merge_charge.Add(EngineFootprintBytes(*frozen_base),
                                   "flush candidate");
      !cs.ok()) {
    return fail(cs);
  }
  std::vector<std::vector<uint32_t>> postings =
      ApplyDeltaToPostings(*frozen_base, *frozen);
  index::InvertedIndex merged = index::InvertedIndex::FromPostings(
      frozen_base->num_docs(), std::move(postings));
  MutablePayload payload;
  payload.applied_seq = upto;
  payload.index_bytes = merged.Serialize();
  {
    index::QueryEngine built(&merged, options_.params);
    payload.term_set_bytes = built.SerializeTermSets();
  }
  const std::vector<uint8_t> encoded = EncodeMutablePayload(payload);

  auto decoded = DecodeMutablePayload(encoded);
  if (!decoded.ok()) return fail(decoded.status());
  auto base_or = index::InvertedIndex::Deserialize(decoded->index_bytes);
  if (!base_or.ok()) return fail(base_or.status());
  auto base =
      std::make_shared<const index::InvertedIndex>(*std::move(base_or));
  auto loaded = index::QueryEngine::Load(base.get(),
                                         decoded->term_set_bytes);
  if (!loaded.ok()) return fail(loaded.status());
  auto next =
      WrapEngineWithBase(*std::move(loaded), base, std::move(merge_charge));

  // Phase 3 (under mu_): commit, publish, prune, and only then truncate.
  std::lock_guard<std::mutex> lock(mu_);
  flush_in_progress_ = false;
  uint64_t gen = 0;
  Status s = snapshots_->Save(encoded, options_.format_version, &gen);
  if (!s.ok()) {
    // Incumbent engine and the full delta keep serving; the WAL still
    // holds every unmerged record (the rotated segments are only dropped
    // after a durable commit), so a crash now replays everything.
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  Publish(std::move(next), gen, base, upto, /*prune_delta=*/true);
  next_seq_ = std::max(next_seq_, upto + 1);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  if (generation != nullptr) *generation = gen;
  // WAL truncation strictly after the manifest commit: a failure here
  // (crash-before-wal-truncate) costs disk space, never data — replaying
  // the retained segments is filtered by the committed applied seq.
  return wal_->DropThrough(upto);
}

void IndexManager::StartAutoFlush(double interval_seconds) {
  StopAutoFlush();
  FESIA_CHECK(interval_seconds > 0);
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_stop_ = false;
  }
  flush_thread_ = std::thread([this, interval_seconds] {
    const auto interval = std::chrono::duration<double>(interval_seconds);
    std::unique_lock<std::mutex> lock(flush_mu_);
    while (true) {
      // Wakes early when backpressure requests a size-based flush; the
      // timer alone cannot bound overlay growth between ticks.
      flush_cv_.wait_for(lock, interval, [this] {
        return flush_stop_ || flush_requested_;
      });
      if (flush_stop_) break;
      const bool size_triggered = flush_requested_;
      flush_requested_ = false;
      lock.unlock();
      if (pending_mutations() > 0) {
        Status s = FlushDelta();  // failures show in rollbacks(), retried
        if (s.ok() && size_triggered) {
          size_flushes_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      lock.lock();
    }
  });
}

void IndexManager::StopAutoFlush() {
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_stop_ = true;
  }
  flush_cv_.notify_all();
  if (flush_thread_.joinable()) flush_thread_.join();
}

IndexManager::MutationView IndexManager::AcquireView() const {
  std::lock_guard<std::mutex> vlock(view_mu_);
  MutationView v;
  v.engine = view_engine_;
  v.owned_base = owned_base_;
  v.base = owned_base_ != nullptr ? owned_base_.get() : idx_;
  if (!delta_.empty()) v.delta = delta_.Snapshot();
  v.applied_seq = applied_seq_;
  return v;
}

namespace {

/// Per-query failure results for a batch issued before anything serves.
std::vector<index::QueryResult> NotServingResults(
    size_t n, index::BatchStats* stats) {
  std::vector<index::QueryResult> results(n);
  for (index::QueryResult& r : results) {
    r.outcome = index::QueryOutcome::kFailed;
    r.status = Status::FailedPrecondition(
        "no engine is being served: Rebuild or Reload first");
  }
  if (stats != nullptr) {
    *stats = index::BatchStats();
    stats->failed = n;
    stats->latency_seconds.assign(n, 0.0);
  }
  return results;
}

}  // namespace

std::vector<index::QueryResult> IndexManager::CountBatch(
    std::span<const std::vector<uint32_t>> queries,
    const index::BatchOptions& options, index::BatchStats* stats) const {
  MutationView v = AcquireView();
  if (v.engine == nullptr) return NotServingResults(queries.size(), stats);
  // Batches that don't bring their own budget inherit the store's, so
  // query admission sees the same pressure signal as the mutation path.
  index::BatchOptions opts = options;
  if (opts.budget == nullptr) opts.budget = Budget();
  std::vector<index::QueryResult> results =
      v.engine->CountBatch(queries, opts, stats);
  if (v.delta != nullptr) {
    OverlayAdjustResults(*v.base, *v.delta, queries, /*materialize=*/false,
                         results);
  }
  return results;
}

std::vector<index::QueryResult> IndexManager::QueryBatch(
    std::span<const std::vector<uint32_t>> queries,
    const index::BatchOptions& options, index::BatchStats* stats) const {
  MutationView v = AcquireView();
  if (v.engine == nullptr) return NotServingResults(queries.size(), stats);
  index::BatchOptions opts = options;
  if (opts.budget == nullptr) opts.budget = Budget();
  std::vector<index::QueryResult> results =
      v.engine->QueryBatch(queries, opts, stats);
  if (v.delta != nullptr) {
    OverlayAdjustResults(*v.base, *v.delta, queries, /*materialize=*/true,
                         results);
  }
  return results;
}

size_t IndexManager::pending_mutations() const {
  std::lock_guard<std::mutex> vlock(view_mu_);
  return delta_.size();
}

uint64_t IndexManager::pending_bytes() const {
  std::lock_guard<std::mutex> vlock(view_mu_);
  return delta_.pending_bytes();
}

IndexManager::MutationStats IndexManager::mutation_stats() const {
  MutationStats ms;
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> vlock(view_mu_);
    ms.pending_docs = delta_.size();
    ms.pending_bytes = delta_.pending_bytes();
  }
  ms.wal_open_bytes = wal_ != nullptr ? wal_->open_bytes() : 0;
  ms.accepted = accepted_.load(std::memory_order_relaxed);
  ms.rejected = rejected_.load(std::memory_order_relaxed);
  ms.size_triggered_flushes =
      size_flushes_.load(std::memory_order_relaxed);
  const uint64_t total = ms.pending_bytes + ms.wal_open_bytes;
  ms.under_pressure =
      (options_.mutation_soft_bytes != 0 &&
       total >= options_.mutation_soft_bytes) ||
      Budget()->under_pressure();
  return ms;
}

}  // namespace fesia::store
