// Live serving lifecycle for a QueryEngine backed by a SnapshotStore:
// build, persist, reload, mutate, and hot-swap under traffic without ever
// serving corrupt bytes or losing an acknowledged write
// (docs/ROBUSTNESS.md, "Durability and recovery" and "Live mutation, WAL,
// and merge recovery").
//
// The serving engine sits behind a SharedPtrCell swapped RCU-style:
// readers acquire a reference once per batch and keep executing on it even
// while a reload publishes a replacement, so in-flight CountBatch /
// QueryBatch calls finish on the engine they started with and new callers
// see the new one. A reload that fails validation rolls back trivially —
// the incumbent pointer is only replaced after the candidate passed every
// check — and surfaces a non-OK Status instead of disturbing traffic.
//
// Live mutation is LSM-flavored: Upsert/Delete append to a write-ahead log
// (store/wal.h — an OK return means the record is fsynced) and then update
// an in-memory DeltaIndex overlay. The manager's CountBatch/QueryBatch
// wrappers run the batch on the immutable base engine and adjust the
// results against one delta snapshot, so answers are byte-identical to a
// from-scratch rebuild of base+delta. FlushDelta() is the background
// merge: it freezes the overlay, builds and deep-validates a merged
// generation off-lock (queries keep flowing), commits it to the snapshot
// store, hot-swaps the round-tripped engine in, and only then truncates
// the WAL — a crash at any step replays the log with zero acknowledged
// loss, and a validation failure rolls back to the incumbent with the
// delta intact.
//
// An optional background scrub re-reads the active generation's bytes on
// an interval and re-verifies the CRC chain; on mismatch it quarantines
// the generation and reloads from the previous one, walking further back
// if needed. If the whole store goes bad the incumbent in-memory engine
// keeps serving (stale but valid beats down).
//
// Mutations (Rebuild/SaveSnapshot/Reload/ScrubOnce/Upsert/Delete/
// FlushDelta) are serialized by an internal mutex; readers pay one
// uncontended lock per batch (AcquireView) and the counters are wait-free.
#ifndef FESIA_STORE_INDEX_MANAGER_H_
#define FESIA_STORE_INDEX_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "index/query_engine.h"
#include "store/delta_index.h"
#include "store/snapshot_store.h"
#include "store/wal.h"
#include "util/memory_budget.h"
#include "util/shared_ptr_cell.h"

namespace fesia::store {

class IndexManager {
 public:
  struct Options {
    /// Build parameters used by Rebuild() and the merge.
    FesiaParams params;
    /// Format version stamped on saved generations.
    uint32_t format_version = 1;
    /// Budget charged for this manager's large allocations: snapshot
    /// payloads during Reload/scrub, the WAL replay window, flush
    /// candidates, and the serving engine's steady-state footprint (an
    /// estimate held for the engine's lifetime — it releases when the last
    /// reader drops the old engine after a hot swap). nullptr means
    /// MemoryBudget::Unlimited(), which keeps every existing caller
    /// byte-identical.
    MemoryBudget* budget = nullptr;
    /// Soft byte bound on overlay pending_bytes() + WAL open_bytes().
    /// Crossing it requests an early size-based flush from the auto-flush
    /// loop (complementing its time-based tick). 0 disables.
    uint64_t mutation_soft_bytes = 0;
    /// Hard byte bound on the same quantity. When crossed while a flush is
    /// already in flight, Upsert/Delete soft-fail with kResourceExhausted
    /// *before* the WAL append — nothing is acknowledged and then dropped.
    /// When crossed with no flush running, the mutation is accepted and an
    /// urgent flush is requested instead. 0 disables.
    uint64_t mutation_hard_bytes = 0;
  };

  /// Live-mutation pressure counters (see docs/ROBUSTNESS.md, "Resource
  /// governance and backpressure").
  struct MutationStats {
    /// Documents with unmerged mutations (== pending_mutations()).
    size_t pending_docs = 0;
    /// Estimated overlay bytes (DeltaIndex::pending_bytes()).
    uint64_t pending_bytes = 0;
    /// Bytes across live WAL segments (WriteAheadLog::open_bytes()).
    uint64_t wal_open_bytes = 0;
    /// Mutations acknowledged since OpenMutationLog (excludes replay).
    uint64_t accepted = 0;
    /// Mutations rejected with kResourceExhausted by the hard cap.
    uint64_t rejected = 0;
    /// Flushes the auto-flush loop ran because the soft/hard bound was
    /// crossed (as opposed to its timer).
    uint64_t size_triggered_flushes = 0;
    /// True when the byte bound is crossed or the budget reports pressure.
    bool under_pressure = false;
  };

  /// One consistent read view: the serving engine, the base index it was
  /// built over, and the delta snapshot (null when no mutations are
  /// pending). `owned_base` keeps a merged base alive for the view's
  /// lifetime; `base` points at it, or at the construction-time index when
  /// no merge has happened yet.
  struct MutationView {
    std::shared_ptr<const index::QueryEngine> engine;
    const index::InvertedIndex* base = nullptr;
    std::shared_ptr<const index::InvertedIndex> owned_base;
    std::shared_ptr<const DeltaSnapshot> delta;
    /// Highest WAL seq already folded into `base`.
    uint64_t applied_seq = 0;
  };

  /// `idx` must outlive the manager (engines reference it); the manager
  /// takes ownership of store mutations, so nothing else may call the
  /// store's mutating methods while the manager is alive.
  IndexManager(const index::InvertedIndex* idx, SnapshotStore* snapshots);
  IndexManager(const index::InvertedIndex* idx, SnapshotStore* snapshots,
               Options options);
  ~IndexManager();

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Builds a fresh engine from the construction-time index (the offline
  /// construction phase) and publishes it. The result is not yet persisted
  /// — pair with SaveSnapshot(). Serving generation becomes 0 (in-memory
  /// only). Unflushed delta mutations keep overlaying the result; already
  /// merged (pruned) mutations are not part of an idx-rebuild.
  Status Rebuild();

  /// Persists the serving engine as a new store generation: the legacy
  /// term-set payload when serving the construction-time index, or a
  /// mutable payload (merged base + term sets + applied seq) when serving
  /// a merged base. kFailedPrecondition when nothing is being served yet.
  Status SaveSnapshot(uint64_t* generation = nullptr);

  /// Loads the store's current generation, deep-validates it against its
  /// base (the construction-time index for legacy payloads, the embedded
  /// one for mutable payloads), and hot-swaps it in. On any failure the
  /// incumbent engine keeps serving untouched and the validation error is
  /// returned. Mutations already folded into the loaded generation are
  /// pruned from the delta overlay.
  Status Reload();

  /// One scrub cycle: re-read and re-verify the serving generation's bytes
  /// on disk. On corruption the generation is quarantined and the previous
  /// one is loaded, walking back until a generation validates; only the
  /// swap-in of a validated engine changes what traffic sees. Returns OK
  /// when the active generation verified clean or a rollback succeeded.
  Status ScrubOnce();

  /// Starts/stops the background scrub loop (ScrubOnce every
  /// `interval_seconds`). Idempotent; the destructor stops it.
  void StartScrub(double interval_seconds);
  void StopScrub();

  // --- Live mutation ----------------------------------------------------

  /// Opens (or recovers) the write-ahead log in the snapshot store's
  /// directory and replays every record newer than the serving base's
  /// applied seq into the delta overlay. Call after Reload() so the replay
  /// filter knows what the serving generation already contains. *report
  /// (when non-null) receives what replay found and repaired.
  /// kFailedPrecondition when the log is already open.
  Status OpenMutationLog(WalReplayReport* report = nullptr);

  /// Durably records that `doc` now contains exactly `terms` (sorted and
  /// deduplicated internally). OK means the mutation is fsynced in the WAL
  /// and visible to subsequent queries. kInvalidArgument for a document or
  /// term outside the index's id space; kFailedPrecondition before
  /// OpenMutationLog; kResourceExhausted when the mutation byte bound's
  /// hard cap is hit while a flush is in flight (checked before the
  /// append, so a rejected mutation was never acknowledged — safe to
  /// retry once the flush drains the overlay). *seq (when non-null)
  /// receives the assigned WAL seq.
  Status Upsert(uint32_t doc, std::vector<uint32_t> terms,
                uint64_t* seq = nullptr);

  /// Durably records that `doc` is deleted (a tombstone). Same contract as
  /// Upsert.
  Status Delete(uint32_t doc, uint64_t* seq = nullptr);

  // --- Replication support (shard/replica_set.h) ------------------------

  /// Durably applies a mutation whose seq was assigned externally — the
  /// replication fan-out and repair catch-up paths, where every replica of
  /// a shard must record the same mutation under the same seq so
  /// applied/durable seqs are comparable across peers. Idempotent: a
  /// record at or below durable_seq() is already held and returns OK
  /// without touching anything, which makes crash-retried repair safe.
  /// Otherwise the contract matches Upsert/Delete: validated, admitted
  /// through mutation backpressure, fsynced before visible.
  Status ApplyReplicated(const WalRecord& record);

  /// Highest WAL seq folded into the serving base (the view's applied
  /// seq); 0 before any merged generation serves.
  uint64_t applied_seq() const;

  /// Highest seq durably held here: max of the applied seq and the WAL's
  /// last acknowledged seq. The per-replica sync point anti-entropy repair
  /// compares across peers.
  uint64_t durable_seq() const;

  /// Reads and fully validates the store's current committed generation
  /// for replica re-sync; *format_version / *generation (when non-null)
  /// receive the stored metadata. kDataLoss when the store holds no
  /// generation — pair with SaveSnapshot() to persist the serving state
  /// first.
  StatusOr<std::vector<uint8_t>> ExportSnapshot(
      uint32_t* format_version = nullptr,
      uint64_t* generation = nullptr) const;

  /// Commits `payload` (a peer's exported generation) as this store's next
  /// generation via the atomic-write protocol, then loads, deep-validates,
  /// and hot-swaps it exactly like Reload(). On failure the incumbent
  /// keeps serving (rollbacks() increments). Mutations already folded into
  /// the imported generation are pruned from the delta overlay.
  Status ImportSnapshot(std::span<const uint8_t> payload,
                        uint32_t format_version,
                        uint64_t* generation = nullptr);

  /// Merges the pending delta into a new snapshot generation: freezes the
  /// overlay and rotates the WAL, builds and deep-validates the merged
  /// engine off-lock (the round-tripped bytes a reload would serve),
  /// commits the generation, hot-swaps, prunes the merged delta entries,
  /// and finally truncates the WAL. On a build/validation/commit failure
  /// the incumbent engine and the full delta keep serving (rollbacks()
  /// increments) — nothing is published. A failure truncating the WAL
  /// (e.g. the crash-before-wal-truncate fault) is returned *after* the
  /// publish: the commit is durable and replaying the retained segments is
  /// idempotent. No-op (OK) when the delta is empty. kFailedPrecondition
  /// before OpenMutationLog, before anything serves, or while another
  /// flush is in progress. *generation (when non-null) receives the
  /// serving generation.
  Status FlushDelta(uint64_t* generation = nullptr);

  /// Starts/stops a background loop that flushes whenever mutations are
  /// pending (every `interval_seconds`). Idempotent; the destructor stops
  /// it. Failures are visible through rollbacks() and retried next cycle.
  void StartAutoFlush(double interval_seconds);
  void StopAutoFlush();

  /// Acquires one consistent view for a batch (engine null before the
  /// first successful Rebuild/Reload). The view stays valid for the
  /// caller's whole batch even if a flush hot-swaps the serving state
  /// mid-flight.
  MutationView AcquireView() const;

  /// CountBatch/QueryBatch over the current view: the base engine's batch
  /// results adjusted against the delta overlay. Byte-identical to a
  /// from-scratch rebuild of base+delta for every result with ok().
  std::vector<index::QueryResult> CountBatch(
      std::span<const std::vector<uint32_t>> queries,
      const index::BatchOptions& options = {},
      index::BatchStats* stats = nullptr) const;
  std::vector<index::QueryResult> QueryBatch(
      std::span<const std::vector<uint32_t>> queries,
      const index::BatchOptions& options = {},
      index::BatchStats* stats = nullptr) const;

  /// Documents with unmerged mutations in the overlay.
  size_t pending_mutations() const;

  /// Estimated bytes of unmerged mutations in the overlay (terms plus
  /// tombstone/entry overhead) — the companion of pending_mutations(),
  /// which counts documents only and so cannot drive a byte bound.
  uint64_t pending_bytes() const;

  /// Snapshot of the mutation-pressure state (cheap; takes both internal
  /// locks briefly).
  MutationStats mutation_stats() const;

  // --- Observers --------------------------------------------------------

  /// Acquires the serving engine (null before the first successful
  /// Rebuild/Reload). The returned reference remains valid for the
  /// caller's whole batch even if a reload swaps the serving pointer
  /// mid-flight. Prefer AcquireView()/CountBatch when mutations may be
  /// pending: the bare engine does not see the overlay.
  std::shared_ptr<const index::QueryEngine> engine() const {
    return engine_.load();
  }

  /// Store generation backing the serving engine; 0 when serving an
  /// in-memory build (or nothing).
  uint64_t serving_generation() const {
    return serving_generation_.load(std::memory_order_relaxed);
  }

  /// Monotonic counter bumped every time the answer to some query may have
  /// changed: after each engine publication (Rebuild/Reload/FlushDelta/
  /// scrub rollback/ImportSnapshot) and after each mutation becomes
  /// visible (Upsert/Delete/ApplyReplicated). The serve-layer result cache
  /// (serve/result_cache.h) keys its entries on this value; the bump
  /// happens strictly *after* the new content is visible to queries, so a
  /// result computed against the old content and inserted late carries the
  /// old epoch and can never be served to a request that began after the
  /// mutation was acknowledged.
  uint64_t content_epoch() const {
    return content_epoch_.load(std::memory_order_acquire);
  }

  /// Successful hot-swaps (Rebuild + Reload + flushes + scrub rollbacks).
  uint64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }
  /// Reload/scrub/flush attempts that failed validation or commit and kept
  /// the incumbent.
  uint64_t rollbacks() const {
    return rollbacks_.load(std::memory_order_relaxed);
  }
  /// Completed scrub cycles (clean or not).
  uint64_t scrub_cycles() const {
    return scrub_cycles_.load(std::memory_order_relaxed);
  }
  /// Successfully committed delta merges.
  uint64_t flushes() const {
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  /// The configured budget, never null.
  MemoryBudget* Budget() const {
    return options_.budget != nullptr ? options_.budget
                                      : MemoryBudget::Unlimited();
  }
  /// Overlay + WAL byte total. Caller holds mu_ (takes view_mu_ inside).
  uint64_t MutationBytesLocked() const;
  /// Admission decision for one mutation; caller holds mu_ with the WAL
  /// open. Rejects (hard cap + flush in flight) or requests a size-based
  /// flush; see Options::mutation_hard_bytes.
  Status CheckMutationPressureLocked();
  /// Requests a size-based flush when the just-accepted mutation pushed
  /// the overlay+WAL total over the soft bound. Caller holds mu_.
  void NotifySoftBoundLocked();
  /// Wakes the auto-flush loop for an immediate size-based flush.
  void RequestFlush();
  /// Loads + validates the store's current generation; publishes on
  /// success. Caller holds mu_.
  Status LoadCurrentLocked();
  /// Publishes a validated engine over `owned_base` (null = the
  /// construction-time index) whose content includes WAL records up to
  /// `applied_seq`; optionally prunes those records from the overlay.
  /// Caller holds mu_ (never view_mu_).
  void Publish(std::shared_ptr<const index::QueryEngine> next,
               uint64_t generation,
               std::shared_ptr<const index::InvertedIndex> owned_base,
               uint64_t applied_seq, bool prune_delta);

  const index::InvertedIndex* idx_;
  SnapshotStore* snapshots_;
  Options options_;

  /// The RCU publication point: store on swap, copy in engine().
  SharedPtrCell<const index::QueryEngine> engine_;
  std::atomic<uint64_t> serving_generation_{0};
  std::atomic<uint64_t> content_epoch_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> rollbacks_{0};
  std::atomic<uint64_t> scrub_cycles_{0};
  std::atomic<uint64_t> flushes_{0};

  mutable std::mutex mu_;  // serializes store mutations and publications
  // Guarded by mu_:
  std::unique_ptr<WriteAheadLog> wal_;
  uint64_t next_seq_ = 1;
  bool flush_in_progress_ = false;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> size_flushes_{0};

  /// Guards the read view (engine + base + delta + applied seq) so a
  /// reader acquires all four consistently. Always taken after mu_ when
  /// both are held.
  mutable std::mutex view_mu_;
  std::shared_ptr<const index::QueryEngine> view_engine_;
  std::shared_ptr<const index::InvertedIndex> owned_base_;
  DeltaIndex delta_;
  uint64_t applied_seq_ = 0;

  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;
  std::thread scrub_thread_;

  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  bool flush_stop_ = false;
  /// Set when the byte bound is crossed; the auto-flush loop consumes it
  /// (flushing immediately instead of waiting out its interval) and counts
  /// the run in size_triggered_flushes.
  bool flush_requested_ = false;
  std::thread flush_thread_;
};

}  // namespace fesia::store

#endif  // FESIA_STORE_INDEX_MANAGER_H_
