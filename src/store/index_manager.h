// Live serving lifecycle for a QueryEngine backed by a SnapshotStore:
// build, persist, reload, and hot-swap under traffic without ever serving
// corrupt bytes (docs/ROBUSTNESS.md, "Durability and recovery").
//
// The serving engine sits behind a SharedPtrCell swapped RCU-style:
// readers acquire a reference once per batch and keep executing on it even
// while a reload publishes a replacement, so in-flight CountBatch /
// QueryBatch calls finish on the engine they started with and new callers
// see the new one. A reload that fails validation rolls back trivially —
// the incumbent pointer is only replaced after the candidate passed every
// check — and surfaces a non-OK Status instead of disturbing traffic.
//
// An optional background scrub re-reads the active generation's bytes on
// an interval and re-verifies the CRC chain; on mismatch it quarantines
// the generation and reloads from the previous one, walking further back
// if needed. If the whole store goes bad the incumbent in-memory engine
// keeps serving (stale but valid beats down).
//
// Mutations (Rebuild/SaveSnapshot/Reload/ScrubOnce) are serialized by an
// internal mutex; engine() costs readers one uncontended lock per batch
// and the counters are wait-free.
#ifndef FESIA_STORE_INDEX_MANAGER_H_
#define FESIA_STORE_INDEX_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "index/query_engine.h"
#include "store/snapshot_store.h"
#include "util/shared_ptr_cell.h"

namespace fesia::store {

class IndexManager {
 public:
  struct Options {
    /// Build parameters used by Rebuild().
    FesiaParams params;
    /// Format version stamped on saved generations.
    uint32_t format_version = 1;
  };

  /// `idx` must outlive the manager (engines reference it); the manager
  /// takes ownership of store mutations, so nothing else may call the
  /// store's mutating methods while the manager is alive.
  IndexManager(const index::InvertedIndex* idx, SnapshotStore* snapshots);
  IndexManager(const index::InvertedIndex* idx, SnapshotStore* snapshots,
               Options options);
  ~IndexManager();

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Builds a fresh engine from the index (the offline construction phase)
  /// and publishes it. The result is not yet persisted — pair with
  /// SaveSnapshot(). Serving generation becomes 0 (in-memory only).
  Status Rebuild();

  /// Persists the serving engine's term sets as a new store generation.
  /// kFailedPrecondition when nothing is being served yet.
  Status SaveSnapshot(uint64_t* generation = nullptr);

  /// Loads the store's current generation, deep-validates it against the
  /// index, and hot-swaps it in. On any failure the incumbent engine keeps
  /// serving untouched and the validation error is returned.
  Status Reload();

  /// One scrub cycle: re-read and re-verify the serving generation's bytes
  /// on disk. On corruption the generation is quarantined and the previous
  /// one is loaded, walking back until a generation validates; only the
  /// swap-in of a validated engine changes what traffic sees. Returns OK
  /// when the active generation verified clean or a rollback succeeded.
  Status ScrubOnce();

  /// Starts/stops the background scrub loop (ScrubOnce every
  /// `interval_seconds`). Idempotent; the destructor stops it.
  void StartScrub(double interval_seconds);
  void StopScrub();

  /// Acquires the serving engine (null before the first successful
  /// Rebuild/Reload). The returned reference remains valid for the
  /// caller's whole batch even if a reload swaps the serving pointer
  /// mid-flight.
  std::shared_ptr<const index::QueryEngine> engine() const {
    return engine_.load();
  }

  /// Store generation backing the serving engine; 0 when serving an
  /// in-memory build (or nothing).
  uint64_t serving_generation() const {
    return serving_generation_.load(std::memory_order_relaxed);
  }

  /// Successful hot-swaps (Rebuild + Reload + scrub rollbacks).
  uint64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }
  /// Reload/scrub attempts that failed validation and kept the incumbent.
  uint64_t rollbacks() const {
    return rollbacks_.load(std::memory_order_relaxed);
  }
  /// Completed scrub cycles (clean or not).
  uint64_t scrub_cycles() const {
    return scrub_cycles_.load(std::memory_order_relaxed);
  }

 private:
  /// Loads + validates the store's current generation; publishes on
  /// success. Caller holds mu_.
  Status LoadCurrentLocked();
  void Publish(std::shared_ptr<const index::QueryEngine> next,
               uint64_t generation);

  const index::InvertedIndex* idx_;
  SnapshotStore* snapshots_;
  Options options_;

  /// The RCU publication point: store on swap, copy in engine().
  SharedPtrCell<const index::QueryEngine> engine_;
  std::atomic<uint64_t> serving_generation_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> rollbacks_{0};
  std::atomic<uint64_t> scrub_cycles_{0};

  std::mutex mu_;  // serializes store mutations and publications

  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;
  std::thread scrub_thread_;
};

}  // namespace fesia::store

#endif  // FESIA_STORE_INDEX_MANAGER_H_
