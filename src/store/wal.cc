#include "store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <utility>

#include "util/byte_io.h"
#include "util/crc32c.h"
#include "util/fault_injection.h"

namespace fesia::store {
namespace {

namespace fs = std::filesystem;

// u64 seq + u8 kind + u32 doc + u32 num_terms.
constexpr size_t kMinPayloadBytes = 8 + 1 + 4 + 4;
// Frames are one mutation each; anything bigger than this is corruption,
// not data (guards the replay allocation against a mangled length field).
constexpr size_t kMaxPayloadBytes = size_t{1} << 27;

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string("wal: ") + op + " " + path + ": " +
         std::strerror(errno);
}

Status WriteAllFd(int fd, const uint8_t* data, size_t bytes,
                  const std::string& path) {
  size_t off = 0;
  while (off < bytes) {
    ssize_t w = ::write(fd, data + off, bytes - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write", path));
    }
    off += static_cast<size_t>(w);
  }
  return Status::Ok();
}

void FsyncDirBestEffort(const std::string& dir) {
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

/// First unused `<path>.quarantine[.k]` name.
std::string QuarantinePathFor(const std::string& path) {
  std::string q = path + ".quarantine";
  int k = 0;
  std::error_code ec;
  while (fs::exists(q, ec)) q = path + ".quarantine." + std::to_string(++k);
  return q;
}

/// `wal.NNNNNN` -> id; false for every other name (quarantine copies,
/// snapshot generations, the manifest, temp debris).
bool ParseSegmentFileName(const std::string& name, uint64_t* id) {
  constexpr char kPrefix[] = "wal.";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.size() <= kPrefixLen || name.compare(0, kPrefixLen, kPrefix) != 0)
    return false;
  uint64_t v = 0;
  for (size_t i = kPrefixLen; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *id = v;
  return true;
}

std::vector<uint8_t> EncodeFrame(const WalRecord& record) {
  std::vector<uint8_t> payload;
  ByteWriter pw(&payload);
  pw.Put<uint64_t>(record.seq);
  pw.Put<uint8_t>(static_cast<uint8_t>(record.kind));
  pw.Put<uint32_t>(record.doc);
  pw.Put<uint32_t>(static_cast<uint32_t>(record.terms.size()));
  pw.PutRaw(record.terms.data(), record.terms.size());

  std::vector<uint8_t> frame;
  ByteWriter fw(&frame);
  fw.Put<uint32_t>(static_cast<uint32_t>(payload.size()));
  fw.Put<uint32_t>(Crc32c(payload.data(), payload.size()));
  fw.PutRaw(payload.data(), payload.size());
  return frame;
}

/// Parses one frame at buf[off..]. Returns OK and advances *off past the
/// frame when it is valid; kCorruption when the bytes from `off` on are a
/// torn or corrupt tail; kResourceExhausted is propagated (an allocation
/// failure must not be mistaken for corruption — that would truncate
/// acknowledged data).
Status ParseFrame(std::span<const uint8_t> buf, size_t* off,
                  uint64_t prev_seq, WalRecord* out) {
  if (buf.size() - *off < 8) return Status::Corruption("torn frame header");
  uint32_t len = 0, crc = 0;
  std::memcpy(&len, buf.data() + *off, 4);
  std::memcpy(&crc, buf.data() + *off + 4, 4);
  if (len < kMinPayloadBytes || len > kMaxPayloadBytes ||
      len > buf.size() - *off - 8) {
    return Status::Corruption("frame length out of range");
  }
  std::span<const uint8_t> payload(buf.data() + *off + 8, len);
  if (Crc32c(payload.data(), payload.size()) != crc) {
    return Status::Corruption("frame checksum mismatch");
  }

  ByteReader r(payload);
  uint8_t kind = 0;
  uint32_t num_terms = 0;
  if (!r.Get(&out->seq) || !r.Get(&kind) || !r.Get(&out->doc) ||
      !r.Get(&num_terms)) {
    return Status::Corruption("truncated record payload");
  }
  Status s = r.GetRawArray(&out->terms, num_terms);
  if (!s.ok()) {
    if (s.code() == StatusCode::kResourceExhausted) return s;
    return Status::Corruption("record term array extends past frame");
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes inside frame");
  if (kind > static_cast<uint8_t>(WalRecord::Kind::kDelete)) {
    return Status::Corruption("unknown record kind");
  }
  out->kind = static_cast<WalRecord::Kind>(kind);
  if (out->kind == WalRecord::Kind::kDelete && !out->terms.empty()) {
    return Status::Corruption("delete record carries terms");
  }
  for (size_t i = 1; i < out->terms.size(); ++i) {
    if (out->terms[i] <= out->terms[i - 1]) {
      return Status::Corruption("record terms not strictly ascending");
    }
  }
  if (out->seq <= prev_seq) {
    return Status::Corruption("record seq not monotonically increasing");
  }
  *off += 8 + len;
  return Status::Ok();
}

// Streams one segment through a bounded window so replay memory is
// O(chunk), not O(segment) — a legitimately large segment must not fail
// open the way a whole-file read capped at kDefaultMaxReadFileBytes did.
// The window holds bytes [window_off, window_off + buf.size()) of the
// file; `pos` is the parse position inside it (always frame-aligned
// between records).
struct SegmentReader {
  int fd = -1;
  std::string path;
  uint64_t file_size = 0;
  uint64_t read_off = 0;    // next file offset to read
  uint64_t window_off = 0;  // file offset of buf[0]
  size_t pos = 0;           // parse position within buf
  std::vector<uint8_t> buf;

  ~SegmentReader() {
    if (fd >= 0) ::close(fd);
  }
  SegmentReader() = default;
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  size_t available() const { return buf.size() - pos; }
  uint64_t unread() const { return file_size - read_off; }
  /// File offset of the parse position — the truncation point when the
  /// bytes from here on turn out to be a torn tail.
  uint64_t file_pos() const { return window_off + pos; }

  Status OpenFile(const std::string& p) {
    path = p;
    fd = ::open(p.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Status::IoError(ErrnoMessage("open", p));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      return Status::IoError(ErrnoMessage("fstat", p));
    }
    file_size = static_cast<uint64_t>(st.st_size);
    return Status::Ok();
  }

  /// Makes at least min(want, bytes left in the file) bytes available at
  /// `pos`, compacting the consumed prefix first so the window never holds
  /// retired frames. `want` above the chunk size grows the window for one
  /// oversized frame (bounded by the frame-length cap the parser enforces).
  Status FillTo(size_t want) {
    if (available() >= want || unread() == 0) return Status::Ok();
    if (pos > 0) {
      std::memmove(buf.data(), buf.data() + pos, available());
      buf.resize(available());
      window_off += pos;
      pos = 0;
    }
    uint64_t target64 = std::min<uint64_t>(want, buf.size() + unread());
    size_t target = static_cast<size_t>(target64);
    if (target > buf.size() &&
        fault::ShouldFail(fault::FaultPoint::kAllocation)) {
      return Status::ResourceExhausted("wal: replay buffer allocation failed "
                                       "for " + path);
    }
    while (buf.size() < target) {
      size_t old = buf.size();
      buf.resize(target);
      ssize_t n = ::read(fd, buf.data() + old, target - old);
      if (n < 0) {
        buf.resize(old);
        if (errno == EINTR) continue;
        return Status::IoError(ErrnoMessage("read", path));
      }
      if (n == 0) {
        // File shorter than fstat said (concurrent external truncation);
        // treat the vanished suffix as unreadable rather than spinning.
        buf.resize(old);
        file_size = read_off;
        break;
      }
      buf.resize(old + static_cast<size_t>(n));
      read_off += static_cast<uint64_t>(n);
    }
    return Status::Ok();
  }

  /// Copies everything from the parse position to end-of-file into a fresh
  /// quarantine file, streaming in window-sized pieces (the suspect suffix
  /// can be as large as the segment).
  Status QuarantineSuffix(const std::string& qpath, size_t chunk) {
    int qfd = ::open(qpath.c_str(),
                     O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (qfd < 0) return Status::IoError(ErrnoMessage("open", qpath));
    Status s = Status::Ok();
    while (true) {
      if (available() == 0) {
        buf.clear();
        window_off = file_pos();
        pos = 0;
        s = FillTo(std::max<size_t>(chunk, 1));
        if (!s.ok()) break;
        if (available() == 0) break;  // end of file
      }
      s = WriteAllFd(qfd, buf.data() + pos, available(), qpath);
      if (!s.ok()) break;
      pos = buf.size();
    }
    ::close(qfd);
    return s;
  }
};

}  // namespace

std::string WalReplayReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "replayed %zu records across %zu segments, last seq %llu",
                records, segments,
                static_cast<unsigned long long>(last_seq));
  std::string s(buf);
  if (!clean()) {
    std::snprintf(buf, sizeof(buf),
                  ", quarantined %zu torn segment tails (%zu bytes cut)",
                  quarantined_segments, torn_tail_bytes);
    s += buf;
  }
  return s;
}

std::string WriteAheadLog::SegmentPath(uint64_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal.%06llu",
                static_cast<unsigned long long>(id));
  return dir_ + "/" + name;
}

StatusOr<WriteAheadLog> WriteAheadLog::Open(const std::string& dir,
                                            std::vector<WalRecord>* records,
                                            WalReplayReport* report,
                                            const WalOpenOptions& options) {
  if (dir.empty()) return Status::InvalidArgument("wal: empty directory");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("wal: cannot create " + dir + ": " +
                           ec.message());
  }

  std::vector<uint64_t> ids;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t id = 0;
    if (ParseSegmentFileName(entry.path().filename().string(), &id)) {
      ids.push_back(id);
    }
  }
  if (ec) {
    return Status::IoError("wal: cannot list " + dir + ": " + ec.message());
  }
  std::sort(ids.begin(), ids.end());

  WriteAheadLog wal;
  wal.dir_ = dir;
  WalReplayReport rep;
  rep.segments = ids.size();
  uint64_t prev_seq = 0;

  // The replay window is the only buffer replay holds: charge its live size
  // (never more than one chunk, or one oversized frame) and release it when
  // Open returns. A budget smaller than the largest segment therefore still
  // admits replay — the regression the chunked reader exists to fix.
  const size_t chunk = std::max<size_t>(options.replay_chunk_bytes, 4096);
  MemoryBudget* budget =
      options.budget != nullptr ? options.budget : MemoryBudget::Unlimited();
  ScopedCharge window_charge(budget);
  auto ensure_charged = [&](uint64_t want) -> Status {
    if (want <= window_charge.bytes()) return Status::Ok();
    return window_charge.Add(want - window_charge.bytes(),
                             "wal replay buffer");
  };

  for (uint64_t id : ids) {
    const std::string path = wal.SegmentPath(id);
    SegmentReader sr;
    FESIA_RETURN_IF_ERROR(sr.OpenFile(path));
    FESIA_RETURN_IF_ERROR(
        ensure_charged(std::min<uint64_t>(chunk, sr.file_size)));

    uint64_t seg_max = 0;
    uint64_t seg_bytes = sr.file_size;
    while (true) {
      FESIA_RETURN_IF_ERROR(sr.FillTo(std::max<size_t>(chunk, 8)));
      if (sr.available() == 0) break;  // clean end of segment
      // Pull the whole frame into the window before parsing whenever its
      // length field is plausible, so "not yet buffered" can never be
      // mistaken for "torn tail" — that mistake would truncate away
      // acknowledged records.
      if (sr.available() >= 8) {
        uint32_t len = 0;
        std::memcpy(&len, sr.buf.data() + sr.pos, 4);
        if (len >= kMinPayloadBytes && len <= kMaxPayloadBytes) {
          const size_t need = 8 + static_cast<size_t>(len);
          if (need > sr.available()) {
            FESIA_RETURN_IF_ERROR(ensure_charged(need));
            FESIA_RETURN_IF_ERROR(sr.FillTo(need));
          }
        }
      }
      WalRecord rec;
      size_t off = sr.pos;
      Status s = ParseFrame(std::span<const uint8_t>(sr.buf), &off, prev_seq,
                            &rec);
      if (s.ok()) {
        rep.replayed_bytes += off - sr.pos;
        sr.pos = off;
        prev_seq = rec.seq;
        seg_max = rec.seq;
        ++rep.records;
        if (records != nullptr) records->push_back(std::move(rec));
        continue;
      }
      if (s.code() == StatusCode::kResourceExhausted) return s;
      // Torn or corrupt from the parse position on: copy the suspect
      // suffix aside for the operator (never delete evidence), then cut
      // the segment back to its last valid frame so future appends and
      // replays see only good bytes.
      const uint64_t cut_at = sr.file_pos();
      const uint64_t suspect = sr.file_size - cut_at;
      FESIA_RETURN_IF_ERROR(
          sr.QuarantineSuffix(QuarantinePathFor(path), chunk));
      fs::resize_file(path, cut_at, ec);
      if (ec) {
        return Status::IoError("wal: cannot truncate " + path + ": " +
                               ec.message());
      }
      seg_bytes = cut_at;
      rep.torn_tail_bytes += suspect;
      ++rep.quarantined_segments;
      break;
    }
    wal.sealed_.push_back(SealedSegment{id, seg_max, seg_bytes});
    wal.sealed_bytes_ += seg_bytes;
  }

  wal.last_seq_ = prev_seq;
  wal.active_id_ = ids.empty() ? 1 : ids.back() + 1;
  rep.last_seq = prev_seq;
  if (report != nullptr) *report = rep;
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : dir_(std::move(other.dir_)),
      sealed_(std::move(other.sealed_)),
      active_id_(other.active_id_),
      fd_(other.fd_),
      active_max_seq_(other.active_max_seq_),
      last_seq_(other.last_seq_),
      sealed_bytes_(other.sealed_bytes_),
      active_bytes_(other.active_bytes_),
      poisoned_(other.poisoned_) {
  other.fd_ = -1;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    dir_ = std::move(other.dir_);
    sealed_ = std::move(other.sealed_);
    active_id_ = other.active_id_;
    fd_ = other.fd_;
    active_max_seq_ = other.active_max_seq_;
    last_seq_ = other.last_seq_;
    sealed_bytes_ = other.sealed_bytes_;
    active_bytes_ = other.active_bytes_;
    poisoned_ = other.poisoned_;
    other.fd_ = -1;
  }
  return *this;
}

Status WriteAheadLog::Append(const WalRecord& record) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "wal: active segment poisoned by a failed append; Rotate() or "
        "reopen to recover");
  }
  if (record.seq <= last_seq_) {
    return Status::InvalidArgument("wal: seq not monotonically increasing");
  }
  if (record.kind != WalRecord::Kind::kUpsert &&
      record.kind != WalRecord::Kind::kDelete) {
    return Status::InvalidArgument("wal: unknown record kind");
  }
  if (record.kind == WalRecord::Kind::kDelete && !record.terms.empty()) {
    return Status::InvalidArgument("wal: delete record must carry no terms");
  }
  for (size_t i = 1; i < record.terms.size(); ++i) {
    if (record.terms[i] <= record.terms[i - 1]) {
      return Status::InvalidArgument(
          "wal: record terms must be strictly ascending");
    }
  }

  const std::vector<uint8_t> frame = EncodeFrame(record);

  if (fd_ < 0) {
    const std::string path = SegmentPath(active_id_);
    fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
                 0644);
    if (fd_ < 0) return Status::IoError(ErrnoMessage("open", path));
    // The record is durable only once the segment's directory entry is
    // too; one directory fsync per segment creation covers every append.
    FsyncDirBestEffort(dir_);
    active_max_seq_ = 0;
  }

  const std::string path = SegmentPath(active_id_);
  if (fault::ShouldFail(fault::FaultPoint::kWalAppendShortWrite)) {
    // Power loss mid-append: half the frame reaches the disk, durably.
    (void)WriteAllFd(fd_, frame.data(), frame.size() / 2, path);
    ::fsync(fd_);
    active_bytes_ += frame.size() / 2;
    poisoned_ = true;
    return Status::IoError("wal: injected short write tore record " +
                           std::to_string(record.seq));
  }

  Status w = WriteAllFd(fd_, frame.data(), frame.size(), path);
  if (!w.ok()) {
    // The tear's exact length is unknown; count the full frame so
    // open_bytes() over-reports rather than under-reports the torn tail.
    active_bytes_ += frame.size();
    poisoned_ = true;
    return w;
  }
  if (::fsync(fd_) != 0) {
    active_bytes_ += frame.size();
    poisoned_ = true;
    return Status::IoError(ErrnoMessage("fsync", path));
  }
  last_seq_ = record.seq;
  active_max_seq_ = record.seq;
  active_bytes_ += frame.size();
  return Status::Ok();
}

void WriteAheadLog::SealActiveLocked() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  sealed_.push_back(SealedSegment{active_id_, active_max_seq_, active_bytes_});
  sealed_bytes_ += active_bytes_;
  ++active_id_;
  active_max_seq_ = 0;
  active_bytes_ = 0;
}

Status WriteAheadLog::Rotate() {
  SealActiveLocked();
  // A torn active tail (failed append) is now sealed; everything
  // acknowledged precedes the tear and replay truncates the rest, so new
  // appends may proceed in a fresh segment.
  poisoned_ = false;
  return Status::Ok();
}

Status WriteAheadLog::DropThrough(uint64_t seq) {
  if (fault::ShouldFail(fault::FaultPoint::kCrashBeforeWalTruncate)) {
    return Status::IoError(
        "wal: injected crash before truncation; sealed segments retained");
  }
  auto it = sealed_.begin();
  while (it != sealed_.end()) {
    if (it->max_seq > seq) {
      ++it;
      continue;
    }
    std::error_code ec;
    fs::remove(SegmentPath(it->id), ec);
    if (ec) {
      return Status::IoError("wal: cannot remove " + SegmentPath(it->id) +
                             ": " + ec.message());
    }
    sealed_bytes_ -= it->bytes;
    it = sealed_.erase(it);
  }
  FsyncDirBestEffort(dir_);
  return Status::Ok();
}

}  // namespace fesia::store
