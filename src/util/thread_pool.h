// A fixed-size thread pool, a lazily-initialized process-wide instance of
// it, and a pool-backed ParallelFor primitive.
//
// FESIA's multicore extension (paper Sec. VI) partitions the segment range
// across cores; each worker intersects its range independently and partial
// counts are summed. ParallelFor implements exactly that static
// partitioning, but instead of spawning threads per call it dispatches onto
// a long-lived pool: under query traffic the per-call thread-creation cost
// would otherwise dominate the intersections themselves.
//
// Callers choose the pool through an Executor handle. A default-constructed
// Executor resolves to the shared process-wide pool (DefaultThreadPool());
// embedders that need isolation (tests, latency-sensitive services) pass
// their own ThreadPool.
#ifndef FESIA_UTIL_THREAD_POOL_H_
#define FESIA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fesia {

/// Fixed-size worker pool. Tasks are arbitrary void() callables.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. Calling Submit once
  /// destruction has begun is a programmer error (FESIA_CHECK): the task
  /// would be dropped on the floor, stranding any caller waiting for it.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// True when the calling thread is a worker of *any* ThreadPool. Used to
  /// serialize nested ParallelFor calls instead of deadlocking on a pool
  /// whose workers are all blocked waiting for their own subtasks.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// The process-wide pool: created on first use with one worker per hardware
/// thread, shared by every ParallelFor / batch-query call that does not
/// supply its own pool. Never destroyed (workers exit with the process), so
/// static-destruction order cannot strand a blocked caller.
ThreadPool& DefaultThreadPool();

/// Cheap copyable handle naming the pool parallel work runs on. The default
/// handle targets DefaultThreadPool(), resolved lazily at first use.
///
/// Lifetime contract: an Executor does NOT own or extend the life of its
/// pool. Every call made through the handle (ParallelFor, batch execution,
/// parallel intersections) must complete before the pool's destructor
/// begins; the handle holds a raw pointer, so a dangling Executor is
/// use-after-free. The failure mode this produces in practice — Submit
/// racing pool shutdown — is caught by a FESIA_CHECK in Submit, but only
/// when the pool object itself is still alive; keep the pool alive for as
/// long as any copy of its Executor can issue work. Handles to the shared
/// process-wide pool are always safe: that pool is never destroyed.
class Executor {
 public:
  /// Targets the shared process-wide pool.
  Executor() = default;
  /// Targets a caller-owned pool, which must outlive every call made
  /// through this handle. A null pool targets the shared pool.
  explicit Executor(ThreadPool* pool) : pool_(pool) {}

  ThreadPool& pool() const { return pool_ ? *pool_ : DefaultThreadPool(); }

 private:
  ThreadPool* pool_ = nullptr;
};

/// Splits [begin, end) into at most `num_threads` contiguous chunks and runs
/// `body(chunk_begin, chunk_end, chunk_index)` on each. Chunks after the
/// first are dispatched onto `exec`'s pool while the calling thread runs
/// chunk 0, so the caller always makes progress even on a saturated pool;
/// completion is tracked per call, so concurrent ParallelFor calls may share
/// one pool. Blocks until all chunks complete. num_threads == 0 is treated
/// as 1; calls from inside a pool worker run serially (no nested fan-out).
void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t, size_t, size_t)>& body,
                 const Executor& exec = {});

}  // namespace fesia

#endif  // FESIA_UTIL_THREAD_POOL_H_
