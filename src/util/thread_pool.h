// A small fixed-size thread pool with a ParallelFor primitive.
//
// FESIA's multicore extension (paper Sec. VI) partitions the segment range
// across cores; each worker intersects its range independently and partial
// counts are summed. ParallelFor implements exactly that static partitioning.
#ifndef FESIA_UTIL_THREAD_POOL_H_
#define FESIA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fesia {

/// Fixed-size worker pool. Tasks are arbitrary void() callables.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Splits [begin, end) into `num_threads` contiguous chunks and runs
/// `body(chunk_begin, chunk_end, chunk_index)` on each, in parallel when
/// num_threads > 1. Blocks until all chunks complete.
void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t, size_t, size_t)>& body);

}  // namespace fesia

#endif  // FESIA_UTIL_THREAD_POOL_H_
