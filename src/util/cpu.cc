#include "util/cpu.h"

#include <cpuid.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace fesia {

SimdLevel DetectSimdLevel() {
  static const SimdLevel level = [] {
    __builtin_cpu_init();
    SimdLevel detected = SimdLevel::kScalar;
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512dq")) {
      detected = SimdLevel::kAvx512;
    } else if (__builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("bmi") &&
               __builtin_cpu_supports("bmi2")) {
      detected = SimdLevel::kAvx2;
    } else if (__builtin_cpu_supports("sse4.2") &&
               __builtin_cpu_supports("popcnt")) {
      detected = SimdLevel::kSse;
    }
    // Operator-forced ceiling: FESIA_MAX_SIMD=sse caps dispatch below the
    // hardware maximum (e.g. to sidestep a suspect microarchitecture).
    const char* cap_name = std::getenv("FESIA_MAX_SIMD");
    SimdLevel cap = SimdLevel::kAuto;
    if (cap_name != nullptr && ParseSimdLevel(cap_name, &cap) &&
        cap != SimdLevel::kAuto &&
        static_cast<int>(cap) < static_cast<int>(detected)) {
      detected = cap;
    }
    return detected;
  }();
  return level;
}

bool ParseSimdLevel(const char* name, SimdLevel* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) *out = SimdLevel::kScalar;
  else if (std::strcmp(name, "sse") == 0) *out = SimdLevel::kSse;
  else if (std::strcmp(name, "avx2") == 0) *out = SimdLevel::kAvx2;
  else if (std::strcmp(name, "avx512") == 0) *out = SimdLevel::kAvx512;
  else if (std::strcmp(name, "auto") == 0) *out = SimdLevel::kAuto;
  else return false;
  return true;
}

SimdLevel ResolveSimdLevel(SimdLevel requested) {
  SimdLevel max = DetectSimdLevel();
  if (requested == SimdLevel::kAuto) return max;
  return static_cast<int>(requested) <= static_cast<int>(max) ? requested : max;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse:
      return "sse";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAuto:
      return "auto";
  }
  return "unknown";
}

int SimdWidthBits(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return 64;
    case SimdLevel::kSse:
      return 128;
    case SimdLevel::kAvx2:
      return 256;
    case SimdLevel::kAvx512:
      return 512;
    case SimdLevel::kAuto:
      return SimdWidthBits(DetectSimdLevel());
  }
  return 64;
}

int SimdLanes32(SimdLevel level) { return SimdWidthBits(level) / 32; }

std::string CpuBrandString() {
  unsigned int regs[12] = {0};
  unsigned int max_ext = __get_cpuid_max(0x80000000u, nullptr);
  if (max_ext < 0x80000004u) return "unknown";
  for (unsigned int i = 0; i < 3; ++i) {
    __get_cpuid(0x80000002u + i, &regs[4 * i], &regs[4 * i + 1],
                &regs[4 * i + 2], &regs[4 * i + 3]);
  }
  char brand[49];
  std::memcpy(brand, regs, 48);
  brand[48] = '\0';
  std::string s(brand);
  // Trim leading/trailing spaces cpuid pads with.
  size_t b = s.find_first_not_of(' ');
  size_t e = s.find_last_not_of(' ');
  if (b == std::string::npos) return "unknown";
  return s.substr(b, e - b + 1);
}

}  // namespace fesia
