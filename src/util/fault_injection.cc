#include "util/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace fesia::fault {
namespace {

constexpr int kNumPoints = static_cast<int>(FaultPoint::kNumPoints);

struct PointState {
  std::atomic<bool> armed{false};
  // Remaining hits to let pass before firing; fires when it reaches zero.
  std::atomic<int64_t> countdown{0};
  std::atomic<uint64_t> param{0};
  std::atomic<uint64_t> hits{0};
};

PointState g_points[kNumPoints];

PointState& StateFor(FaultPoint p) {
  return g_points[static_cast<int>(p)];
}

void InitFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("FESIA_FAULTS");
    if (spec != nullptr && *spec != '\0') ArmFromSpec(spec);
  });
}

// Parses a decimal uint64 from [begin, end); false on empty/garbage.
bool ParseU64(const char* begin, const char* end, uint64_t* out) {
  if (begin == end) return false;
  uint64_t v = 0;
  for (const char* p = begin; p != end; ++p) {
    if (*p < '0' || *p > '9') return false;
    v = v * 10 + static_cast<uint64_t>(*p - '0');
  }
  *out = v;
  return true;
}

}  // namespace

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kAllocation:
      return "alloc";
    case FaultPoint::kSnapshotTruncate:
      return "snapshot-truncate";
    case FaultPoint::kSnapshotBitFlip:
      return "snapshot-bitflip";
    case FaultPoint::kBackendDowngrade:
      return "backend-downgrade";
    case FaultPoint::kQueryDelay:
      return "query-delay";
    case FaultPoint::kIoShortWrite:
      return "io-short-write";
    case FaultPoint::kCrashBeforeRename:
      return "crash-before-rename";
    case FaultPoint::kCrashAfterRename:
      return "crash-after-rename";
    case FaultPoint::kWalAppendShortWrite:
      return "wal-append-short-write";
    case FaultPoint::kCrashBeforeWalTruncate:
      return "crash-before-wal-truncate";
    case FaultPoint::kBudgetExhausted:
      return "budget-exhausted";
    case FaultPoint::kRepairCrashBeforeImport:
      return "repair-crash-before-import";
    case FaultPoint::kRepairCrashBeforeCatchup:
      return "repair-crash-before-catchup";
    case FaultPoint::kRepairCrashBeforeRevive:
      return "repair-crash-before-revive";
    case FaultPoint::kNumPoints:
      break;
  }
  return "unknown";
}

void Arm(FaultPoint point, uint64_t skip, uint64_t param) {
  PointState& st = StateFor(point);
  st.countdown.store(static_cast<int64_t>(skip));
  st.param.store(param);
  st.armed.store(true);
}

void Disarm(FaultPoint point) { StateFor(point).armed.store(false); }

void DisarmAll() {
  for (int i = 0; i < kNumPoints; ++i) g_points[i].armed.store(false);
}

bool IsArmed(FaultPoint point) { return StateFor(point).armed.load(); }

bool ShouldFail(FaultPoint point, uint64_t* param) {
  InitFromEnvOnce();
  PointState& st = StateFor(point);
  st.hits.fetch_add(1);
  if (!st.armed.load(std::memory_order_relaxed)) return false;
  if (st.countdown.fetch_sub(1) > 0) return false;
  st.armed.store(false);  // fire exactly once per arming
  if (param != nullptr) *param = st.param.load();
  return true;
}

uint64_t HitCount(FaultPoint point) { return StateFor(point).hits.load(); }

bool ArmFromSpec(const char* spec) {
  if (spec == nullptr) return false;
  const char* p = spec;
  while (*p != '\0') {
    const char* entry_end = std::strchr(p, ',');
    if (entry_end == nullptr) entry_end = p + std::strlen(p);

    // Split entry into name[:skip[:param]].
    const char* c1 = static_cast<const char*>(
        std::memchr(p, ':', static_cast<size_t>(entry_end - p)));
    const char* name_end = c1 != nullptr ? c1 : entry_end;
    uint64_t skip = 0, param = 0;
    if (c1 != nullptr) {
      const char* c2 = static_cast<const char*>(
          std::memchr(c1 + 1, ':', static_cast<size_t>(entry_end - c1 - 1)));
      const char* skip_end = c2 != nullptr ? c2 : entry_end;
      if (!ParseU64(c1 + 1, skip_end, &skip)) return false;
      if (c2 != nullptr && !ParseU64(c2 + 1, entry_end, &param)) return false;
    }

    std::string name(p, name_end);
    bool matched = false;
    for (int i = 0; i < kNumPoints; ++i) {
      FaultPoint pt = static_cast<FaultPoint>(i);
      if (name == FaultPointName(pt)) {
        Arm(pt, skip, param);
        matched = true;
        break;
      }
    }
    if (!matched) return false;

    p = (*entry_end == ',') ? entry_end + 1 : entry_end;
  }
  return true;
}

}  // namespace fesia::fault
