// Status-returning whole-file read/write used by snapshot persistence and
// the CLI. Reads pass through the fault-injection harness (snapshot
// truncation / bit-flip points), so storage corruption can be rehearsed
// end-to-end: injected corruption must surface as a clean non-OK Status
// from the downstream validator, never as UB.
//
// Writes come in two flavors: WriteFileBytes truncates in place (cheap,
// non-durable — a crash mid-write destroys the previous copy) and
// AtomicWriteFileBytes, which follows the temp-file + fsync + rename +
// directory-fsync protocol so the destination always holds either the old
// or the new bytes, never a torn mix (docs/ROBUSTNESS.md, "Durability and
// recovery").
#ifndef FESIA_UTIL_FILE_IO_H_
#define FESIA_UTIL_FILE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fesia {

/// Upper bound ReadFileBytes applies when the caller does not pass one.
/// A corrupt filesystem entry can report an arbitrary multi-GB length;
/// capping the allocation turns that into kResourceExhausted instead of
/// std::bad_alloc. Snapshots in this codebase are far below 1 GiB.
inline constexpr size_t kDefaultMaxReadFileBytes = size_t{1} << 30;

/// Reads the whole file into *out (replacing its contents). kIoError if the
/// file cannot be opened or read; kResourceExhausted if the reported size
/// exceeds `max_bytes` or the allocation fails (the allocation is routed
/// through the `alloc` fault point). Armed kSnapshotTruncate /
/// kSnapshotBitFlip faults corrupt the returned bytes (not the file).
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out,
                     size_t max_bytes = kDefaultMaxReadFileBytes);

/// Writes `bytes` bytes at `data` to `path`, replacing any existing file
/// in place. Not crash-safe: prefer AtomicWriteFileBytes for data whose
/// previous copy must survive a failed write.
Status WriteFileBytes(const std::string& path, const void* data,
                      size_t bytes);

/// Crash-safe replacement of `path`: writes to `<path>.tmp.<pid>`, fsyncs
/// the file, renames it over `path`, then fsyncs the parent directory.
/// After an OK return the new bytes are durable; after any failure the
/// previous contents of `path` are intact. The kIoShortWrite,
/// kCrashBeforeRename, and kCrashAfterRename fault points abandon the
/// protocol at their step, leaving on-disk debris exactly as a power loss
/// there would (kCrashAfterRename fails the call even though the rename
/// is durable — callers must treat the write as uncommitted).
Status AtomicWriteFileBytes(const std::string& path, const void* data,
                            size_t bytes);

}  // namespace fesia

#endif  // FESIA_UTIL_FILE_IO_H_
