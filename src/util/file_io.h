// Status-returning whole-file read/write used by snapshot persistence and
// the CLI. Reads pass through the fault-injection harness (snapshot
// truncation / bit-flip points), so storage corruption can be rehearsed
// end-to-end: injected corruption must surface as a clean non-OK Status
// from the downstream validator, never as UB.
#ifndef FESIA_UTIL_FILE_IO_H_
#define FESIA_UTIL_FILE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fesia {

/// Reads the whole file into *out (replacing its contents). kIoError if the
/// file cannot be opened or read. Armed kSnapshotTruncate / kSnapshotBitFlip
/// faults corrupt the returned bytes (not the file).
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

/// Writes `bytes` bytes at `data` to `path`, replacing any existing file.
Status WriteFileBytes(const std::string& path, const void* data,
                      size_t bytes);

}  // namespace fesia

#endif  // FESIA_UTIL_FILE_IO_H_
