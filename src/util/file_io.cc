#include "util/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "util/fault_injection.h"

namespace fesia {
namespace {

std::string ErrnoText() { return std::strerror(errno); }

// Directory containing `path` ("" -> ".").
std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAll(int fd, const uint8_t* data, size_t bytes,
                const std::string& path) {
  size_t done = 0;
  while (done < bytes) {
    ssize_t n = ::write(fd, data + done, bytes - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write to " + path + ": " + ErrnoText());
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out,
                     size_t max_bytes) {
  FESIA_CHECK(out != nullptr);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError("cannot open " + path + " for reading");
  }
  std::streamsize size = in.tellg();
  if (size < 0) {
    return Status::IoError("cannot stat " + path);
  }
  // A corrupt filesystem entry can report a garbage multi-GB length; cap it
  // before allocating so the failure is a Status, not std::bad_alloc.
  if (static_cast<uint64_t>(size) > max_bytes) {
    return Status::ResourceExhausted(
        path + " reports " + std::to_string(size) +
        " bytes, above the " + std::to_string(max_bytes) + "-byte limit");
  }
  if (fault::ShouldFail(fault::FaultPoint::kAllocation)) {
    return Status::ResourceExhausted("file buffer allocation failed for " +
                                     path);
  }
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size)) {
    out->clear();
    return Status::IoError("short read from " + path);
  }

  // Storage-corruption rehearsal: mangle the in-memory copy.
  uint64_t param = 0;
  if (fault::ShouldFail(fault::FaultPoint::kSnapshotTruncate, &param)) {
    size_t drop = std::max<uint64_t>(param, 1);
    out->resize(out->size() - std::min(out->size(), drop));
  }
  if (fault::ShouldFail(fault::FaultPoint::kSnapshotBitFlip, &param) &&
      !out->empty()) {
    size_t bit = static_cast<size_t>(param) % (out->size() * 8);
    (*out)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  return Status::Ok();
}

Status WriteFileBytes(const std::string& path, const void* data,
                      size_t bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  if (bytes > 0) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
  }
  out.flush();
  if (!out.good()) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

Status AtomicWriteFileBytes(const std::string& path, const void* data,
                            size_t bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + tmp + " for writing: " +
                           ErrnoText());
  }

  const uint8_t* p = static_cast<const uint8_t*>(data);
  // Simulated power loss mid-write: half the payload reaches the temp
  // file, which stays behind as debris for recovery to deal with.
  if (fault::ShouldFail(fault::FaultPoint::kIoShortWrite)) {
    (void)WriteAll(fd, p, bytes / 2, tmp);
    ::close(fd);
    return Status::IoError("short write to " + tmp + " (injected crash)");
  }
  Status w = WriteAll(fd, p, bytes, tmp);
  if (!w.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return w;
  }
  // The payload must be on stable storage before the rename publishes it:
  // rename-before-fsync can expose a zero-length or torn file after a
  // crash even though the rename itself "succeeded".
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IoError("fsync " + tmp + ": " + ErrnoText());
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("close " + tmp + ": " + ErrnoText());
  }

  // Simulated power loss between write and publish: a complete, durable
  // temp file exists but the destination still holds the old bytes.
  if (fault::ShouldFail(fault::FaultPoint::kCrashBeforeRename)) {
    return Status::IoError("simulated crash before rename of " + tmp);
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Status::IoError("rename " + tmp + " -> " + path + ": " +
                               ErrnoText());
    ::unlink(tmp.c_str());
    return s;
  }

  // Make the rename itself durable: without the directory fsync the new
  // directory entry can be lost on power failure.
  int dfd = ::open(ParentDir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }

  // Simulated power loss after publish but before whatever commit step the
  // caller performs next (e.g. the manifest update): the file is durably
  // in place, yet the caller must treat the operation as failed.
  if (fault::ShouldFail(fault::FaultPoint::kCrashAfterRename)) {
    return Status::IoError("simulated crash after rename to " + path);
  }
  return Status::Ok();
}

}  // namespace fesia
