#include "util/file_io.h"

#include <algorithm>
#include <fstream>

#include "util/fault_injection.h"

namespace fesia {

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  FESIA_CHECK(out != nullptr);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError("cannot open " + path + " for reading");
  }
  std::streamsize size = in.tellg();
  if (size < 0) {
    return Status::IoError("cannot stat " + path);
  }
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size)) {
    out->clear();
    return Status::IoError("short read from " + path);
  }

  // Storage-corruption rehearsal: mangle the in-memory copy.
  uint64_t param = 0;
  if (fault::ShouldFail(fault::FaultPoint::kSnapshotTruncate, &param)) {
    size_t drop = std::max<uint64_t>(param, 1);
    out->resize(out->size() - std::min(out->size(), drop));
  }
  if (fault::ShouldFail(fault::FaultPoint::kSnapshotBitFlip, &param) &&
      !out->empty()) {
    size_t bit = static_cast<size_t>(param) % (out->size() * 8);
    (*out)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  return Status::Ok();
}

Status WriteFileBytes(const std::string& path, const void* data,
                      size_t bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  if (bytes > 0) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
  }
  out.flush();
  if (!out.good()) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace fesia
