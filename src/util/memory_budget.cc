#include "util/memory_budget.h"

#include <string>

#include "util/fault_injection.h"

namespace fesia {
namespace {

// Default watermarks as fractions of the limit: pressure raises at 7/8 and
// clears at 1/2. The wide band keeps the flag from flapping around a burst.
uint64_t DefaultHigh(uint64_t limit) {
  return limit == MemoryBudget::kNoLimit ? MemoryBudget::kNoLimit
                                         : limit - limit / 8;
}
uint64_t DefaultLow(uint64_t limit) {
  return limit == MemoryBudget::kNoLimit ? MemoryBudget::kNoLimit : limit / 2;
}

std::string Describe(const MemoryBudget& b, uint64_t bytes, const char* what) {
  std::string m = "memory budget";
  if (!b.name().empty()) m += " '" + b.name() + "'";
  m += " exhausted: charge of " + std::to_string(bytes) + " bytes";
  if (what != nullptr) m += " for " + std::string(what);
  m += " over limit " + std::to_string(b.limit_bytes()) + " (used " +
       std::to_string(b.used()) + ")";
  return m;
}

}  // namespace

MemoryBudget::MemoryBudget(uint64_t limit_bytes, MemoryBudget* parent,
                           std::string name)
    : limit_(limit_bytes),
      high_(DefaultHigh(limit_bytes)),
      low_(DefaultLow(limit_bytes)),
      parent_(parent),
      name_(std::move(name)) {}

MemoryBudget* MemoryBudget::Unlimited() {
  static MemoryBudget* const budget = new MemoryBudget();
  return budget;
}

Status MemoryBudget::TryCharge(uint64_t bytes, const char* what) {
  if (fault::ShouldFail(fault::FaultPoint::kBudgetExhausted)) {
    rejections_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        std::string("memory budget") +
        (name_.empty() ? "" : " '" + name_ + "'") +
        ": injected budget-exhausted fault" +
        (what != nullptr ? std::string(" for ") + what : ""));
  }
  if (bytes == 0) return Status::Ok();
  uint64_t after = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != kNoLimit && after > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    rejections_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(Describe(*this, bytes, what));
  }
  if (parent_ != nullptr) {
    Status s = parent_->TryCharge(bytes, what);
    if (!s.ok()) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return s;
    }
  }
  if (after >= high_) pressure_.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

void MemoryBudget::Uncharge(uint64_t bytes) {
  if (bytes == 0) return;
  uint64_t before = used_.load(std::memory_order_relaxed);
  uint64_t release = bytes;
  // Clamp over-release (a caller bug) instead of wrapping the counter into
  // the exabytes and wedging every future charge.
  while (true) {
    release = bytes < before ? bytes : before;
    if (used_.compare_exchange_weak(before, before - release,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  uint64_t after = before - release;
  if (after < low_ || low_ == kNoLimit) {
    pressure_.store(false, std::memory_order_relaxed);
  }
  if (parent_ != nullptr) parent_->Uncharge(release);
}

bool MemoryBudget::under_pressure() const {
  bool own = pressure_.load(std::memory_order_relaxed);
  if (own) return true;
  return parent_ != nullptr && parent_->under_pressure();
}

void MemoryBudget::set_watermarks(uint64_t high_bytes, uint64_t low_bytes) {
  FESIA_CHECK(low_bytes <= high_bytes);
  high_ = high_bytes;
  low_ = low_bytes;
  uint64_t now = used();
  pressure_.store(now >= high_ && high_ != kNoLimit,
                  std::memory_order_relaxed);
}

}  // namespace fesia
