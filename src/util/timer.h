// Cycle- and wall-clock timers for the benchmark harness.
//
// The paper reports CPU time in millions of cycles (Fig. 7); CycleTimer
// reads the TSC with serialization so short regions are measured faithfully.
#ifndef FESIA_UTIL_TIMER_H_
#define FESIA_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fesia {

/// Serialized read of the time-stamp counter.
uint64_t ReadTsc();

/// Measures elapsed reference cycles between Start() and Stop().
class CycleTimer {
 public:
  void Start() { start_ = ReadTsc(); }
  /// Returns cycles elapsed since the matching Start().
  uint64_t Stop() const { return ReadTsc() - start_; }

 private:
  uint64_t start_ = 0;
};

/// Monotonic wall-clock timer reporting seconds.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void Restart() { start_ = Clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Estimated TSC frequency in Hz (measured once, cached).
double TscHz();

/// Prevents the compiler from optimizing away `value`.
template <typename T>
inline void DoNotOptimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace fesia

#endif  // FESIA_UTIL_TIMER_H_
