// Hierarchical memory budgets — the resource-governance primitive behind
// mutation backpressure and pressure-aware query degradation.
//
// A MemoryBudget is an atomic byte counter with an optional hard limit and
// an optional parent. Charges propagate root-ward, so a tree of budgets
// (process → store/shard → operation) enforces both the global cap and
// per-shard sub-caps with one TryCharge call at the leaf: the call succeeds
// only if every ancestor admits the bytes, and on any refusal the partial
// charges are rolled back before kResourceExhausted is returned.
//
// Pressure is a sticky hysteresis band between two watermarks: crossing the
// high watermark raises under_pressure(), which stays raised until usage
// falls back below the low watermark. Serving code treats pressure as a
// degradation signal (shed low-priority queries, prefer O(1)-scratch
// paths, trigger early flushes) long before the hard limit rejects work.
//
// MemoryBudget::Unlimited() is a process-wide no-limit budget that still
// counts bytes; APIs take a `MemoryBudget*` defaulting to it so existing
// callers are untouched. All methods are thread-safe; TryCharge/Uncharge
// are lock-free on the fast path.
#ifndef FESIA_UTIL_MEMORY_BUDGET_H_
#define FESIA_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace fesia {

class MemoryBudget {
 public:
  /// Sentinel limit meaning "no hard cap" (charges always admitted here,
  /// though a limited ancestor can still refuse them).
  static constexpr uint64_t kNoLimit = UINT64_MAX;

  /// No-limit root budget. Usage is still counted, so tests can assert the
  /// charge/uncharge invariant even when nothing is capped.
  MemoryBudget() = default;

  /// Budget with a hard `limit_bytes` cap (kNoLimit = none) charging into
  /// `parent` (nullptr = root). Watermarks default to 7/8 and 1/2 of the
  /// limit; with no limit the pressure flag never raises locally (a
  /// pressured ancestor still shows through under_pressure()). `name`
  /// appears in rejection Status messages ("shard-3", "wal-replay", ...).
  explicit MemoryBudget(uint64_t limit_bytes, MemoryBudget* parent = nullptr,
                        std::string name = "");

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Process-wide shared unlimited budget — the default for every budget
  /// parameter in the system, chosen so threading budgets through a layer
  /// changes nothing for callers that never configure one.
  static MemoryBudget* Unlimited();

  /// Admits `bytes` against this budget and every ancestor, atomically per
  /// level with rollback on refusal: after a non-OK return, usage at every
  /// level is exactly what it was before the call. Refusals return
  /// kResourceExhausted naming the exhausted budget. The budget-exhausted
  /// fault point fires here (once per arming) so tests and operators can
  /// force a refusal at a chosen call site regardless of the actual limit.
  Status TryCharge(uint64_t bytes, const char* what = nullptr);

  /// Returns bytes previously charged. Callers must uncharge exactly what
  /// they charged (ScopedCharge automates this); over-release clamps to
  /// zero rather than wrapping, but is a caller bug.
  void Uncharge(uint64_t bytes);

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t limit_bytes() const { return limit_; }
  bool unlimited() const { return limit_ == kNoLimit; }
  const std::string& name() const { return name_; }
  MemoryBudget* parent() const { return parent_; }

  /// Charges refused (here, not by an ancestor) since construction —
  /// includes fault-point firings.
  uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }

  /// True while this budget (or any ancestor) sits inside the hysteresis
  /// band: raised when usage crosses the high watermark, cleared only when
  /// it falls back below the low watermark.
  bool under_pressure() const;

  /// Overrides the default watermarks (bytes, not fractions). Requires
  /// low <= high. The pressure flag is re-derived from current usage.
  void set_watermarks(uint64_t high_bytes, uint64_t low_bytes);

  uint64_t high_watermark_bytes() const { return high_; }
  uint64_t low_watermark_bytes() const { return low_; }

 private:
  const uint64_t limit_ = kNoLimit;
  uint64_t high_ = kNoLimit;  // immutable after setup (set_watermarks is
  uint64_t low_ = kNoLimit;   // a pre-concurrency configuration call)
  MemoryBudget* const parent_ = nullptr;
  const std::string name_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> rejections_{0};
  std::atomic<bool> pressure_{false};
};

/// RAII ownership of charged bytes. Supports incremental growth (Add) so a
/// streaming consumer — chunked WAL replay, a growing overlay — can keep
/// its live charge equal to its live allocation; everything still charged
/// at destruction is uncharged.
class ScopedCharge {
 public:
  /// Inert guard (no budget); Add on it is an error-free no-op that
  /// charges nothing. Useful as a default member.
  ScopedCharge() = default;

  /// Guard charging into `budget` (must outlive the guard). Starts empty.
  explicit ScopedCharge(MemoryBudget* budget) : budget_(budget) {}

  ~ScopedCharge() { Release(); }

  ScopedCharge(ScopedCharge&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      Release();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  /// Charges `bytes` more; on refusal the guard's existing charge is
  /// untouched (the caller decides whether to abort or degrade).
  Status Add(uint64_t bytes, const char* what = nullptr) {
    if (budget_ == nullptr || bytes == 0) return Status::Ok();
    Status s = budget_->TryCharge(bytes, what);
    if (s.ok()) bytes_ += bytes;
    return s;
  }

  /// Returns `bytes` of the guard's charge early (e.g. a replay chunk
  /// retired). Clamped to the held amount.
  void Shrink(uint64_t bytes) {
    if (budget_ == nullptr) return;
    if (bytes > bytes_) bytes = bytes_;
    budget_->Uncharge(bytes);
    bytes_ -= bytes;
  }

  /// Uncharges everything held; the guard becomes empty but reusable.
  void Release() {
    if (budget_ != nullptr && bytes_ > 0) budget_->Uncharge(bytes_);
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }
  MemoryBudget* budget() const { return budget_; }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace fesia

#endif  // FESIA_UTIL_MEMORY_BUDGET_H_
