// Column-aligned table output for the benchmark harness.
//
// Every bench binary regenerates one paper table or figure; TablePrinter
// renders the same rows/series as aligned text so bench output can be
// compared side-by-side with the paper.
#ifndef FESIA_UTIL_TABLE_PRINTER_H_
#define FESIA_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace fesia {

/// Accumulates rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// `title` is printed above the table; pass "" to omit.
  explicit TablePrinter(std::string title = "");

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Renders the table to a string.
  std::string ToString() const;

  /// Renders the table as CSV (RFC-4180 quoting for cells containing
  /// commas or quotes), for machine consumption of bench output.
  std::string ToCsv() const;

  /// Renders and writes the table to stdout. When the environment variable
  /// FESIA_TABLE_FORMAT=csv is set, emits CSV instead of aligned text.
  void Print() const;

  /// Formats a double with `digits` fractional digits.
  static std::string Fmt(double v, int digits = 2);
  /// Formats `v` as a speedup like "3.42x".
  static std::string Speedup(double v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fesia

#endif  // FESIA_UTIL_TABLE_PRINTER_H_
