// Small bit-manipulation helpers shared across the library.
#ifndef FESIA_UTIL_BITS_H_
#define FESIA_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace fesia {

/// Rounds `v` up to the next power of two. RoundUpPow2(0) == 1.
constexpr uint64_t RoundUpPow2(uint64_t v) {
  if (v <= 1) return 1;
  return uint64_t{1} << (64 - std::countl_zero(v - 1));
}

/// True iff `v` is a power of two (0 is not).
constexpr bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr int Log2Pow2(uint64_t v) { return std::countr_zero(v); }

/// Number of trailing zero bits; undefined for v == 0 at the hardware level,
/// so we define it as 64 for convenience in extraction loops.
constexpr int CountTrailingZeros64(uint64_t v) {
  return v == 0 ? 64 : std::countr_zero(v);
}

/// Population count of a 64-bit word.
constexpr int PopCount64(uint64_t v) { return std::popcount(v); }

/// Clears the lowest set bit of `v`.
constexpr uint64_t ClearLowestBit(uint64_t v) { return v & (v - 1); }

/// Integer ceiling division.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace fesia

#endif  // FESIA_UTIL_BITS_H_
