// Thin wrapper over Linux perf_event_open for the counters Table II of the
// paper reports (L1 instruction-cache misses), plus instructions and cycles.
//
// Hardware counters are frequently unavailable in containers or locked down
// via perf_event_paranoid; every reader degrades gracefully to "unavailable"
// and the benchmarks report the substitute metric (kernel-table code size)
// alongside, as documented in DESIGN.md.
#ifndef FESIA_UTIL_PERF_COUNTERS_H_
#define FESIA_UTIL_PERF_COUNTERS_H_

#include <cstdint>

namespace fesia {

/// Counter kinds we know how to program.
enum class PerfEvent {
  kL1IcacheMisses,
  kL1DcacheMisses,
  kInstructions,
  kCycles,
  kBranchMisses,
};

/// One hardware counter. Usage:
///   PerfCounter c(PerfEvent::kL1IcacheMisses);
///   if (c.ok()) { c.Start(); ... c.Stop(); use c.value(); }
class PerfCounter {
 public:
  explicit PerfCounter(PerfEvent event);
  ~PerfCounter();

  PerfCounter(const PerfCounter&) = delete;
  PerfCounter& operator=(const PerfCounter&) = delete;

  /// True when the kernel granted the counter.
  bool ok() const { return fd_ >= 0; }

  /// Resets and enables the counter.
  void Start();
  /// Disables the counter and latches its value.
  void Stop();
  /// Count observed between the last Start()/Stop() pair.
  uint64_t value() const { return value_; }

 private:
  int fd_ = -1;
  uint64_t value_ = 0;
};

/// Human-readable event name for report rows.
const char* PerfEventName(PerfEvent event);

}  // namespace fesia

#endif  // FESIA_UTIL_PERF_COUNTERS_H_
