#include "util/rng.h"

namespace fesia {

uint64_t Rng::Below(uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

}  // namespace fesia
