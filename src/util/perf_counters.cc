#include "util/perf_counters.h"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>

namespace fesia {
namespace {

int OpenPerfEvent(PerfEvent event) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  switch (event) {
    case PerfEvent::kL1IcacheMisses:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_L1I |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case PerfEvent::kL1DcacheMisses:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_L1D |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case PerfEvent::kInstructions:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case PerfEvent::kCycles:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CPU_CYCLES;
      break;
    case PerfEvent::kBranchMisses:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_BRANCH_MISSES;
      break;
  }
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

}  // namespace

PerfCounter::PerfCounter(PerfEvent event) : fd_(OpenPerfEvent(event)) {}

PerfCounter::~PerfCounter() {
  if (fd_ >= 0) close(fd_);
}

void PerfCounter::Start() {
  if (fd_ < 0) return;
  ioctl(fd_, PERF_EVENT_IOC_RESET, 0);
  ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0);
}

void PerfCounter::Stop() {
  if (fd_ < 0) return;
  ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0);
  uint64_t v = 0;
  if (read(fd_, &v, sizeof(v)) == sizeof(v)) value_ = v;
}

const char* PerfEventName(PerfEvent event) {
  switch (event) {
    case PerfEvent::kL1IcacheMisses:
      return "L1-icache-misses";
    case PerfEvent::kL1DcacheMisses:
      return "L1-dcache-misses";
    case PerfEvent::kInstructions:
      return "instructions";
    case PerfEvent::kCycles:
      return "cycles";
    case PerfEvent::kBranchMisses:
      return "branch-misses";
  }
  return "unknown";
}

}  // namespace fesia
