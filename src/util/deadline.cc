#include "util/deadline.h"

#include <thread>

namespace fesia {

void SleepFor(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace fesia
