// Runtime detection of the SIMD instruction sets available on this host.
//
// Every FESIA code path exists at four ISA levels; the dispatcher consults
// DetectSimdLevel() (or an explicit user override) to pick the widest level
// both compiled in and supported by the executing CPU.
#ifndef FESIA_UTIL_CPU_H_
#define FESIA_UTIL_CPU_H_

#include <string>

namespace fesia {

/// SIMD instruction-set levels, ordered from narrowest to widest.
enum class SimdLevel {
  kScalar = 0,  // no vector instructions (portable reference path)
  kSse = 1,     // SSE4.2, 128-bit
  kAvx2 = 2,    // AVX2, 256-bit
  kAvx512 = 3,  // AVX-512 F/BW/VL/DQ, 512-bit
  kAuto = 99,   // resolve to the widest available level at runtime
};

/// Widest SIMD level supported by the executing CPU, clamped by the
/// FESIA_MAX_SIMD environment variable when set to a valid level name
/// (operator-forced degradation; see docs/ROBUSTNESS.md).
SimdLevel DetectSimdLevel();

/// Parses "scalar" / "sse" / "avx2" / "avx512" / "auto" into *out.
/// Returns false (leaving *out untouched) on any other string.
bool ParseSimdLevel(const char* name, SimdLevel* out);

/// Resolves kAuto to the detected level; other levels are clamped to the
/// detected maximum (asking for AVX-512 on an SSE-only machine yields SSE).
SimdLevel ResolveSimdLevel(SimdLevel requested);

/// Human-readable name ("scalar", "sse", "avx2", "avx512", "auto").
const char* SimdLevelName(SimdLevel level);

/// Vector width in bits for a (resolved) level; scalar reports 64, the word
/// size used by the bitmap step's portable path.
int SimdWidthBits(SimdLevel level);

/// Number of 32-bit elements per vector register at this level.
int SimdLanes32(SimdLevel level);

/// CPU brand string as reported by cpuid (best effort).
std::string CpuBrandString();

}  // namespace fesia

#endif  // FESIA_UTIL_CPU_H_
