// Minimal CHECK macros: invariant violations abort with a message.
// The library does not use exceptions; programmer errors fail fast.
#ifndef FESIA_UTIL_CHECK_H_
#define FESIA_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define FESIA_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "FESIA_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define FESIA_DCHECK(cond) FESIA_CHECK(cond)

#endif  // FESIA_UTIL_CHECK_H_
