// Minimal CHECK macros: invariant violations fail fast with a message.
// The library does not use exceptions; programmer errors abort the process.
//
// All failures funnel through one handler (fesia::internal::CheckFail) so
// that tests can intercept them via SetCheckFailHandler and embedders can
// add crash reporting. Data errors — anything reachable from external
// bytes — must use fesia::Status (util/status.h) instead of these macros.
#ifndef FESIA_UTIL_CHECK_H_
#define FESIA_UTIL_CHECK_H_

namespace fesia {

/// Invoked on FESIA_CHECK failure; must not return (abort, longjmp, or
/// throw from test code). The default prints to stderr and aborts.
using CheckFailHandler = void (*)(const char* file, int line,
                                  const char* expr);

/// Installs `handler` (nullptr restores the default); returns the previous
/// handler. Intended for tests; not thread-safe against concurrent failures.
CheckFailHandler SetCheckFailHandler(CheckFailHandler handler);

namespace internal {
/// Dispatches to the installed handler; aborts if the handler returns.
[[noreturn]] void CheckFail(const char* file, int line, const char* expr);
}  // namespace internal

}  // namespace fesia

#define FESIA_CHECK(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::fesia::internal::CheckFail(__FILE__, __LINE__, #cond);     \
    }                                                              \
  } while (0)

// FESIA_DCHECK: debug-only invariant. Under NDEBUG the condition is parsed
// (names stay odr-checked) but never evaluated, so release builds pay
// nothing on hot paths.
#ifdef NDEBUG
#define FESIA_DCHECK(cond) \
  do {                     \
    if (false) {           \
      (void)(cond);        \
    }                      \
  } while (0)
#else
#define FESIA_DCHECK(cond) FESIA_CHECK(cond)
#endif

#endif  // FESIA_UTIL_CHECK_H_
