// Mutex-guarded shared_ptr holder used as an RCU-style publication point:
// writers swap the pointer, readers copy it once and keep executing on
// their reference while replacements come and go.
//
// Deliberately not std::atomic<std::shared_ptr<T>>: libstdc++ 12's
// _Sp_atomic unlocks its internal spin bit in load() with
// memory_order_relaxed, so a load concurrent with a store is a data race
// under the formal memory model and ThreadSanitizer reports it. A plain
// mutex is sound on every toolchain; the uncontended lock is one CAS, and
// publication points are acquired once per batch, far from any hot loop.
#ifndef FESIA_UTIL_SHARED_PTR_CELL_H_
#define FESIA_UTIL_SHARED_PTR_CELL_H_

#include <memory>
#include <mutex>
#include <utility>

namespace fesia {

template <typename T>
class SharedPtrCell {
 public:
  SharedPtrCell() = default;
  explicit SharedPtrCell(std::shared_ptr<T> p) : ptr_(std::move(p)) {}

  SharedPtrCell(const SharedPtrCell&) = delete;
  SharedPtrCell& operator=(const SharedPtrCell&) = delete;

  std::shared_ptr<T> load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
  }

  void store(std::shared_ptr<T> p) {
    // Swap under the lock but let the displaced value (potentially the
    // last reference to a whole engine) destruct outside it.
    std::shared_ptr<T> old;
    std::lock_guard<std::mutex> lock(mu_);
    old.swap(ptr_);
    ptr_ = std::move(p);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<T> ptr_;
};

}  // namespace fesia

#endif  // FESIA_UTIL_SHARED_PTR_CELL_H_
