// Fault-injection harness for exercising recoverable-error paths.
//
// Instrumented sites (aligned-buffer allocation, snapshot file reads, the
// backend self-check) consult ShouldFail() at runtime; tests arm faults
// programmatically (ScopedFault) and operators can arm them through the
// FESIA_FAULTS environment variable to rehearse failure handling:
//
//   FESIA_FAULTS=alloc                      fail the next guarded allocation
//   FESIA_FAULTS=snapshot-truncate:0:16     drop 16 bytes from the next read
//   FESIA_FAULTS=snapshot-bitflip:2:7       flip bit 7 of the 3rd read
//   FESIA_FAULTS=backend-downgrade          fail the top backend self-check
//   FESIA_FAULTS=query-delay:0:5000         stall the next query attempt 5 ms
//   FESIA_FAULTS=io-short-write             tear the next atomic write
//   FESIA_FAULTS=crash-before-rename        crash after temp write, no rename
//   FESIA_FAULTS=crash-after-rename         crash after rename, before commit
//   FESIA_FAULTS=wal-append-short-write     tear the next WAL record append
//   FESIA_FAULTS=crash-before-wal-truncate  crash after merge commit, before
//                                           the WAL segments are dropped
//   FESIA_FAULTS=budget-exhausted           fail the next MemoryBudget charge
//   FESIA_FAULTS=repair-crash-before-import  crash a replica repair before
//                                            the snapshot copy
//   FESIA_FAULTS=repair-crash-before-catchup crash after the snapshot
//                                            import, before WAL catch-up
//   FESIA_FAULTS=repair-crash-before-revive  crash after the re-sync,
//                                            before the replica is revived
//
// Syntax: name[:skip[:param]], comma-separated. `skip` is the number of
// hits to let pass before firing (default 0 = fire immediately); `param` is
// point-specific. Every fault fires exactly once per arming.
//
// The contract proven by tests/fault_injection_test.cc: every injected
// fault surfaces as a non-OK fesia::Status (or a degraded-but-correct
// backend), never as an abort, leak, or UB.
#ifndef FESIA_UTIL_FAULT_INJECTION_H_
#define FESIA_UTIL_FAULT_INJECTION_H_

#include <cstdint>

namespace fesia::fault {

enum class FaultPoint : int {
  kAllocation = 0,       // TryAllocateAligned returns nullptr
  kSnapshotTruncate = 1, // ReadFileBytes drops `param` (>=1) trailing bytes
  kSnapshotBitFlip = 2,  // ReadFileBytes XORs bit `param` of the payload
  kBackendDowngrade = 3, // backend self-check reports a count mismatch
  kQueryDelay = 4,       // batch executor stalls one attempt `param` µs —
                         // makes deadline/timeout tests deterministic
  // Crash rehearsal for AtomicWriteFileBytes: each point simulates power
  // loss at one protocol step by abandoning the write there, leaving the
  // on-disk state exactly as a real crash would (debris is NOT cleaned up).
  kIoShortWrite = 5,       // temp file gets only half the payload, no rename
  kCrashBeforeRename = 6,  // temp file complete + fsynced, never renamed
  kCrashAfterRename = 7,   // rename durable, caller's follow-up steps skipped
  // Crash rehearsal for the write-ahead log (store/wal.h): same contract as
  // the atomic-write points — the on-disk state is left exactly as a power
  // loss at that protocol step would leave it.
  kWalAppendShortWrite = 8,     // half a record frame reaches the segment;
                                // the append is unacknowledged
  kCrashBeforeWalTruncate = 9,  // merge commit durable, sealed WAL segments
                                // never dropped (replay must be idempotent)
  kBudgetExhausted = 10,        // MemoryBudget::TryCharge fails as if the
                                // limit were hit — drives governance paths
                                // without tuning a byte-exact budget
  // Crash rehearsal for anti-entropy replica repair (shard/replica_set.h):
  // each point abandons the repair attempt at one protocol step, leaving
  // the target replica exactly as a crash there would — the next repair
  // cycle must complete idempotently with zero acked-mutation loss.
  kRepairCrashBeforeImport = 11,   // source chosen, no snapshot copied
  kRepairCrashBeforeCatchup = 12,  // snapshot imported, WAL gap not replayed
  kRepairCrashBeforeRevive = 13,   // replica fully synced, never revived
  kNumPoints = 14,
};

/// Stable name used by the FESIA_FAULTS syntax ("alloc", ...).
const char* FaultPointName(FaultPoint point);

/// Arms `point` to fire once after `skip` passing hits. Re-arming replaces
/// any previous arming. Thread-safe.
void Arm(FaultPoint point, uint64_t skip = 0, uint64_t param = 0);
void Disarm(FaultPoint point);
void DisarmAll();
bool IsArmed(FaultPoint point);

/// Consulted by instrumented sites. Counts a hit; returns true (storing the
/// armed param into *param if non-null) when the fault fires, after which
/// the point disarms itself. Unarmed points always return false.
bool ShouldFail(FaultPoint point, uint64_t* param = nullptr);

/// Total hits observed at `point` since process start (fired or not);
/// lets tests assert an instrumented site was actually reached.
uint64_t HitCount(FaultPoint point);

/// Parses a FESIA_FAULTS-syntax spec and arms the named points. Returns
/// false (arming nothing further) on a malformed spec. Called automatically
/// once with getenv("FESIA_FAULTS") before the first ShouldFail.
bool ArmFromSpec(const char* spec);

/// RAII arming for tests: arms on construction, disarms its point on
/// destruction (whether or not it fired).
class ScopedFault {
 public:
  explicit ScopedFault(FaultPoint point, uint64_t skip = 0,
                       uint64_t param = 0)
      : point_(point) {
    Arm(point, skip, param);
  }
  ~ScopedFault() { Disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultPoint point_;
};

}  // namespace fesia::fault

#endif  // FESIA_UTIL_FAULT_INJECTION_H_
