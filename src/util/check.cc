#include "util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace fesia {
namespace {

void DefaultCheckFail(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "FESIA_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

std::atomic<CheckFailHandler> g_handler{&DefaultCheckFail};

}  // namespace

CheckFailHandler SetCheckFailHandler(CheckFailHandler handler) {
  if (handler == nullptr) handler = &DefaultCheckFail;
  return g_handler.exchange(handler);
}

namespace internal {

void CheckFail(const char* file, int line, const char* expr) {
  g_handler.load()(file, line, expr);
  // The handler contract is [[noreturn]]; enforce it if violated so that
  // FESIA_CHECK can never fall through into undefined behavior.
  std::fprintf(stderr,
               "FESIA_CHECK handler returned; aborting (at %s:%d: %s)\n",
               file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace fesia
