#include "util/status.h"

namespace fesia {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kDataLoss:
      return "data-loss";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace fesia
