// Summary statistics over repeated benchmark measurements.
#ifndef FESIA_UTIL_STATS_H_
#define FESIA_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace fesia {

/// Aggregate statistics of a sample of measurements.
struct SampleStats {
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double stddev = 0;
  size_t count = 0;
};

/// Computes summary statistics; an empty input yields all-zero stats.
SampleStats Summarize(const std::vector<double>& samples);

/// Returns the q-quantile (0 <= q <= 1) by linear interpolation.
double Quantile(std::vector<double> samples, double q);

}  // namespace fesia

#endif  // FESIA_UTIL_STATS_H_
