// Recoverable-error reporting without exceptions.
//
// The library distinguishes two failure families (docs/ROBUSTNESS.md):
//  * programmer errors — invalid parameters, broken invariants — fail fast
//    through FESIA_CHECK (util/check.h);
//  * data errors — anything reachable from bytes the process did not build
//    itself (snapshots, files, flags) — are reported as a fesia::Status and
//    must never abort, leak, or invoke UB.
//
// Status is a code plus a human-readable message; StatusOr<T> carries either
// a value or a non-OK Status. Both are cheap to move and need no allocation
// on the OK path.
#ifndef FESIA_UTIL_STATUS_H_
#define FESIA_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace fesia {

/// Failure taxonomy. Kept deliberately small: each code maps to a distinct
/// caller reaction (retry, reject input, surface to operator).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,    // caller-supplied parameter out of range
  kCorruption = 2,         // stored bytes fail validation (bad magic, CRC, …)
  kIoError = 3,            // the OS failed an open/read/write
  kResourceExhausted = 4,  // allocation or capacity limit hit
  kFailedPrecondition = 5, // operation invalid in the current state
  kUnimplemented = 6,      // feature compiled out or not yet supported
  kInternal = 7,           // invariant violation surfaced as a value
  kUnavailable = 8,        // transient overload; shed, safe to retry later
  kDeadlineExceeded = 9,   // deadline or cancellation fired before completion
  kDataLoss = 10,          // no stored copy validates; operator must restore
};

/// Stable lowercase name of a code ("ok", "corruption", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "corruption: checksum mismatch" / "ok".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a T or a non-OK Status. Accessing value() on a non-OK StatusOr is
/// a programmer error (FESIA_CHECK).
template <typename T>
class StatusOr {
 public:
  /// Implicit from a non-OK Status (constructing from an OK status is a
  /// programmer error: an OK result must carry a value).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    FESIA_CHECK(!status_.ok());
  }
  /// Implicit from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    FESIA_CHECK(ok());
    return *value_;
  }
  const T& value() const& {
    FESIA_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    FESIA_CHECK(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a T
  std::optional<T> value_;
};

}  // namespace fesia

/// Propagates a non-OK Status to the caller.
#define FESIA_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::fesia::Status fesia_status_tmp_ = (expr);  \
    if (!fesia_status_tmp_.ok()) return fesia_status_tmp_; \
  } while (0)

#define FESIA_STATUS_CONCAT_INNER_(a, b) a##b
#define FESIA_STATUS_CONCAT_(a, b) FESIA_STATUS_CONCAT_INNER_(a, b)

/// FESIA_ASSIGN_OR_RETURN(auto v, Compute()): moves the value out on
/// success, returns the Status on failure.
#define FESIA_ASSIGN_OR_RETURN(lhs, expr)                                \
  auto FESIA_STATUS_CONCAT_(fesia_statusor_, __LINE__) = (expr);         \
  if (!FESIA_STATUS_CONCAT_(fesia_statusor_, __LINE__).ok()) {           \
    return FESIA_STATUS_CONCAT_(fesia_statusor_, __LINE__).status();     \
  }                                                                      \
  lhs = *std::move(FESIA_STATUS_CONCAT_(fesia_statusor_, __LINE__))

#endif  // FESIA_UTIL_STATUS_H_
