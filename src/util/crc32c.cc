#include "util/crc32c.h"

#include <array>
#include <cstring>

namespace fesia {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected

// 8 slice tables, generated at compile time. Table 0 is the classic
// byte-at-a-time table; table k folds a byte k positions deeper.
struct Tables {
  uint32_t t[8][256];
};

constexpr Tables MakeTables() {
  Tables tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tb.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tb.t[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = tb.t[0][crc & 0xFF] ^ (crc >> 8);
      tb.t[k][i] = crc;
    }
  }
  return tb;
}

constexpr Tables kTables = MakeTables();

}  // namespace

uint32_t Crc32c(const void* bytes, size_t n, uint32_t crc) {
  const auto* p = static_cast<const uint8_t*>(bytes);
  crc = ~crc;
  // Slice-by-8 over aligned 8-byte blocks.
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // fold the running crc into the low 32 bits (little-endian)
    crc = kTables.t[7][word & 0xFF] ^ kTables.t[6][(word >> 8) & 0xFF] ^
          kTables.t[5][(word >> 16) & 0xFF] ^
          kTables.t[4][(word >> 24) & 0xFF] ^
          kTables.t[3][(word >> 32) & 0xFF] ^
          kTables.t[2][(word >> 40) & 0xFF] ^
          kTables.t[1][(word >> 48) & 0xFF] ^ kTables.t[0][word >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace fesia
