#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdint>

namespace fesia {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20 || c >= 0x80) {
          // Control bytes must be escaped per RFC 8259; bytes >= 0x80 are
          // escaped too because the input is not guaranteed to be valid
          // UTF-8 (paths, OS error strings) and \u00XX keeps the output
          // unconditionally valid ASCII JSON.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
        break;
    }
  }
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  AppendJsonEscaped(out, s);
  out += '"';
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(out, s);
  return out;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonString(out, s);
  return out;
}

void AppendJsonDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    out += "null";  // cannot happen with a 32-byte buffer; stay valid JSON
    return;
  }
  out.append(buf, end);
}

std::string JsonDouble(double v) {
  std::string out;
  AppendJsonDouble(out, v);
  return out;
}

}  // namespace fesia
