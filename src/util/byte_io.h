// Little-endian byte-buffer writer/reader shared by the snapshot formats
// (FesiaSet v2, inverted-index and term-set containers).
//
// ByteReader is written for untrusted input: every read is bounds-checked,
// array reads guard the `count * sizeof(T)` product against overflow by
// bounding the count with the bytes actually remaining, and allocation is
// routed through the fault-injection harness so resource exhaustion
// surfaces as a recoverable Status.
#ifndef FESIA_UTIL_BYTE_IO_H_
#define FESIA_UTIL_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/fault_injection.h"
#include "util/status.h"

namespace fesia {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t pos = out_->size();
    out_->resize(pos + sizeof(T));
    std::memcpy(out_->data() + pos, &v, sizeof(T));
  }

  template <typename T>
  void PutRaw(const T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count == 0) return;  // memcpy(p, nullptr, 0) is UB
    size_t pos = out_->size();
    out_->resize(pos + count * sizeof(T));
    std::memcpy(out_->data() + pos, data, count * sizeof(T));
  }

 private:
  std::vector<uint8_t>* out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool Get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > bytes_.size() - pos_) return false;
    std::memcpy(v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Reads `count` elements. The bound is expressed in elements that fit in
  /// the remaining bytes, so `count * sizeof(T)` can never overflow.
  template <typename T>
  Status GetRawArray(std::vector<T>* out, uint64_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count > (bytes_.size() - pos_) / sizeof(T)) {
      return Status::Corruption("array of " + std::to_string(count) +
                                " elements extends past end of snapshot");
    }
    if (fault::ShouldFail(fault::FaultPoint::kAllocation)) {
      return Status::ResourceExhausted("snapshot array allocation failed");
    }
    out->resize(static_cast<size_t>(count));
    if (count > 0) {  // memcpy(nullptr, p, 0) is UB
      std::memcpy(out->data(), bytes_.data() + pos_,
                  static_cast<size_t>(count) * sizeof(T));
      pos_ += static_cast<size_t>(count) * sizeof(T);
    }
    return Status::Ok();
  }

  /// Legacy (v1) array: inline u64 count followed by the elements.
  template <typename T>
  Status GetCountedArray(std::vector<T>* out) {
    uint64_t count = 0;
    if (!Get(&count)) return Status::Corruption("truncated array header");
    return GetRawArray(out, count);
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t pos() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace fesia

#endif  // FESIA_UTIL_BYTE_IO_H_
