#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"

namespace fesia {
namespace {

// Set for the lifetime of every pool worker thread; lets ParallelFor detect
// reentrancy without knowing which pool the worker belongs to.
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A task enqueued after the destructor set shutting_down_ would never
    // run (workers drain and exit), silently losing work and stranding any
    // caller waiting on it. That is always a lifetime bug in the caller —
    // an Executor outliving its pool — so it fails fast instead of racing.
    FESIA_CHECK(!shutting_down_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& DefaultThreadPool() {
  // Leaked intentionally: joining workers during static destruction can
  // deadlock against other atexit-ordered teardown, and the OS reclaims the
  // threads anyway.
  static ThreadPool* pool =
      new ThreadPool(std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t, size_t, size_t)>& body,
                 const Executor& exec) {
  if (end <= begin) return;
  size_t total = end - begin;
  num_threads = std::max<size_t>(1, std::min(num_threads, total));
  // A worker fanning out onto its own (possibly fully blocked) pool would
  // deadlock; nested parallelism degrades to the serial path instead.
  if (num_threads == 1 || ThreadPool::InWorkerThread()) {
    body(begin, end, 0);
    return;
  }

  size_t chunk = (total + num_threads - 1) / num_threads;
  size_t num_chunks = (total + chunk - 1) / chunk;

  // Per-call completion latch: Wait() on the shared pool would also wait on
  // unrelated callers' tasks, so each call tracks only its own chunks.
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = num_chunks - 1;

  ThreadPool& pool = exec.pool();
  for (size_t t = 1; t < num_chunks; ++t) {
    size_t lo = begin + t * chunk;
    size_t hi = std::min(end, lo + chunk);
    pool.Submit([&body, &mu, &done, &remaining, lo, hi, t] {
      body(lo, hi, t);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_one();
    });
  }
  // The caller runs chunk 0 itself: it participates in the work instead of
  // idling, and the call cannot be starved by a busy pool.
  body(begin, std::min(end, begin + chunk), 0);
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&remaining] { return remaining == 0; });
}

}  // namespace fesia
