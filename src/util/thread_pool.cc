#include "util/thread_pool.h"

#include <algorithm>

namespace fesia {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  if (end <= begin) return;
  size_t total = end - begin;
  num_threads = std::max<size_t>(1, std::min(num_threads, total));
  if (num_threads == 1) {
    body(begin, end, 0);
    return;
  }
  size_t chunk = (total + num_threads - 1) / num_threads;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    size_t lo = begin + t * chunk;
    if (lo >= end) break;
    size_t hi = std::min(end, lo + chunk);
    threads.emplace_back([&body, lo, hi, t] { body(lo, hi, t); });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace fesia
