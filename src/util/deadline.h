// Monotonic deadlines and cooperative cancellation for the online query
// path (docs/ROBUSTNESS.md, "Deadlines, overload, and degradation").
//
// Long-running intersections are uninterruptible by default; under serving
// traffic that makes one pathological query (a Zipf head-term pair can cost
// orders of magnitude more than the median) stall a whole batch. The
// contract here is cooperative: work loops thread a CancelContext down to
// segment-chunk / bitmap-word-range granularity and poll ShouldStop()
// between chunks, so cancellation latency is bounded by one chunk of work,
// never by one query.
//
// Deadline is monotonic (steady_clock): wall-clock adjustments can neither
// fire a deadline early nor postpone it. A default-constructed Deadline or
// CancellationToken is inert, and CancelContext::ShouldStop() on an inert
// context compiles down to one predictable branch — the no-deadline hot
// path stays free.
#ifndef FESIA_UTIL_DEADLINE_H_
#define FESIA_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace fesia {

/// A point on the monotonic clock after which work should stop.
/// Default-constructed deadlines are infinite (never expire).
class Deadline {
 public:
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Deadline `seconds` from now. Non-positive values produce a deadline
  /// that is already expired (not an infinite one): an exhausted budget
  /// means "stop now".
  static Deadline After(double seconds) {
    auto delta = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds > 0 ? seconds : 0));
    return Deadline(Clock::now() + delta);
  }

  /// The earlier of two deadlines (infinite loses to any finite one).
  static Deadline Earliest(const Deadline& a, const Deadline& b) {
    if (!a.has_) return b;
    if (!b.has_) return a;
    return a.at_ <= b.at_ ? a : b;
  }

  bool infinite() const { return !has_; }
  bool expired() const { return has_ && Clock::now() >= at_; }

  /// Seconds until expiry: +inf for an infinite deadline, <= 0 once
  /// expired.
  double seconds_left() const {
    if (!has_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  explicit Deadline(Clock::time_point at) : has_(true), at_(at) {}

  bool has_ = false;
  Clock::time_point at_{};
};

/// Shared cancellation flag. Copies of a token observe the same flag, so a
/// caller can hand one to a batch and Cancel() from any thread. The
/// default-constructed token is null: it never reports cancelled and
/// Cancel() on it is a no-op — pass one where no caller-driven
/// cancellation is wanted.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// A fresh, uncancelled, cancellable token.
  static CancellationToken Create() {
    CancellationToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// False for the null (default-constructed) token.
  bool can_cancel() const { return flag_ != nullptr; }

  void Cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The stop condition threaded through cancellable work: a deadline, a
/// token, or both. Work loops poll ShouldStop() at chunk granularity and
/// return early (with a partial, to-be-discarded result) when it fires.
class CancelContext {
 public:
  CancelContext() = default;
  explicit CancelContext(const Deadline& deadline) : deadline_(deadline) {}
  explicit CancelContext(const CancellationToken& token) : token_(token) {}
  CancelContext(const Deadline& deadline, const CancellationToken& token)
      : deadline_(deadline), token_(token) {}

  /// True when any stop condition exists. Work loops use this to skip the
  /// per-chunk polling entirely on the plain (uncancellable) path.
  bool active() const {
    return !deadline_.infinite() || token_.can_cancel();
  }

  bool ShouldStop() const {
    return token_.cancelled() || deadline_.expired();
  }

  const Deadline& deadline() const { return deadline_; }
  const CancellationToken& token() const { return token_; }

 private:
  Deadline deadline_;
  CancellationToken token_;
};

/// Blocks the calling thread for `seconds` (no-op when non-positive).
/// Used by retry backoff; callers cap the duration by their deadline.
void SleepFor(double seconds);

}  // namespace fesia

#endif  // FESIA_UTIL_DEADLINE_H_
