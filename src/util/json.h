// Minimal JSON emission helpers shared by every machine-readable line the
// system prints: the CLI's `"event":...` lines (RecoveryReport, WAL
// replay, flush) and the serve layer's line-JSON protocol
// (serve/protocol.h).
//
// Two classes of bug these helpers exist to prevent:
//
//   * unescaped strings — a store path containing `"` or `\` printed with
//     a raw %s emits invalid JSON. Every string field must go through
//     JsonQuote/AppendJsonString, which escape quotes, backslashes, and
//     control characters, and emit any non-ASCII byte as \u00XX so the
//     output is plain-ASCII valid JSON no matter what bytes the input held
//     (paths and error messages are not guaranteed to be UTF-8);
//   * locale-dependent numbers — printf("%g") under a non-C LC_NUMERIC
//     prints a decimal comma, which is not JSON. AppendJsonDouble formats
//     via std::to_chars, which is locale-independent by specification, and
//     always emits a JSON-parsable token (never "inf"/"nan" — those are
//     clamped to null, the only JSON-representable choice).
//
// The golden-line tests in tests/serve_test.cc pin the exact output bytes.
#ifndef FESIA_UTIL_JSON_H_
#define FESIA_UTIL_JSON_H_

#include <string>
#include <string_view>

namespace fesia {

/// Appends the JSON escape of `s` (no surrounding quotes) to `out`:
/// `"` -> `\"`, `\` -> `\\`, control characters and all bytes >= 0x80 as
/// `\u00XX`. The result is always ASCII.
void AppendJsonEscaped(std::string& out, std::string_view s);

/// Appends `s` as a complete JSON string literal (quotes included).
void AppendJsonString(std::string& out, std::string_view s);

/// JSON escape of `s` without quotes.
std::string JsonEscape(std::string_view s);

/// `s` as a complete JSON string literal (quotes included) — the form the
/// printf-style emitters in fesia_cli splice into their format strings.
std::string JsonQuote(std::string_view s);

/// Appends a locale-independent JSON number token for `v` (shortest
/// round-trip form via std::to_chars). Non-finite values append `null`.
void AppendJsonDouble(std::string& out, double v);

/// Locale-independent JSON number token for `v` (see AppendJsonDouble).
std::string JsonDouble(double v);

}  // namespace fesia

#endif  // FESIA_UTIL_JSON_H_
