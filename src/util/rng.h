// Deterministic, fast pseudo-random number generation for workload
// generators and tests. We avoid <random>'s engines on hot paths; SplitMix64
// is statistically strong enough for data generation and fully reproducible
// across platforms.
#ifndef FESIA_UTIL_RNG_H_
#define FESIA_UTIL_RNG_H_

#include <cstdint>

namespace fesia {

/// SplitMix64 generator (Steele, Lea, Flood 2014). One multiply-xor-shift
/// chain per output; passes BigCrush when used as a 64-bit stream.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  /// Next 64 uniformly random bits.
  uint64_t Next64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Next 32 uniformly random bits.
  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi].
  uint64_t InRange(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace fesia

#endif  // FESIA_UTIL_RNG_H_
