#include "util/timer.h"

#include <x86intrin.h>

#include <thread>

namespace fesia {

uint64_t ReadTsc() {
  unsigned aux = 0;
  // rdtscp is partially serializing (waits for earlier instructions to
  // retire), which is what we want at measurement boundaries.
  return __rdtscp(&aux);
}

double TscHz() {
  static const double hz = [] {
    auto wall_start = std::chrono::steady_clock::now();
    uint64_t tsc_start = ReadTsc();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    uint64_t tsc_end = ReadTsc();
    auto wall_end = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(wall_end - wall_start).count();
    return static_cast<double>(tsc_end - tsc_start) / secs;
  }();
  return hz;
}

}  // namespace fesia
