// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
// guarding snapshot payloads (snapshot format v2, docs/ROBUSTNESS.md).
//
// CRC32C detects every burst error shorter than 32 bits, so any single
// corrupted byte in a snapshot is caught unconditionally. The implementation
// is portable slice-by-8 table lookup (~1 GB/s): snapshot loading is not a
// hot path, and keeping it ISA-independent means the checksum works even on
// the scalar-only fallback configuration.
#ifndef FESIA_UTIL_CRC32C_H_
#define FESIA_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace fesia {

/// CRC32C of `bytes[0, n)`, optionally continuing from a previous crc
/// (pass the prior return value to checksum split buffers).
uint32_t Crc32c(const void* bytes, size_t n, uint32_t crc = 0);

}  // namespace fesia

#endif  // FESIA_UTIL_CRC32C_H_
