#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace fesia {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  // Compute column widths over header + rows.
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string();
      out << cell << std::string(width[i] - cell.size(), ' ');
      if (i + 1 < cols) out << "  ";
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t i = 0; i < cols; ++i) total += width[i] + (i + 1 < cols ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string TablePrinter::ToCsv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  if (!title_.empty()) out << "# " << title_ << '\n';
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i > 0) out << ',';
      out << quote(r[i]);
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void TablePrinter::Print() const {
  const char* format = std::getenv("FESIA_TABLE_FORMAT");
  std::string s = (format != nullptr && std::string(format) == "csv")
                      ? ToCsv()
                      : ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string TablePrinter::Fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::Speedup(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", v);
  return buf;
}

}  // namespace fesia
