#include "util/aligned_buffer.h"

#include <cstdlib>

#include "util/fault_injection.h"

namespace fesia {
namespace internal {

void* TryAllocateAligned(size_t bytes) {
  if (fault::ShouldFail(fault::FaultPoint::kAllocation)) return nullptr;
  if (bytes == 0) bytes = kVectorAlignment;
  // Round the allocation itself up so the *end* of the buffer is also
  // vector-aligned; together with zeroed tail padding this makes full-width
  // loads at any in-range index safe.
  size_t rounded = (bytes + kVectorAlignment - 1) & ~(kVectorAlignment - 1);
  void* p = std::aligned_alloc(kVectorAlignment, rounded);
  if (p == nullptr) return nullptr;
  std::memset(p, 0, rounded);
  return p;
}

void* AllocateAligned(size_t bytes) {
  // Build paths treat allocation failure as fatal; recoverable paths
  // (deserialization) go through TryAllocateAligned / TryReset instead.
  if (bytes == 0) bytes = kVectorAlignment;
  size_t rounded = (bytes + kVectorAlignment - 1) & ~(kVectorAlignment - 1);
  void* p = std::aligned_alloc(kVectorAlignment, rounded);
  if (p == nullptr) std::abort();
  std::memset(p, 0, rounded);
  return p;
}

void FreeAligned(void* p) { std::free(p); }

}  // namespace internal
}  // namespace fesia
