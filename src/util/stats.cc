#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace fesia {

SampleStats Summarize(const std::vector<double>& samples) {
  SampleStats s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  double var = 0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
  return s;
}

double Quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  if (q <= 0) return samples.front();
  if (q >= 1) return samples.back();
  double pos = q * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace fesia
