// A cache-line/vector aligned, zero-initialized flat buffer.
//
// FESIA's bitmap and reordered-element arrays are streamed with full-width
// vector loads, so they must be (a) aligned to the widest vector register and
// (b) padded so that a full vector load at the last valid element never
// touches an unmapped page. AlignedBuffer centralizes both guarantees.
#ifndef FESIA_UTIL_ALIGNED_BUFFER_H_
#define FESIA_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>

namespace fesia {

/// Default alignment: one AVX-512 register / one cache line.
inline constexpr size_t kVectorAlignment = 64;

namespace internal {
// Allocates `bytes` of zeroed storage aligned to kVectorAlignment.
void* AllocateAligned(size_t bytes);
// As AllocateAligned, but returns nullptr on failure (or when a
// fault::kAllocation fault is armed) instead of aborting.
void* TryAllocateAligned(size_t bytes);
void FreeAligned(void* p);
}  // namespace internal

/// Fixed-capacity aligned array of trivially-copyable T.
///
/// The buffer always over-allocates by `pad_elements` zeroed slots past
/// size(), so SIMD code may load one full vector starting at any index
/// < size() without faulting.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(size_t size, size_t pad_elements = kDefaultPad) {
    Reset(size, pad_elements);
  }

  AlignedBuffer(const AlignedBuffer& other) { CopyFrom(other); }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      internal::FreeAligned(data_);
      data_ = nullptr;
      CopyFrom(other);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        padded_size_(std::exchange(other.padded_size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      internal::FreeAligned(data_);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      padded_size_ = std::exchange(other.padded_size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { internal::FreeAligned(data_); }

  /// Re-allocates to `size` elements (all zero) plus `pad_elements` of
  /// zeroed tail padding.
  void Reset(size_t size, size_t pad_elements = kDefaultPad) {
    internal::FreeAligned(data_);
    size_ = size;
    padded_size_ = size + pad_elements;
    data_ = static_cast<T*>(internal::AllocateAligned(padded_size_ * sizeof(T)));
  }

  /// As Reset, but reports allocation failure instead of aborting: returns
  /// false and leaves the buffer empty. Used by deserialization paths that
  /// must surface resource exhaustion as a recoverable Status.
  [[nodiscard]] bool TryReset(size_t size, size_t pad_elements = kDefaultPad) {
    internal::FreeAligned(data_);
    data_ = nullptr;
    size_ = 0;
    padded_size_ = 0;
    void* p = internal::TryAllocateAligned((size + pad_elements) * sizeof(T));
    if (p == nullptr) return false;
    data_ = static_cast<T*>(p);
    size_ = size;
    padded_size_ = size + pad_elements;
    return true;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  /// Number of allocated elements including the zeroed tail padding.
  size_t padded_size() const { return padded_size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  static constexpr size_t kDefaultPad = kVectorAlignment / sizeof(T);

  void CopyFrom(const AlignedBuffer& other) {
    size_ = other.size_;
    padded_size_ = other.padded_size_;
    if (other.data_ != nullptr) {
      data_ =
          static_cast<T*>(internal::AllocateAligned(padded_size_ * sizeof(T)));
      std::memcpy(data_, other.data_, padded_size_ * sizeof(T));
    }
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t padded_size_ = 0;
};

}  // namespace fesia

#endif  // FESIA_UTIL_ALIGNED_BUFFER_H_
