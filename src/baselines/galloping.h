// Scalar galloping (exponential / binary search) intersection.
//
// Bentley-Yao unbounded search: for each element of the smaller set, gallop
// through the larger set in doubling strides, then binary-search the final
// bracket. O(n1 log n2); the method of choice when n1 << n2.
#ifndef FESIA_BASELINES_GALLOPING_H_
#define FESIA_BASELINES_GALLOPING_H_

#include <cstddef>
#include <cstdint>

namespace fesia::baselines {

/// Galloping intersection; sides are swapped internally so the smaller set
/// drives the search. Returns the intersection size.
size_t ScalarGalloping(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb);

/// Galloping intersection materializing the result into `out`
/// (room for min(na, nb) values required). Returns the intersection size.
size_t ScalarGallopingInto(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out);

/// Index of the first element in sorted [b, b+nb) that is >= key, found by
/// galloping from `hint`. Exposed for reuse by the SIMD galloping variant.
size_t GallopLowerBound(const uint32_t* b, size_t nb, size_t hint,
                        uint32_t key);

}  // namespace fesia::baselines

#endif  // FESIA_BASELINES_GALLOPING_H_
