#include "baselines/bmiss.h"

#include <immintrin.h>

#include <vector>

namespace fesia::baselines {
namespace {

// A candidate block pair whose partial keys matched; verified later.
struct Candidate {
  uint32_t a_pos;  // start of the A block
  uint32_t b_pos;  // start of the B block
};

// Packs the low 16 bits of the four 32-bit lanes of `v` into the low 64 bits.
inline __m128i PackLow16(__m128i v) {
  const __m128i kShuffle =
      _mm_setr_epi8(0, 1, 4, 5, 8, 9, 12, 13, static_cast<char>(0x80),
                    static_cast<char>(0x80), static_cast<char>(0x80),
                    static_cast<char>(0x80), static_cast<char>(0x80),
                    static_cast<char>(0x80), static_cast<char>(0x80),
                    static_cast<char>(0x80));
  return _mm_shuffle_epi8(v, kShuffle);
}

// True iff any of the 16 (a_lane, b_lane) pairs have equal low-16-bit keys.
inline bool PartialKeysCollide(__m128i va, __m128i vb) {
  __m128i pa = PackLow16(va);  // 4 x u16 in lanes 0..3
  __m128i pb = PackLow16(vb);
  // Duplicate the packed quads so one 8x16-bit compare covers two rotations.
  __m128i pa2 = _mm_unpacklo_epi64(pa, pa);
  __m128i pb01 = _mm_unpacklo_epi64(
      pb, _mm_shufflelo_epi16(pb, _MM_SHUFFLE(0, 3, 2, 1)));
  __m128i pb23 = _mm_unpacklo_epi64(
      _mm_shufflelo_epi16(pb, _MM_SHUFFLE(1, 0, 3, 2)),
      _mm_shufflelo_epi16(pb, _MM_SHUFFLE(2, 1, 0, 3)));
  __m128i eq = _mm_or_si128(_mm_cmpeq_epi16(pa2, pb01),
                            _mm_cmpeq_epi16(pa2, pb23));
  return _mm_movemask_epi8(eq) != 0;
}

template <typename Emit>
size_t BMissImpl(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                 Emit emit) {
  size_t i = 0, j = 0;
  size_t na4 = na & ~size_t{3};
  size_t nb4 = nb & ~size_t{3};
  std::vector<Candidate> queue;
  queue.reserve(256);

  while (i < na4 && j < nb4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    if (PartialKeysCollide(va, vb)) {
      queue.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(j)});
    }
    uint32_t amax = a[i + 3];
    uint32_t bmax = b[j + 3];
    i += (amax <= bmax) ? 4 : 0;
    j += (bmax <= amax) ? 4 : 0;
  }

  // Verification pass: full-key merge inside each queued 4x4 block pair.
  // The queue decouples this (branchy) work from the streaming loop above.
  size_t r = 0;
  for (const Candidate& c : queue) {
    const uint32_t* pa = a + c.a_pos;
    const uint32_t* pb = b + c.b_pos;
    for (int x = 0; x < 4; ++x) {
      for (int y = 0; y < 4; ++y) {
        if (pa[x] == pb[y]) {
          emit(pa[x]);
          ++r;
        }
      }
    }
  }
  // Scalar tail merge for the remaining (< 4-element) fringes.
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      emit(a[i]);
      ++r;
      ++i;
      ++j;
    }
  }
  return r;
}

}  // namespace

size_t BMiss(const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  return BMissImpl(a, na, b, nb, [](uint32_t) {});
}

size_t BMissInto(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                 uint32_t* out) {
  size_t k = 0;
  size_t r = BMissImpl(a, na, b, nb, [&](uint32_t v) { out[k++] = v; });
  return r;
}

}  // namespace fesia::baselines
