#include "baselines/kway.h"

#include <algorithm>

#include "baselines/galloping.h"
#include "baselines/scalar_merge.h"
#include "baselines/shuffling.h"

namespace fesia::baselines {
namespace {

// Orders set indices by ascending size; intersecting smallest-first keeps
// every intermediate result as small as possible.
std::vector<size_t> BySize(std::span<const SetView> sets) {
  std::vector<size_t> order(sets.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return sets[x].size < sets[y].size; });
  return order;
}

template <typename PairInto>
std::vector<uint32_t> CascadeInto(std::span<const SetView> sets,
                                  PairInto pair_into) {
  if (sets.empty()) return {};
  std::vector<size_t> order = BySize(sets);
  const SetView& first = sets[order[0]];
  std::vector<uint32_t> acc(first.data, first.data + first.size);
  std::vector<uint32_t> tmp;
  for (size_t s = 1; s < order.size() && !acc.empty(); ++s) {
    const SetView& next = sets[order[s]];
    tmp.resize(std::min(acc.size(), next.size));
    size_t r = pair_into(acc.data(), acc.size(), next.data, next.size,
                         tmp.data());
    tmp.resize(r);
    acc.swap(tmp);
  }
  return acc;
}

}  // namespace

size_t KWayMerge(std::span<const SetView> sets) {
  return CascadeInto(sets, ScalarMergeInto).size();
}

std::vector<uint32_t> KWayMergeInto(std::span<const SetView> sets) {
  return CascadeInto(sets, ScalarMergeInto);
}

size_t KWayGalloping(std::span<const SetView> sets) {
  if (sets.empty()) return 0;
  std::vector<size_t> order = BySize(sets);
  const SetView& anchor = sets[order[0]];
  // Per-set galloping cursors; anchor elements ascend, so cursors only move
  // forward.
  std::vector<size_t> pos(sets.size(), 0);
  size_t r = 0;
  for (size_t i = 0; i < anchor.size; ++i) {
    uint32_t key = anchor.data[i];
    bool in_all = true;
    for (size_t s = 1; s < order.size(); ++s) {
      const SetView& sv = sets[order[s]];
      size_t p = GallopLowerBound(sv.data, sv.size, pos[s], key);
      pos[s] = p;
      if (p == sv.size || sv.data[p] != key) {
        in_all = false;
        break;
      }
    }
    r += in_all;
  }
  return r;
}

size_t KWayShuffling(std::span<const SetView> sets) {
  return CascadeInto(sets, ShufflingInto).size();
}

}  // namespace fesia::baselines
