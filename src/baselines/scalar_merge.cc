#include "baselines/scalar_merge.h"

namespace fesia::baselines {

size_t ScalarMerge(const uint32_t* a, size_t na, const uint32_t* b,
                   size_t nb) {
  size_t i = 0, j = 0, r = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++i;
      ++j;
      ++r;
    }
  }
  return r;
}

size_t ScalarMergeBranchless(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb) {
  size_t i = 0, j = 0, r = 0;
  while (i < na && j < nb) {
    uint32_t va = a[i];
    uint32_t vb = b[j];
    // All three updates compile to flag-setting compares + conditional
    // increments (setcc/cmov); the loop has a single, well-predicted branch.
    r += (va == vb);
    i += (va <= vb);
    j += (vb <= va);
  }
  return r;
}

size_t ScalarMergeInto(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, r = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out[r++] = a[i];
      ++i;
      ++j;
    }
  }
  return r;
}

}  // namespace fesia::baselines
