// BMiss block-based intersection (Inoue, Ohara, Taura; PVLDB 2014).
//
// BMiss attacks the branch mispredictions of merge intersection in two ways:
// (1) the main loop compares fixed-size blocks all-pairs with SIMD on
// *partial keys* (the low 16 bits), which is branch-free, and (2) candidate
// hits are appended to a small queue and verified against the full 32-bit
// keys in a separate pass, so the unpredictable "is it a real match?" branch
// never sits on the critical path of pointer advancement.
//
// This implementation follows the paper's SIMD (non-STTNI) variant with
// block size 4. Partial-key equality can produce false positives; the
// verification pass makes the result exact.
#ifndef FESIA_BASELINES_BMISS_H_
#define FESIA_BASELINES_BMISS_H_

#include <cstddef>
#include <cstdint>

namespace fesia::baselines {

/// BMiss intersection; returns the intersection size.
size_t BMiss(const uint32_t* a, size_t na, const uint32_t* b, size_t nb);

/// BMiss intersection materializing the result into `out` (room for
/// min(na, nb) values required). Returns the intersection size.
size_t BMissInto(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                 uint32_t* out);

}  // namespace fesia::baselines

#endif  // FESIA_BASELINES_BMISS_H_
