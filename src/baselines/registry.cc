#include "baselines/registry.h"

#include "baselines/bmiss.h"
#include "baselines/galloping.h"
#include "baselines/hash_intersect.h"
#include "baselines/scalar_merge.h"
#include "baselines/shuffling.h"
#include "baselines/simd_galloping.h"

namespace fesia::baselines {

const std::vector<Method>& AllBaselines() {
  static const std::vector<Method>& methods = *new std::vector<Method>{
      {"Scalar", &ScalarMergeBranchless, false},
      {"ScalarGalloping", &ScalarGalloping, false},
      {"Shuffling", &Shuffling, true},
      {"BMiss", &BMiss, true},
      {"SIMDGalloping", &SimdGalloping, true},
      {"Hash", &HashIntersect, false},
  };
  return methods;
}

const Method* FindBaseline(const std::string& name) {
  for (const Method& m : AllBaselines()) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace fesia::baselines
