// SSE "shuffling" intersection (Katsov 2012; Schlegel et al. 2011).
//
// The classic vectorized merge: load one 4-element block from each side,
// compare all 16 pairs using the block and its three lane rotations, count
// matches with movemask+popcnt, and advance the block whose maximum is
// smaller. This is the "Shuffling" method benchmarked by the paper.
#ifndef FESIA_BASELINES_SHUFFLING_H_
#define FESIA_BASELINES_SHUFFLING_H_

#include <cstddef>
#include <cstdint>

namespace fesia::baselines {

/// Shuffling intersection; returns the intersection size.
size_t Shuffling(const uint32_t* a, size_t na, const uint32_t* b, size_t nb);

/// Shuffling intersection materializing the common elements into `out`
/// (room for min(na, nb) values required). Returns the intersection size.
size_t ShufflingInto(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb, uint32_t* out);

}  // namespace fesia::baselines

#endif  // FESIA_BASELINES_SHUFFLING_H_
