// Named registry of pairwise intersection methods.
//
// The benchmark harness and the integration tests iterate over every method
// by name so each paper figure reports the same competitor set.
#ifndef FESIA_BASELINES_REGISTRY_H_
#define FESIA_BASELINES_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fesia::baselines {

/// Pairwise count-only intersection signature shared by all baselines.
using IntersectCountFn = size_t (*)(const uint32_t* a, size_t na,
                                    const uint32_t* b, size_t nb);

/// One registered method.
struct Method {
  std::string name;
  IntersectCountFn fn;
  bool uses_simd;
};

/// All baseline methods, in the order the paper lists them
/// (Scalar, ScalarGalloping, Shuffling, BMiss, SIMDGalloping, Hash).
const std::vector<Method>& AllBaselines();

/// Looks a method up by name; returns nullptr when absent.
const Method* FindBaseline(const std::string& name);

}  // namespace fesia::baselines

#endif  // FESIA_BASELINES_REGISTRY_H_
