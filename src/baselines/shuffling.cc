#include "baselines/shuffling.h"

#include <immintrin.h>

#include "baselines/scalar_merge.h"
#include "util/bits.h"

namespace fesia::baselines {
namespace {

// OR of the equality masks of `va` against all four rotations of `vb`:
// lane L of the result is all-ones iff a[L] occurs anywhere in the b block.
inline __m128i AllPairsEq(__m128i va, __m128i vb) {
  __m128i rot1 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
  __m128i rot2 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
  __m128i rot3 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
  __m128i cmp = _mm_cmpeq_epi32(va, vb);
  cmp = _mm_or_si128(cmp, _mm_cmpeq_epi32(va, rot1));
  cmp = _mm_or_si128(cmp, _mm_cmpeq_epi32(va, rot2));
  cmp = _mm_or_si128(cmp, _mm_cmpeq_epi32(va, rot3));
  return cmp;
}

}  // namespace

size_t Shuffling(const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  size_t i = 0, j = 0, r = 0;
  size_t na4 = na & ~size_t{3};
  size_t nb4 = nb & ~size_t{3};
  while (i < na4 && j < nb4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i cmp = AllPairsEq(va, vb);
    r += static_cast<size_t>(
        PopCount64(static_cast<uint64_t>(_mm_movemask_ps(_mm_castsi128_ps(cmp)))));
    uint32_t amax = a[i + 3];
    uint32_t bmax = b[j + 3];
    // Advance the block(s) whose maximum is not larger; branch-free.
    i += (amax <= bmax) ? 4 : 0;
    j += (bmax <= amax) ? 4 : 0;
  }
  // Scalar tail merge for the remaining (< 4-element) fringes.
  return r + ScalarMergeBranchless(a + i, na - i, b + j, nb - j);
}

size_t ShufflingInto(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, r = 0;
  size_t na4 = na & ~size_t{3};
  size_t nb4 = nb & ~size_t{3};
  while (i < na4 && j < nb4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i cmp = AllPairsEq(va, vb);
    uint32_t mask =
        static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(cmp)));
    while (mask != 0) {
      int lane = CountTrailingZeros64(mask);
      out[r++] = a[i + static_cast<size_t>(lane)];
      mask &= mask - 1;
    }
    uint32_t amax = a[i + 3];
    uint32_t bmax = b[j + 3];
    i += (amax <= bmax) ? 4 : 0;
    j += (bmax <= amax) ? 4 : 0;
  }
  return r + ScalarMergeInto(a + i, na - i, b + j, nb - j, out + r);
}

}  // namespace fesia::baselines
