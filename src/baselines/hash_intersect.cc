#include "baselines/hash_intersect.h"

#include <algorithm>

#include "util/bits.h"

namespace fesia::baselines {
namespace {

constexpr uint32_t kEmpty = 0xFFFFFFFFu;

// Fibonacci hashing: multiply by 2^32/phi and keep the top bits.
inline uint32_t HashKey(uint32_t key, uint32_t mask, int shift) {
  return (key * 2654435769u >> shift) & mask;
}

}  // namespace

HashSet32::HashSet32(const uint32_t* keys, size_t n) {
  size_t cap = RoundUpPow2(std::max<size_t>(2, n * 2));
  slots_.assign(cap, kEmpty);
  mask_ = static_cast<uint32_t>(cap - 1);
  int shift = 32 - Log2Pow2(cap);
  for (size_t i = 0; i < n; ++i) {
    uint32_t key = keys[i];
    uint32_t pos = HashKey(key, mask_, shift);
    while (slots_[pos] != kEmpty) {
      if (slots_[pos] == key) break;  // duplicate input key
      pos = (pos + 1) & mask_;
    }
    slots_[pos] = key;
  }
}

bool HashSet32::Contains(uint32_t key) const {
  int shift = 32 - Log2Pow2(slots_.size());
  uint32_t pos = HashKey(key, mask_, shift);
  while (true) {
    uint32_t v = slots_[pos];
    if (v == key) return true;
    if (v == kEmpty) return false;
    pos = (pos + 1) & mask_;
  }
}

size_t HashIntersect(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb) {
  if (na > nb) return HashIntersect(b, nb, a, na);
  HashSet32 table(a, na);
  return HashProbeCount(table, b, nb);
}

size_t HashProbeCount(const HashSet32& table, const uint32_t* probe,
                      size_t n) {
  size_t r = 0;
  for (size_t i = 0; i < n; ++i) r += table.Contains(probe[i]);
  return r;
}

}  // namespace fesia::baselines
