#include "baselines/hiera.h"

#include <nmmintrin.h>

#include <algorithm>

#include "util/bits.h"

namespace fesia::baselines {

HieraSet::HieraSet(std::span<const uint32_t> sorted) : size_(sorted.size()) {
  lows_.Reset(sorted.size(), /*pad_elements=*/16);
  size_t i = 0;
  while (i < sorted.size()) {
    uint16_t high = static_cast<uint16_t>(sorted[i] >> 16);
    uint32_t begin = static_cast<uint32_t>(i);
    while (i < sorted.size() &&
           static_cast<uint16_t>(sorted[i] >> 16) == high) {
      lows_[i] = static_cast<uint16_t>(sorted[i] & 0xFFFF);
      ++i;
    }
    buckets_.push_back({high, begin, static_cast<uint32_t>(i) - begin});
  }
}

size_t SttniIntersect16(const uint16_t* a, size_t na, const uint16_t* b,
                        size_t nb) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    int la = static_cast<int>(std::min<size_t>(8, na - i));
    int lb = static_cast<int>(std::min<size_t>(8, nb - j));
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    // Bit k of the result is set iff vb[k] equals ANY element of va
    // (PCMPESTRM with unsigned-word, equal-any, bit-mask mode).
    __m128i res = _mm_cmpestrm(
        va, la, vb, lb,
        _SIDD_UWORD_OPS | _SIDD_CMP_EQUAL_ANY | _SIDD_BIT_MASK);
    count += static_cast<size_t>(
        _mm_popcnt_u32(static_cast<unsigned>(_mm_cvtsi128_si32(res))));
    uint16_t amax = a[i + static_cast<size_t>(la) - 1];
    uint16_t bmax = b[j + static_cast<size_t>(lb) - 1];
    if (amax <= bmax) i += static_cast<size_t>(la);
    if (bmax <= amax) j += static_cast<size_t>(lb);
  }
  return count;
}

size_t HieraIntersect(const HieraSet& a, const HieraSet& b) {
  const auto& ba = a.buckets();
  const auto& bb = b.buckets();
  size_t i = 0, j = 0, count = 0;
  while (i < ba.size() && j < bb.size()) {
    if (ba[i].high < bb[j].high) {
      ++i;
    } else if (ba[i].high > bb[j].high) {
      ++j;
    } else {
      count += SttniIntersect16(a.lows() + ba[i].begin, ba[i].length,
                                b.lows() + bb[j].begin, bb[j].length);
      ++i;
      ++j;
    }
  }
  return count;
}

size_t HieraOneShot(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb) {
  HieraSet ha(std::span<const uint32_t>(a, na));
  HieraSet hb(std::span<const uint32_t>(b, nb));
  return HieraIntersect(ha, hb);
}

}  // namespace fesia::baselines
