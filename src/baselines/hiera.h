// Hiera: hierarchical STTNI-based intersection (Schlegel, Willhalm, Lehner;
// ADMS 2011) — the remaining method from the paper's Table I.
//
// 32-bit keys are bucketed by their high 16 bits (contiguous runs of a
// sorted list); matching buckets intersect their low-16-bit arrays with the
// SSE4.2 string-comparison instruction PCMPESTRM, which performs an 8x8
// all-pairs 16-bit equality comparison in one instruction.
//
// As the paper notes, Hiera's effectiveness depends on the data
// distribution (sparse keys degrade it to scalar-ish behavior) and it
// requires STTNI, which is why the paper documents but does not benchmark
// it; we implement it for completeness and expose it both as an offline
// structure (its natural form) and as a one-shot adapter.
#ifndef FESIA_BASELINES_HIERA_H_
#define FESIA_BASELINES_HIERA_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/aligned_buffer.h"

namespace fesia::baselines {

/// Offline hierarchical layout of one sorted, duplicate-free set.
class HieraSet {
 public:
  /// `sorted` must be ascending and duplicate-free.
  explicit HieraSet(std::span<const uint32_t> sorted);

  size_t size() const { return size_; }
  size_t num_buckets() const { return buckets_.size(); }

  struct Bucket {
    uint16_t high;    // common high 16 bits
    uint32_t begin;   // offset into lows()
    uint32_t length;  // number of keys in this bucket
  };
  const std::vector<Bucket>& buckets() const { return buckets_; }
  const uint16_t* lows() const { return lows_.data(); }

 private:
  size_t size_ = 0;
  std::vector<Bucket> buckets_;
  AlignedBuffer<uint16_t> lows_;  // low 16 bits, bucket by bucket, padded
};

/// Intersection size of two hierarchical sets.
size_t HieraIntersect(const HieraSet& a, const HieraSet& b);

/// One-shot adapter matching the registry signature; includes the layout
/// conversion in its cost (documented — Hiera assumes an offline layout).
size_t HieraOneShot(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb);

/// STTNI kernel on two sorted, duplicate-free 16-bit runs. Both runs must
/// be safely over-readable to a 16-byte boundary (AlignedBuffer padding).
size_t SttniIntersect16(const uint16_t* a, size_t na, const uint16_t* b,
                        size_t nb);

}  // namespace fesia::baselines

#endif  // FESIA_BASELINES_HIERA_H_
