// SIMDGalloping intersection (Lemire, Boytsov, Kurz; SPE 2016).
//
// Binary-search based intersection vectorized at the leaf: each element of
// the smaller set gallops through the larger set in vector-block units, and
// the final candidate window is probed with SIMD equality tests instead of
// the last few scalar binary-search steps. Best when n1 << n2; degrades to
// roughly n1 log n2 when the inputs are balanced (visible in Figs. 7-9).
#ifndef FESIA_BASELINES_SIMD_GALLOPING_H_
#define FESIA_BASELINES_SIMD_GALLOPING_H_

#include <cstddef>
#include <cstdint>

namespace fesia::baselines {

/// SIMDGalloping intersection; sides are swapped internally so the smaller
/// set drives the search. Returns the intersection size.
size_t SimdGalloping(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb);

/// Materializing variant (out must have room for min(na, nb) values).
size_t SimdGallopingInto(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb, uint32_t* out);

}  // namespace fesia::baselines

#endif  // FESIA_BASELINES_SIMD_GALLOPING_H_
