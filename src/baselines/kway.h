// Reference k-way intersection baselines (paper Table I, Fig. 10).
//
// Two strategies: (1) cascaded pairwise merge, cost n1 + n2 + ... + nk, and
// (2) anchored galloping, which looks every element of the smallest set up
// in all other sets, cost n1 (log n2 + ... + log nk).
#ifndef FESIA_BASELINES_KWAY_H_
#define FESIA_BASELINES_KWAY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fesia::baselines {

/// A non-owning view of one sorted input set.
struct SetView {
  const uint32_t* data = nullptr;
  size_t size = 0;
};

/// Cascaded merge: intersects sets pairwise in the given order.
/// Returns the k-way intersection size.
size_t KWayMerge(std::span<const SetView> sets);

/// Cascaded merge materializing the result.
std::vector<uint32_t> KWayMergeInto(std::span<const SetView> sets);

/// Anchored galloping: each element of the smallest set is binary-searched
/// in every other set. Returns the k-way intersection size.
size_t KWayGalloping(std::span<const SetView> sets);

/// Cascaded SIMD shuffling merge (SSE), the vector analogue of KWayMerge.
size_t KWayShuffling(std::span<const SetView> sets);

}  // namespace fesia::baselines

#endif  // FESIA_BASELINES_KWAY_H_
