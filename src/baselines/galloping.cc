#include "baselines/galloping.h"

#include <algorithm>

namespace fesia::baselines {

size_t GallopLowerBound(const uint32_t* b, size_t nb, size_t hint,
                        uint32_t key) {
  if (hint >= nb) return nb;
  // Doubling phase: find a bracket [lo, hi) with b[lo-1] < key <= b[hi-1].
  size_t step = 1;
  size_t lo = hint;
  size_t hi = hint;
  while (hi < nb && b[hi] < key) {
    lo = hi + 1;
    hi += step;
    step *= 2;
    if (hi > nb) {
      hi = nb;
      break;
    }
  }
  hi = std::min(hi + 1, nb);
  // Binary phase inside the bracket.
  const uint32_t* first =
      std::lower_bound(b + lo, b + hi, key);
  return static_cast<size_t>(first - b);
}

namespace {

template <typename Emit>
size_t GallopIntersect(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb, Emit emit) {
  if (na > nb) {
    // Drive with the smaller side; re-dispatch with swapped arguments.
    return GallopIntersect(b, nb, a, na, emit);
  }
  size_t pos = 0;
  size_t r = 0;
  for (size_t i = 0; i < na; ++i) {
    uint32_t key = a[i];
    pos = GallopLowerBound(b, nb, pos, key);
    if (pos == nb) break;
    if (b[pos] == key) {
      emit(key);
      ++r;
      ++pos;
    }
  }
  return r;
}

}  // namespace

size_t ScalarGalloping(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb) {
  return GallopIntersect(a, na, b, nb, [](uint32_t) {});
}

size_t ScalarGallopingInto(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out) {
  size_t k = 0;
  return GallopIntersect(a, na, b, nb, [&](uint32_t v) { out[k++] = v; });
}

}  // namespace fesia::baselines
