// Scalar merge-based set intersection (paper Listing 1).
//
// Two variants: the textbook branching merge, and the branchless variant the
// paper actually benchmarks as "Scalar" (conditional moves instead of
// if/else, eliminating the mispredicted element-comparison branch).
#ifndef FESIA_BASELINES_SCALAR_MERGE_H_
#define FESIA_BASELINES_SCALAR_MERGE_H_

#include <cstddef>
#include <cstdint>

namespace fesia::baselines {

/// Branching merge intersection; returns the intersection size.
size_t ScalarMerge(const uint32_t* a, size_t na, const uint32_t* b, size_t nb);

/// Branchless (cmov) merge intersection; returns the intersection size.
size_t ScalarMergeBranchless(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb);

/// Branching merge that also writes the common elements to `out` (which must
/// have room for min(na, nb) values). Returns the intersection size.
size_t ScalarMergeInto(const uint32_t* a, size_t na, const uint32_t* b,
                       size_t nb, uint32_t* out);

}  // namespace fesia::baselines

#endif  // FESIA_BASELINES_SCALAR_MERGE_H_
