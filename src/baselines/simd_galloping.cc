#include "baselines/simd_galloping.h"

#include <immintrin.h>

#include <algorithm>

namespace fesia::baselines {
namespace {

// Window probed with SIMD once galloping has bracketed the key:
// four 128-bit vectors = 16 candidate elements.
constexpr size_t kWindow = 16;

// True iff `key` occurs in the 16-element window starting at `w`.
// The window must be fully in bounds.
inline bool SimdProbe16(const uint32_t* w, uint32_t key) {
  __m128i vkey = _mm_set1_epi32(static_cast<int>(key));
  __m128i c0 = _mm_cmpeq_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w)), vkey);
  __m128i c1 = _mm_cmpeq_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + 4)), vkey);
  __m128i c2 = _mm_cmpeq_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + 8)), vkey);
  __m128i c3 = _mm_cmpeq_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + 12)), vkey);
  __m128i any = _mm_or_si128(_mm_or_si128(c0, c1), _mm_or_si128(c2, c3));
  return _mm_movemask_epi8(any) != 0;
}

template <typename Emit>
size_t SimdGallopImpl(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb, Emit emit) {
  if (na > nb) return SimdGallopImpl(b, nb, a, na, emit);
  size_t r = 0;
  size_t block = 0;  // current window index in b (units of kWindow)
  size_t num_blocks = nb / kWindow;
  for (size_t i = 0; i < na; ++i) {
    uint32_t key = a[i];
    // Gallop in window units: find the first window whose max is >= key.
    if (block < num_blocks && b[block * kWindow + kWindow - 1] < key) {
      size_t step = 1;
      size_t lo = block + 1;
      size_t hi = block + 1;
      while (hi < num_blocks && b[hi * kWindow + kWindow - 1] < key) {
        lo = hi + 1;
        hi += step;
        step *= 2;
        if (hi > num_blocks) {
          hi = num_blocks;
          break;
        }
      }
      // Binary search among windows [lo, hi] for the first max >= key.
      size_t left = lo;
      size_t right = std::min(hi + 1, num_blocks);
      while (left < right) {
        size_t mid = left + (right - left) / 2;
        if (b[mid * kWindow + kWindow - 1] < key) {
          left = mid + 1;
        } else {
          right = mid;
        }
      }
      block = left;
    }
    if (block >= num_blocks) {
      // Tail region (< kWindow elements): scalar binary search.
      const uint32_t* base = b + num_blocks * kWindow;
      size_t tail = nb - num_blocks * kWindow;
      if (std::binary_search(base, base + tail, key)) {
        emit(key);
        ++r;
      }
      continue;
    }
    if (SimdProbe16(b + block * kWindow, key)) {
      emit(key);
      ++r;
    }
  }
  return r;
}

}  // namespace

size_t SimdGalloping(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb) {
  return SimdGallopImpl(a, na, b, nb, [](uint32_t) {});
}

size_t SimdGallopingInto(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb, uint32_t* out) {
  size_t k = 0;
  return SimdGallopImpl(a, na, b, nb, [&](uint32_t v) { out[k++] = v; });
}

}  // namespace fesia::baselines
