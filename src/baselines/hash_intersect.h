// Hash-based set intersection (paper Sec. II-A).
//
// Builds an open-addressing table from the smaller set and probes it with
// every element of the larger set: O(min(n1, n2)) expected probes plus the
// build. This is the classical winner under extreme skew and the baseline
// FESIAhash is designed to match asymptotically.
#ifndef FESIA_BASELINES_HASH_INTERSECT_H_
#define FESIA_BASELINES_HASH_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fesia::baselines {

/// Linear-probing hash set of uint32_t keys, reusable across queries.
/// Key 0xFFFFFFFF is reserved as the empty slot marker.
class HashSet32 {
 public:
  /// Builds a table over [keys, keys + n) at ~50% load factor.
  HashSet32(const uint32_t* keys, size_t n);

  /// True iff `key` was inserted at build time.
  bool Contains(uint32_t key) const;

  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<uint32_t> slots_;
  uint32_t mask_ = 0;
};

/// One-shot hash intersection: builds a table from the smaller input, probes
/// with the larger. Returns the intersection size.
size_t HashIntersect(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb);

/// Probe-only intersection against a prebuilt table; counts elements of
/// [probe, probe + n) present in `table`.
size_t HashProbeCount(const HashSet32& table, const uint32_t* probe, size_t n);

}  // namespace fesia::baselines

#endif  // FESIA_BASELINES_HASH_INTERSECT_H_
