// Synthetic graph generators standing in for the SNAP datasets.
//
// RMAT (Chakrabarti et al. 2004) reproduces the skewed, community-like
// degree distributions of the paper's citation and social graphs; see the
// substitution notes in DESIGN.md.
#ifndef FESIA_GRAPH_GENERATORS_H_
#define FESIA_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fesia::graph {

/// RMAT parameters. Defaults are the standard (0.57, 0.19, 0.19, 0.05).
struct RmatParams {
  uint32_t num_nodes = 1 << 20;  // rounded up to a power of two internally
  uint64_t num_edges = 8 << 20;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 7;
};

/// Generates an RMAT edge list (duplicates and self-loops included; the
/// Graph builder removes them).
std::vector<Edge> GenerateRmatEdges(const RmatParams& params);

/// Uniform (Erdős–Rényi G(n, m)) edge list.
std::vector<Edge> GenerateUniformEdges(uint32_t num_nodes, uint64_t num_edges,
                                       uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_node` existing vertices with probability proportional to
/// their degree. Produces the power-law degree tail of citation/social
/// graphs with a guaranteed connected core.
std::vector<Edge> GenerateBarabasiAlbertEdges(uint32_t num_nodes,
                                              uint32_t edges_per_node,
                                              uint64_t seed);

/// Convenience: RMAT graph with sorted CSR adjacency.
Graph GenerateRmatGraph(const RmatParams& params);

}  // namespace fesia::graph

#endif  // FESIA_GRAPH_GENERATORS_H_
