#include "graph/generators.h"

#include <algorithm>

#include "util/bits.h"
#include "util/rng.h"

namespace fesia::graph {

std::vector<Edge> GenerateRmatEdges(const RmatParams& params) {
  uint32_t n = static_cast<uint32_t>(RoundUpPow2(params.num_nodes));
  int levels = Log2Pow2(n);
  Rng rng(params.seed);
  std::vector<Edge> edges;
  edges.reserve(params.num_edges);
  for (uint64_t e = 0; e < params.num_edges; ++e) {
    uint32_t u = 0, v = 0;
    for (int l = 0; l < levels; ++l) {
      double p = rng.NextDouble();
      // Quadrant choice: a (top-left), b (top-right), c (bottom-left),
      // d (bottom-right, the remainder).
      int bit_u = 0, bit_v = 0;
      if (p < params.a) {
        // 0,0
      } else if (p < params.a + params.b) {
        bit_v = 1;
      } else if (p < params.a + params.b + params.c) {
        bit_u = 1;
      } else {
        bit_u = 1;
        bit_v = 1;
      }
      u = (u << 1) | static_cast<uint32_t>(bit_u);
      v = (v << 1) | static_cast<uint32_t>(bit_v);
    }
    edges.emplace_back(u, v);
  }
  return edges;
}

std::vector<Edge> GenerateUniformEdges(uint32_t num_nodes, uint64_t num_edges,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (uint64_t e = 0; e < num_edges; ++e) {
    edges.emplace_back(static_cast<uint32_t>(rng.Below(num_nodes)),
                       static_cast<uint32_t>(rng.Below(num_nodes)));
  }
  return edges;
}

std::vector<Edge> GenerateBarabasiAlbertEdges(uint32_t num_nodes,
                                              uint32_t edges_per_node,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  if (num_nodes < 2 || edges_per_node == 0) return edges;
  edges.reserve(static_cast<size_t>(num_nodes) * edges_per_node);
  // `targets` holds one entry per edge endpoint, so uniform sampling from
  // it is degree-proportional sampling.
  std::vector<uint32_t> targets;
  targets.reserve(2 * edges.capacity());
  targets.push_back(0);
  for (uint32_t v = 1; v < num_nodes; ++v) {
    uint32_t attach = std::min(edges_per_node, v);
    for (uint32_t e = 0; e < attach; ++e) {
      uint32_t u = targets[rng.Below(targets.size())];
      edges.emplace_back(u, v);
      targets.push_back(u);
    }
    for (uint32_t e = 0; e < attach; ++e) targets.push_back(v);
  }
  return edges;
}

Graph GenerateRmatGraph(const RmatParams& params) {
  std::vector<Edge> edges = GenerateRmatEdges(params);
  uint32_t n = static_cast<uint32_t>(RoundUpPow2(params.num_nodes));
  return Graph::FromEdges(n, edges);
}

}  // namespace fesia::graph
