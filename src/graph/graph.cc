#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace fesia::graph {

Graph Graph::FromEdges(uint32_t num_nodes, std::span<const Edge> edges) {
  // Canonicalize: drop self-loops, order endpoints, dedupe.
  std::vector<Edge> canon;
  canon.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.first == e.second) continue;
    FESIA_CHECK(e.first < num_nodes && e.second < num_nodes);
    canon.emplace_back(std::min(e.first, e.second),
                       std::max(e.first, e.second));
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());

  Graph g;
  g.num_nodes_ = num_nodes;
  g.num_edges_ = canon.size();
  g.offsets_.assign(num_nodes + 1, 0);
  for (const Edge& e : canon) {
    ++g.offsets_[e.first + 1];
    ++g.offsets_[e.second + 1];
  }
  for (uint32_t v = 0; v < num_nodes; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adj_.resize(2 * canon.size());
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : canon) {
    g.adj_[cursor[e.first]++] = e.second;
    g.adj_[cursor[e.second]++] = e.first;
  }
  // Each vertex's neighbors were appended in ascending canonical-edge order,
  // which is not sorted per vertex; sort each list.
  for (uint32_t v = 0; v < num_nodes; ++v) {
    std::sort(g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]),
              g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

uint32_t Graph::MaxDegree() const {
  uint32_t max_deg = 0;
  for (uint32_t v = 0; v < num_nodes_; ++v) {
    max_deg = std::max(max_deg, Degree(v));
  }
  return max_deg;
}

std::vector<uint64_t> Graph::DegreeHistogramLog2() const {
  std::vector<uint64_t> hist;
  for (uint32_t v = 0; v < num_nodes_; ++v) {
    uint32_t deg = Degree(v);
    size_t bucket = 0;
    while ((uint32_t{1} << (bucket + 1)) <= deg) ++bucket;
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

uint64_t Graph::CommonNeighborCount(uint32_t u, uint32_t v,
                                    size_t (*fn)(const uint32_t*, size_t,
                                                 const uint32_t*,
                                                 size_t)) const {
  auto nu = Neighbors(u);
  auto nv = Neighbors(v);
  return fn(nu.data(), nu.size(), nv.data(), nv.size());
}

Graph Graph::DegreeOrientedDag() const {
  auto precedes = [this](uint32_t u, uint32_t v) {
    uint32_t du = Degree(u);
    uint32_t dv = Degree(v);
    return du < dv || (du == dv && u < v);
  };

  Graph g;
  g.num_nodes_ = num_nodes_;
  g.offsets_.assign(num_nodes_ + 1, 0);
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    for (uint32_t v : Neighbors(u)) {
      if (precedes(u, v)) ++g.offsets_[u + 1];
    }
  }
  for (uint32_t v = 0; v < num_nodes_; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adj_.resize(g.offsets_[num_nodes_]);
  g.num_edges_ = g.adj_.size();
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    for (uint32_t v : Neighbors(u)) {
      if (precedes(u, v)) g.adj_[cursor[u]++] = v;
    }
  }
  // Neighbor lists inherit sortedness from the source graph.
  return g;
}

}  // namespace fesia::graph
