// CSR graph substrate for the triangle-counting task (paper Sec. VII-F).
#ifndef FESIA_GRAPH_GRAPH_H_
#define FESIA_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace fesia::graph {

/// An undirected edge.
using Edge = std::pair<uint32_t, uint32_t>;

/// Immutable CSR adjacency structure with sorted neighbor lists.
class Graph {
 public:
  /// Builds from an edge list: self-loops and duplicate edges are dropped,
  /// each remaining edge is stored in both directions.
  static Graph FromEdges(uint32_t num_nodes, std::span<const Edge> edges);

  uint32_t num_nodes() const { return num_nodes_; }
  /// Number of undirected edges after deduplication.
  uint64_t num_edges() const { return num_edges_; }

  std::span<const uint32_t> Neighbors(uint32_t v) const {
    return {adj_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  uint32_t Degree(uint32_t v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }
  uint32_t MaxDegree() const;

  /// Degree-ordered orientation: keeps edge u->v iff (deg(u), u) <
  /// (deg(v), v). Every triangle of the undirected graph appears exactly
  /// once as u->v, u->w, v->w in the result, which is the standard
  /// intersection-based counting form.
  Graph DegreeOrientedDag() const;

  /// Histogram of degrees in log2 buckets: bucket k counts vertices with
  /// degree in [2^k, 2^(k+1)); bucket 0 additionally holds degree 0 and 1.
  /// Useful for verifying that generated graphs have the intended skew.
  std::vector<uint64_t> DegreeHistogramLog2() const;

  /// |N(u) ∩ N(v)| — the common-neighbor query the paper motivates
  /// ("common friends"). `fn` is any pairwise count from the registry.
  uint64_t CommonNeighborCount(uint32_t u, uint32_t v,
                               size_t (*fn)(const uint32_t*, size_t,
                                            const uint32_t*,
                                            size_t)) const;

 private:
  uint32_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  std::vector<uint64_t> offsets_;  // num_nodes + 1
  std::vector<uint32_t> adj_;
};

}  // namespace fesia::graph

#endif  // FESIA_GRAPH_GRAPH_H_
