// Triangle counting with pluggable set-intersection backends
// (the graph-analytics task of Fig. 13).
//
// Counting uses the degree-ordered orientation: every triangle {u, v, w}
// appears exactly once as directed edges u->v, u->w, v->w, so the count is
// the sum over DAG edges (u, v) of |N+(u) ∩ N+(v)|.
#ifndef FESIA_GRAPH_TRIANGLE_H_
#define FESIA_GRAPH_TRIANGLE_H_

#include <cstddef>
#include <cstdint>

#include "baselines/registry.h"
#include "fesia/fesia.h"
#include "graph/graph.h"

namespace fesia::graph {

/// Triangle count using a pairwise count function over sorted adjacency
/// spans. `dag` must be a degree-oriented DAG (see Graph::DegreeOrientedDag).
uint64_t CountTriangles(const Graph& dag, baselines::IntersectCountFn fn);

/// Triangle counting through FESIA: one segmented bitmap per out-adjacency
/// list, built once (the construction cost reported in Table III), then one
/// FESIA intersection per DAG edge, optionally across threads.
class FesiaTriangleCounter {
 public:
  /// Builds per-vertex FESIA structures for `dag` (kept by pointer; must
  /// outlive the counter).
  FesiaTriangleCounter(const Graph* dag, const FesiaParams& params);

  /// Seconds spent building all per-vertex structures.
  double construction_seconds() const { return construction_seconds_; }

  /// Bytes held by all per-vertex structures.
  size_t memory_bytes() const { return memory_bytes_; }

  /// Triangle count; vertices are partitioned across `num_threads`.
  uint64_t Count(SimdLevel level = SimdLevel::kAuto,
                 size_t num_threads = 1) const;

 private:
  const Graph* dag_;
  std::vector<FesiaSet> vertex_sets_;
  double construction_seconds_ = 0;
  size_t memory_bytes_ = 0;
};

}  // namespace fesia::graph

#endif  // FESIA_GRAPH_TRIANGLE_H_
