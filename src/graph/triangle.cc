#include "graph/triangle.h"

#include <atomic>

#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fesia::graph {

uint64_t CountTriangles(const Graph& dag, baselines::IntersectCountFn fn) {
  uint64_t total = 0;
  for (uint32_t u = 0; u < dag.num_nodes(); ++u) {
    auto nu = dag.Neighbors(u);
    if (nu.size() < 1) continue;
    for (uint32_t v : nu) {
      auto nv = dag.Neighbors(v);
      if (nv.empty()) continue;
      total += fn(nu.data(), nu.size(), nv.data(), nv.size());
    }
  }
  return total;
}

FesiaTriangleCounter::FesiaTriangleCounter(const Graph* dag,
                                           const FesiaParams& params)
    : dag_(dag) {
  FESIA_CHECK(dag != nullptr);
  WallTimer timer;
  vertex_sets_.reserve(dag->num_nodes());
  for (uint32_t v = 0; v < dag->num_nodes(); ++v) {
    vertex_sets_.push_back(FesiaSet::Build(dag->Neighbors(v), params));
    memory_bytes_ += vertex_sets_.back().ComputeStats().memory_bytes;
  }
  construction_seconds_ = timer.Seconds();
}

uint64_t FesiaTriangleCounter::Count(SimdLevel level,
                                     size_t num_threads) const {
  std::atomic<uint64_t> total{0};
  const Graph& dag = *dag_;
  ParallelFor(0, dag.num_nodes(), num_threads,
              [&](size_t begin, size_t end, size_t /*t*/) {
                uint64_t partial = 0;
                for (size_t u = begin; u < end; ++u) {
                  const FesiaSet& su = vertex_sets_[u];
                  if (su.empty()) continue;
                  for (uint32_t v :
                       dag.Neighbors(static_cast<uint32_t>(u))) {
                    const FesiaSet& sv = vertex_sets_[v];
                    if (sv.empty()) continue;
                    // Adjacency pairs in a degree-oriented DAG are often
                    // heavily skewed; apply the paper's merge/hash strategy
                    // selection per pair (Sec. VI).
                    partial += IntersectCountAuto(su, sv, level);
                  }
                }
                total.fetch_add(partial, std::memory_order_relaxed);
              });
  return total.load(std::memory_order_relaxed);
}

}  // namespace fesia::graph
