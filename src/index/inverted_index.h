// Inverted-index substrate for the database-query task (paper Sec. VII-F).
//
// The paper evaluates on WebDocs, a 1.7M-document web crawl with 5.3M
// distinct items and heavy-tailed item frequencies. We build the synthetic
// stand-in described in DESIGN.md: posting-list lengths follow a Zipf
// distribution over term ranks and each list is a uniform sample of the
// document space, preserving the workload property Fig. 12 depends on
// (low-selectivity conjunctive queries over skewed list lengths).
#ifndef FESIA_INDEX_INVERTED_INDEX_H_
#define FESIA_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace fesia::index {

/// Knobs of the synthetic corpus.
struct CorpusParams {
  uint32_t num_docs = 200000;
  uint32_t num_terms = 50000;
  /// Zipf exponent of posting-list mass per term rank.
  double zipf_theta = 1.0;
  /// Average number of postings per document (total mass / num_docs).
  double avg_terms_per_doc = 40.0;
  /// Every posting list shorter than this is dropped (rare tail terms do
  /// not participate in multi-keyword queries).
  uint32_t min_posting_length = 4;
  uint64_t seed = 42;
};

/// A term -> sorted posting-list (document id) map.
class InvertedIndex {
 public:
  /// Builds a synthetic index; deterministic in params.seed.
  static InvertedIndex BuildSynthetic(const CorpusParams& params);

  /// Wraps caller-provided posting lists (term order preserved, empty lists
  /// allowed — the shard layer keeps every term id addressable even when a
  /// shard holds none of its postings). Each list must be strictly
  /// ascending with doc ids below `num_docs` (FESIA_CHECK).
  static InvertedIndex FromPostings(uint32_t num_docs,
                                    std::vector<std::vector<uint32_t>> postings);

  uint32_t num_terms() const { return static_cast<uint32_t>(postings_.size()); }
  uint32_t num_docs() const { return num_docs_; }
  /// Total number of postings across all terms.
  size_t total_postings() const { return total_postings_; }

  /// Sorted, duplicate-free document ids containing `term`.
  std::span<const uint32_t> Postings(uint32_t term) const {
    return postings_[term];
  }

  /// Terms whose posting-list length lies in [min_len, max_len].
  std::vector<uint32_t> TermsWithPostingLength(size_t min_len,
                                               size_t max_len) const;

  /// Serializes the index to a portable little-endian container with a
  /// CRC32C footer (magic "FESIAPST"), so corpora survive storage
  /// round-trips with integrity protection (docs/ROBUSTNESS.md).
  std::vector<uint8_t> Serialize() const;

  /// Reconstructs an index from Serialize() output. Corrupted, truncated,
  /// or structurally invalid containers (unsorted or out-of-range doc ids)
  /// yield a non-OK Status; a loaded index is indistinguishable from the
  /// one serialized.
  static StatusOr<InvertedIndex> Deserialize(std::span<const uint8_t> bytes);

 private:
  uint32_t num_docs_ = 0;
  size_t total_postings_ = 0;
  std::vector<std::vector<uint32_t>> postings_;
};

}  // namespace fesia::index

#endif  // FESIA_INDEX_INVERTED_INDEX_H_
