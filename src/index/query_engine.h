// Conjunctive (AND) query execution over an inverted index with a pluggable
// intersection method — the database-query task of Fig. 12.
#ifndef FESIA_INDEX_QUERY_ENGINE_H_
#define FESIA_INDEX_QUERY_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "fesia/fesia.h"
#include "index/inverted_index.h"
#include "util/deadline.h"
#include "util/memory_budget.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fesia::index {

/// Terminal outcome of one query inside a batch.
enum class QueryOutcome : int {
  kOk = 0,                // completed; count/docs are exact
  kDeadlineExceeded = 1,  // a deadline or cancellation fired first
  kShed = 2,              // rejected by admission control before running
  kFailed = 3,            // failed after exhausting its retry budget
};

/// Stable lowercase name ("ok", "deadline-exceeded", "shed", "failed").
const char* QueryOutcomeName(QueryOutcome outcome);

/// Relative importance of a batch when the system is under memory
/// pressure. Priorities only matter while BatchOptions::budget reports
/// pressure; an unpressured system treats all three identically.
enum class QueryPriority : int {
  kLow = 0,     // shed first under pressure (analytics, prefetch, warmup)
  kNormal = 1,  // degraded to O(1)-scratch serial paths under pressure
  kHigh = 2,    // degraded like kNormal, never pressure-shed
};

/// Stable lowercase name ("low", "normal", "high").
const char* QueryPriorityName(QueryPriority priority);

/// Retry discipline for transient per-query failures (currently the
/// injected-allocation fault; real transient causes plug into the same
/// path). Backoff doubles per attempt (capped), and every sleep is
/// truncated by the query's deadline so retrying can never outlive it.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retry.
  int max_attempts = 1;
  double initial_backoff_seconds = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.1;
};

/// One slow-query observation handed to BatchOptions::slow_query_hook.
struct SlowQueryRecord {
  size_t query_index = 0;     // index into the batch
  size_t num_terms = 0;
  double latency_seconds = 0;
  QueryOutcome outcome = QueryOutcome::kOk;
};

/// Options for batched query execution.
struct BatchOptions {
  /// Worker count; 0 uses the executor pool's width. Queries are pulled
  /// dynamically (not statically partitioned) because conjunctive query
  /// costs vary by orders of magnitude across Zipf-skewed posting lists.
  size_t num_threads = 0;
  SimdLevel level = SimdLevel::kAuto;
  /// Pool the batch runs on (default: the shared process-wide pool).
  Executor executor = {};

  /// Per-query time budget in seconds; 0 means none. The budget starts
  /// when the query's first attempt starts (not when the batch starts) and
  /// covers all retries of that query.
  double query_deadline_seconds = 0;
  /// Whole-batch time budget in seconds; 0 means none. Once it expires,
  /// queries not yet started drain immediately as kDeadlineExceeded and
  /// running ones stop at their next cancellation poll.
  double batch_deadline_seconds = 0;
  /// Caller-driven cancellation: Cancel() from any thread makes the batch
  /// drain exactly like an expired batch deadline. The default token is
  /// inert.
  CancellationToken cancel;
  /// Maximum queries of this engine simultaneously executing (across all
  /// concurrent batches); beyond it queries are shed as kShed rather than
  /// queued. 0 means unlimited. Shedding is the overload valve: it keeps
  /// admitted queries fast instead of making every query slow.
  size_t admission_capacity = 0;
  RetryPolicy retry;
  /// Threads for intersecting *within* one query (the paper's Sec. VI
  /// parallelism). >1 requests the parallel tier, which is honored only
  /// when the batch itself runs single-threaded — fanning out from inside
  /// a pool worker would serialize behind the batch's own pull loops, so
  /// it is counted as a downgrade instead.
  size_t intra_query_threads = 1;
  /// Latency threshold for the slow-query log; 0 disables it.
  double slow_query_seconds = 0;
  /// Invoked synchronously on the worker thread for every query whose
  /// latency reaches slow_query_seconds. Must be thread-safe; keep it
  /// cheap (it runs inside the batch).
  std::function<void(const SlowQueryRecord&)> slow_query_hook;
  /// Memory budget consulted for pressure-aware degradation (one rung of
  /// the docs/ROBUSTNESS.md ladder): while the budget (or an ancestor) is
  /// over its high watermark, kLow-priority queries are shed outright
  /// (kShed, before touching the index) and everything else is forced off
  /// the parallel tier onto the serial / count-fused paths whose scratch
  /// is O(1) — degrading before rejecting. nullptr means
  /// MemoryBudget::Unlimited(), which is never under pressure, so
  /// existing callers see byte-identical behavior.
  MemoryBudget* budget = nullptr;
  QueryPriority priority = QueryPriority::kNormal;
};

/// Outcome of one query in a batch. `count`/`docs` are exact if and only
/// if `ok()`; any other outcome carries a non-OK `status` explaining why
/// and a zero/empty result.
struct QueryResult {
  QueryOutcome outcome = QueryOutcome::kOk;
  Status status;
  size_t count = 0;
  /// Result documents, ascending (QueryBatch only; CountBatch leaves it
  /// empty).
  std::vector<uint32_t> docs;
  /// Attempts consumed (0 for queries that never started: shed or drained
  /// by the batch deadline).
  int attempts = 0;
  /// True when any degradation rung was taken: parallel tier refused,
  /// backend quarantine clamped the SIMD level, a retry stepped down a
  /// tier, or memory pressure forced the serial tier.
  bool downgraded = false;
  /// True when memory pressure shed this query or forced it down a tier
  /// (the pressure_* counters in BatchStats sum this flag).
  bool pressure_affected = false;
  double latency_seconds = 0;

  bool ok() const { return outcome == QueryOutcome::kOk; }
};

/// Execution statistics of one batch.
struct BatchStats {
  /// End-to-end batch wall time.
  double wall_seconds = 0;
  double queries_per_second = 0;
  /// Per-query latency, index-aligned with the input batch (includes
  /// non-OK queries: a shed query's latency is its rejection time).
  std::vector<double> latency_seconds;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_max = 0;

  /// Outcome counts; ok + deadline_exceeded + shed + failed equals the
  /// batch size.
  size_t ok = 0;
  size_t deadline_exceeded = 0;
  size_t shed = 0;
  size_t failed = 0;
  /// Retry attempts beyond each query's first (sum over the batch).
  size_t retries = 0;
  /// Degradation events: parallel-tier refusals, quarantine clamps, and
  /// retry tier step-downs (sum over the batch).
  size_t downgrades = 0;
  /// Queries at or above BatchOptions::slow_query_seconds.
  size_t slow_queries = 0;
  /// Memory-pressure events (BatchOptions::budget over its high
  /// watermark): low-priority queries shed (also counted in `shed`) and
  /// queries forced onto the serial O(1)-scratch tier (also counted in
  /// `downgrades`).
  size_t pressure_shed = 0;
  size_t pressure_downgrades = 0;
};

/// Executes multi-keyword AND queries. FESIA structures for every posting
/// list are built once up front (the offline phase whose cost the paper
/// reports as "construction time").
///
/// A built engine is immutable; every query method is const and safe to
/// call concurrently from any number of threads.
class QueryEngine {
 public:
  /// Builds FESIA structures for all posting lists of `idx`, which must
  /// outlive the engine. Per-term builds are independent, so they fan out
  /// across `exec`'s pool (`build_threads` workers; 0 = pool width,
  /// 1 = serial).
  QueryEngine(const InvertedIndex* idx, const FesiaParams& params,
              const Executor& exec = {}, size_t build_threads = 0);

  /// Seconds spent building all FESIA structures.
  double construction_seconds() const { return construction_seconds_; }

  /// Number of documents containing every term, computed with FESIA
  /// (pairwise auto strategy for 2 terms, k-way pipeline for more). A term
  /// id at or beyond num_terms() denotes an empty posting list, so any
  /// out-of-range term makes the conjunction empty (count 0) instead of
  /// indexing out of bounds.
  size_t CountFesia(std::span<const uint32_t> terms,
                    SimdLevel level = SimdLevel::kAuto) const;

  /// Same result via a named baseline from baselines::AllBaselines();
  /// queries with 3+ terms cascade materializing pairwise intersections
  /// smallest-list-first.
  size_t CountBaseline(std::span<const uint32_t> terms,
                       const std::string& method) const;

  /// Result documents (ascending) via FESIA. Out-of-range terms behave as
  /// in CountFesia: the result is empty.
  std::vector<uint32_t> QueryFesia(std::span<const uint32_t> terms,
                                   SimdLevel level = SimdLevel::kAuto) const;

  /// Executes many conjunctive queries concurrently (CountFesia per query,
  /// dynamically scheduled over the executor's pool). Returns one
  /// QueryResult per query, index-aligned with `queries`; when `stats` is
  /// non-null it receives per-query latencies, batch throughput, and the
  /// outcome counters. Amortizes dispatch and pool wakeup across the
  /// stream — the batch analogue the serving layer uses instead of calling
  /// CountFesia in a loop.
  ///
  /// Overload behavior (docs/ROBUSTNESS.md): deadlines and the cancel
  /// token stop work at chunk granularity (kDeadlineExceeded), admission
  /// control sheds beyond-capacity queries (kShed), transient failures are
  /// retried per `options.retry` and reported as kFailed only once the
  /// budget is exhausted. Results with ok() exactly match a serial
  /// CountFesia call — a stopped attempt's partial count is never
  /// reported. Pair queries run the count-only fused bitmap sweep
  /// (IntersectCountFused via the parallel/cancellable wrappers): blocked
  /// AND+popcount with deferred segment extraction, no materialization.
  std::vector<QueryResult> CountBatch(
      std::span<const std::vector<uint32_t>> queries,
      const BatchOptions& options = {}, BatchStats* stats = nullptr) const;

  /// Batched QueryFesia: materialized result documents (ascending) in
  /// QueryResult::docs, same scheduling, stats, and overload contract as
  /// CountBatch.
  std::vector<QueryResult> QueryBatch(
      std::span<const std::vector<uint32_t>> queries,
      const BatchOptions& options = {}, BatchStats* stats = nullptr) const;

  /// FESIA structure of one term's posting list. `term` must be below
  /// num_terms() (FESIA_CHECK).
  const FesiaSet& TermSet(uint32_t term) const;

  size_t num_terms() const { return term_sets_.size(); }

  /// Queries of this engine currently executing across all concurrent
  /// batches — the quantity admission control caps. Returns to 0 when no
  /// batch is running (asserted by the stress tests).
  size_t InFlightQueries() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// Serializes every per-term FESIA structure into one checksummed
  /// container (magic "FESIAQRY"), so the offline construction phase can
  /// be paid once and the structures reloaded later.
  std::vector<uint8_t> SerializeTermSets() const;

  /// Rebuilds an engine from SerializeTermSets() output over the same
  /// `idx` the container was built from. Every embedded snapshot is
  /// deep-validated and cross-checked against the index (term count and
  /// per-term set sizes must match); any mismatch, truncation, or
  /// corruption yields a non-OK Status.
  static StatusOr<QueryEngine> Load(const InvertedIndex* idx,
                                    std::span<const uint8_t> bytes);

  /// Movable so Load can return it by value. Moving an engine with queries
  /// in flight is a caller bug; the in-flight counter restarts at 0 in the
  /// destination.
  QueryEngine(QueryEngine&& other) noexcept
      : idx_(other.idx_),
        term_sets_(std::move(other.term_sets_)),
        construction_seconds_(other.construction_seconds_) {}
  QueryEngine& operator=(QueryEngine&& other) noexcept {
    idx_ = other.idx_;
    term_sets_ = std::move(other.term_sets_);
    construction_seconds_ = other.construction_seconds_;
    return *this;
  }

 private:
  QueryEngine() = default;

  std::vector<QueryResult> RunBatch(
      std::span<const std::vector<uint32_t>> queries,
      const BatchOptions& options, BatchStats* stats, bool materialize) const;

  const InvertedIndex* idx_ = nullptr;
  std::vector<FesiaSet> term_sets_;
  double construction_seconds_ = 0;
  /// Admission-control state; mutable because queries are const and
  /// concurrent.
  mutable std::atomic<size_t> inflight_{0};
};

}  // namespace fesia::index

#endif  // FESIA_INDEX_QUERY_ENGINE_H_
