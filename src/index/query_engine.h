// Conjunctive (AND) query execution over an inverted index with a pluggable
// intersection method — the database-query task of Fig. 12.
#ifndef FESIA_INDEX_QUERY_ENGINE_H_
#define FESIA_INDEX_QUERY_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fesia/fesia.h"
#include "index/inverted_index.h"
#include "util/status.h"

namespace fesia::index {

/// Executes multi-keyword AND queries. FESIA structures for every posting
/// list are built once up front (the offline phase whose cost the paper
/// reports as "construction time").
class QueryEngine {
 public:
  /// Builds FESIA structures for all posting lists of `idx`, which must
  /// outlive the engine.
  QueryEngine(const InvertedIndex* idx, const FesiaParams& params);

  /// Seconds spent building all FESIA structures.
  double construction_seconds() const { return construction_seconds_; }

  /// Number of documents containing every term, computed with FESIA
  /// (pairwise auto strategy for 2 terms, k-way pipeline for more).
  size_t CountFesia(std::span<const uint32_t> terms,
                    SimdLevel level = SimdLevel::kAuto) const;

  /// Same result via a named baseline from baselines::AllBaselines();
  /// queries with 3+ terms cascade materializing pairwise intersections
  /// smallest-list-first.
  size_t CountBaseline(std::span<const uint32_t> terms,
                       const std::string& method) const;

  /// Result documents (ascending) via FESIA.
  std::vector<uint32_t> QueryFesia(std::span<const uint32_t> terms,
                                   SimdLevel level = SimdLevel::kAuto) const;

  const FesiaSet& TermSet(uint32_t term) const { return term_sets_[term]; }

  /// Serializes every per-term FESIA structure into one checksummed
  /// container (magic "FESIAQRY"), so the offline construction phase can
  /// be paid once and the structures reloaded later.
  std::vector<uint8_t> SerializeTermSets() const;

  /// Rebuilds an engine from SerializeTermSets() output over the same
  /// `idx` the container was built from. Every embedded snapshot is
  /// deep-validated and cross-checked against the index (term count and
  /// per-term set sizes must match); any mismatch, truncation, or
  /// corruption yields a non-OK Status.
  static StatusOr<QueryEngine> Load(const InvertedIndex* idx,
                                    std::span<const uint8_t> bytes);

 private:
  QueryEngine() = default;

  const InvertedIndex* idx_ = nullptr;
  std::vector<FesiaSet> term_sets_;
  double construction_seconds_ = 0;
};

}  // namespace fesia::index

#endif  // FESIA_INDEX_QUERY_ENGINE_H_
