// Conjunctive (AND) query execution over an inverted index with a pluggable
// intersection method — the database-query task of Fig. 12.
#ifndef FESIA_INDEX_QUERY_ENGINE_H_
#define FESIA_INDEX_QUERY_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fesia/fesia.h"
#include "index/inverted_index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fesia::index {

/// Options for batched query execution.
struct BatchOptions {
  /// Worker count; 0 uses the executor pool's width. Queries are pulled
  /// dynamically (not statically partitioned) because conjunctive query
  /// costs vary by orders of magnitude across Zipf-skewed posting lists.
  size_t num_threads = 0;
  SimdLevel level = SimdLevel::kAuto;
  /// Pool the batch runs on (default: the shared process-wide pool).
  Executor executor = {};
};

/// Execution statistics of one batch.
struct BatchStats {
  /// End-to-end batch wall time.
  double wall_seconds = 0;
  double queries_per_second = 0;
  /// Per-query latency, index-aligned with the input batch.
  std::vector<double> latency_seconds;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_max = 0;
};

/// Executes multi-keyword AND queries. FESIA structures for every posting
/// list are built once up front (the offline phase whose cost the paper
/// reports as "construction time").
///
/// A built engine is immutable; every query method is const and safe to
/// call concurrently from any number of threads.
class QueryEngine {
 public:
  /// Builds FESIA structures for all posting lists of `idx`, which must
  /// outlive the engine. Per-term builds are independent, so they fan out
  /// across `exec`'s pool (`build_threads` workers; 0 = pool width,
  /// 1 = serial).
  QueryEngine(const InvertedIndex* idx, const FesiaParams& params,
              const Executor& exec = {}, size_t build_threads = 0);

  /// Seconds spent building all FESIA structures.
  double construction_seconds() const { return construction_seconds_; }

  /// Number of documents containing every term, computed with FESIA
  /// (pairwise auto strategy for 2 terms, k-way pipeline for more).
  size_t CountFesia(std::span<const uint32_t> terms,
                    SimdLevel level = SimdLevel::kAuto) const;

  /// Same result via a named baseline from baselines::AllBaselines();
  /// queries with 3+ terms cascade materializing pairwise intersections
  /// smallest-list-first.
  size_t CountBaseline(std::span<const uint32_t> terms,
                       const std::string& method) const;

  /// Result documents (ascending) via FESIA.
  std::vector<uint32_t> QueryFesia(std::span<const uint32_t> terms,
                                   SimdLevel level = SimdLevel::kAuto) const;

  /// Executes many conjunctive queries concurrently (CountFesia per query,
  /// dynamically scheduled over the executor's pool). Returns counts
  /// index-aligned with `queries`; when `stats` is non-null it receives
  /// per-query latencies and batch throughput. Amortizes dispatch and pool
  /// wakeup across the stream — the batch analogue the serving layer uses
  /// instead of calling CountFesia in a loop.
  std::vector<size_t> CountBatch(
      std::span<const std::vector<uint32_t>> queries,
      const BatchOptions& options = {}, BatchStats* stats = nullptr) const;

  /// Batched QueryFesia: materialized result documents (ascending) per
  /// query, same scheduling and stats contract as CountBatch.
  std::vector<std::vector<uint32_t>> QueryBatch(
      std::span<const std::vector<uint32_t>> queries,
      const BatchOptions& options = {}, BatchStats* stats = nullptr) const;

  const FesiaSet& TermSet(uint32_t term) const { return term_sets_[term]; }

  /// Serializes every per-term FESIA structure into one checksummed
  /// container (magic "FESIAQRY"), so the offline construction phase can
  /// be paid once and the structures reloaded later.
  std::vector<uint8_t> SerializeTermSets() const;

  /// Rebuilds an engine from SerializeTermSets() output over the same
  /// `idx` the container was built from. Every embedded snapshot is
  /// deep-validated and cross-checked against the index (term count and
  /// per-term set sizes must match); any mismatch, truncation, or
  /// corruption yields a non-OK Status.
  static StatusOr<QueryEngine> Load(const InvertedIndex* idx,
                                    std::span<const uint8_t> bytes);

 private:
  QueryEngine() = default;

  const InvertedIndex* idx_ = nullptr;
  std::vector<FesiaSet> term_sets_;
  double construction_seconds_ = 0;
};

}  // namespace fesia::index

#endif  // FESIA_INDEX_QUERY_ENGINE_H_
