// Query-workload generation over an inverted index.
//
// The paper's database experiment controls the property that matters for
// intersection methods — selectivity relative to the shortest posting list
// — and the skew between list lengths. These generators produce exactly
// those workloads (used by bench_fig12 and the index tests).
#ifndef FESIA_INDEX_QUERY_GEN_H_
#define FESIA_INDEX_QUERY_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "index/inverted_index.h"

namespace fesia::index {

/// One conjunctive query: a list of term ids.
using Query = std::vector<uint32_t>;

/// Random `arity`-term queries whose terms have posting lengths within
/// [min_len, max_len] and whose true result size is at most
/// max_selectivity × (shortest list). Returns up to `count` queries
/// (possibly fewer when the index cannot supply them).
std::vector<Query> LowSelectivityQueries(const InvertedIndex& idx,
                                         size_t arity, size_t min_len,
                                         size_t max_len, size_t count,
                                         double max_selectivity,
                                         uint64_t seed);

/// Random 2-term queries pairing a long posting list with one roughly
/// `skew` times its length (within ±20%). Returns up to `count` queries.
std::vector<Query> SkewedPairQueries(const InvertedIndex& idx,
                                     size_t min_long_len, double skew,
                                     size_t count, uint64_t seed);

/// Exact result size of a conjunctive query (reference merge cascade).
size_t ReferenceQueryCount(const InvertedIndex& idx, const Query& query);

}  // namespace fesia::index

#endif  // FESIA_INDEX_QUERY_GEN_H_
