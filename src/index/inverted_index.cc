#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>

#include "datagen/datagen.h"
#include "datagen/zipf.h"

namespace fesia::index {

InvertedIndex InvertedIndex::BuildSynthetic(const CorpusParams& params) {
  InvertedIndex idx;
  idx.num_docs_ = params.num_docs;

  // Target posting mass per term from the Zipf pmf over term ranks.
  datagen::ZipfDistribution zipf(params.num_terms, params.zipf_theta);
  double total_mass =
      params.avg_terms_per_doc * static_cast<double>(params.num_docs);

  idx.postings_.reserve(params.num_terms);
  for (uint32_t t = 0; t < params.num_terms; ++t) {
    auto len = static_cast<size_t>(std::llround(total_mass * zipf.Pmf(t)));
    len = std::min<size_t>(len, params.num_docs);
    if (len < params.min_posting_length) continue;
    idx.postings_.push_back(datagen::SortedUniform(
        len, params.num_docs, params.seed ^ (0x9E3779B97F4A7C15ull * (t + 1))));
    idx.total_postings_ += len;
  }
  // Longest lists first (term rank 0 is the most frequent term).
  std::sort(idx.postings_.begin(), idx.postings_.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  return idx;
}

std::vector<uint32_t> InvertedIndex::TermsWithPostingLength(
    size_t min_len, size_t max_len) const {
  std::vector<uint32_t> terms;
  for (uint32_t t = 0; t < num_terms(); ++t) {
    size_t len = postings_[t].size();
    if (len >= min_len && len <= max_len) terms.push_back(t);
  }
  return terms;
}

}  // namespace fesia::index
