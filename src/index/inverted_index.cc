#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "datagen/datagen.h"
#include "datagen/zipf.h"
#include "util/byte_io.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace fesia::index {
namespace {

// "FESIAPST" as a little-endian u64.
constexpr uint64_t kIndexMagic = 0x5453504149534546ull;
constexpr uint32_t kIndexVersion = 1;

}  // namespace

InvertedIndex InvertedIndex::BuildSynthetic(const CorpusParams& params) {
  InvertedIndex idx;
  idx.num_docs_ = params.num_docs;

  // Target posting mass per term from the Zipf pmf over term ranks.
  datagen::ZipfDistribution zipf(params.num_terms, params.zipf_theta);
  double total_mass =
      params.avg_terms_per_doc * static_cast<double>(params.num_docs);

  idx.postings_.reserve(params.num_terms);
  for (uint32_t t = 0; t < params.num_terms; ++t) {
    auto len = static_cast<size_t>(std::llround(total_mass * zipf.Pmf(t)));
    len = std::min<size_t>(len, params.num_docs);
    if (len < params.min_posting_length) continue;
    idx.postings_.push_back(datagen::SortedUniform(
        len, params.num_docs, params.seed ^ (0x9E3779B97F4A7C15ull * (t + 1))));
    idx.total_postings_ += len;
  }
  // Longest lists first (term rank 0 is the most frequent term).
  std::sort(idx.postings_.begin(), idx.postings_.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  return idx;
}

InvertedIndex InvertedIndex::FromPostings(
    uint32_t num_docs, std::vector<std::vector<uint32_t>> postings) {
  InvertedIndex idx;
  idx.num_docs_ = num_docs;
  idx.postings_ = std::move(postings);
  for (const auto& list : idx.postings_) {
    for (size_t i = 0; i < list.size(); ++i) {
      FESIA_CHECK(list[i] < num_docs);
      FESIA_CHECK(i == 0 || list[i] > list[i - 1]);
    }
    idx.total_postings_ += list.size();
  }
  return idx;
}

std::vector<uint32_t> InvertedIndex::TermsWithPostingLength(
    size_t min_len, size_t max_len) const {
  std::vector<uint32_t> terms;
  for (uint32_t t = 0; t < num_terms(); ++t) {
    size_t len = postings_[t].size();
    if (len >= min_len && len <= max_len) terms.push_back(t);
  }
  return terms;
}

std::vector<uint8_t> InvertedIndex::Serialize() const {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.Put(kIndexMagic);
  w.Put(kIndexVersion);
  w.Put(num_docs_);
  w.Put(static_cast<uint64_t>(postings_.size()));
  w.Put(static_cast<uint64_t>(total_postings_));
  for (const auto& list : postings_) {
    w.Put(static_cast<uint64_t>(list.size()));
  }
  for (const auto& list : postings_) {
    w.PutRaw(list.data(), list.size());
  }
  w.Put(Crc32c(out.data(), out.size()));
  return out;
}

StatusOr<InvertedIndex> InvertedIndex::Deserialize(
    std::span<const uint8_t> bytes) {
  // Checksum first: storage-level corruption reports as a checksum
  // mismatch before any field is interpreted.
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::Corruption("index container shorter than its footer");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  uint32_t actual_crc = Crc32c(bytes.data(), bytes.size() - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::Corruption("index container checksum mismatch");
  }

  ByteReader r(bytes);
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!r.Get(&magic) || magic != kIndexMagic) {
    return Status::Corruption("bad index container magic");
  }
  if (!r.Get(&version)) return Status::Corruption("truncated index header");
  if (version != kIndexVersion) {
    return Status::InvalidArgument("unsupported index container version " +
                                   std::to_string(version));
  }

  InvertedIndex idx;
  uint64_t num_terms = 0;
  uint64_t total = 0;
  if (!r.Get(&idx.num_docs_) || !r.Get(&num_terms) || !r.Get(&total)) {
    return Status::Corruption("truncated index header");
  }
  std::vector<uint64_t> lengths;
  FESIA_RETURN_IF_ERROR(r.GetRawArray(&lengths, num_terms));

  uint64_t length_sum = 0;
  for (uint64_t len : lengths) {
    // remaining() bounds the sum, so it cannot overflow before tripping.
    length_sum += len;
    if (length_sum > r.remaining() / sizeof(uint32_t)) {
      return Status::Corruption(
          "posting lengths exceed the container's payload");
    }
  }
  if (length_sum != total) {
    return Status::Corruption("posting lengths do not sum to total_postings");
  }

  idx.postings_.resize(lengths.size());
  for (size_t t = 0; t < lengths.size(); ++t) {
    FESIA_RETURN_IF_ERROR(r.GetRawArray(&idx.postings_[t], lengths[t]));
    const auto& list = idx.postings_[t];
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] >= idx.num_docs_) {
        return Status::Corruption("posting document id out of range");
      }
      if (i > 0 && list[i] <= list[i - 1]) {
        return Status::Corruption("posting list not strictly ascending");
      }
    }
  }
  idx.total_postings_ = static_cast<size_t>(total);
  if (r.pos() + sizeof(uint32_t) != bytes.size()) {
    return Status::Corruption("trailing bytes after index payload");
  }
  return idx;
}

}  // namespace fesia::index
