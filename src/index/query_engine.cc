#include "index/query_engine.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "baselines/bmiss.h"
#include "baselines/galloping.h"
#include "baselines/registry.h"
#include "baselines/scalar_merge.h"
#include "baselines/shuffling.h"
#include "baselines/simd_galloping.h"
#include "util/byte_io.h"
#include "util/check.h"
#include "util/crc32c.h"
#include "util/stats.h"
#include "util/timer.h"

namespace fesia::index {
namespace {

// "FESIAQRY" as a little-endian u64.
constexpr uint64_t kTermSetMagic = 0x5952514149534546ull;
constexpr uint32_t kTermSetVersion = 1;

using MaterializeFn = size_t (*)(const uint32_t*, size_t, const uint32_t*,
                                 size_t, uint32_t*);

MaterializeFn MaterializerFor(const std::string& method) {
  if (method == "Scalar") return &baselines::ScalarMergeInto;
  if (method == "ScalarGalloping") return &baselines::ScalarGallopingInto;
  if (method == "Shuffling") return &baselines::ShufflingInto;
  if (method == "BMiss") return &baselines::BMissInto;
  if (method == "SIMDGalloping") return &baselines::SimdGallopingInto;
  return nullptr;
}

// Runs fn(0..n-1) on up to `num_threads` workers pulling indices from a
// shared counter. Both per-term build cost and per-query cost follow the
// Zipf posting-length distribution, so static contiguous partitions would
// leave most workers idle behind the head terms; dynamic pulling keeps
// them busy.
template <typename Fn>
void RunDynamic(size_t n, size_t num_threads, const Executor& exec,
                const Fn& fn) {
  if (n == 0) return;
  if (num_threads == 0) num_threads = exec.pool().num_threads();
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  ParallelFor(
      0, num_threads, num_threads,
      [&](size_t, size_t, size_t) {
        for (;;) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          fn(i);
        }
      },
      exec);
}

void FillBatchStats(BatchStats* stats, std::vector<double> latencies,
                    double wall_seconds) {
  if (stats == nullptr) return;
  stats->wall_seconds = wall_seconds;
  stats->queries_per_second =
      wall_seconds > 0 ? static_cast<double>(latencies.size()) / wall_seconds
                       : 0;
  stats->latency_p50 = Quantile(latencies, 0.5);
  stats->latency_p95 = Quantile(latencies, 0.95);
  stats->latency_max = Summarize(latencies).max;
  stats->latency_seconds = std::move(latencies);
}

}  // namespace

QueryEngine::QueryEngine(const InvertedIndex* idx, const FesiaParams& params,
                         const Executor& exec, size_t build_threads)
    : idx_(idx) {
  FESIA_CHECK(idx != nullptr);
  WallTimer timer;
  term_sets_.resize(idx->num_terms());
  RunDynamic(idx->num_terms(), build_threads, exec, [&](size_t t) {
    term_sets_[t] =
        FesiaSet::Build(idx->Postings(static_cast<uint32_t>(t)), params);
  });
  construction_seconds_ = timer.Seconds();
}

size_t QueryEngine::CountFesia(std::span<const uint32_t> terms,
                               SimdLevel level) const {
  if (terms.empty()) return 0;
  if (terms.size() == 1) return term_sets_[terms[0]].size();
  if (terms.size() == 2) {
    return IntersectCountAuto(term_sets_[terms[0]], term_sets_[terms[1]],
                              level);
  }
  std::vector<const FesiaSet*> sets;
  sets.reserve(terms.size());
  for (uint32_t t : terms) sets.push_back(&term_sets_[t]);
  return IntersectCountKWay(sets, level);
}

size_t QueryEngine::CountBaseline(std::span<const uint32_t> terms,
                                  const std::string& method) const {
  if (terms.empty()) return 0;
  if (terms.size() == 1) return idx_->Postings(terms[0]).size();

  // Order by ascending posting length: smallest intermediate results.
  std::vector<uint32_t> ordered(terms.begin(), terms.end());
  std::sort(ordered.begin(), ordered.end(), [this](uint32_t a, uint32_t b) {
    return idx_->Postings(a).size() < idx_->Postings(b).size();
  });

  if (ordered.size() == 2) {
    const baselines::Method* m = baselines::FindBaseline(method);
    FESIA_CHECK(m != nullptr);
    auto pa = idx_->Postings(ordered[0]);
    auto pb = idx_->Postings(ordered[1]);
    return m->fn(pa.data(), pa.size(), pb.data(), pb.size());
  }

  MaterializeFn materialize = MaterializerFor(method);
  FESIA_CHECK(materialize != nullptr);
  auto first = idx_->Postings(ordered[0]);
  std::vector<uint32_t> acc(first.begin(), first.end());
  std::vector<uint32_t> tmp;
  for (size_t i = 1; i < ordered.size() && !acc.empty(); ++i) {
    auto next = idx_->Postings(ordered[i]);
    tmp.resize(std::min(acc.size(), next.size()));
    size_t r = materialize(acc.data(), acc.size(), next.data(), next.size(),
                           tmp.data());
    tmp.resize(r);
    acc.swap(tmp);
  }
  return acc.size();
}

std::vector<uint32_t> QueryEngine::QueryFesia(std::span<const uint32_t> terms,
                                              SimdLevel level) const {
  std::vector<uint32_t> out;
  if (terms.empty()) return out;
  if (terms.size() == 1) {
    auto p = idx_->Postings(terms[0]);
    return std::vector<uint32_t>(p.begin(), p.end());
  }
  if (terms.size() == 2) {
    IntersectInto(term_sets_[terms[0]], term_sets_[terms[1]], &out,
                  /*sort_output=*/true, level);
    return out;
  }
  std::vector<const FesiaSet*> sets;
  sets.reserve(terms.size());
  for (uint32_t t : terms) sets.push_back(&term_sets_[t]);
  IntersectIntoKWay(sets, &out, /*sort_output=*/true, level);
  return out;
}

std::vector<size_t> QueryEngine::CountBatch(
    std::span<const std::vector<uint32_t>> queries,
    const BatchOptions& options, BatchStats* stats) const {
  std::vector<size_t> results(queries.size(), 0);
  std::vector<double> latencies(queries.size(), 0);
  WallTimer wall;
  RunDynamic(queries.size(), options.num_threads, options.executor,
             [&](size_t i) {
               WallTimer per_query;
               results[i] = CountFesia(queries[i], options.level);
               latencies[i] = per_query.Seconds();
             });
  FillBatchStats(stats, std::move(latencies), wall.Seconds());
  return results;
}

std::vector<std::vector<uint32_t>> QueryEngine::QueryBatch(
    std::span<const std::vector<uint32_t>> queries,
    const BatchOptions& options, BatchStats* stats) const {
  std::vector<std::vector<uint32_t>> results(queries.size());
  std::vector<double> latencies(queries.size(), 0);
  WallTimer wall;
  RunDynamic(queries.size(), options.num_threads, options.executor,
             [&](size_t i) {
               WallTimer per_query;
               results[i] = QueryFesia(queries[i], options.level);
               latencies[i] = per_query.Seconds();
             });
  FillBatchStats(stats, std::move(latencies), wall.Seconds());
  return results;
}

std::vector<uint8_t> QueryEngine::SerializeTermSets() const {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.Put(kTermSetMagic);
  w.Put(kTermSetVersion);
  w.Put(static_cast<uint64_t>(term_sets_.size()));
  for (const FesiaSet& set : term_sets_) {
    std::vector<uint8_t> blob = set.Serialize();
    w.Put(static_cast<uint64_t>(blob.size()));
    w.PutRaw(blob.data(), blob.size());
  }
  w.Put(Crc32c(out.data(), out.size()));
  return out;
}

StatusOr<QueryEngine> QueryEngine::Load(const InvertedIndex* idx,
                                        std::span<const uint8_t> bytes) {
  FESIA_CHECK(idx != nullptr);
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::Corruption("term-set container shorter than its footer");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (stored_crc != Crc32c(bytes.data(), bytes.size() - sizeof(uint32_t))) {
    return Status::Corruption("term-set container checksum mismatch");
  }

  ByteReader r(bytes);
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  if (!r.Get(&magic) || magic != kTermSetMagic) {
    return Status::Corruption("bad term-set container magic");
  }
  if (!r.Get(&version)) return Status::Corruption("truncated term-set header");
  if (version != kTermSetVersion) {
    return Status::InvalidArgument("unsupported term-set container version " +
                                   std::to_string(version));
  }
  if (!r.Get(&count)) return Status::Corruption("truncated term-set header");
  if (count != idx->num_terms()) {
    return Status::FailedPrecondition(
        "term-set container holds " + std::to_string(count) +
        " sets but the index has " + std::to_string(idx->num_terms()) +
        " terms");
  }

  QueryEngine engine;
  engine.idx_ = idx;
  engine.term_sets_.reserve(static_cast<size_t>(count));
  std::vector<uint8_t> blob;
  for (uint64_t t = 0; t < count; ++t) {
    uint64_t blob_size = 0;
    if (!r.Get(&blob_size)) {
      return Status::Corruption("truncated term-set blob header");
    }
    FESIA_RETURN_IF_ERROR(r.GetRawArray(&blob, blob_size));
    FesiaSet set;
    FESIA_RETURN_IF_ERROR(FesiaSet::Deserialize(blob, &set));
    if (set.size() != idx->Postings(static_cast<uint32_t>(t)).size()) {
      return Status::Corruption(
          "term " + std::to_string(t) +
          " snapshot size disagrees with its posting list");
    }
    engine.term_sets_.push_back(std::move(set));
  }
  if (r.pos() + sizeof(uint32_t) != bytes.size()) {
    return Status::Corruption("trailing bytes after term-set payload");
  }
  return engine;
}

}  // namespace fesia::index
