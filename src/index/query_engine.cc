#include "index/query_engine.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "baselines/bmiss.h"
#include "baselines/galloping.h"
#include "baselines/registry.h"
#include "baselines/scalar_merge.h"
#include "baselines/shuffling.h"
#include "baselines/simd_galloping.h"
#include "fesia/backend_health.h"
#include "fesia/intersect_kway.h"
#include "fesia/parallel.h"
#include "util/byte_io.h"
#include "util/check.h"
#include "util/crc32c.h"
#include "util/deadline.h"
#include "util/fault_injection.h"
#include "util/stats.h"
#include "util/timer.h"

namespace fesia::index {
namespace {

// "FESIAQRY" as a little-endian u64.
constexpr uint64_t kTermSetMagic = 0x5952514149534546ull;
constexpr uint32_t kTermSetVersion = 1;

using MaterializeFn = size_t (*)(const uint32_t*, size_t, const uint32_t*,
                                 size_t, uint32_t*);

MaterializeFn MaterializerFor(const std::string& method) {
  if (method == "Scalar") return &baselines::ScalarMergeInto;
  if (method == "ScalarGalloping") return &baselines::ScalarGallopingInto;
  if (method == "Shuffling") return &baselines::ShufflingInto;
  if (method == "BMiss") return &baselines::BMissInto;
  if (method == "SIMDGalloping") return &baselines::SimdGallopingInto;
  return nullptr;
}

// Runs fn(0..n-1) on up to `num_threads` workers pulling indices from a
// shared counter. Both per-term build cost and per-query cost follow the
// Zipf posting-length distribution, so static contiguous partitions would
// leave most workers idle behind the head terms; dynamic pulling keeps
// them busy.
template <typename Fn>
void RunDynamic(size_t n, size_t num_threads, const Executor& exec,
                const Fn& fn) {
  if (n == 0) return;
  if (num_threads == 0) num_threads = exec.pool().num_threads();
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  ParallelFor(
      0, num_threads, num_threads,
      [&](size_t, size_t, size_t) {
        for (;;) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          fn(i);
        }
      },
      exec);
}

void FillBatchStats(BatchStats* stats, std::vector<double> latencies,
                    double wall_seconds) {
  if (stats == nullptr) return;
  stats->wall_seconds = wall_seconds;
  stats->queries_per_second =
      wall_seconds > 0 ? static_cast<double>(latencies.size()) / wall_seconds
                       : 0;
  stats->latency_p50 = Quantile(latencies, 0.5);
  stats->latency_p95 = Quantile(latencies, 0.95);
  stats->latency_max = Summarize(latencies).max;
  stats->latency_seconds = std::move(latencies);
}

// Degradation rungs, highest first. A retry steps one rung down from the
// tier its predecessor ran at: a failure at the parallel tier may be pool
// pressure, one at a SIMD tier may be that backend's resources — the rung
// below needs strictly less of whatever ran out.
enum class ExecTier : int { kScalar = 0, kSerial = 1, kParallel = 2 };

ExecTier TierForAttempt(ExecTier base, int attempt) {
  int t = static_cast<int>(base) - (attempt - 1);
  return static_cast<ExecTier>(std::max(t, 0));
}

// Atomically claims an in-flight slot; fails (sheds) once `cap` slots are
// taken. cap == 0 means unlimited, but the count is still kept so
// InFlightQueries() stays meaningful.
bool TryAdmit(std::atomic<size_t>& inflight, size_t cap) {
  size_t cur = inflight.load(std::memory_order_relaxed);
  for (;;) {
    if (cap > 0 && cur >= cap) return false;
    if (inflight.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_relaxed)) {
      return true;
    }
  }
}

struct AdmissionGuard {
  std::atomic<size_t>* inflight;
  ~AdmissionGuard() {
    if (inflight != nullptr) {
      inflight->fetch_sub(1, std::memory_order_relaxed);
    }
  }
};

}  // namespace

QueryEngine::QueryEngine(const InvertedIndex* idx, const FesiaParams& params,
                         const Executor& exec, size_t build_threads)
    : idx_(idx) {
  FESIA_CHECK(idx != nullptr);
  WallTimer timer;
  term_sets_.resize(idx->num_terms());
  RunDynamic(idx->num_terms(), build_threads, exec, [&](size_t t) {
    term_sets_[t] =
        FesiaSet::Build(idx->Postings(static_cast<uint32_t>(t)), params);
  });
  construction_seconds_ = timer.Seconds();
}

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOk:
      return "ok";
    case QueryOutcome::kDeadlineExceeded:
      return "deadline-exceeded";
    case QueryOutcome::kShed:
      return "shed";
    case QueryOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

const char* QueryPriorityName(QueryPriority priority) {
  switch (priority) {
    case QueryPriority::kLow:
      return "low";
    case QueryPriority::kNormal:
      return "normal";
    case QueryPriority::kHigh:
      return "high";
  }
  return "unknown";
}

const FesiaSet& QueryEngine::TermSet(uint32_t term) const {
  FESIA_CHECK(term < term_sets_.size());
  return term_sets_[term];
}

// An out-of-range term id denotes an empty posting list: the conjunction
// is empty, so count paths return 0 and materializing paths return {}.
static bool HasInvalidTerm(std::span<const uint32_t> terms,
                           size_t num_terms) {
  for (uint32_t t : terms) {
    if (t >= num_terms) return true;
  }
  return false;
}

size_t QueryEngine::CountFesia(std::span<const uint32_t> terms,
                               SimdLevel level) const {
  if (terms.empty()) return 0;
  if (HasInvalidTerm(terms, term_sets_.size())) return 0;
  if (terms.size() == 1) return term_sets_[terms[0]].size();
  if (terms.size() == 2) {
    return IntersectCountAuto(term_sets_[terms[0]], term_sets_[terms[1]],
                              level);
  }
  std::vector<const FesiaSet*> sets;
  sets.reserve(terms.size());
  for (uint32_t t : terms) sets.push_back(&term_sets_[t]);
  return IntersectCountKWay(sets, level);
}

size_t QueryEngine::CountBaseline(std::span<const uint32_t> terms,
                                  const std::string& method) const {
  if (terms.empty()) return 0;
  if (terms.size() == 1) return idx_->Postings(terms[0]).size();

  // Order by ascending posting length: smallest intermediate results.
  std::vector<uint32_t> ordered(terms.begin(), terms.end());
  std::sort(ordered.begin(), ordered.end(), [this](uint32_t a, uint32_t b) {
    return idx_->Postings(a).size() < idx_->Postings(b).size();
  });

  if (ordered.size() == 2) {
    const baselines::Method* m = baselines::FindBaseline(method);
    FESIA_CHECK(m != nullptr);
    auto pa = idx_->Postings(ordered[0]);
    auto pb = idx_->Postings(ordered[1]);
    return m->fn(pa.data(), pa.size(), pb.data(), pb.size());
  }

  MaterializeFn materialize = MaterializerFor(method);
  FESIA_CHECK(materialize != nullptr);
  auto first = idx_->Postings(ordered[0]);
  std::vector<uint32_t> acc(first.begin(), first.end());
  std::vector<uint32_t> tmp;
  for (size_t i = 1; i < ordered.size() && !acc.empty(); ++i) {
    auto next = idx_->Postings(ordered[i]);
    tmp.resize(std::min(acc.size(), next.size()));
    size_t r = materialize(acc.data(), acc.size(), next.data(), next.size(),
                           tmp.data());
    tmp.resize(r);
    acc.swap(tmp);
  }
  return acc.size();
}

std::vector<uint32_t> QueryEngine::QueryFesia(std::span<const uint32_t> terms,
                                              SimdLevel level) const {
  std::vector<uint32_t> out;
  if (terms.empty()) return out;
  if (HasInvalidTerm(terms, term_sets_.size())) return out;
  if (terms.size() == 1) {
    auto p = idx_->Postings(terms[0]);
    return std::vector<uint32_t>(p.begin(), p.end());
  }
  if (terms.size() == 2) {
    IntersectInto(term_sets_[terms[0]], term_sets_[terms[1]], &out,
                  /*sort_output=*/true, level);
    return out;
  }
  std::vector<const FesiaSet*> sets;
  sets.reserve(terms.size());
  for (uint32_t t : terms) sets.push_back(&term_sets_[t]);
  IntersectIntoKWay(sets, &out, /*sort_output=*/true, level);
  return out;
}

namespace {

// One counting attempt at a given degradation tier. A true *stopped means
// the attempt was cut short and the return value is a discardable partial.
size_t ExecuteCount(const QueryEngine& engine,
                    std::span<const uint32_t> terms, ExecTier tier,
                    SimdLevel level, const BatchOptions& options,
                    const CancelContext& cancel, bool* stopped) {
  *stopped = false;
  if (terms.empty() || HasInvalidTerm(terms, engine.num_terms())) return 0;
  if (terms.size() == 1) return engine.TermSet(terms[0]).size();
  if (terms.size() == 2) {
    const FesiaSet& a = engine.TermSet(terms[0]);
    const FesiaSet& b = engine.TermSet(terms[1]);
    if (tier == ExecTier::kParallel) {
      return IntersectCountParallel(a, b, options.intra_query_threads, level,
                                    options.executor, cancel, stopped);
    }
    return IntersectCountCancellable(a, b, cancel, level, stopped);
  }
  std::vector<const FesiaSet*> sets;
  sets.reserve(terms.size());
  for (uint32_t t : terms) sets.push_back(&engine.TermSet(t));
  if (tier == ExecTier::kParallel) {
    return IntersectCountKWayParallel(sets, options.intra_query_threads,
                                      level, options.executor, cancel,
                                      stopped);
  }
  return IntersectCountKWayCancellable(sets, cancel, level, stopped);
}

// Materializing analogue of ExecuteCount; fills *docs ascending. When
// *stopped is set, *docs holds a partial result the caller discards.
size_t ExecuteInto(const QueryEngine& engine, std::span<const uint32_t> terms,
                   ExecTier tier, SimdLevel level,
                   const BatchOptions& options, const CancelContext& cancel,
                   std::vector<uint32_t>* docs, bool* stopped) {
  *stopped = false;
  docs->clear();
  if (terms.empty() || HasInvalidTerm(terms, engine.num_terms())) return 0;
  if (terms.size() == 1) {
    *docs = engine.QueryFesia(terms, level);
    return docs->size();
  }
  if (terms.size() == 2) {
    const FesiaSet& a = engine.TermSet(terms[0]);
    const FesiaSet& b = engine.TermSet(terms[1]);
    if (tier == ExecTier::kParallel) {
      return IntersectIntoParallel(a, b, docs, options.intra_query_threads,
                                   /*sort_output=*/true, level,
                                   options.executor, cancel, stopped);
    }
    return IntersectIntoCancellable(a, b, docs, cancel, /*sort_output=*/true,
                                    level, stopped);
  }
  std::vector<const FesiaSet*> sets;
  sets.reserve(terms.size());
  for (uint32_t t : terms) sets.push_back(&engine.TermSet(t));
  if (tier == ExecTier::kParallel) {
    return IntersectIntoKWayParallel(sets, docs, options.intra_query_threads,
                                     /*sort_output=*/true, level,
                                     options.executor, cancel, stopped);
  }
  return IntersectIntoKWayCancellable(sets, docs, cancel,
                                      /*sort_output=*/true, level, stopped);
}

}  // namespace

std::vector<QueryResult> QueryEngine::RunBatch(
    std::span<const std::vector<uint32_t>> queries,
    const BatchOptions& options, BatchStats* stats, bool materialize) const {
  std::vector<QueryResult> results(queries.size());
  WallTimer wall;

  // The batch deadline is anchored once, before any query runs; per-query
  // deadlines are anchored at each query's own start.
  const Deadline batch_deadline = options.batch_deadline_seconds > 0
                                      ? Deadline::After(
                                            options.batch_deadline_seconds)
                                      : Deadline::Infinite();
  const CancelContext batch_cancel(batch_deadline, options.cancel);

  // Effective batch width, mirroring RunDynamic: the parallel intra-query
  // tier is only real when the batch itself runs on the caller thread —
  // a pool worker's nested ParallelFor serializes, so granting the tier
  // there would just misreport how the work ran.
  size_t batch_threads = options.num_threads == 0
                             ? options.executor.pool().num_threads()
                             : options.num_threads;
  batch_threads = std::min(batch_threads, queries.size());
  const bool parallel_requested = options.intra_query_threads > 1;
  const bool parallel_allowed =
      parallel_requested && batch_threads <= 1 && !ThreadPool::InWorkerThread();

  // Backend quarantine (fesia/backend_health.h) clamps dispatch below the
  // requested level: count it as a standing downgrade for every query.
  const BackendHealth& health = GetBackendHealth();
  const bool backend_clamped =
      health.degraded && (options.level == SimdLevel::kAuto ||
                          options.level > health.effective);

  const int max_attempts = std::max(options.retry.max_attempts, 1);

  MemoryBudget* budget =
      options.budget != nullptr ? options.budget : MemoryBudget::Unlimited();

  // The batch's fixed scratch — result slots and latency book-keeping —
  // is charged up front. A refusal does not fail the batch: it enters the
  // same degraded mode as watermark pressure (serial O(1)-scratch tiers,
  // low-priority queries shed), trading speed for admission.
  ScopedCharge scratch(budget);
  const bool scratch_refused =
      !scratch
           .Add(queries.size() * (sizeof(QueryResult) + sizeof(double)),
                "batch scratch")
           .ok();

  RunDynamic(queries.size(), options.num_threads, options.executor,
             [&](size_t i) {
    WallTimer per_query;
    QueryResult& res = results[i];
    std::span<const uint32_t> terms = queries[i];

    auto finish = [&](QueryOutcome outcome, Status status) {
      res.outcome = outcome;
      res.status = std::move(status);
      res.latency_seconds = per_query.Seconds();
      if (options.slow_query_seconds > 0 &&
          res.latency_seconds >= options.slow_query_seconds &&
          options.slow_query_hook) {
        options.slow_query_hook(SlowQueryRecord{
            .query_index = i,
            .num_terms = terms.size(),
            .latency_seconds = res.latency_seconds,
            .outcome = res.outcome,
        });
      }
    };

    // Cheap drain: once the batch deadline (or the caller's token) has
    // fired, queries not yet started are rejected without touching the
    // index, so an overrun batch unwinds in microseconds.
    if (batch_cancel.active() && batch_cancel.ShouldStop()) {
      finish(QueryOutcome::kDeadlineExceeded,
             Status::DeadlineExceeded(
                 "batch deadline expired before the query started"));
      return;
    }

    // Pressure-aware admission: sampled per query (not once per batch) so
    // a budget that crosses its watermark mid-batch starts degrading the
    // remaining queries immediately. Low-priority work is shed before it
    // touches the index; everything else keeps running but is pushed onto
    // the O(1)-scratch serial tier below.
    const bool pressured = scratch_refused || budget->under_pressure();
    if (pressured && options.priority == QueryPriority::kLow) {
      res.pressure_affected = true;
      finish(QueryOutcome::kShed,
             Status::Unavailable(
                 "memory budget under pressure; low-priority query shed"));
      return;
    }

    if (!TryAdmit(inflight_, options.admission_capacity)) {
      finish(QueryOutcome::kShed,
             Status::Unavailable(
                 "admission capacity " +
                 std::to_string(options.admission_capacity) +
                 " reached; query shed"));
      return;
    }
    AdmissionGuard guard{&inflight_};

    const Deadline query_deadline =
        options.query_deadline_seconds > 0
            ? Deadline::After(options.query_deadline_seconds)
            : Deadline::Infinite();
    const CancelContext cancel(
        Deadline::Earliest(batch_deadline, query_deadline), options.cancel);

    if (backend_clamped) res.downgraded = true;
    if (parallel_requested && !parallel_allowed) res.downgraded = true;
    // The parallel tier's per-chunk scratch is proportional to list sizes;
    // under pressure the query runs serial (for counts, the fused
    // AND+popcount sweep) whose scratch is O(1).
    if (pressured && parallel_allowed) {
      res.downgraded = true;
      res.pressure_affected = true;
    }
    const ExecTier base_tier = parallel_allowed && !pressured
                                   ? ExecTier::kParallel
                                   : ExecTier::kSerial;

    double backoff = options.retry.initial_backoff_seconds;
    Status last_error;
    for (;;) {
      ++res.attempts;

      // Injected stall (FESIA_FAULTS=query-delay): simulates a slow
      // dependency pinning the attempt past its deadline.
      uint64_t delay_us = 0;
      if (fault::ShouldFail(fault::FaultPoint::kQueryDelay, &delay_us)) {
        SleepFor(static_cast<double>(delay_us) * 1e-6);
      }
      if (cancel.active() && cancel.ShouldStop()) {
        finish(QueryOutcome::kDeadlineExceeded,
               Status::DeadlineExceeded("query deadline exceeded after " +
                                        std::to_string(res.attempts) +
                                        " attempt(s)"));
        return;
      }

      // Injected transient failure (FESIA_FAULTS=alloc): models an
      // attempt that ran out of a recoverable resource and is worth
      // retrying one rung down.
      if (fault::ShouldFail(fault::FaultPoint::kAllocation)) {
        last_error = Status::ResourceExhausted(
            "allocation failed during query attempt " +
            std::to_string(res.attempts));
      } else {
        const ExecTier tier = TierForAttempt(base_tier, res.attempts);
        if (res.attempts > 1 && tier != TierForAttempt(base_tier, 1)) {
          res.downgraded = true;
        }
        const SimdLevel level =
            tier == ExecTier::kScalar ? SimdLevel::kScalar : options.level;
        bool stopped = false;
        size_t count = 0;
        if (materialize) {
          count = ExecuteInto(*this, terms, tier, level, options, cancel,
                              &res.docs, &stopped);
        } else {
          count = ExecuteCount(*this, terms, tier, level, options, cancel,
                               &stopped);
        }
        if (stopped) {
          res.docs.clear();
          finish(QueryOutcome::kDeadlineExceeded,
                 Status::DeadlineExceeded("query deadline exceeded after " +
                                          std::to_string(res.attempts) +
                                          " attempt(s)"));
          return;
        }
        res.count = count;
        finish(QueryOutcome::kOk, Status());
        return;
      }

      if (res.attempts >= max_attempts) {
        finish(QueryOutcome::kFailed, std::move(last_error));
        return;
      }
      // Backoff before the retry, truncated by the deadline: the next
      // attempt's poll reports deadline-exceeded if the budget ran out
      // while sleeping.
      double sleep = backoff;
      if (!cancel.deadline().infinite()) {
        sleep = std::min(sleep, cancel.deadline().seconds_left());
      }
      SleepFor(sleep);
      backoff = std::min(backoff * options.retry.backoff_multiplier,
                         options.retry.max_backoff_seconds);
    }
  });

  const double wall_seconds = wall.Seconds();
  if (stats != nullptr) {
    std::vector<double> latencies(queries.size(), 0);
    *stats = BatchStats{};
    for (size_t i = 0; i < results.size(); ++i) {
      const QueryResult& res = results[i];
      latencies[i] = res.latency_seconds;
      switch (res.outcome) {
        case QueryOutcome::kOk: ++stats->ok; break;
        case QueryOutcome::kDeadlineExceeded: ++stats->deadline_exceeded; break;
        case QueryOutcome::kShed: ++stats->shed; break;
        case QueryOutcome::kFailed: ++stats->failed; break;
      }
      if (res.attempts > 1) stats->retries += res.attempts - 1;
      if (res.downgraded) ++stats->downgrades;
      if (res.pressure_affected) {
        if (res.outcome == QueryOutcome::kShed) ++stats->pressure_shed;
        if (res.downgraded) ++stats->pressure_downgrades;
      }
      if (options.slow_query_seconds > 0 &&
          res.latency_seconds >= options.slow_query_seconds) {
        ++stats->slow_queries;
      }
    }
    FillBatchStats(stats, std::move(latencies), wall_seconds);
  }
  return results;
}

std::vector<QueryResult> QueryEngine::CountBatch(
    std::span<const std::vector<uint32_t>> queries,
    const BatchOptions& options, BatchStats* stats) const {
  // materialize=false keeps pair queries on the count-only fused bitmap
  // sweep (IntersectCountParallel/Cancellable route count traffic through
  // the backend's count_fused entry points) — cardinality-only traffic
  // never pays for result materialization.
  return RunBatch(queries, options, stats, /*materialize=*/false);
}

std::vector<QueryResult> QueryEngine::QueryBatch(
    std::span<const std::vector<uint32_t>> queries,
    const BatchOptions& options, BatchStats* stats) const {
  return RunBatch(queries, options, stats, /*materialize=*/true);
}

std::vector<uint8_t> QueryEngine::SerializeTermSets() const {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.Put(kTermSetMagic);
  w.Put(kTermSetVersion);
  w.Put(static_cast<uint64_t>(term_sets_.size()));
  for (const FesiaSet& set : term_sets_) {
    std::vector<uint8_t> blob = set.Serialize();
    w.Put(static_cast<uint64_t>(blob.size()));
    w.PutRaw(blob.data(), blob.size());
  }
  w.Put(Crc32c(out.data(), out.size()));
  return out;
}

StatusOr<QueryEngine> QueryEngine::Load(const InvertedIndex* idx,
                                        std::span<const uint8_t> bytes) {
  FESIA_CHECK(idx != nullptr);
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::Corruption("term-set container shorter than its footer");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (stored_crc != Crc32c(bytes.data(), bytes.size() - sizeof(uint32_t))) {
    return Status::Corruption("term-set container checksum mismatch");
  }

  ByteReader r(bytes);
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  if (!r.Get(&magic) || magic != kTermSetMagic) {
    return Status::Corruption("bad term-set container magic");
  }
  if (!r.Get(&version)) return Status::Corruption("truncated term-set header");
  if (version != kTermSetVersion) {
    return Status::InvalidArgument("unsupported term-set container version " +
                                   std::to_string(version));
  }
  if (!r.Get(&count)) return Status::Corruption("truncated term-set header");
  if (count != idx->num_terms()) {
    return Status::FailedPrecondition(
        "term-set container holds " + std::to_string(count) +
        " sets but the index has " + std::to_string(idx->num_terms()) +
        " terms");
  }

  QueryEngine engine;
  engine.idx_ = idx;
  engine.term_sets_.reserve(static_cast<size_t>(count));
  std::vector<uint8_t> blob;
  for (uint64_t t = 0; t < count; ++t) {
    uint64_t blob_size = 0;
    if (!r.Get(&blob_size)) {
      return Status::Corruption("truncated term-set blob header");
    }
    FESIA_RETURN_IF_ERROR(r.GetRawArray(&blob, blob_size));
    FesiaSet set;
    FESIA_RETURN_IF_ERROR(FesiaSet::Deserialize(blob, &set));
    if (set.size() != idx->Postings(static_cast<uint32_t>(t)).size()) {
      return Status::Corruption(
          "term " + std::to_string(t) +
          " snapshot size disagrees with its posting list");
    }
    engine.term_sets_.push_back(std::move(set));
  }
  if (r.pos() + sizeof(uint32_t) != bytes.size()) {
    return Status::Corruption("trailing bytes after term-set payload");
  }
  return engine;
}

}  // namespace fesia::index
