#include "index/query_gen.h"

#include <algorithm>

#include "datagen/datagen.h"
#include "util/rng.h"

namespace fesia::index {

size_t ReferenceQueryCount(const InvertedIndex& idx, const Query& query) {
  if (query.empty()) return 0;
  std::vector<std::vector<uint32_t>> lists;
  lists.reserve(query.size());
  for (uint32_t t : query) {
    auto p = idx.Postings(t);
    lists.emplace_back(p.begin(), p.end());
  }
  return datagen::ReferenceIntersection(lists).size();
}

std::vector<Query> LowSelectivityQueries(const InvertedIndex& idx,
                                         size_t arity, size_t min_len,
                                         size_t max_len, size_t count,
                                         double max_selectivity,
                                         uint64_t seed) {
  std::vector<uint32_t> candidates =
      idx.TermsWithPostingLength(min_len, max_len);
  std::vector<Query> queries;
  if (candidates.size() < arity) return queries;
  Rng rng(seed);
  size_t attempts = 0;
  while (queries.size() < count && ++attempts < 200 * count) {
    Query q;
    while (q.size() < arity) {
      uint32_t t = candidates[rng.Below(candidates.size())];
      if (std::find(q.begin(), q.end(), t) == q.end()) q.push_back(t);
    }
    size_t min_list = idx.Postings(q[0]).size();
    for (uint32_t t : q) min_list = std::min(min_list, idx.Postings(t).size());
    if (static_cast<double>(ReferenceQueryCount(idx, q)) <=
        max_selectivity * static_cast<double>(min_list)) {
      queries.push_back(std::move(q));
    }
  }
  return queries;
}

std::vector<Query> SkewedPairQueries(const InvertedIndex& idx,
                                     size_t min_long_len, double skew,
                                     size_t count, uint64_t seed) {
  std::vector<uint32_t> longs =
      idx.TermsWithPostingLength(min_long_len, ~size_t{0} >> 1);
  std::vector<Query> queries;
  if (longs.empty()) return queries;
  Rng rng(seed);
  size_t attempts = 0;
  while (queries.size() < count && ++attempts < 200 * count) {
    uint32_t tl = longs[rng.Below(longs.size())];
    auto target = static_cast<size_t>(
        skew * static_cast<double>(idx.Postings(tl).size()));
    if (target < 2) continue;
    std::vector<uint32_t> shorts =
        idx.TermsWithPostingLength(target * 8 / 10, target * 12 / 10);
    if (shorts.empty()) continue;
    uint32_t ts = shorts[rng.Below(shorts.size())];
    if (ts != tl) queries.push_back({tl, ts});
  }
  return queries;
}

}  // namespace fesia::index
