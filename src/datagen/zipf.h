// Zipf-distributed sampling for the inverted-index workload.
//
// The paper's database-query experiment (Fig. 12) uses WebDocs, a web-crawl
// itemset collection whose item frequencies are heavy-tailed. Our stand-in
// corpus draws term frequencies from a Zipf distribution, the standard model
// for that shape.
#ifndef FESIA_DATAGEN_ZIPF_H_
#define FESIA_DATAGEN_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fesia::datagen {

/// Samples ranks in [0, n) with P(rank = i) proportional to 1/(i+1)^theta.
/// Uses a precomputed CDF with binary search: exact, O(log n) per draw.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `theta` >= 0 (0 degenerates to uniform).
  ZipfDistribution(size_t n, double theta);

  /// Draws one rank.
  size_t Sample(Rng& rng) const;

  /// Probability mass of rank i.
  double Pmf(size_t i) const;

  size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace fesia::datagen

#endif  // FESIA_DATAGEN_ZIPF_H_
