#include "datagen/zipf.h"

#include <algorithm>
#include <cmath>

namespace fesia::datagen {

ZipfDistribution::ZipfDistribution(size_t n, double theta) : theta_(theta) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = acc;
  }
  double norm = 1.0 / acc;
  for (double& v : cdf_) v *= norm;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t i) const {
  if (i >= cdf_.size()) return 0;
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace fesia::datagen
