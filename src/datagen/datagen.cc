#include "datagen/datagen.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/rng.h"

namespace fesia::datagen {
namespace {

// Largest value generators may emit. 0xFFFFFFFF is reserved: the FESIA
// reordered-set padding sentinel must never collide with a real element.
constexpr uint64_t kMaxValue = 0xFFFFFFFEull;

// Draws `n` distinct values in [0, universe) into a sorted vector.
std::vector<uint32_t> DistinctSample(size_t n, uint64_t universe, Rng& rng) {
  std::vector<uint32_t> out;
  if (n == 0) return out;

  // Dense samples (more than half the universe): enumerate the universe and
  // take a random n-subset via partial Fisher-Yates. Rejection sampling
  // would degenerate into a coupon-collector here.
  if (universe < 2 * static_cast<uint64_t>(n)) {
    out.resize(universe);
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<uint32_t>(i);
    }
    for (size_t i = 0; i < n; ++i) {
      size_t j = i + rng.Below(out.size() - i);
      std::swap(out[i], out[j]);
    }
    out.resize(n);
    std::sort(out.begin(), out.end());
    return out;
  }

  // Sparse samples: oversample proportionally to the expected collision
  // rate, dedupe, top up. With fill <= 1/2 each round at least halves the
  // deficit, so O(log n) rounds suffice.
  out.reserve(n + n / 2 + 16);
  size_t target = n;
  while (out.size() < target) {
    size_t need = target - out.size();
    double hit_rate =
        1.0 - static_cast<double>(out.size()) / static_cast<double>(universe);
    size_t draw =
        static_cast<size_t>(static_cast<double>(need) / hit_rate) +
        need / 4 + 16;
    for (size_t i = 0; i < draw; ++i) {
      out.push_back(static_cast<uint32_t>(rng.Below(universe)));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  // Trim the excess uniformly: keep a random subset of the right size
  // (Fisher-Yates shuffle, truncate, re-sort) so the kept sample stays
  // uniform over the universe.
  if (out.size() > target) {
    for (size_t i = out.size(); i > 1; --i) {
      std::swap(out[i - 1], out[rng.Below(i)]);
    }
    out.resize(target);
    std::sort(out.begin(), out.end());
  }
  return out;
}

}  // namespace

std::vector<uint32_t> SortedUniform(size_t n, uint64_t universe,
                                    uint64_t seed) {
  universe = std::min(universe, kMaxValue + 1);
  if (universe < n) universe = n;  // degenerate: dense range
  Rng rng(seed);
  return DistinctSample(n, universe, rng);
}

SetPair PairWithSelectivity(size_t n1, size_t n2, double selectivity,
                            uint64_t seed, uint64_t universe) {
  if (universe == 0) universe = 8ull * (n1 + n2) + 64;
  universe = std::min(universe, kMaxValue + 1);
  size_t n_min = std::min(n1, n2);
  size_t r = static_cast<size_t>(
      std::llround(selectivity * static_cast<double>(n_min)));
  r = std::min(r, n_min);

  // Draw one big pool of distinct values, then split it into (shared,
  // a-only, b-only). The split keeps each final set uniform over the
  // universe while pinning the intersection size exactly.
  size_t pool_size = r + (n1 - r) + (n2 - r);
  if (universe < pool_size) universe = pool_size;
  Rng rng(seed);
  std::vector<uint32_t> pool = DistinctSample(pool_size, universe, rng);
  // Fisher-Yates shuffle so the assignment to the three groups is random.
  for (size_t i = pool.size(); i > 1; --i) {
    size_t j = rng.Below(i);
    std::swap(pool[i - 1], pool[j]);
  }

  SetPair out;
  out.intersection_size = r;
  out.a.assign(pool.begin(), pool.begin() + static_cast<ptrdiff_t>(n1));
  out.b.assign(pool.begin(), pool.begin() + static_cast<ptrdiff_t>(r));
  out.b.insert(out.b.end(), pool.begin() + static_cast<ptrdiff_t>(n1),
               pool.end());
  std::sort(out.a.begin(), out.a.end());
  std::sort(out.b.begin(), out.b.end());
  return out;
}

std::vector<std::vector<uint32_t>> KSetsWithDensity(size_t k, size_t n,
                                                    double density,
                                                    uint64_t seed) {
  if (density <= 0) density = 1e-6;
  if (density > 1) density = 1;
  uint64_t universe = static_cast<uint64_t>(
      std::llround(static_cast<double>(n) / density));
  universe = std::max<uint64_t>(universe, n);
  universe = std::min(universe, kMaxValue + 1);
  std::vector<std::vector<uint32_t>> sets;
  sets.reserve(k);
  Rng rng(seed);
  for (size_t i = 0; i < k; ++i) {
    sets.push_back(DistinctSample(n, universe, rng));
  }
  return sets;
}

size_t ReferenceIntersectionSize(const std::vector<uint32_t>& a,
                                 const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, r = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++i;
      ++j;
      ++r;
    }
  }
  return r;
}

std::vector<uint32_t> ReferenceIntersection(
    const std::vector<std::vector<uint32_t>>& sets) {
  if (sets.empty()) return {};
  std::vector<uint32_t> acc = sets[0];
  for (size_t s = 1; s < sets.size() && !acc.empty(); ++s) {
    std::vector<uint32_t> next;
    next.reserve(acc.size());
    size_t i = 0, j = 0;
    const std::vector<uint32_t>& other = sets[s];
    while (i < acc.size() && j < other.size()) {
      if (acc[i] < other[j]) {
        ++i;
      } else if (acc[i] > other[j]) {
        ++j;
      } else {
        next.push_back(acc[i]);
        ++i;
        ++j;
      }
    }
    acc = std::move(next);
  }
  return acc;
}

}  // namespace fesia::datagen
