// Synthetic set generators for the paper's evaluation axes.
//
// The evaluation (paper Sec. VII) controls three knobs: input size (n),
// selectivity (r/n), and skew (n1/n2); the k-way experiment additionally
// controls density (n / universe). Each generator here fixes one knob
// exactly so experiment sweeps are noise-free and reproducible.
#ifndef FESIA_DATAGEN_DATAGEN_H_
#define FESIA_DATAGEN_DATAGEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fesia::datagen {

/// A generated pair of sorted duplicate-free sets whose exact intersection
/// size is known by construction.
struct SetPair {
  std::vector<uint32_t> a;
  std::vector<uint32_t> b;
  size_t intersection_size = 0;
};

/// Sorted, duplicate-free uniform sample of `n` values from [0, universe).
/// `universe` must be >= n. Deterministic in `seed`.
std::vector<uint32_t> SortedUniform(size_t n, uint64_t universe, uint64_t seed);

/// Pair with |a| = n1, |b| = n2 and |a ∩ b| = round(selectivity * min(n1,n2)),
/// exactly. Values are uniform over [0, universe); universe = 0 picks
/// 8 * (n1 + n2) (clamped to fit in uint32_t minus the sentinel value).
SetPair PairWithSelectivity(size_t n1, size_t n2, double selectivity,
                            uint64_t seed, uint64_t universe = 0);

/// `k` independent sorted samples of size `n` with the given density
/// (n / universe). Intersection size emerges naturally: E[r] ≈ n·density^(k-1),
/// matching the Fig. 10 workload.
std::vector<std::vector<uint32_t>> KSetsWithDensity(size_t k, size_t n,
                                                    double density,
                                                    uint64_t seed);

/// Exact intersection size of two sorted duplicate-free sets (reference).
size_t ReferenceIntersectionSize(const std::vector<uint32_t>& a,
                                 const std::vector<uint32_t>& b);

/// Exact intersection of k sorted duplicate-free sets (reference).
std::vector<uint32_t> ReferenceIntersection(
    const std::vector<std::vector<uint32_t>>& sets);

}  // namespace fesia::datagen

#endif  // FESIA_DATAGEN_DATAGEN_H_
