#include "serve/protocol.h"

#include <charconv>
#include <cmath>
#include <cstring>

#include "util/json.h"

namespace fesia::serve {
namespace {

constexpr size_t kMaxDepth = 8;

/// True when `s` is well-formed UTF-8. The wire format is JSON, whose
/// text is UTF-8 by specification; rejecting bad bytes up front keeps the
/// parser's inner loops byte-oriented and makes the adversarial
/// invalid-UTF-8 input a clean kInvalidArgument instead of a judgment
/// call deep inside string handling.
bool ValidUtf8(std::string_view s) {
  size_t i = 0;
  while (i < s.size()) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    size_t len;
    uint32_t cp;
    if (c < 0x80) {
      ++i;
      continue;
    } else if ((c & 0xE0) == 0xC0) {
      len = 2;
      cp = c & 0x1F;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      cp = c & 0x0F;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      cp = c & 0x07;
    } else {
      return false;  // continuation or invalid lead byte
    }
    if (i + len > s.size()) return false;
    for (size_t k = 1; k < len; ++k) {
      const unsigned char cc = static_cast<unsigned char>(s[i + k]);
      if ((cc & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (cc & 0x3F);
    }
    // Overlongs, surrogates, and out-of-range code points are invalid.
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000) || cp > 0x10FFFF ||
        (cp >= 0xD800 && cp <= 0xDFFF)) {
      return false;
    }
    i += len;
  }
  return true;
}

/// Cursor over one request line. All Parse* methods return false with
/// `error` set on malformed input; none of them throw or read past end.
struct Cursor {
  std::string_view s;
  size_t pos = 0;
  std::string error;

  bool Fail(const char* what) {
    if (error.empty()) {
      error = what;
      error += " at byte ";
      error += std::to_string(pos);
    }
    return false;
  }

  void SkipWs() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\r' || s[pos] == '\n')) {
      ++pos;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos >= s.size();
  }

  int Peek() {
    SkipWs();
    return pos < s.size() ? static_cast<unsigned char>(s[pos]) : -1;
  }

  bool Expect(char c, const char* what) {
    SkipWs();
    if (pos >= s.size() || s[pos] != c) return Fail(what);
    ++pos;
    return true;
  }

  bool ConsumeIf(char c) {
    SkipWs();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit, const char* what) {
    SkipWs();
    if (s.substr(pos, lit.size()) != lit) return Fail(what);
    pos += lit.size();
    return true;
  }

  /// JSON string token -> decoded bytes (escapes resolved, \uXXXX encoded
  /// as UTF-8 with surrogate pairs combined).
  bool ParseString(std::string* out) {
    if (!Expect('"', "expected string")) return false;
    out->clear();
    while (true) {
      if (pos >= s.size()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(s[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos;
        continue;
      }
      ++pos;  // backslash
      if (pos >= s.size()) return Fail("truncated escape");
      const char e = s[pos++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos + 1 >= s.size() || s[pos] != '\\' || s[pos + 1] != 'u') {
              return Fail("unpaired surrogate");
            }
            pos += 2;
            uint32_t lo = 0;
            if (!ParseHex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return Fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos + 4 > s.size()) return Fail("truncated \\u escape");
    uint32_t v = 0;
    for (size_t k = 0; k < 4; ++k) {
      const char c = s[pos + k];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return Fail("invalid \\u escape");
    }
    pos += 4;
    *out = v;
    return true;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  /// JSON number -> double. Rejects non-finite results and malformed
  /// tokens (from_chars enforces the grammar closely enough after a
  /// leading-character check).
  bool ParseNumber(double* out) {
    SkipWs();
    const size_t start = pos;
    if (pos < s.size() && s[pos] == '-') ++pos;
    if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') {
      pos = start;
      return Fail("expected number");
    }
    if (s[pos] == '0' && pos + 1 < s.size() && s[pos + 1] >= '0' &&
        s[pos + 1] <= '9') {
      pos = start;
      return Fail("leading zero in number");  // JSON forbids 01
    }
    while (pos < s.size() &&
           ((s[pos] >= '0' && s[pos] <= '9') || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' || s[pos] == '+' ||
            s[pos] == '-')) {
      ++pos;
    }
    double v = 0;
    const auto [end, ec] =
        std::from_chars(s.data() + start, s.data() + pos, v);
    if (ec != std::errc() || end != s.data() + pos || !std::isfinite(v)) {
      pos = start;
      return Fail("malformed number");
    }
    *out = v;
    return true;
  }

  /// Non-negative integer token -> uint64 (no sign, fraction, exponent).
  bool ParseUInt(uint64_t* out) {
    SkipWs();
    const size_t start = pos;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') ++pos;
    if (pos == start) return Fail("expected unsigned integer");
    if (s[start] == '0' && pos - start > 1) {
      return Fail("leading zero in number");  // JSON forbids 01
    }
    if (pos < s.size() &&
        (s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E')) {
      return Fail("expected integer, got fraction/exponent");
    }
    const auto [end, ec] =
        std::from_chars(s.data() + start, s.data() + pos, *out);
    if (ec != std::errc() || end != s.data() + pos) {
      return Fail("integer out of range");
    }
    return true;
  }

  bool ParseBool(bool* out) {
    if (Peek() == 't') {
      if (!ConsumeLiteral("true", "expected boolean")) return false;
      *out = true;
      return true;
    }
    if (Peek() == 'f') {
      if (!ConsumeLiteral("false", "expected boolean")) return false;
      *out = false;
      return true;
    }
    return Fail("expected boolean");
  }

  /// Skips one arbitrary JSON value (unknown request keys), bounded by
  /// kMaxDepth so crafted nesting cannot recurse unboundedly.
  bool SkipValue(size_t depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    switch (Peek()) {
      case '"': {
        std::string scratch;
        return ParseString(&scratch);
      }
      case '{': {
        ++pos;
        if (ConsumeIf('}')) return true;
        while (true) {
          std::string key;
          if (!ParseString(&key)) return false;
          if (!Expect(':', "expected ':'")) return false;
          if (!SkipValue(depth + 1)) return false;
          if (ConsumeIf(',')) continue;
          return Expect('}', "expected '}' or ','");
        }
      }
      case '[': {
        ++pos;
        if (ConsumeIf(']')) return true;
        while (true) {
          if (!SkipValue(depth + 1)) return false;
          if (ConsumeIf(',')) continue;
          return Expect(']', "expected ']' or ','");
        }
      }
      case 't':
        return ConsumeLiteral("true", "malformed literal");
      case 'f':
        return ConsumeLiteral("false", "malformed literal");
      case 'n':
        return ConsumeLiteral("null", "malformed literal");
      default: {
        double scratch;
        return ParseNumber(&scratch);
      }
    }
  }
};

bool ParsePriority(const std::string& name, index::QueryPriority* out) {
  if (name == "low") *out = index::QueryPriority::kLow;
  else if (name == "normal") *out = index::QueryPriority::kNormal;
  else if (name == "high") *out = index::QueryPriority::kHigh;
  else return false;
  return true;
}

/// "queries":[[t1,t2,...],...] with both limits enforced during the scan,
/// so an oversized batch fails before its memory is allocated.
bool ParseQueries(Cursor& c, const ParseLimits& limits,
                  std::vector<std::vector<uint32_t>>* out) {
  if (!c.Expect('[', "expected query array")) return false;
  out->clear();
  if (c.ConsumeIf(']')) return true;
  while (true) {
    if (out->size() >= limits.max_queries) {
      return c.Fail("too many queries in batch");
    }
    if (!c.Expect('[', "expected term array")) return false;
    std::vector<uint32_t> terms;
    if (!c.ConsumeIf(']')) {
      while (true) {
        if (terms.size() >= limits.max_terms_per_query) {
          return c.Fail("too many terms in query");
        }
        uint64_t term;
        if (!c.ParseUInt(&term)) return false;
        if (term > UINT32_MAX) return c.Fail("term id out of range");
        terms.push_back(static_cast<uint32_t>(term));
        if (c.ConsumeIf(',')) continue;
        if (!c.Expect(']', "expected ']' or ','")) return false;
        break;
      }
    }
    out->push_back(std::move(terms));
    if (c.ConsumeIf(',')) continue;
    return c.Expect(']', "expected ']' or ','");
  }
}

void AppendStatsJson(std::string& out, const index::BatchStats& stats) {
  out += "\"stats\":{\"wall_seconds\":";
  AppendJsonDouble(out, stats.wall_seconds);
  out += ",\"queries_per_second\":";
  AppendJsonDouble(out, stats.queries_per_second);
  out += ",\"latency_p50\":";
  AppendJsonDouble(out, stats.latency_p50);
  out += ",\"latency_p95\":";
  AppendJsonDouble(out, stats.latency_p95);
  out += ",\"latency_max\":";
  AppendJsonDouble(out, stats.latency_max);
  out += ",\"ok\":" + std::to_string(stats.ok);
  out += ",\"deadline_exceeded\":" + std::to_string(stats.deadline_exceeded);
  out += ",\"shed\":" + std::to_string(stats.shed);
  out += ",\"failed\":" + std::to_string(stats.failed);
  out += ",\"retries\":" + std::to_string(stats.retries);
  out += ",\"downgrades\":" + std::to_string(stats.downgrades);
  out += ",\"pressure_shed\":" + std::to_string(stats.pressure_shed);
  out += ",\"pressure_downgrades\":" +
         std::to_string(stats.pressure_downgrades);
  out += '}';
}

}  // namespace

const char* OpName(Op op) {
  return op == Op::kCount ? "count" : "query";
}

Status ParseRequest(std::string_view line, const ParseLimits& limits,
                    Request* out) {
  *out = Request();
  if (!ValidUtf8(line)) {
    return Status::InvalidArgument("request is not valid UTF-8");
  }
  Cursor c{line, 0, {}};
  bool saw_op = false, saw_queries = false;
  if (!c.Expect('{', "expected request object")) {
    return Status::InvalidArgument(c.error);
  }
  if (!c.ConsumeIf('}')) {
    while (true) {
      std::string key;
      if (!c.ParseString(&key) || !c.Expect(':', "expected ':'")) {
        return Status::InvalidArgument(c.error);
      }
      bool field_ok = true;
      if (key == "op") {
        std::string name;
        field_ok = c.ParseString(&name);
        if (field_ok) {
          if (name == "count") out->op = Op::kCount;
          else if (name == "query") out->op = Op::kQuery;
          else return Status::InvalidArgument(
              "unknown op \"" + JsonEscape(name) + "\"");
          saw_op = true;
        }
      } else if (key == "queries") {
        field_ok = ParseQueries(c, limits, &out->queries);
        saw_queries = field_ok;
      } else if (key == "deadline_ms") {
        double ms;
        field_ok = c.ParseNumber(&ms);
        if (field_ok && ms < 0) {
          return Status::InvalidArgument("deadline_ms must be >= 0");
        }
        if (field_ok) out->query_deadline_seconds = ms / 1000.0;
      } else if (key == "batch_deadline_ms") {
        double ms;
        field_ok = c.ParseNumber(&ms);
        if (field_ok && ms < 0) {
          return Status::InvalidArgument("batch_deadline_ms must be >= 0");
        }
        if (field_ok) out->batch_deadline_seconds = ms / 1000.0;
      } else if (key == "priority") {
        std::string name;
        field_ok = c.ParseString(&name);
        if (field_ok && !ParsePriority(name, &out->priority)) {
          return Status::InvalidArgument(
              "unknown priority \"" + JsonEscape(name) + "\"");
        }
      } else if (key == "cache") {
        field_ok = c.ParseBool(&out->use_cache);
      } else if (key == "id") {
        field_ok = c.ParseUInt(&out->id);
        if (field_ok) out->has_id = true;
      } else {
        field_ok = c.SkipValue(1);  // forward compatibility
      }
      if (!field_ok) return Status::InvalidArgument(c.error);
      if (c.ConsumeIf(',')) continue;
      if (!c.Expect('}', "expected '}' or ','")) {
        return Status::InvalidArgument(c.error);
      }
      break;
    }
  }
  if (!c.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request object");
  }
  if (!saw_op) return Status::InvalidArgument("missing required key \"op\"");
  if (!saw_queries) {
    return Status::InvalidArgument("missing required key \"queries\"");
  }
  return Status::Ok();
}

std::string BuildResultJson(const WireResult& result, Op op) {
  std::string out;
  out.reserve(96 + result.docs.size() * 8);
  out += "{\"outcome\":\"";
  out += index::QueryOutcomeName(result.outcome);
  out += '"';
  if (result.code != StatusCode::kOk) {
    out += ",\"code\":\"";
    out += StatusCodeName(result.code);
    out += '"';
  }
  out += ",\"count\":" + std::to_string(result.count);
  if (op == Op::kQuery) {
    out += ",\"docs\":[";
    for (size_t i = 0; i < result.docs.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(result.docs[i]);
    }
    out += ']';
  }
  out += ",\"shards_answered\":" + std::to_string(result.shards_answered);
  out += ",\"shards_total\":" + std::to_string(result.shards_total);
  out += ",\"attempts\":" + std::to_string(result.attempts);
  out += ",\"downgraded\":";
  out += result.downgraded ? "true" : "false";
  out += ",\"pressure_affected\":";
  out += result.pressure_affected ? "true" : "false";
  out += '}';
  return out;
}

std::string BuildResponseLine(const Request& request,
                              std::span<const std::string> results,
                              const index::BatchStats& stats,
                              uint64_t cache_hits, uint64_t cache_misses) {
  std::string out;
  out += "{\"ok\":true";
  if (request.has_id) out += ",\"id\":" + std::to_string(request.id);
  out += ",\"op\":\"";
  out += OpName(request.op);
  out += "\",\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out += ',';
    out += results[i];
  }
  out += "],";
  AppendStatsJson(out, stats);
  out += ",\"cache\":{\"hits\":" + std::to_string(cache_hits);
  out += ",\"misses\":" + std::to_string(cache_misses);
  out += "}}\n";
  return out;
}

std::string BuildErrorLine(const Status& status, const Request* request) {
  std::string out;
  out += "{\"ok\":false";
  if (request != nullptr && request->has_id) {
    out += ",\"id\":" + std::to_string(request->id);
  }
  out += ",\"error\":{\"code\":\"";
  out += StatusCodeName(status.code());
  out += "\",\"message\":";
  AppendJsonString(out, status.message());
  out += "}}\n";
  return out;
}

}  // namespace fesia::serve
