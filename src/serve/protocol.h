// Line-oriented JSON protocol of the network front door (docs/API.md,
// "Serving" — the authoritative grammar lives there).
//
// One request line = one batch:
//
//   {"op":"count","queries":[[t1,t2,...],...],"deadline_ms":50,
//    "batch_deadline_ms":200,"priority":"high","cache":true,"id":7}
//
// One response line per request, in request order per connection:
//
//   {"ok":true,"id":7,"op":"count","results":[{...},...],
//    "stats":{...},"cache":{"hits":H,"misses":M}}
//   {"ok":false,"id":7,"error":{"code":"invalid-argument",
//    "message":"..."}}
//
// The per-query objects in "results" mirror QueryResult /
// RoutedQueryResult and contain only fields that are deterministic for a
// given index content (outcome, code, count, docs, shard coverage,
// attempts, downgraded, pressure_affected) — never latency — so the
// result cache can replay them byte-identically and the oracle test can
// compare cached and uncached runs as raw bytes. Latency and throughput
// live in "stats", which is execution metadata and is never cached.
//
// The parser is hand-rolled, allocation-bounded, and adversarial-input
// hardened (tests/serve_test.cc): depth-limited, size-limited via
// ParseLimits, strict about types, and treats any malformed byte —
// truncation, bad UTF-8 escapes, numbers out of range — as a
// kInvalidArgument Status, never UB. Every emitted string goes through
// util/json.h escaping and every number through locale-independent
// formatting.
#ifndef FESIA_SERVE_PROTOCOL_H_
#define FESIA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "index/query_engine.h"
#include "util/status.h"

namespace fesia::serve {

enum class Op : uint8_t {
  kCount = 0,  // counts only — the fused count kernels, no materialization
  kQuery = 1,  // materialized ascending doc ids
};

/// Stable wire name ("count" / "query").
const char* OpName(Op op);

/// One parsed request line.
struct Request {
  Op op = Op::kCount;
  std::vector<std::vector<uint32_t>> queries;
  /// Per-query budget from "deadline_ms" (seconds; 0 = none).
  double query_deadline_seconds = 0;
  /// Whole-batch budget from "batch_deadline_ms" (seconds; 0 = none).
  double batch_deadline_seconds = 0;
  index::QueryPriority priority = index::QueryPriority::kNormal;
  /// "cache":false opts the request out of the result cache (both lookup
  /// and insert) — the oracle test's uncached arm.
  bool use_cache = true;
  bool has_id = false;
  uint64_t id = 0;
};

/// Input bounds the parser enforces before any work is admitted.
struct ParseLimits {
  size_t max_queries = 4096;
  size_t max_terms_per_query = 256;
};

/// Parses one request line (without the trailing newline). Unknown keys
/// are skipped (forward compatibility); missing/ill-typed required keys,
/// exceeded limits, malformed JSON, trailing garbage, and nesting beyond
/// the protocol's fixed depth all return kInvalidArgument. When the line
/// carried a parseable "id" before the error, *out keeps it so the error
/// response can echo it.
Status ParseRequest(std::string_view line, const ParseLimits& limits,
                    Request* out);

/// One query's deterministic wire result (see the file comment). The
/// serve backend fills it from RoutedQueryResult.
struct WireResult {
  index::QueryOutcome outcome = index::QueryOutcome::kOk;
  /// Status code explaining a non-ok outcome (kOk otherwise).
  StatusCode code = StatusCode::kOk;
  uint64_t count = 0;
  /// Materialized docs (op == kQuery only).
  std::vector<uint32_t> docs;
  uint32_t shards_answered = 0;
  uint32_t shards_total = 0;
  int attempts = 0;
  bool downgraded = false;
  bool pressure_affected = false;
};

/// Serializes one WireResult as its response-line JSON object — the exact
/// bytes the result cache stores and replays.
std::string BuildResultJson(const WireResult& result, Op op);

/// Builds the success response line (newline included): request id (when
/// present), per-query result objects verbatim (cached bytes splice in
/// unmodified), merged BatchStats, and this request's cache hit/miss
/// split.
std::string BuildResponseLine(const Request& request,
                              std::span<const std::string> results,
                              const index::BatchStats& stats,
                              uint64_t cache_hits, uint64_t cache_misses);

/// Builds the error response line (newline included). `id` echoes the
/// request id when the line got far enough to carry one.
std::string BuildErrorLine(const Status& status, const Request* request);

}  // namespace fesia::serve

#endif  // FESIA_SERVE_PROTOCOL_H_
