#include "serve/result_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/check.h"

namespace fesia::serve {
namespace {

/// 64-bit FNV-1a — stable across platforms (std::hash<std::string> is
/// not), so shard placement and tests behave identically everywhere.
uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

size_t NumShards(const ResultCache::Options& options) {
  return RoundUpPow2(std::max<size_t>(1, options.num_shards));
}

}  // namespace

ResultCache::ResultCache(const Options& options)
    : shard_cap_(options.max_bytes == 0
                     ? 0
                     : std::max<uint64_t>(1, options.max_bytes /
                                                 NumShards(options))) {
  const size_t n = NumShards(options);
  shard_mask_ = n - 1;
  MemoryBudget* budget = options.budget != nullptr ? options.budget
                                                   : MemoryBudget::Unlimited();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->charge = ScopedCharge(budget);
    shards_.push_back(std::move(shard));
  }
}

ResultCache::~ResultCache() = default;

std::string ResultCache::Key(uint8_t op, std::span<const uint32_t> terms) {
  std::string key;
  key.reserve(1 + terms.size() * sizeof(uint32_t));
  key.push_back(static_cast<char>(op));
  for (uint32_t t : terms) {
    char buf[sizeof(uint32_t)];
    std::memcpy(buf, &t, sizeof(t));  // host order: the key never leaves
    key.append(buf, sizeof(buf));     // this process
  }
  return key;
}

uint64_t ResultCache::EntryBytes(const Entry& e) {
  // Key + value payloads plus a flat estimate of the list node, map slot,
  // and string headers. An estimate is fine: the budget is a governance
  // bound, not an allocator.
  return e.key.size() + e.value.size() + 96;
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[Fnv1a(key) & shard_mask_];
}

void ResultCache::EraseLocked(Shard& shard, std::list<Entry>::iterator it) {
  const uint64_t bytes = EntryBytes(*it);
  shard.index.erase(std::string_view(it->key));
  shard.lru.erase(it);
  shard.bytes -= bytes;
  shard.charge.Shrink(bytes);
}

bool ResultCache::Lookup(const std::string& key, uint64_t epoch,
                         std::string* value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto found = shard.index.find(std::string_view(key));
  if (found == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  auto it = found->second;
  if (it->epoch < epoch) {
    // Computed before the world changed: evict on sight so the stale
    // bytes can never be served again.
    EraseLocked(shard, it);
    ++shard.stale_evictions;
    ++shard.misses;
    return false;
  }
  if (it->epoch > epoch) {
    // A racing request that began after this one already refreshed the
    // entry. It is valid for the newer epoch, not provably for ours —
    // miss, but keep it.
    ++shard.misses;
    return false;
  }
  // Touch: move to the MRU end.
  shard.lru.splice(shard.lru.end(), shard.lru, it);
  if (value != nullptr) *value = it->value;
  ++shard.hits;
  return true;
}

void ResultCache::Insert(const std::string& key, uint64_t epoch,
                         std::string_view value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto found = shard.index.find(std::string_view(key));
  if (found != shard.index.end()) {
    if (found->second->epoch > epoch) return;  // newer entry wins
    EraseLocked(shard, found->second);
  }
  Entry entry;
  entry.key = key;
  entry.epoch = epoch;
  entry.value.assign(value.data(), value.size());
  const uint64_t bytes = EntryBytes(entry);
  if (shard_cap_ != 0 && bytes > shard_cap_) {
    ++shard.insert_failures;  // larger than the whole sub-cache
    return;
  }
  // Evict cold entries until the cap and the budget both admit the entry.
  while (shard_cap_ != 0 && shard.bytes + bytes > shard_cap_ &&
         !shard.lru.empty()) {
    EraseLocked(shard, shard.lru.begin());
    ++shard.lru_evictions;
  }
  while (!shard.charge.Add(bytes, "result cache").ok()) {
    if (shard.lru.empty()) {
      ++shard.insert_failures;  // budget refuses even an empty shard
      return;
    }
    EraseLocked(shard, shard.lru.begin());
    ++shard.lru_evictions;
  }
  shard.bytes += bytes;
  auto it = shard.lru.insert(shard.lru.end(), std::move(entry));
  shard.index.emplace(std::string_view(it->key), it);
  ++shard.inserts;
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->index.clear();
    shard->lru.clear();
    shard->charge.Shrink(shard->bytes);
    shard->bytes = 0;
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.inserts += shard->inserts;
    out.lru_evictions += shard->lru_evictions;
    out.stale_evictions += shard->stale_evictions;
    out.insert_failures += shard->insert_failures;
    out.entries += shard->lru.size();
    out.bytes += shard->bytes;
  }
  return out;
}

}  // namespace fesia::serve
