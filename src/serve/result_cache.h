// Epoch-invalidated query-result cache for the network front door
// (docs/ROBUSTNESS.md, "Network front door"; docs/API.md, "Serving").
//
// Zipf-skewed query streams repeat their hot term sets constantly — the
// workloads of the paper's Fig. 11/12 make the head of the distribution
// enormously cacheable — so the server keeps a TermSet → serialized-result
// LRU in front of the ShardRouter and answers repeats in O(1) before any
// intersection runs.
//
// Layout is the sharded-LRU ("multilru") idiom: entries are hash-
// partitioned across N independent sub-caches, each a mutex + intrusive
// LRU list + hash map with its own byte cap, so concurrent server workers
// contend only 1/N of the time and eviction is O(1) per entry. Bytes are
// charged into a MemoryBudget (the same governance tree as everything
// else): a refused charge evicts cold entries to make room and, if the
// budget still refuses, the insert is dropped — the cache degrades to a
// miss, never to an OOM.
//
// Correctness contract (the cache-epoch oracle in tests/serve_test.cc
// enforces byte-identity with an uncached run):
//
//   * every entry is tagged with the backend's content_epoch() read
//     *before* the result was computed;
//   * mutations bump the epoch only *after* they are visible to queries
//     (IndexManager / ReplicaSet / ShardedIndex content_epoch), so a
//     result computed against pre-mutation data but inserted late carries
//     the old epoch and self-invalidates;
//   * Lookup(key, epoch) serves an entry only when its tag equals the
//     caller's pre-read epoch. An older tag is stale — the entry is
//     evicted on sight. A newer tag (a racing insert from a request that
//     began after this one) is a plain miss: the entry is kept for the
//     newer requests it is valid for.
//
// Over-invalidation (quarantine flips, failed reloads) costs only a miss.
#ifndef FESIA_SERVE_RESULT_CACHE_H_
#define FESIA_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/memory_budget.h"

namespace fesia::serve {

/// Aggregated counters across all cache shards (monotonic except
/// `entries`/`bytes`, which are live gauges).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  /// Entries displaced to make room (capacity pressure).
  uint64_t lru_evictions = 0;
  /// Entries discarded because their epoch predated a lookup's.
  uint64_t stale_evictions = 0;
  /// Inserts dropped because the byte cap or budget refused even after
  /// eviction.
  uint64_t insert_failures = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

class ResultCache {
 public:
  struct Options {
    /// Independent sub-caches (rounded up to a power of two, min 1).
    size_t num_shards = 8;
    /// Byte cap across all shards (split evenly); 0 means uncapped here —
    /// the budget below still governs.
    uint64_t max_bytes = 64u << 20;
    /// Budget the cache's bytes charge into; nullptr means
    /// MemoryBudget::Unlimited(). Must outlive the cache.
    MemoryBudget* budget = nullptr;
  };

  explicit ResultCache(const Options& options);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Cache key for one query: the op discriminator and the term list
  /// verbatim (no sorting or dedup — the executed query is the cached
  /// query, which keeps cached bytes trivially identical to uncached).
  static std::string Key(uint8_t op, std::span<const uint32_t> terms);

  /// Serves `key` if present and tagged exactly `epoch` (see the file
  /// comment for the stale/newer rules). On a hit the entry is touched
  /// (moved to the shard's MRU end) and *value receives the cached bytes.
  bool Lookup(const std::string& key, uint64_t epoch, std::string* value);

  /// Inserts (or refreshes) `key` tagged `epoch`. An existing entry with a
  /// newer tag is kept; otherwise the entry is replaced. Evicts from the
  /// shard's LRU end until the byte cap and budget admit the entry; drops
  /// the insert (insert_failures) when they never do.
  void Insert(const std::string& key, uint64_t epoch, std::string_view value);

  /// Drops every entry (test/operator hook; stats keep their counters).
  void Clear();

  ResultCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    uint64_t epoch = 0;
    std::string value;
  };
  /// One sub-cache: LRU list (front = LRU, back = MRU) + key index.
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    uint64_t bytes = 0;
    /// Live charge mirroring `bytes` into the budget.
    ScopedCharge charge;
    // Monotonic counters (guarded by mu; summed in stats()).
    uint64_t hits = 0, misses = 0, inserts = 0;
    uint64_t lru_evictions = 0, stale_evictions = 0, insert_failures = 0;
  };

  /// Charged footprint of one entry (key + value + bookkeeping estimate).
  static uint64_t EntryBytes(const Entry& e);

  Shard& ShardFor(const std::string& key);
  /// Unlinks *it from the shard, returning its bytes to the budget.
  /// Caller holds shard.mu.
  void EraseLocked(Shard& shard, std::list<Entry>::iterator it);

  const uint64_t shard_cap_;  // per-shard byte cap; 0 = uncapped
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
};

}  // namespace fesia::serve

#endif  // FESIA_SERVE_RESULT_CACHE_H_
