// The network front door: a minimal epoll-based TCP server exposing batch
// count/query over the line-JSON protocol of serve/protocol.h
// (docs/API.md "Serving"; docs/ROBUSTNESS.md "Network front door").
//
// Threading model — one epoll thread, N worker threads:
//
//   * the epoll thread (level-triggered, every fd non-blocking) owns the
//     listen socket and all connection state: it accepts, reads request
//     bytes into per-connection buffers, frames complete lines, and
//     writes queued response bytes, never blocking on a slow peer
//     (slowloris clients cost a buffer, not a thread);
//   * workers pull framed request lines from a queue, parse, execute
//     against the ServeBackend (consulting the ResultCache first), and
//     hand the response line back to the epoll thread through an eventfd
//     wakeup. One request is in flight per connection at a time; further
//     pipelined lines queue in arrival order, so responses are always in
//     request order per connection.
//
// Robustness contract (the adversarial suite in tests/serve_test.cc):
//
//   * connection buffers are charged into ServerOptions::budget; a line
//     exceeding max_line_bytes or a refused charge gets a JSON error
//     response and the connection is closed — framing cannot resync past
//     an abandoned oversized line — and the server never OOMs on input;
//   * a client that disconnects mid-batch has its in-flight request
//     cancelled through the CancellationToken the epoll thread planted in
//     the batch options (cancelled_inflight in the stats), so abandoned
//     work drains at the executor's next cancellation poll;
//   * request deadlines (deadline_ms / batch_deadline_ms) propagate into
//     BatchOptions, clamped to max_deadline_seconds;
//   * Shutdown() (and the destructor) cancels all in-flight work, closes
//     every socket, and joins all threads.
#ifndef FESIA_SERVE_SERVER_H_
#define FESIA_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "index/query_engine.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "shard/shard_router.h"
#include "shard/sharded_index.h"
#include "util/deadline.h"
#include "util/memory_budget.h"
#include "util/status.h"

namespace fesia::serve {

/// Per-request execution options the server threads into its backend.
struct BackendOptions {
  double query_deadline_seconds = 0;
  double batch_deadline_seconds = 0;
  /// Cancelled by the epoll thread when the requesting client disconnects
  /// (and by Shutdown), draining the batch early.
  CancellationToken cancel;
  index::QueryPriority priority = index::QueryPriority::kNormal;
};

/// What the server serves from. The two concrete backends wrap the
/// ShardRouter (production) and a bare QueryEngine; tests implement mocks
/// (e.g. a backend that blocks until cancelled) against the same
/// interface.
class ServeBackend {
 public:
  virtual ~ServeBackend() = default;

  /// Content epoch for result-cache tagging (see serve/result_cache.h).
  /// Must be read *before* Run so a concurrent mutation invalidates the
  /// entry this request inserts.
  virtual uint64_t ContentEpoch() const = 0;

  /// Executes one batch. Returns one WireResult per query, index-aligned;
  /// *stats (never null) receives the merged batch statistics.
  virtual std::vector<WireResult> Run(
      Op op, std::span<const std::vector<uint32_t>> queries,
      const BackendOptions& options, index::BatchStats* stats) = 0;
};

/// Production backend: scatter-gather over a ShardedIndex via ShardRouter,
/// with replica failover and all the router's degradation machinery.
class RouterBackend : public ServeBackend {
 public:
  struct Options {
    /// Forwarded into RouterOptions (see shard/shard_router.h).
    size_t num_threads = 0;
    size_t admission_capacity = 0;
    index::RetryPolicy retry;
    MemoryBudget* budget = nullptr;
    bool replica_failover = true;
    double hedge_delay_seconds = 0;
  };

  /// `index` must outlive the backend.
  RouterBackend(const shard::ShardedIndex* index, const Options& options);

  uint64_t ContentEpoch() const override;
  std::vector<WireResult> Run(Op op,
                              std::span<const std::vector<uint32_t>> queries,
                              const BackendOptions& options,
                              index::BatchStats* stats) override;

 private:
  const shard::ShardedIndex* index_;
  shard::ShardRouter router_;
  Options options_;
};

struct ServerOptions {
  /// IPv4 address to bind (the front door is a backend service; loopback
  /// by default).
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port — read the actual one from port().
  uint16_t port = 0;
  size_t num_workers = 4;
  size_t max_connections = 1024;
  /// Hard cap on one request line (newline included). Longer lines are
  /// refused with a JSON error and the connection is closed.
  size_t max_line_bytes = 1u << 20;
  ParseLimits limits;
  /// Ceiling on client-supplied deadlines; 0 leaves them unclamped.
  double max_deadline_seconds = 60.0;
  /// Budget connection input/output buffers are charged into; nullptr
  /// means MemoryBudget::Unlimited(). Must outlive the server.
  MemoryBudget* budget = nullptr;
  /// Result cache consulted before the backend; nullptr disables caching
  /// entirely (every request executes).
  ResultCache* cache = nullptr;
};

/// Monotonic server counters (snapshot; see Server::stats()).
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t connections_refused = 0;  ///< over max_connections or budget
  uint64_t requests = 0;
  uint64_t responses = 0;
  uint64_t parse_errors = 0;
  uint64_t oversized_lines = 0;
  uint64_t budget_refusals = 0;
  uint64_t cancelled_inflight = 0;  ///< requests cancelled by disconnect
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

class Server {
 public:
  /// `backend` (and options.cache/budget when set) must outlive the
  /// server.
  Server(ServeBackend* backend, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the epoll + worker threads. A bind/listen
  /// failure returns kUnavailable (the CLI maps it to exit code 8) and
  /// leaves nothing running. kFailedPrecondition if already started.
  Status Start();

  /// Stops accepting, cancels all in-flight requests, closes every
  /// connection, and joins all threads. Idempotent; the destructor calls
  /// it.
  void Shutdown();

  /// The bound port (the ephemeral one when options.port was 0); 0 before
  /// Start.
  uint16_t port() const { return port_; }

  ServerStatsSnapshot stats() const;

 private:
  struct Connection;
  /// One framed request line queued for a worker.
  struct Job {
    uint64_t conn_id = 0;
    std::string line;
    CancellationToken cancel;
  };
  /// One finished response headed back to the epoll thread.
  struct Completion {
    uint64_t conn_id = 0;
    std::string response;
    bool close_after = false;
  };

  void EpollLoop();
  void WorkerLoop();

  // --- epoll-thread helpers (only the epoll thread touches connection
  // state after Start) -------------------------------------------------
  void AcceptPending();
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  void CloseConnection(uint64_t conn_id, bool cancelled_by_peer);
  /// Frames complete lines out of the connection's input buffer and
  /// queues jobs (one in flight per connection; the rest pend).
  void FrameLines(Connection& conn);
  /// Dispatches the connection's next pending line if none is in flight.
  void DispatchNext(Connection& conn);
  void QueueResponse(Connection& conn, std::string response,
                     bool close_after);
  void DrainCompletions();
  /// Refuses the connection's current request with a JSON error line and
  /// closes it afterwards (oversized line / budget refusal).
  void RefuseAndClose(Connection& conn, const Status& error);

  /// Worker-side execution of one request line.
  std::string Execute(const Job& job);

  ServeBackend* backend_;
  ServerOptions options_;
  MemoryBudget* budget_;  // never null

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions + shutdown
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread epoll_thread_;
  std::vector<std::thread> workers_;

  // Worker job queue.
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;

  // Completions headed back to the epoll thread (paired with wake_fd_).
  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  // Connection table; epoll thread only.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  std::unordered_map<int, uint64_t> fd_to_conn_;
  uint64_t next_conn_id_ = 1;

  // Stats (atomics; any thread).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_open_{0};
  std::atomic<uint64_t> connections_refused_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> oversized_lines_{0};
  std::atomic<uint64_t> budget_refusals_{0};
  std::atomic<uint64_t> cancelled_inflight_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
};

}  // namespace fesia::serve

#endif  // FESIA_SERVE_SERVER_H_
