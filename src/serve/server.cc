#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/check.h"

namespace fesia::serve {

namespace {

/// Flat per-connection bookkeeping charge (socket, epoll slot, structs).
constexpr uint64_t kConnBaseBytes = 4096;
/// recv scratch chunk.
constexpr size_t kReadChunk = 16 * 1024;

std::string ErrnoMessage(const char* what) {
  std::string msg = what;
  msg += ": ";
  msg += std::strerror(errno);
  return msg;
}

}  // namespace

// ---------------------------------------------------------------------------
// RouterBackend

RouterBackend::RouterBackend(const shard::ShardedIndex* index,
                             const Options& options)
    : index_(index), router_(index), options_(options) {
  FESIA_CHECK(index != nullptr);
}

uint64_t RouterBackend::ContentEpoch() const {
  return index_->content_epoch();
}

std::vector<WireResult> RouterBackend::Run(
    Op op, std::span<const std::vector<uint32_t>> queries,
    const BackendOptions& options, index::BatchStats* stats) {
  shard::RouterOptions ropts;
  ropts.num_threads = options_.num_threads;
  ropts.admission_capacity = options_.admission_capacity;
  ropts.retry = options_.retry;
  ropts.budget = options_.budget;
  ropts.replica_failover = options_.replica_failover;
  ropts.hedge_delay_seconds = options_.hedge_delay_seconds;
  ropts.query_deadline_seconds = options.query_deadline_seconds;
  ropts.batch_deadline_seconds = options.batch_deadline_seconds;
  ropts.cancel = options.cancel;
  ropts.priority = options.priority;

  shard::ShardBatchStats routed_stats;
  std::vector<shard::RoutedQueryResult> routed =
      op == Op::kCount ? router_.CountBatch(queries, ropts, &routed_stats)
                       : router_.QueryBatch(queries, ropts, &routed_stats);

  std::vector<WireResult> out(routed.size());
  for (size_t i = 0; i < routed.size(); ++i) {
    const shard::RoutedQueryResult& r = routed[i];
    WireResult& w = out[i];
    w.outcome = r.outcome;
    w.code = r.status.code();
    w.count = r.count;
    w.docs = std::move(routed[i].docs);
    w.shards_answered = r.shards_answered;
    w.shards_total = r.shards_total;
    w.attempts = r.attempts;
    w.downgraded = r.downgraded;
    w.pressure_affected = r.pressure_affected;
  }
  if (stats != nullptr) *stats = routed_stats.merged;
  return out;
}

// ---------------------------------------------------------------------------
// Server

/// All connection state is owned by the epoll thread; workers only ever
/// see the connection id and a copy of the request's cancel token.
struct Server::Connection {
  uint64_t id = 0;
  int fd = -1;
  /// Unframed input bytes (at most one incomplete line after framing).
  std::string inbuf;
  /// Complete lines awaiting dispatch (one request in flight at a time
  /// keeps responses in request order).
  std::deque<std::string> pending_lines;
  /// Response bytes not yet accepted by the socket.
  std::string outbuf;
  size_t out_pos = 0;
  bool want_write = false;
  bool in_flight = false;
  CancellationToken inflight_cancel;
  /// Error already queued: flush the outbuf, then close; read no more.
  bool close_after_flush = false;
  /// Live budget charge covering inbuf + pending lines + unwritten
  /// outbuf + kConnBaseBytes.
  ScopedCharge charge;
};

Server::Server(ServeBackend* backend, const ServerOptions& options)
    : backend_(backend),
      options_(options),
      budget_(options.budget != nullptr ? options.budget
                                        : MemoryBudget::Unlimited()) {
  FESIA_CHECK(backend_ != nullptr);
  if (options_.num_workers == 0) options_.num_workers = 1;
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::Unavailable(ErrnoMessage("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("invalid bind address \"" +
                               options_.bind_address + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    Status err = Status::Unavailable(ErrnoMessage("bind/listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status err = Status::Unavailable(ErrnoMessage("epoll/eventfd"));
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return err;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  FESIA_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  FESIA_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  epoll_thread_ = std::thread([this] { EpollLoop(); });
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void Server::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the epoll thread; it cancels in-flight tokens and closes every
  // socket before exiting.
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (epoll_thread_.joinable()) epoll_thread_.join();
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.clear();
  }
  jobs_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

ServerStatsSnapshot Server::stats() const {
  ServerStatsSnapshot s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_open = connections_open_.load(std::memory_order_relaxed);
  s.connections_refused =
      connections_refused_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.oversized_lines = oversized_lines_.load(std::memory_order_relaxed);
  s.budget_refusals = budget_refusals_.load(std::memory_order_relaxed);
  s.cancelled_inflight =
      cancelled_inflight_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Epoll thread

void Server::EpollLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: shutting down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      auto found = fd_to_conn_.find(fd);
      if (found == fd_to_conn_.end()) continue;  // closed earlier this wake
      const uint64_t conn_id = found->second;
      if (ev & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(conn_id, /*cancelled_by_peer=*/true);
        continue;
      }
      if (ev & (EPOLLIN | EPOLLRDHUP)) {
        auto it = conns_.find(conn_id);
        if (it != conns_.end()) HandleReadable(*it->second);
      }
      if (ev & EPOLLOUT) {
        auto it = conns_.find(conn_id);  // may have closed in the read path
        if (it != conns_.end()) HandleWritable(*it->second);
      }
    }
    if (stopping_.load(std::memory_order_acquire)) break;
  }
  // Cancel everything in flight and drop every connection so workers
  // drain fast and no fd leaks.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) CloseConnection(id, /*cancelled_by_peer=*/false);
}

void Server::AcceptPending() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: nothing to accept
    if (conns_.size() >= options_.max_connections) {
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->charge = ScopedCharge(budget_);
    if (!conn->charge.Add(kConnBaseBytes, "serve connection").ok()) {
      // No budget for even the bookkeeping: refuse outright. The error
      // line is best-effort (the socket buffer almost always takes it).
      budget_refusals_.fetch_add(1, std::memory_order_relaxed);
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      const std::string line = BuildErrorLine(
          Status::ResourceExhausted("connection refused: memory budget"),
          nullptr);
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conn->id = next_conn_id_++;
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    fd_to_conn_[fd] = conn->id;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::HandleReadable(Connection& conn) {
  if (conn.close_after_flush) {
    // Already refusing: drain and discard so the peer's window opens for
    // our error line, but frame nothing new.
    char scratch[kReadChunk];
    while (::read(conn.fd, scratch, sizeof(scratch)) > 0) {
    }
    return;
  }
  const uint64_t conn_id = conn.id;
  while (true) {
    char scratch[kReadChunk];
    const ssize_t n = ::read(conn.fd, scratch, sizeof(scratch));
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_relaxed);
      if (!conn.charge
               .Add(static_cast<uint64_t>(n), "serve connection input")
               .ok()) {
        budget_refusals_.fetch_add(1, std::memory_order_relaxed);
        RefuseAndClose(conn, Status::ResourceExhausted(
                                 "request buffer exceeds memory budget"));
        return;
      }
      conn.inbuf.append(scratch, static_cast<size_t>(n));
      FrameLines(conn);
      // FrameLines can refuse (oversized line); stop touching the
      // connection once it is in teardown.
      if (conns_.find(conn_id) == conns_.end() || conn.close_after_flush) {
        return;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConnection(conn_id, /*cancelled_by_peer=*/true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn_id, /*cancelled_by_peer=*/true);
    return;
  }
  DispatchNext(conn);
}

void Server::FrameLines(Connection& conn) {
  size_t start = 0;
  bool oversized = false;
  while (true) {
    const size_t nl = conn.inbuf.find('\n', start);
    if (nl == std::string::npos) break;
    if (nl - start + 1 > options_.max_line_bytes) {
      // A complete-but-huge line is refused exactly like an unterminated
      // one — the cap bounds the line, not the read.
      oversized = true;
      break;
    }
    size_t len = nl - start;
    if (len > 0 && conn.inbuf[start + len - 1] == '\r') --len;
    if (len > 0) {
      // The line's bytes stay charged (moved from inbuf accounting to
      // pending-line accounting — same pool, no Add/Shrink needed for the
      // payload; only the framing bytes retire below).
      conn.pending_lines.emplace_back(conn.inbuf, start, len);
    }
    start = nl + 1;
  }
  if (start > 0) {
    // Retire the delimiter/CR/blank bytes that do not live on as pending
    // payload: recompute the target charge from what is actually held.
    // O(pending lines), fine at this scale.
    conn.inbuf.erase(0, start);
    uint64_t pending_payload = 0;
    for (const std::string& l : conn.pending_lines) {
      pending_payload += l.size();
    }
    // Total target charge: base + inbuf + pending + unwritten outbuf.
    const uint64_t target = kConnBaseBytes + conn.inbuf.size() +
                            pending_payload +
                            (conn.outbuf.size() - conn.out_pos);
    if (conn.charge.bytes() > target) {
      conn.charge.Shrink(conn.charge.bytes() - target);
    }
  }
  if (oversized || conn.inbuf.size() > options_.max_line_bytes) {
    oversized_lines_.fetch_add(1, std::memory_order_relaxed);
    RefuseAndClose(conn,
                   Status::ResourceExhausted(
                       "request line exceeds max_line_bytes (" +
                       std::to_string(options_.max_line_bytes) + ")"));
  }
}

void Server::DispatchNext(Connection& conn) {
  if (conn.in_flight || conn.close_after_flush ||
      conn.pending_lines.empty()) {
    return;
  }
  Job job;
  job.conn_id = conn.id;
  job.line = std::move(conn.pending_lines.front());
  conn.pending_lines.pop_front();
  job.cancel = CancellationToken::Create();
  conn.in_flight = true;
  conn.inflight_cancel = job.cancel;
  requests_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

void Server::QueueResponse(Connection& conn, std::string response,
                           bool close_after) {
  if (!conn.charge.Add(response.size(), "serve connection output").ok()) {
    // Cannot even buffer the response: tear the connection down (the
    // client observes a close instead of a reply, exactly like a crashed
    // peer — deterministic and budget-safe).
    budget_refusals_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn.id, /*cancelled_by_peer=*/false);
    return;
  }
  conn.outbuf += response;
  if (close_after) conn.close_after_flush = true;
  HandleWritable(conn);
}

void Server::HandleWritable(Connection& conn) {
  const uint64_t conn_id = conn.id;
  while (conn.out_pos < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_pos,
               conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn_id, /*cancelled_by_peer=*/true);
    return;
  }
  if (conn.out_pos >= conn.outbuf.size()) {
    // Fully flushed: compact and retire the output charge.
    conn.charge.Shrink(conn.outbuf.size());
    conn.outbuf.clear();
    conn.out_pos = 0;
    if (conn.want_write) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.fd = conn.fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
      conn.want_write = false;
    }
    if (conn.close_after_flush) {
      CloseConnection(conn_id, /*cancelled_by_peer=*/false);
    }
    return;
  }
  if (!conn.want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLOUT;
    ev.data.fd = conn.fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.want_write = true;
  }
}

void Server::RefuseAndClose(Connection& conn, const Status& error) {
  // Drop queued work; the error response is the connection's last line.
  conn.pending_lines.clear();
  QueueResponse(conn, BuildErrorLine(error, nullptr), /*close_after=*/true);
}

void Server::CloseConnection(uint64_t conn_id, bool cancelled_by_peer) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (conn.in_flight) {
    // The worker holds a copy of this token: the batch drains at its next
    // cancellation poll instead of finishing work nobody will read.
    conn.inflight_cancel.Cancel();
    if (cancelled_by_peer) {
      cancelled_inflight_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  fd_to_conn_.erase(conn.fd);
  ::close(conn.fd);  // epoll deregisters closed fds automatically
  conns_.erase(it);  // ScopedCharge returns every buffered byte
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::DrainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // client left; response is moot
    Connection& conn = *it->second;
    conn.in_flight = false;
    conn.inflight_cancel = CancellationToken();
    responses_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(conn, std::move(c.response), c.close_after);
    // QueueResponse may close the connection on budget refusal.
    auto again = conns_.find(c.conn_id);
    if (again != conns_.end()) DispatchNext(*again->second);
  }
}

// ---------------------------------------------------------------------------
// Workers

void Server::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock, [this] {
        return !jobs_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (jobs_.empty()) return;  // stopping
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    std::string response = Execute(job);
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(
          Completion{job.conn_id, std::move(response), false});
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

std::string Server::Execute(const Job& job) {
  Request request;
  Status parsed = ParseRequest(job.line, options_.limits, &request);
  if (!parsed.ok()) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    return BuildErrorLine(parsed, &request);
  }

  BackendOptions bopts;
  bopts.query_deadline_seconds = request.query_deadline_seconds;
  bopts.batch_deadline_seconds = request.batch_deadline_seconds;
  if (options_.max_deadline_seconds > 0) {
    if (bopts.query_deadline_seconds > options_.max_deadline_seconds) {
      bopts.query_deadline_seconds = options_.max_deadline_seconds;
    }
    if (bopts.batch_deadline_seconds > options_.max_deadline_seconds) {
      bopts.batch_deadline_seconds = options_.max_deadline_seconds;
    }
  }
  bopts.cancel = job.cancel;
  bopts.priority = request.priority;

  ResultCache* cache =
      (options_.cache != nullptr && request.use_cache) ? options_.cache
                                                       : nullptr;
  const size_t q = request.queries.size();
  std::vector<std::string> fragments(q);
  index::BatchStats stats;
  uint64_t hits = 0, misses = 0;

  if (cache == nullptr) {
    std::vector<WireResult> results =
        backend_->Run(request.op, request.queries, bopts, &stats);
    FESIA_CHECK(results.size() == q);
    for (size_t i = 0; i < q; ++i) {
      fragments[i] = BuildResultJson(results[i], request.op);
    }
    misses = q;
  } else {
    // Epoch before execution: a mutation that lands between here and the
    // insert bumps past this value and the inserted entries are already
    // stale — the cache can serve pre-mutation bytes only to requests
    // that began before the mutation was acknowledged.
    const uint64_t epoch = backend_->ContentEpoch();
    std::vector<std::string> keys(q);
    std::vector<size_t> miss_idx;
    for (size_t i = 0; i < q; ++i) {
      keys[i] = ResultCache::Key(static_cast<uint8_t>(request.op),
                                 request.queries[i]);
      if (cache->Lookup(keys[i], epoch, &fragments[i])) {
        ++hits;
      } else {
        miss_idx.push_back(i);
      }
    }
    misses = miss_idx.size();
    if (!miss_idx.empty()) {
      std::vector<std::vector<uint32_t>> miss_queries;
      miss_queries.reserve(miss_idx.size());
      for (size_t i : miss_idx) miss_queries.push_back(request.queries[i]);
      std::vector<WireResult> results =
          backend_->Run(request.op, miss_queries, bopts, &stats);
      FESIA_CHECK(results.size() == miss_idx.size());
      for (size_t k = 0; k < miss_idx.size(); ++k) {
        const size_t i = miss_idx[k];
        fragments[i] = BuildResultJson(results[k], request.op);
        // Cache only complete, successful answers: partial or degraded
        // outcomes depend on transient conditions, not index content.
        if (results[k].outcome == index::QueryOutcome::kOk &&
            results[k].shards_answered == results[k].shards_total) {
          cache->Insert(keys[i], epoch, fragments[i]);
        }
      }
    }
  }

  cache_hits_.fetch_add(hits, std::memory_order_relaxed);
  cache_misses_.fetch_add(misses, std::memory_order_relaxed);
  return BuildResponseLine(request, fragments, stats, hits, misses);
}

}  // namespace fesia::serve
