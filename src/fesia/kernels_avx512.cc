// AVX-512 (512-bit) kernel family: V = 16, table sizes 0..32.
//
// Comparisons produce mask registers (__mmask16) directly, so the OR-reduce
// and count steps run on masks instead of vectors.
#include <immintrin.h>

#include "fesia/kernels.h"
#include "fesia/kernels_impl.h"

namespace fesia::internal::avx512 {
namespace {

struct Avx512Ops {
  static constexpr int kLanes = 16;
  using Vec = __m512i;
  using Cmp = __mmask16;

  static Vec Load(const uint32_t* p) { return _mm512_loadu_si512(p); }
  static Vec Broadcast(uint32_t v) {
    return _mm512_set1_epi32(static_cast<int>(v));
  }
  static Cmp CmpEq(Vec a, Vec b) { return _mm512_cmpeq_epi32_mask(a, b); }
  static Cmp OrCmp(Cmp a, Cmp b) { return static_cast<Cmp>(a | b); }
  static Cmp EmptyCmp() { return 0; }
  static Cmp AndNotCmp(Cmp mask, Cmp v) {
    return static_cast<Cmp>(v & static_cast<Cmp>(~mask));
  }
  static uint32_t CountCmp(Cmp m) {
    return static_cast<uint32_t>(_mm_popcnt_u32(m));
  }
};

using Gen = KernelGen<Avx512Ops>;
constexpr auto kUnguarded = Gen::MakeTable<false>();
constexpr auto kGuarded = Gen::MakeTable<true>();

}  // namespace

const KernelTable& Kernels(bool guarded) {
  static constexpr KernelTable kTableUnguarded{Gen::kMaxSize, Gen::kV,
                                               kUnguarded.data()};
  static constexpr KernelTable kTableGuarded{Gen::kMaxSize, Gen::kV,
                                             kGuarded.data()};
  return guarded ? kTableGuarded : kTableUnguarded;
}

size_t SegmentInto(const uint32_t* a, uint32_t sa, const uint32_t* b,
                   uint32_t sb, uint32_t* out) {
  // AVX-512 can emit matched elements directly with a masked compress
  // store: accumulate the matched-lane mask per b vector, drop sentinel
  // lanes, then compress the matched values out in one instruction.
  // Matched lanes are ascending within a vector and across vectors, so the
  // output stays sorted like the generic path's.
  size_t k = 0;
  const __m512i sentinel = _mm512_set1_epi32(-1);
  for (uint32_t j = 0; j < sb; j += 16) {
    __m512i vb = _mm512_loadu_si512(b + j);
    __mmask16 acc = 0;
    for (uint32_t i = 0; i < sa; ++i) {
      uint32_t v = a[i];
      if (v == 0xFFFFFFFFu) break;  // stride padding; runs are ascending
      acc = static_cast<__mmask16>(
          acc | _mm512_cmpeq_epi32_mask(
                    _mm512_set1_epi32(static_cast<int>(v)), vb));
    }
    acc = static_cast<__mmask16>(
        acc & static_cast<__mmask16>(
                  ~_mm512_cmpeq_epi32_mask(sentinel, vb)));
    _mm512_mask_compressstoreu_epi32(out + k, acc, vb);
    k += _mm_popcnt_u32(acc);
  }
  return k;
}

bool ProbeRun(const uint32_t* run, uint32_t len, uint32_t key) {
  return Gen::ProbeRun(run, len, key);
}

}  // namespace fesia::internal::avx512
