// SSE backend: 128-bit bitmap chunks.
#include <immintrin.h>

#include "fesia/backends.h"
#include "fesia/intersect_impl.h"

namespace fesia::internal {
namespace sse {
namespace {

struct SseBitmapOps {
  static constexpr int kChunkBits = 128;

  template <int S>
  static uint64_t NonZeroMask(const uint64_t* a, const uint64_t* b) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    __m128i vand = _mm_and_si128(va, vb);
    __m128i zero = _mm_setzero_si128();
    if constexpr (S == 8) {
      // One bit per byte lane: movemask over "lane == 0", then invert.
      uint32_t z = static_cast<uint32_t>(
          _mm_movemask_epi8(_mm_cmpeq_epi8(vand, zero)));
      return (~z) & 0xFFFFu;
    } else if constexpr (S == 16) {
      // pack 16-bit compare results to bytes, then movemask: 8 bits.
      __m128i eq16 = _mm_cmpeq_epi16(vand, zero);
      uint32_t z = static_cast<uint32_t>(
          _mm_movemask_epi8(_mm_packs_epi16(eq16, zero)));
      return (~z) & 0xFFu;
    } else {
      static_assert(S == 32);
      uint32_t z = static_cast<uint32_t>(
          _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(vand, zero))));
      return (~z) & 0xFu;
    }
  }

  static uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b,
                                   uint32_t nwords, uint64_t* live) {
    // Hardware popcnt on the two 64-bit halves of each chunk beats a
    // 128-bit bit-slicing scheme at these block sizes; two accumulators
    // keep the popcnt false-dependency chains apart. One live bit per
    // 128-bit chunk.
    const uint32_t nchunks = nwords / 2;
    for (uint32_t i = 0; i < (nchunks + 63) / 64; ++i) live[i] = 0;
    uint64_t c0 = 0;
    uint64_t c1 = 0;
    for (uint32_t i = 0; i < nchunks; ++i) {
      const uint64_t w0 = a[2 * i] & b[2 * i];
      const uint64_t w1 = a[2 * i + 1] & b[2 * i + 1];
      c0 += static_cast<uint64_t>(_mm_popcnt_u64(w0));
      c1 += static_cast<uint64_t>(_mm_popcnt_u64(w1));
      live[i >> 6] |= static_cast<uint64_t>((w0 | w1) != 0) << (i & 63);
    }
    return c0 + c1;
  }
};

}  // namespace

uint64_t IntersectCount(const FesiaSet& a, const FesiaSet& b) {
  return EntryCount<SseBitmapOps>(a, b, &Kernels);
}

uint64_t IntersectCountRange(const FesiaSet& a, const FesiaSet& b,
                             uint32_t seg_begin, uint32_t seg_end) {
  return EntryCountRange<SseBitmapOps>(a, b, seg_begin, seg_end, &Kernels);
}

uint64_t IntersectCountFused(const FesiaSet& a, const FesiaSet& b) {
  return EntryCountFused<SseBitmapOps>(a, b, &Kernels);
}

uint64_t IntersectCountFusedRange(const FesiaSet& a, const FesiaSet& b,
                                  uint32_t seg_begin, uint32_t seg_end) {
  return EntryCountFusedRange<SseBitmapOps>(a, b, seg_begin, seg_end,
                                            &Kernels);
}

size_t IntersectInto(const FesiaSet& a, const FesiaSet& b, uint32_t* out) {
  return EntryInto<SseBitmapOps>(a, b, out, &SegmentInto);
}

size_t IntersectIntoRange(const FesiaSet& a, const FesiaSet& b,
                          uint32_t seg_begin, uint32_t seg_end,
                          uint32_t* out) {
  return EntryIntoRange<SseBitmapOps>(a, b, seg_begin, seg_end, out, &SegmentInto);
}

uint64_t IntersectCountInstrumented(const FesiaSet& a, const FesiaSet& b,
                                    IntersectBreakdown* breakdown) {
  return EntryCountInstrumented<SseBitmapOps>(a, b, breakdown, &Kernels);
}

}  // namespace sse
}  // namespace fesia::internal
