// AVX2 backend: 256-bit bitmap chunks.
#include <immintrin.h>

#include "fesia/backends.h"
#include "fesia/intersect_impl.h"

namespace fesia::internal {
namespace avx2 {
namespace {

struct Avx2BitmapOps {
  static constexpr int kChunkBits = 256;

  template <int S>
  static uint64_t NonZeroMask(const uint64_t* a, const uint64_t* b) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    __m256i vand = _mm256_and_si256(va, vb);
    __m256i zero = _mm256_setzero_si256();
    if constexpr (S == 8) {
      uint32_t z = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(vand, zero)));
      return ~static_cast<uint64_t>(z) & 0xFFFFFFFFull;
    } else if constexpr (S == 16) {
      // movemask gives 2 identical bits per 16-bit lane; keep the odd ones.
      uint32_t z = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi16(vand, zero)));
      uint32_t per_lane = _pext_u32(z, 0xAAAAAAAAu);
      return (~per_lane) & 0xFFFFu;
    } else {
      static_assert(S == 32);
      uint32_t z = static_cast<uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(vand, zero))));
      return (~z) & 0xFFu;
    }
  }
};

}  // namespace

uint64_t IntersectCount(const FesiaSet& a, const FesiaSet& b) {
  return EntryCount<Avx2BitmapOps>(a, b, &Kernels);
}

uint64_t IntersectCountRange(const FesiaSet& a, const FesiaSet& b,
                             uint32_t seg_begin, uint32_t seg_end) {
  return EntryCountRange<Avx2BitmapOps>(a, b, seg_begin, seg_end, &Kernels);
}

size_t IntersectInto(const FesiaSet& a, const FesiaSet& b, uint32_t* out) {
  return EntryInto<Avx2BitmapOps>(a, b, out, &SegmentInto);
}

size_t IntersectIntoRange(const FesiaSet& a, const FesiaSet& b,
                          uint32_t seg_begin, uint32_t seg_end,
                          uint32_t* out) {
  return EntryIntoRange<Avx2BitmapOps>(a, b, seg_begin, seg_end, out, &SegmentInto);
}

uint64_t IntersectCountInstrumented(const FesiaSet& a, const FesiaSet& b,
                                    IntersectBreakdown* breakdown) {
  return EntryCountInstrumented<Avx2BitmapOps>(a, b, breakdown, &Kernels);
}

}  // namespace avx2
}  // namespace fesia::internal
