// AVX2 backend: 256-bit bitmap chunks.
#include <immintrin.h>

#include "fesia/backends.h"
#include "fesia/intersect_impl.h"

namespace fesia::internal {
namespace avx2 {
namespace {

// In-register nibble-lookup popcount (Mula): per-byte counts via two
// vpshufb table probes, horizontally summed to four u64 lanes with vpsadbw.
inline __m256i Popcount256(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

// Carry-save adder: (h, l) = full add of bit-planes a, b, c.
inline void CSA(__m256i* h, __m256i* l, __m256i a, __m256i b, __m256i c) {
  __m256i u = _mm256_xor_si256(a, b);
  *h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  *l = _mm256_xor_si256(u, c);
}

struct Avx2BitmapOps {
  static constexpr int kChunkBits = 256;

  template <int S>
  static uint64_t NonZeroMask(const uint64_t* a, const uint64_t* b) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    __m256i vand = _mm256_and_si256(va, vb);
    __m256i zero = _mm256_setzero_si256();
    if constexpr (S == 8) {
      uint32_t z = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(vand, zero)));
      return ~static_cast<uint64_t>(z) & 0xFFFFFFFFull;
    } else if constexpr (S == 16) {
      // movemask gives 2 identical bits per 16-bit lane; keep the odd ones.
      uint32_t z = static_cast<uint32_t>(
          _mm256_movemask_epi8(_mm256_cmpeq_epi16(vand, zero)));
      uint32_t per_lane = _pext_u32(z, 0xAAAAAAAAu);
      return (~per_lane) & 0xFFFFu;
    } else {
      static_assert(S == 32);
      uint32_t z = static_cast<uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(vand, zero))));
      return (~z) & 0xFFu;
    }
  }

  // Harley-Seal fused AND+popcount: carry-save adders defer the popcount to
  // one lookup per 16 ANDed vectors, so the sweep runs at near load
  // bandwidth (Mula/Kurz/Lemire, "Faster Population Counts Using AVX2").
  static uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b,
                                   uint32_t nwords, uint64_t* live) {
    const uint32_t nvec = nwords / 4;
    for (uint32_t i = 0; i < (nvec + 63) / 64; ++i) live[i] = 0;
    // Each AND vector is one 256-bit chunk; vptest records its live bit on
    // the scalar ports while the CSA chain keeps the vector ports busy.
    auto load_and = [&](uint32_t i) {
      const __m256i v = _mm256_and_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * i)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4 * i)));
      live[i >> 6] |= static_cast<uint64_t>(!_mm256_testz_si256(v, v))
                      << (i & 63);
      return v;
    };
    __m256i total = _mm256_setzero_si256();
    __m256i ones = _mm256_setzero_si256();
    __m256i twos = _mm256_setzero_si256();
    __m256i fours = _mm256_setzero_si256();
    __m256i eights = _mm256_setzero_si256();
    __m256i twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens;
    uint32_t i = 0;
    for (; i + 16 <= nvec; i += 16) {
      CSA(&twosA, &ones, ones, load_and(i), load_and(i + 1));
      CSA(&twosB, &ones, ones, load_and(i + 2), load_and(i + 3));
      CSA(&foursA, &twos, twos, twosA, twosB);
      CSA(&twosA, &ones, ones, load_and(i + 4), load_and(i + 5));
      CSA(&twosB, &ones, ones, load_and(i + 6), load_and(i + 7));
      CSA(&foursB, &twos, twos, twosA, twosB);
      CSA(&eightsA, &fours, fours, foursA, foursB);
      CSA(&twosA, &ones, ones, load_and(i + 8), load_and(i + 9));
      CSA(&twosB, &ones, ones, load_and(i + 10), load_and(i + 11));
      CSA(&foursA, &twos, twos, twosA, twosB);
      CSA(&twosA, &ones, ones, load_and(i + 12), load_and(i + 13));
      CSA(&twosB, &ones, ones, load_and(i + 14), load_and(i + 15));
      CSA(&foursB, &twos, twos, twosA, twosB);
      CSA(&eightsB, &fours, fours, foursA, foursB);
      CSA(&sixteens, &eights, eights, eightsA, eightsB);
      total = _mm256_add_epi64(total, Popcount256(sixteens));
    }
    total = _mm256_slli_epi64(total, 4);
    total =
        _mm256_add_epi64(total, _mm256_slli_epi64(Popcount256(eights), 3));
    total =
        _mm256_add_epi64(total, _mm256_slli_epi64(Popcount256(fours), 2));
    total = _mm256_add_epi64(total, _mm256_slli_epi64(Popcount256(twos), 1));
    total = _mm256_add_epi64(total, Popcount256(ones));
    for (; i < nvec; ++i) {
      total = _mm256_add_epi64(total, Popcount256(load_and(i)));
    }
    uint64_t out[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), total);
    return out[0] + out[1] + out[2] + out[3];
  }
};

}  // namespace

uint64_t IntersectCount(const FesiaSet& a, const FesiaSet& b) {
  return EntryCount<Avx2BitmapOps>(a, b, &Kernels);
}

uint64_t IntersectCountRange(const FesiaSet& a, const FesiaSet& b,
                             uint32_t seg_begin, uint32_t seg_end) {
  return EntryCountRange<Avx2BitmapOps>(a, b, seg_begin, seg_end, &Kernels);
}

uint64_t IntersectCountFused(const FesiaSet& a, const FesiaSet& b) {
  return EntryCountFused<Avx2BitmapOps>(a, b, &Kernels);
}

uint64_t IntersectCountFusedRange(const FesiaSet& a, const FesiaSet& b,
                                  uint32_t seg_begin, uint32_t seg_end) {
  return EntryCountFusedRange<Avx2BitmapOps>(a, b, seg_begin, seg_end,
                                             &Kernels);
}

size_t IntersectInto(const FesiaSet& a, const FesiaSet& b, uint32_t* out) {
  return EntryInto<Avx2BitmapOps>(a, b, out, &SegmentInto);
}

size_t IntersectIntoRange(const FesiaSet& a, const FesiaSet& b,
                          uint32_t seg_begin, uint32_t seg_end,
                          uint32_t* out) {
  return EntryIntoRange<Avx2BitmapOps>(a, b, seg_begin, seg_end, out, &SegmentInto);
}

uint64_t IntersectCountInstrumented(const FesiaSet& a, const FesiaSet& b,
                                    IntersectBreakdown* breakdown) {
  return EntryCountInstrumented<Avx2BitmapOps>(a, b, breakdown, &Kernels);
}

}  // namespace avx2
}  // namespace fesia::internal
