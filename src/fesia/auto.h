// Automatic strategy selection between FESIAmerge and FESIAhash.
//
// Fig. 11 of the paper: the bitmap (merge) strategy wins when the inputs
// have similar sizes; the hash strategy wins under heavy skew, with the
// crossover at a size ratio of about 1/4. IntersectCountAuto applies that
// threshold.
#ifndef FESIA_FESIA_AUTO_H_
#define FESIA_FESIA_AUTO_H_

#include <cstddef>

#include "fesia/fesia_set.h"
#include "util/cpu.h"

namespace fesia {

/// The two pairwise execution strategies.
enum class IntersectStrategy {
  kMerge,  // bitmap-driven two-step pipeline (FESIAmerge)
  kHash,   // element-probe pipeline (FESIAhash)
};

/// Skew ratio min(n1,n2)/max(n1,n2) below which the hash strategy is chosen.
inline constexpr double kHashStrategySkewThreshold = 0.25;

/// Strategy the auto dispatcher would pick for this pair.
IntersectStrategy ChooseStrategy(const FesiaSet& a, const FesiaSet& b);

/// Intersection size using the automatically chosen strategy.
size_t IntersectCountAuto(const FesiaSet& a, const FesiaSet& b,
                          SimdLevel level = SimdLevel::kAuto);

}  // namespace fesia

#endif  // FESIA_FESIA_AUTO_H_
