// SSE4.2 (128-bit) kernel family: V = 4, table sizes 0..8.
#include <immintrin.h>

#include "fesia/kernels.h"
#include "fesia/kernels_impl.h"

namespace fesia::internal::sse {
namespace {

struct SseOps {
  static constexpr int kLanes = 4;
  using Vec = __m128i;
  using Cmp = __m128i;

  static Vec Load(const uint32_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static Vec Broadcast(uint32_t v) {
    return _mm_set1_epi32(static_cast<int>(v));
  }
  static Cmp CmpEq(Vec a, Vec b) { return _mm_cmpeq_epi32(a, b); }
  static Cmp OrCmp(Cmp a, Cmp b) { return _mm_or_si128(a, b); }
  static Cmp EmptyCmp() { return _mm_setzero_si128(); }
  static Cmp AndNotCmp(Cmp mask, Cmp v) { return _mm_andnot_si128(mask, v); }
  static uint32_t CountCmp(Cmp m) {
    return static_cast<uint32_t>(
        _mm_popcnt_u32(static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(m)))));
  }
};

using Gen = KernelGen<SseOps>;
constexpr auto kUnguarded = Gen::MakeTable<false>();
constexpr auto kGuarded = Gen::MakeTable<true>();

}  // namespace

const KernelTable& Kernels(bool guarded) {
  static constexpr KernelTable kTableUnguarded{Gen::kMaxSize, Gen::kV,
                                               kUnguarded.data()};
  static constexpr KernelTable kTableGuarded{Gen::kMaxSize, Gen::kV,
                                             kGuarded.data()};
  return guarded ? kTableGuarded : kTableUnguarded;
}

namespace {

// Byte-shuffle LUT: kCompressShuffle[m] front-packs the 32-bit lanes whose
// bit is set in m (pshufb-based compress for 4-lane vectors).
struct SseCompressLut {
  alignas(16) uint8_t shuffle[16][16];
};

constexpr SseCompressLut MakeSseCompressLut() {
  SseCompressLut lut{};
  for (int m = 0; m < 16; ++m) {
    int k = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((m >> lane) & 1) {
        for (int byte = 0; byte < 4; ++byte) {
          lut.shuffle[m][4 * k + byte] = static_cast<uint8_t>(4 * lane + byte);
        }
        ++k;
      }
    }
    for (; k < 4; ++k) {
      for (int byte = 0; byte < 4; ++byte) {
        lut.shuffle[m][4 * k + byte] = 0x80;  // zero the tail lanes
      }
    }
  }
  return lut;
}

constexpr SseCompressLut kSseLut = MakeSseCompressLut();

}  // namespace

size_t SegmentInto(const uint32_t* a, uint32_t sa, const uint32_t* b,
                   uint32_t sb, uint32_t* out) {
  // pshufb-based compress of matched b lanes (the SSE analogue of the
  // AVX2/AVX-512 paths): front-pack matched lanes into a temporary, copy
  // exactly the matched count out.
  size_t k = 0;
  const __m128i sentinel = _mm_set1_epi32(-1);
  for (uint32_t j = 0; j < sb; j += 4) {
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i acc = _mm_setzero_si128();
    for (uint32_t i = 0; i < sa; ++i) {
      uint32_t v = a[i];
      if (v == 0xFFFFFFFFu) break;  // stride padding; runs are ascending
      acc = _mm_or_si128(
          acc, _mm_cmpeq_epi32(_mm_set1_epi32(static_cast<int>(v)), vb));
    }
    acc = _mm_andnot_si128(_mm_cmpeq_epi32(sentinel, vb), acc);
    auto mask = static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(acc)));
    if (mask == 0) continue;
    __m128i packed = _mm_shuffle_epi8(
        vb, _mm_load_si128(
                reinterpret_cast<const __m128i*>(kSseLut.shuffle[mask])));
    alignas(16) uint32_t tmp[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), packed);
    uint32_t count = static_cast<uint32_t>(_mm_popcnt_u32(mask));
    for (uint32_t c = 0; c < count; ++c) out[k + c] = tmp[c];
    k += count;
  }
  return k;
}

bool ProbeRun(const uint32_t* run, uint32_t len, uint32_t key) {
  return Gen::ProbeRun(run, len, key);
}

}  // namespace fesia::internal::sse
