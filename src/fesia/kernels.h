// Specialized segment-intersection kernels (paper Sec. V).
//
// After the bitmap step, FESIA intersects many tiny sorted runs (one pair
// per surviving segment). A *kernel* is a fully-unrolled SIMD intersection
// function for one exact size pair (Sa, Sb); kernels live in a jump table
// indexed by the pair so dispatch is a single indirect call (paper Listing 2).
//
// Each ISA level exposes two jump tables:
//  * unguarded — assumes both runs hold only real elements (stride-1 builds);
//  * guarded   — additionally masks out padding-sentinel lanes, required
//    when either set was built with kernel_stride > 1, because then both
//    runs may end in 0xFFFFFFFF sentinels that would otherwise match each
//    other.
//
// Both tables cover sizes 0..2V per side (V = 32-bit lanes per vector);
// larger runs fall back to ScalarSegmentCount. The "general" kernel the
// paper compares against in Figs. 4-6 is simply the table entry at the
// vector-rounded size pair.
#ifndef FESIA_FESIA_KERNELS_H_
#define FESIA_FESIA_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace fesia::internal {

/// Counts common elements of the two runs the kernel was specialized for.
/// Sizes are compile-time properties of the kernel; only pointers pass.
using SegKernelFn = uint32_t (*)(const uint32_t* a, const uint32_t* b);

/// One jump table: (max_size + 1)² kernels, row-major by the first size.
struct KernelTable {
  int max_size;            // kernels exist for sizes 0..max_size per side
  int lanes;               // V: 32-bit lanes per vector at this ISA level
  const SegKernelFn* fns;  // (max_size + 1)² entries

  SegKernelFn At(uint32_t sa, uint32_t sb) const {
    return fns[sa * static_cast<uint32_t>(max_size + 1) + sb];
  }
  size_t num_entries() const {
    return static_cast<size_t>(max_size + 1) * static_cast<size_t>(max_size + 1);
  }
};

/// Sentinel-aware scalar merge over two runs; the fallback for runs larger
/// than the kernel table and the reference the kernels are tested against.
uint32_t ScalarSegmentCount(const uint32_t* a, uint32_t sa, const uint32_t* b,
                            uint32_t sb);

/// Sentinel-aware materializing scalar merge. Returns the match count.
size_t ScalarSegmentInto(const uint32_t* a, uint32_t sa, const uint32_t* b,
                         uint32_t sb, uint32_t* out);

/// Sentinel-aware scalar membership probe of a run.
bool ScalarProbeRun(const uint32_t* run, uint32_t len, uint32_t key);

// Per-ISA kernel tables and runtime-size segment helpers. Every function is
// compiled in its own translation unit with the matching -m flags; callers
// must consult util/cpu.h before invoking a level the host lacks.
namespace sse {
const KernelTable& Kernels(bool guarded);
size_t SegmentInto(const uint32_t* a, uint32_t sa, const uint32_t* b,
                   uint32_t sb, uint32_t* out);
bool ProbeRun(const uint32_t* run, uint32_t len, uint32_t key);
}  // namespace sse

namespace avx2 {
const KernelTable& Kernels(bool guarded);
size_t SegmentInto(const uint32_t* a, uint32_t sa, const uint32_t* b,
                   uint32_t sb, uint32_t* out);
bool ProbeRun(const uint32_t* run, uint32_t len, uint32_t key);
}  // namespace avx2

namespace avx512 {
const KernelTable& Kernels(bool guarded);
size_t SegmentInto(const uint32_t* a, uint32_t sa, const uint32_t* b,
                   uint32_t sb, uint32_t* out);
bool ProbeRun(const uint32_t* run, uint32_t len, uint32_t key);
}  // namespace avx512

}  // namespace fesia::internal

#endif  // FESIA_FESIA_KERNELS_H_
