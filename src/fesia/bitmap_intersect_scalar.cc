// Portable scalar backend: 64-bit-word bitmap chunks, scalar segment merges.
// This is the correctness reference the SIMD backends are tested against.
#include "fesia/backends.h"
#include "fesia/intersect_impl.h"

namespace fesia::internal {
namespace scalar {
namespace {

struct ScalarBitmapOps {
  static constexpr int kChunkBits = 64;

  template <int S>
  static uint64_t NonZeroMask(const uint64_t* a, const uint64_t* b) {
    uint64_t word = *a & *b;
    if (word == 0) return 0;
    constexpr int kSegs = 64 / S;
    constexpr uint64_t kSegMask =
        S == 64 ? ~uint64_t{0} : ((uint64_t{1} << S) - 1);
    uint64_t mask = 0;
    for (int g = 0; g < kSegs; ++g) {
      if (((word >> (g * S)) & kSegMask) != 0) mask |= uint64_t{1} << g;
    }
    return mask;
  }

  static uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b,
                                   uint32_t nwords, uint64_t* live) {
    // Chunk == one 64-bit word here, so the live mask is word granularity.
    for (uint32_t i = 0; i < (nwords + 63) / 64; ++i) live[i] = 0;
    uint64_t c = 0;
    for (uint32_t i = 0; i < nwords; ++i) {
      const uint64_t w = a[i] & b[i];
      c += static_cast<uint64_t>(PopCount64(w));
      live[i >> 6] |= static_cast<uint64_t>(w != 0) << (i & 63);
    }
    return c;
  }
};

// The scalar backend has no specialized kernels: a zero-size-only table
// forces every surviving segment through the scalar fallback merge.
uint32_t ZeroKernel(const uint32_t*, const uint32_t*) { return 0; }
constexpr SegKernelFn kScalarFns[1] = {&ZeroKernel};

}  // namespace

const KernelTable& Kernels(bool /*guarded*/) {
  static constexpr KernelTable kTable{0, 1, kScalarFns};
  return kTable;
}

size_t SegmentInto(const uint32_t* a, uint32_t sa, const uint32_t* b,
                   uint32_t sb, uint32_t* out) {
  return ScalarSegmentInto(a, sa, b, sb, out);
}

bool ProbeRun(const uint32_t* run, uint32_t len, uint32_t key) {
  return ScalarProbeRun(run, len, key);
}

uint64_t IntersectCount(const FesiaSet& a, const FesiaSet& b) {
  return EntryCount<ScalarBitmapOps>(a, b, &Kernels);
}

uint64_t IntersectCountRange(const FesiaSet& a, const FesiaSet& b,
                             uint32_t seg_begin, uint32_t seg_end) {
  return EntryCountRange<ScalarBitmapOps>(a, b, seg_begin, seg_end, &Kernels);
}

uint64_t IntersectCountFused(const FesiaSet& a, const FesiaSet& b) {
  return EntryCountFused<ScalarBitmapOps>(a, b, &Kernels);
}

uint64_t IntersectCountFusedRange(const FesiaSet& a, const FesiaSet& b,
                                  uint32_t seg_begin, uint32_t seg_end) {
  return EntryCountFusedRange<ScalarBitmapOps>(a, b, seg_begin, seg_end,
                                               &Kernels);
}

size_t IntersectInto(const FesiaSet& a, const FesiaSet& b, uint32_t* out) {
  return EntryInto<ScalarBitmapOps>(a, b, out, &ScalarSegmentInto);
}

size_t IntersectIntoRange(const FesiaSet& a, const FesiaSet& b,
                          uint32_t seg_begin, uint32_t seg_end,
                          uint32_t* out) {
  return EntryIntoRange<ScalarBitmapOps>(a, b, seg_begin, seg_end, out, &ScalarSegmentInto);
}

uint64_t IntersectCountInstrumented(const FesiaSet& a, const FesiaSet& b,
                                    IntersectBreakdown* breakdown) {
  return EntryCountInstrumented<ScalarBitmapOps>(a, b, breakdown, &Kernels);
}

}  // namespace scalar
}  // namespace fesia::internal
