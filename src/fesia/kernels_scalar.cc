// Sentinel-aware scalar segment primitives: the portable fallback for runs
// exceeding the kernel tables and the reference implementation the SIMD
// kernels are validated against.
#include "fesia/kernels.h"

namespace fesia::internal {
namespace {

constexpr uint32_t kSentinel = 0xFFFFFFFFu;

}  // namespace

uint32_t ScalarSegmentCount(const uint32_t* a, uint32_t sa, const uint32_t* b,
                            uint32_t sb) {
  uint32_t i = 0, j = 0, r = 0;
  while (i < sa && j < sb) {
    uint32_t va = a[i];
    uint32_t vb = b[j];
    // Runs are ascending with sentinel padding at the end; once both sides
    // reach padding there is nothing left to match.
    if (va == kSentinel && vb == kSentinel) break;
    if (va < vb) {
      ++i;
    } else if (va > vb) {
      ++j;
    } else {
      ++i;
      ++j;
      ++r;
    }
  }
  return r;
}

size_t ScalarSegmentInto(const uint32_t* a, uint32_t sa, const uint32_t* b,
                         uint32_t sb, uint32_t* out) {
  uint32_t i = 0, j = 0;
  size_t r = 0;
  while (i < sa && j < sb) {
    uint32_t va = a[i];
    uint32_t vb = b[j];
    if (va == kSentinel && vb == kSentinel) break;
    if (va < vb) {
      ++i;
    } else if (va > vb) {
      ++j;
    } else {
      out[r++] = va;
      ++i;
      ++j;
    }
  }
  return r;
}

bool ScalarProbeRun(const uint32_t* run, uint32_t len, uint32_t key) {
  for (uint32_t i = 0; i < len; ++i) {
    if (run[i] == key) return true;
    if (run[i] > key) return false;  // ascending; sentinel sorts last
  }
  return false;
}

}  // namespace fesia::internal
