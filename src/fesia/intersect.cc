#include "fesia/intersect.h"

#include <algorithm>

#include "fesia/backend_health.h"
#include "fesia/backends.h"
#include "util/check.h"

namespace fesia {
namespace internal {

const Backend& GetBackendRaw(SimdLevel level) {
  static const Backend kBackends[] = {
      {SimdLevel::kScalar, &scalar::IntersectCount,
       &scalar::IntersectCountRange, &scalar::IntersectCountFused,
       &scalar::IntersectCountFusedRange, &scalar::IntersectInto,
       &scalar::IntersectIntoRange, &scalar::IntersectCountInstrumented,
       &scalar::Kernels, &scalar::SegmentInto, &scalar::ProbeRun},
      {SimdLevel::kSse, &sse::IntersectCount, &sse::IntersectCountRange,
       &sse::IntersectCountFused, &sse::IntersectCountFusedRange,
       &sse::IntersectInto, &sse::IntersectIntoRange,
       &sse::IntersectCountInstrumented, &sse::Kernels, &sse::SegmentInto,
       &sse::ProbeRun},
      {SimdLevel::kAvx2, &avx2::IntersectCount, &avx2::IntersectCountRange,
       &avx2::IntersectCountFused, &avx2::IntersectCountFusedRange,
       &avx2::IntersectInto, &avx2::IntersectIntoRange,
       &avx2::IntersectCountInstrumented, &avx2::Kernels, &avx2::SegmentInto,
       &avx2::ProbeRun},
      {SimdLevel::kAvx512, &avx512::IntersectCount,
       &avx512::IntersectCountRange, &avx512::IntersectCountFused,
       &avx512::IntersectCountFusedRange, &avx512::IntersectInto,
       &avx512::IntersectIntoRange, &avx512::IntersectCountInstrumented,
       &avx512::Kernels, &avx512::SegmentInto, &avx512::ProbeRun},
  };
  FESIA_CHECK(level != SimdLevel::kAuto);
  return kBackends[static_cast<int>(level)];
}

const Backend& GetBackend(SimdLevel level) {
  SimdLevel resolved = ResolveSimdLevel(level);
  // Never dispatch to a backend the startup self-check quarantined.
  SimdLevel effective = EffectiveSimdLevel();
  if (static_cast<int>(resolved) > static_cast<int>(effective)) {
    resolved = effective;
  }
  return GetBackendRaw(resolved);
}

uint32_t SegmentChunk(SimdLevel level, int segment_bits) {
  int chunk_bits = 64;
  switch (ResolveSimdLevel(level)) {
    case SimdLevel::kScalar:
      chunk_bits = 64;
      break;
    case SimdLevel::kSse:
      chunk_bits = 128;
      break;
    case SimdLevel::kAvx2:
      chunk_bits = 256;
      break;
    default:
      chunk_bits = 512;
      break;
  }
  return static_cast<uint32_t>(chunk_bits / segment_bits);
}

}  // namespace internal

size_t IntersectCount(const FesiaSet& a, const FesiaSet& b, SimdLevel level) {
  return internal::GetBackend(level).count(a, b);
}

size_t IntersectCountFused(const FesiaSet& a, const FesiaSet& b,
                           SimdLevel level) {
  return internal::GetBackend(level).count_fused(a, b);
}

size_t IntersectInto(const FesiaSet& a, const FesiaSet& b,
                     std::vector<uint32_t>* out, bool sort_output,
                     SimdLevel level) {
  FESIA_CHECK(out != nullptr);
  // +1: the branchless segment emitters may write one slot past the final
  // count before discarding a non-match.
  out->resize(std::min(a.size(), b.size()) + 1);
  size_t r = internal::GetBackend(level).into(a, b, out->data());
  out->resize(r);
  if (sort_output) std::sort(out->begin(), out->end());
  return r;
}

size_t IntersectCountInstrumented(const FesiaSet& a, const FesiaSet& b,
                                  IntersectBreakdown* breakdown,
                                  SimdLevel level) {
  FESIA_CHECK(breakdown != nullptr);
  return internal::GetBackend(level).count_instrumented(a, b, breakdown);
}

}  // namespace fesia
