// FESIAhash: the skewed-input strategy (paper Sec. VI).
//
// When n1 << n2, walking both bitmaps costs O(m2/w) regardless of n1. The
// hash strategy instead iterates the smaller set's elements and probes each
// one against the larger set's bitmap bit and, on a hit, its segment run —
// O(min(n1, n2)) expected, the hash-join bound. Fig. 11 shows the crossover
// against the merge strategy at a skew of roughly 1/4.
#ifndef FESIA_FESIA_INTERSECT_HASH_H_
#define FESIA_FESIA_INTERSECT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fesia/fesia_set.h"
#include "util/cpu.h"

namespace fesia {

/// Intersection size via the hash strategy. Sides are ordered internally;
/// the smaller set drives the probes.
size_t IntersectCountHash(const FesiaSet& a, const FesiaSet& b,
                          SimdLevel level = SimdLevel::kAuto);

/// Materializing hash-strategy intersection; `out` is overwritten, in
/// ascending order when sort_output is set. Returns the intersection size.
size_t IntersectIntoHash(const FesiaSet& a, const FesiaSet& b,
                         std::vector<uint32_t>* out, bool sort_output = true,
                         SimdLevel level = SimdLevel::kAuto);

}  // namespace fesia

#endif  // FESIA_FESIA_INTERSECT_HASH_H_
