#include "fesia/intersect_hash.h"

#include <algorithm>

#include "fesia/backends.h"
#include "fesia/hashing.h"
#include "util/check.h"

namespace fesia {
namespace {

template <typename Emit>
size_t HashIntersectImpl(const FesiaSet& a, const FesiaSet& b,
                         SimdLevel level, Emit emit) {
  const FesiaSet& small = a.size() <= b.size() ? a : b;
  const FesiaSet& large = a.size() <= b.size() ? b : a;
  if (small.empty() || large.empty()) return 0;

  const internal::Backend& backend = internal::GetBackend(level);
  const uint32_t m_mask = large.bitmap_bits() - 1;
  const uint32_t s = static_cast<uint32_t>(large.segment_bits());
  const uint32_t* elems = small.reordered();
  const uint32_t n = small.reordered_size();
  size_t r = 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t v = elems[i];
    if (v == FesiaSet::kSentinel) continue;  // stride padding slot
    uint32_t bit = HashToBit(v, m_mask);
    if (!large.TestBit(bit)) continue;
    uint32_t seg = bit / s;
    if (backend.probe_run(large.SegmentData(seg), large.SegmentSize(seg),
                          v)) {
      emit(v);
      ++r;
    }
  }
  return r;
}

}  // namespace

size_t IntersectCountHash(const FesiaSet& a, const FesiaSet& b,
                          SimdLevel level) {
  return HashIntersectImpl(a, b, level, [](uint32_t) {});
}

size_t IntersectIntoHash(const FesiaSet& a, const FesiaSet& b,
                         std::vector<uint32_t>* out, bool sort_output,
                         SimdLevel level) {
  FESIA_CHECK(out != nullptr);
  out->clear();
  size_t r = HashIntersectImpl(a, b, level,
                               [out](uint32_t v) { out->push_back(v); });
  if (sort_output) std::sort(out->begin(), out->end());
  return r;
}

}  // namespace fesia
