// Shared two-step intersection pipeline, templated on a per-ISA bitmap
// policy. Included ONLY by the bitmap_intersect_*.cc translation units.
//
// The policy BOps supplies:
//   static constexpr int kChunkBits;   // bitmap bits ANDed per iteration
//   template <int S>
//   static uint64_t NonZeroMask(const uint64_t* a, const uint64_t* b);
//     // AND one chunk of both bitmaps and return a bitmask with one bit per
//     // S-bit segment lane that is non-zero (paper Sec. IV steps 1-3).
//   static uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b,
//                                    uint32_t nwords, uint64_t* live);
//     // Fused popcount(a[i] & b[i]) over [0, nwords); nwords is always a
//     // multiple of kChunkBits / 64, so implementations need no sub-chunk
//     // tail handling. While the AND streams through the popcount, the
//     // implementation also writes a live-chunk summary into `live`: bit c
//     // of live[c / 64] is set iff chunk c (kChunkBits of the AND) is
//     // non-zero. Exactly ceil((nwords / (kChunkBits/64)) / 64) words of
//     // `live` are written (zeroed first). Used by the count-only blocked
//     // sweep, whose extraction pass visits only live chunks.
//
// The pipeline walks the larger bitmap chunk by chunk; the smaller bitmap
// wraps (segment i pairs with segment i mod N_small, paper Sec. III-C).
// Surviving segment indices are extracted with tzcnt and dispatched through
// the kernel jump table (paper Sec. V-A); runs larger than the table fall
// back to a sentinel-aware scalar merge.
#ifndef FESIA_FESIA_INTERSECT_IMPL_H_
#define FESIA_FESIA_INTERSECT_IMPL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fesia/fesia_set.h"
#include "fesia/intersect.h"
#include "fesia/kernels.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/timer.h"

namespace fesia::internal {

template <typename BOps>
struct Pipeline {
  // Words swept per block by the fused count-only path: 4 KiB per bitmap,
  // so one block of both sides plus the deferred index buffer stays L1-hot
  // across the AND+popcount pass and the extraction re-read.
  static constexpr uint32_t kFusedBlockWords = 512;

  // One chunk's worth of the small bitmap. When the small bitmap is
  // narrower than one chunk — possible since the bitmap floor is a single
  // 64-bit word — NonZeroMask would otherwise read past it and see zero
  // padding where wrapped segments belong, silently dropping matches (and
  // `bseg0 + t` would index past the small offsets). The fix: tile the
  // small bitmap's words across a chunk-sized stack copy so every lane
  // sees the segment it aliases to. Whole-word tiling is exact because S
  // divides 64, so segments never straddle words.
  struct SmallChunk {
    static constexpr uint32_t kWords = BOps::kChunkBits / 64;
    alignas(64) uint64_t tiled[kWords];
    const uint64_t* base;
    bool tile = false;

    void Init(const FesiaSet& small) {
      base = small.bitmap_words();
      const uint32_t nwords =
          static_cast<uint32_t>(small.bitmap_bits() / 64);
      tile = nwords < kWords;
      if (!tile) return;
      for (uint32_t w = 0; w < kWords; ++w) {
        tiled[w] = base[w & (nwords - 1)];
      }
    }

    // Chunk pointer for the small-side word offset `bword` (which is 0
    // whenever tiling is active: chunk starts are multiples of the small
    // segment count).
    const uint64_t* Get(size_t bword) const {
      return tile ? tiled : base + bword;
    }
  };

  // Orders the pair as (more segments, fewer segments).
  static void OrderBySegments(const FesiaSet& a, const FesiaSet& b,
                              const FesiaSet** big, const FesiaSet** small) {
    if (a.num_segments() >= b.num_segments()) {
      *big = &a;
      *small = &b;
    } else {
      *big = &b;
      *small = &a;
    }
  }

  static bool Compatible(const FesiaSet& a, const FesiaSet& b) {
    return a.segment_bits() == b.segment_bits();
  }

  // Alias-hazard guard for pairs with different bitmap sizes. A kernel may
  // over-read whole vectors from the bigger set's run; those lanes belong to
  // LATER segments of the big set. With equal bitmap sizes a later segment
  // can never pair with the same small segment again, so a lane value equal
  // to a broadcast element is impossible. With different sizes, segment
  // as + k*N_small aliases back onto the same small segment, and a real
  // element there may legitimately equal a broadcast element (it would then
  // be double-counted there and at its home segment). The kernel's big-side
  // loads never extend past offa[as] + roundup(sa, lanes), so the dispatch
  // is safe iff that window ends before segment as + N_small begins.
  static bool DispatchSafe(bool same_m, const uint32_t* offa, uint32_t as,
                           uint32_t sa, uint32_t nsmall_segs,
                           uint32_t nbig_segs, uint32_t lanes) {
    if (same_m) return true;
    uint32_t alias_seg = as + nsmall_segs;
    if (alias_seg >= nbig_segs) return true;  // window ends in the tail pad
    uint32_t load_end = offa[as] + ((sa + lanes - 1) / lanes) * lanes;
    return offa[alias_seg] >= load_end;
  }

  template <int S>
  static uint64_t CountRange(const FesiaSet& big, const FesiaSet& small,
                             uint32_t seg_begin, uint32_t seg_end,
                             const KernelTable& kt) {
    constexpr uint32_t kSegsPerChunk = BOps::kChunkBits / S;
    const uint64_t* wa = big.bitmap_words();
    const uint32_t nb_mask = small.num_segments() - 1;
    const uint32_t nbig_segs = big.num_segments();
    const bool same_m = small.num_segments() == nbig_segs;
    const uint32_t lanes = static_cast<uint32_t>(kt.lanes);
    const uint32_t* offa = big.offsets();
    const uint32_t* offb = small.offsets();
    const uint32_t* ra = big.reordered();
    const uint32_t* rb = small.reordered();
    const uint32_t kmax = static_cast<uint32_t>(kt.max_size);

    SmallChunk sc;
    sc.Init(small);

    uint64_t count = 0;
    for (uint32_t seg0 = seg_begin; seg0 < seg_end; seg0 += kSegsPerChunk) {
      uint32_t bseg0 = seg0 & nb_mask;
      uint64_t mask = BOps::template NonZeroMask<S>(
          wa + static_cast<size_t>(seg0) * S / 64,
          sc.Get(static_cast<size_t>(bseg0) * S / 64));
      while (mask != 0) {
        uint32_t t = static_cast<uint32_t>(CountTrailingZeros64(mask));
        mask = ClearLowestBit(mask);
        uint32_t as = seg0 + t;
        // Re-mod per lane: bseg0 + t overruns the small segment space when
        // the small bitmap wraps inside one chunk.
        uint32_t bs = as & nb_mask;
        uint32_t sa = offa[as + 1] - offa[as];
        uint32_t sb = offb[bs + 1] - offb[bs];
        const uint32_t* pa = ra + offa[as];
        const uint32_t* pb = rb + offb[bs];
        if (sa <= kmax && sb <= kmax &&
            DispatchSafe(same_m, offa, as, sa, nb_mask + 1, nbig_segs,
                         lanes)) {
          count += kt.At(sa, sb)(pa, pb);
        } else {
          count += ScalarSegmentCount(pa, sa, pb, sb);
        }
      }
    }
    return count;
  }

  // Cache-blocked count-only pipeline. Pass 1 sweeps one L1-sized block of
  // the bitmap pair with the backend's fused AND + carry-save popcount —
  // no extraction, no kernel calls — while recording a live-chunk bitmask,
  // and skips the block entirely when the popcount is zero (no surviving
  // bit implies no surviving segment). Pass 2 tzcnt-walks the live mask and
  // re-reads only the surviving chunks, now L1-hot, batching surviving
  // segment indices into a deferred stack buffer; the kernel jump table is
  // drained after the sweep with a dispatch predicate identical to
  // CountRange's, so the result is byte-identical to the interleaved path
  // (enforced by the countpath oracle tests).
  template <int S>
  static uint64_t CountFusedRange(const FesiaSet& big, const FesiaSet& small,
                                  uint32_t seg_begin, uint32_t seg_end,
                                  const KernelTable& kt) {
    constexpr uint32_t kSegsPerChunk = BOps::kChunkBits / S;
    constexpr uint32_t kChunkWords = BOps::kChunkBits / 64;
    constexpr uint32_t kSegsPerWord = 64 / S;
    // A sub-chunk small bitmap needs lane tiling; the interleaved path
    // handles that, and such pairs are too small for blocking to matter.
    if (small.num_segments() < kSegsPerChunk) {
      return CountRange<S>(big, small, seg_begin, seg_end, kt);
    }
    const uint64_t* wa = big.bitmap_words();
    const uint64_t* wb = small.bitmap_words();
    const uint32_t nsmall = small.num_segments();
    const uint32_t nb_mask = nsmall - 1;
    const uint32_t nbig_segs = big.num_segments();
    const bool same_m = nsmall == nbig_segs;
    const uint32_t lanes = static_cast<uint32_t>(kt.lanes);
    const uint32_t* offa = big.offsets();
    const uint32_t* offb = small.offsets();
    const uint32_t* ra = big.reordered();
    const uint32_t* rb = small.reordered();
    const uint32_t kmax = static_cast<uint32_t>(kt.max_size);

    const uint32_t nsmall_words = nsmall / kSegsPerWord;
    const uint32_t sw_mask = nsmall_words - 1;
    // Block size: L1 cap, clamped to the small bitmap. Both are powers of
    // two >= kChunkWords, so block boundaries are chunk-aligned and each
    // block's small-side word window is contiguous (never spans the wrap
    // seam).
    const uint32_t block = std::min(kFusedBlockWords, nsmall_words);
    const uint32_t word_begin = seg_begin / kSegsPerWord;
    const uint32_t word_end = seg_end / kSegsPerWord;

    // Deferred surviving-segment buffer: worst case every segment of a
    // block survives (16 KiB at S = 8). The live-chunk mask from pass 1 is
    // one bit per kChunkBits chunk of the block.
    uint32_t surv[kFusedBlockWords * (64 / S)];
    uint64_t live[(kFusedBlockWords / kChunkWords + 63) / 64];

    uint64_t count = 0;
    uint32_t w0 = word_begin;
    while (w0 < word_end) {
      // End each block at the next block-aligned boundary: seg_begin is
      // only chunk-aligned, and an unaligned block start must not push the
      // small-side window past the wrap seam.
      const uint32_t bw =
          std::min(block - (w0 & (block - 1)), word_end - w0);
      const uint64_t* pa = wa + w0;
      const uint64_t* pb = wb + (w0 & sw_mask);
      if (BOps::AndPopcountWords(pa, pb, bw, live) != 0) {
        const uint32_t nlive = (bw / kChunkWords + 63) / 64;
        uint32_t nsurv = 0;
        for (uint32_t lw = 0; lw < nlive; ++lw) {
          uint64_t lm = live[lw];
          while (lm != 0) {
            const uint32_t c =
                lw * 64 + static_cast<uint32_t>(CountTrailingZeros64(lm));
            lm = ClearLowestBit(lm);
            const uint32_t cw = c * kChunkWords;
            uint64_t mask = BOps::template NonZeroMask<S>(pa + cw, pb + cw);
            const uint32_t seg0 = (w0 + cw) * kSegsPerWord;
            while (mask != 0) {
              uint32_t t = static_cast<uint32_t>(CountTrailingZeros64(mask));
              mask = ClearLowestBit(mask);
              surv[nsurv++] = seg0 + t;
            }
          }
        }
        for (uint32_t i = 0; i < nsurv; ++i) {
          const uint32_t as = surv[i];
          const uint32_t bs = as & nb_mask;
          const uint32_t sa = offa[as + 1] - offa[as];
          const uint32_t sb = offb[bs + 1] - offb[bs];
          const uint32_t* pra = ra + offa[as];
          const uint32_t* prb = rb + offb[bs];
          if (sa <= kmax && sb <= kmax &&
              DispatchSafe(same_m, offa, as, sa, nsmall, nbig_segs, lanes)) {
            count += kt.At(sa, sb)(pra, prb);
          } else {
            count += ScalarSegmentCount(pra, sa, prb, sb);
          }
        }
      }
      w0 += bw;
    }
    return count;
  }

  template <int S>
  static size_t IntoRange(const FesiaSet& big, const FesiaSet& small,
                          uint32_t seg_begin, uint32_t seg_end, uint32_t* out,
                          size_t (*seg_into)(const uint32_t*, uint32_t,
                                             const uint32_t*, uint32_t,
                                             uint32_t*)) {
    constexpr uint32_t kSegsPerChunk = BOps::kChunkBits / S;
    const uint64_t* wa = big.bitmap_words();
    const uint32_t nb_mask = small.num_segments() - 1;
    const uint32_t* offa = big.offsets();
    const uint32_t* offb = small.offsets();
    const uint32_t* ra = big.reordered();
    const uint32_t* rb = small.reordered();
    SmallChunk sc;
    sc.Init(small);

    size_t produced = 0;
    for (uint32_t seg0 = seg_begin; seg0 < seg_end; seg0 += kSegsPerChunk) {
      uint32_t bseg0 = seg0 & nb_mask;
      uint64_t mask = BOps::template NonZeroMask<S>(
          wa + static_cast<size_t>(seg0) * S / 64,
          sc.Get(static_cast<size_t>(bseg0) * S / 64));
      while (mask != 0) {
        uint32_t t = static_cast<uint32_t>(CountTrailingZeros64(mask));
        mask = ClearLowestBit(mask);
        uint32_t as = seg0 + t;
        // Re-mod per lane (see CountRange): correct under sub-chunk wrap.
        uint32_t bs = as & nb_mask;
        produced += seg_into(ra + offa[as], offa[as + 1] - offa[as],
                             rb + offb[bs], offb[bs + 1] - offb[bs],
                             out + produced);
      }
    }
    return produced;
  }

  template <int S>
  static uint64_t CountInstrumented(const FesiaSet& big,
                                    const FesiaSet& small,
                                    const KernelTable& kt,
                                    IntersectBreakdown* bd) {
    constexpr uint32_t kSegsPerChunk = BOps::kChunkBits / S;
    const uint64_t* wa = big.bitmap_words();
    const uint32_t nb_mask = small.num_segments() - 1;
    const uint32_t* offa = big.offsets();
    const uint32_t* offb = small.offsets();
    const uint32_t* ra = big.reordered();
    const uint32_t* rb = small.reordered();
    const uint32_t kmax = static_cast<uint32_t>(kt.max_size);
    const uint32_t seg_end = big.num_segments();
    SmallChunk sc;
    sc.Init(small);

    // Step 1: bitmap AND + index extraction, materialized for timing.
    std::vector<uint32_t> matched;
    matched.reserve(256);
    CycleTimer timer;
    timer.Start();
    for (uint32_t seg0 = 0; seg0 < seg_end; seg0 += kSegsPerChunk) {
      uint32_t bseg0 = seg0 & nb_mask;
      uint64_t mask = BOps::template NonZeroMask<S>(
          wa + static_cast<size_t>(seg0) * S / 64,
          sc.Get(static_cast<size_t>(bseg0) * S / 64));
      while (mask != 0) {
        uint32_t t = static_cast<uint32_t>(CountTrailingZeros64(mask));
        mask = ClearLowestBit(mask);
        matched.push_back(seg0 + t);
      }
    }
    bd->step1_cycles = timer.Stop();
    bd->matched_segments = matched.size();

    // Step 2: segment-level kernels.
    const bool same_m = small.num_segments() == big.num_segments();
    const uint32_t lanes = static_cast<uint32_t>(kt.lanes);
    uint64_t count = 0;
    timer.Start();
    for (uint32_t as : matched) {
      uint32_t bs = as & nb_mask;
      uint32_t sa = offa[as + 1] - offa[as];
      uint32_t sb = offb[bs + 1] - offb[bs];
      const uint32_t* pa = ra + offa[as];
      const uint32_t* pb = rb + offb[bs];
      if (sa <= kmax && sb <= kmax &&
          DispatchSafe(same_m, offa, as, sa, nb_mask + 1, seg_end,
                       lanes)) {
        count += kt.At(sa, sb)(pa, pb);
      } else {
        count += ScalarSegmentCount(pa, sa, pb, sb);
      }
    }
    bd->step2_cycles = timer.Stop();
    bd->result = count;
    return count;
  }
};

/// Shared entry logic: validates inputs, orders the pair, picks the kernel
/// table, and runs the pipeline at the pair's segment width.
template <typename BOps>
uint64_t EntryCount(const FesiaSet& a, const FesiaSet& b,
                    const KernelTable& (*kernels)(bool)) {
  using P = Pipeline<BOps>;
  FESIA_CHECK(P::Compatible(a, b));
  if (a.empty() || b.empty()) return 0;
  const FesiaSet* big;
  const FesiaSet* small;
  P::OrderBySegments(a, b, &big, &small);
  const KernelTable& kt =
      kernels(a.kernel_stride() > 1 || b.kernel_stride() > 1);
  switch (a.segment_bits()) {
    case 8:
      return P::template CountRange<8>(*big, *small, 0, big->num_segments(),
                                       kt);
    case 16:
      return P::template CountRange<16>(*big, *small, 0, big->num_segments(),
                                        kt);
    default:
      return P::template CountRange<32>(*big, *small, 0, big->num_segments(),
                                        kt);
  }
}

template <typename BOps>
uint64_t EntryCountRange(const FesiaSet& a, const FesiaSet& b,
                         uint32_t seg_begin, uint32_t seg_end,
                         const KernelTable& (*kernels)(bool)) {
  using P = Pipeline<BOps>;
  FESIA_CHECK(P::Compatible(a, b));
  if (a.empty() || b.empty()) return 0;
  const FesiaSet* big;
  const FesiaSet* small;
  P::OrderBySegments(a, b, &big, &small);
  seg_end = std::min(seg_end, big->num_segments());
  if (seg_begin >= seg_end) return 0;
  const uint32_t chunk =
      static_cast<uint32_t>(BOps::kChunkBits / a.segment_bits());
  FESIA_CHECK(seg_begin % chunk == 0);
  FESIA_CHECK(seg_end % chunk == 0 || seg_end == big->num_segments());
  const KernelTable& kt =
      kernels(a.kernel_stride() > 1 || b.kernel_stride() > 1);
  switch (a.segment_bits()) {
    case 8:
      return P::template CountRange<8>(*big, *small, seg_begin, seg_end, kt);
    case 16:
      return P::template CountRange<16>(*big, *small, seg_begin, seg_end, kt);
    default:
      return P::template CountRange<32>(*big, *small, seg_begin, seg_end, kt);
  }
}

template <typename BOps>
uint64_t EntryCountFusedRange(const FesiaSet& a, const FesiaSet& b,
                              uint32_t seg_begin, uint32_t seg_end,
                              const KernelTable& (*kernels)(bool)) {
  using P = Pipeline<BOps>;
  FESIA_CHECK(P::Compatible(a, b));
  if (a.empty() || b.empty()) return 0;
  const FesiaSet* big;
  const FesiaSet* small;
  P::OrderBySegments(a, b, &big, &small);
  seg_end = std::min(seg_end, big->num_segments());
  if (seg_begin >= seg_end) return 0;
  const uint32_t chunk =
      static_cast<uint32_t>(BOps::kChunkBits / a.segment_bits());
  FESIA_CHECK(seg_begin % chunk == 0);
  FESIA_CHECK(seg_end % chunk == 0 || seg_end == big->num_segments());
  const KernelTable& kt =
      kernels(a.kernel_stride() > 1 || b.kernel_stride() > 1);
  switch (a.segment_bits()) {
    case 8:
      return P::template CountFusedRange<8>(*big, *small, seg_begin, seg_end,
                                            kt);
    case 16:
      return P::template CountFusedRange<16>(*big, *small, seg_begin,
                                             seg_end, kt);
    default:
      return P::template CountFusedRange<32>(*big, *small, seg_begin,
                                             seg_end, kt);
  }
}

/// Count-only entry using the cache-blocked fused AND+popcount sweep.
/// Byte-identical to EntryCount by construction (same dispatch predicate).
template <typename BOps>
uint64_t EntryCountFused(const FesiaSet& a, const FesiaSet& b,
                         const KernelTable& (*kernels)(bool)) {
  uint32_t total = std::max(a.num_segments(), b.num_segments());
  return EntryCountFusedRange<BOps>(a, b, 0, total, kernels);
}

template <typename BOps>
size_t EntryIntoRange(const FesiaSet& a, const FesiaSet& b,
                      uint32_t seg_begin, uint32_t seg_end, uint32_t* out,
                      size_t (*seg_into)(const uint32_t*, uint32_t,
                                         const uint32_t*, uint32_t,
                                         uint32_t*)) {
  using P = Pipeline<BOps>;
  FESIA_CHECK(P::Compatible(a, b));
  if (a.empty() || b.empty()) return 0;
  const FesiaSet* big;
  const FesiaSet* small;
  P::OrderBySegments(a, b, &big, &small);
  seg_end = std::min(seg_end, big->num_segments());
  if (seg_begin >= seg_end) return 0;
  const uint32_t chunk =
      static_cast<uint32_t>(BOps::kChunkBits / a.segment_bits());
  FESIA_CHECK(seg_begin % chunk == 0);
  FESIA_CHECK(seg_end % chunk == 0 || seg_end == big->num_segments());
  switch (a.segment_bits()) {
    case 8:
      return P::template IntoRange<8>(*big, *small, seg_begin, seg_end, out,
                                      seg_into);
    case 16:
      return P::template IntoRange<16>(*big, *small, seg_begin, seg_end, out,
                                       seg_into);
    default:
      return P::template IntoRange<32>(*big, *small, seg_begin, seg_end, out,
                                       seg_into);
  }
}

template <typename BOps>
size_t EntryInto(const FesiaSet& a, const FesiaSet& b, uint32_t* out,
                 size_t (*seg_into)(const uint32_t*, uint32_t,
                                    const uint32_t*, uint32_t, uint32_t*)) {
  uint32_t total = std::max(a.num_segments(), b.num_segments());
  return EntryIntoRange<BOps>(a, b, 0, total, out, seg_into);
}

template <typename BOps>
uint64_t EntryCountInstrumented(const FesiaSet& a, const FesiaSet& b,
                                IntersectBreakdown* bd,
                                const KernelTable& (*kernels)(bool)) {
  using P = Pipeline<BOps>;
  FESIA_CHECK(P::Compatible(a, b));
  *bd = IntersectBreakdown{};
  if (a.empty() || b.empty()) return 0;
  const FesiaSet* big;
  const FesiaSet* small;
  P::OrderBySegments(a, b, &big, &small);
  const KernelTable& kt =
      kernels(a.kernel_stride() > 1 || b.kernel_stride() > 1);
  switch (a.segment_bits()) {
    case 8:
      return P::template CountInstrumented<8>(*big, *small, kt, bd);
    case 16:
      return P::template CountInstrumented<16>(*big, *small, kt, bd);
    default:
      return P::template CountInstrumented<32>(*big, *small, kt, bd);
  }
}

}  // namespace fesia::internal

#endif  // FESIA_FESIA_INTERSECT_IMPL_H_
