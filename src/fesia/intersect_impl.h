// Shared two-step intersection pipeline, templated on a per-ISA bitmap
// policy. Included ONLY by the bitmap_intersect_*.cc translation units.
//
// The policy BOps supplies:
//   static constexpr int kChunkBits;   // bitmap bits ANDed per iteration
//   template <int S>
//   static uint64_t NonZeroMask(const uint64_t* a, const uint64_t* b);
//     // AND one chunk of both bitmaps and return a bitmask with one bit per
//     // S-bit segment lane that is non-zero (paper Sec. IV steps 1-3).
//
// The pipeline walks the larger bitmap chunk by chunk; the smaller bitmap
// wraps (segment i pairs with segment i mod N_small, paper Sec. III-C).
// Surviving segment indices are extracted with tzcnt and dispatched through
// the kernel jump table (paper Sec. V-A); runs larger than the table fall
// back to a sentinel-aware scalar merge.
#ifndef FESIA_FESIA_INTERSECT_IMPL_H_
#define FESIA_FESIA_INTERSECT_IMPL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fesia/fesia_set.h"
#include "fesia/intersect.h"
#include "fesia/kernels.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/timer.h"

namespace fesia::internal {

template <typename BOps>
struct Pipeline {
  // Orders the pair as (more segments, fewer segments).
  static void OrderBySegments(const FesiaSet& a, const FesiaSet& b,
                              const FesiaSet** big, const FesiaSet** small) {
    if (a.num_segments() >= b.num_segments()) {
      *big = &a;
      *small = &b;
    } else {
      *big = &b;
      *small = &a;
    }
  }

  static bool Compatible(const FesiaSet& a, const FesiaSet& b) {
    return a.segment_bits() == b.segment_bits();
  }

  // Alias-hazard guard for pairs with different bitmap sizes. A kernel may
  // over-read whole vectors from the bigger set's run; those lanes belong to
  // LATER segments of the big set. With equal bitmap sizes a later segment
  // can never pair with the same small segment again, so a lane value equal
  // to a broadcast element is impossible. With different sizes, segment
  // as + k*N_small aliases back onto the same small segment, and a real
  // element there may legitimately equal a broadcast element (it would then
  // be double-counted there and at its home segment). The kernel's big-side
  // loads never extend past offa[as] + roundup(sa, lanes), so the dispatch
  // is safe iff that window ends before segment as + N_small begins.
  static bool DispatchSafe(bool same_m, const uint32_t* offa, uint32_t as,
                           uint32_t sa, uint32_t nsmall_segs,
                           uint32_t nbig_segs, uint32_t lanes) {
    if (same_m) return true;
    uint32_t alias_seg = as + nsmall_segs;
    if (alias_seg >= nbig_segs) return true;  // window ends in the tail pad
    uint32_t load_end = offa[as] + ((sa + lanes - 1) / lanes) * lanes;
    return offa[alias_seg] >= load_end;
  }

  template <int S>
  static uint64_t CountRange(const FesiaSet& big, const FesiaSet& small,
                             uint32_t seg_begin, uint32_t seg_end,
                             const KernelTable& kt) {
    constexpr uint32_t kSegsPerChunk = BOps::kChunkBits / S;
    const uint64_t* wa = big.bitmap_words();
    const uint64_t* wb = small.bitmap_words();
    const uint32_t nb_mask = small.num_segments() - 1;
    const uint32_t nbig_segs = big.num_segments();
    const bool same_m = small.num_segments() == nbig_segs;
    const uint32_t lanes = static_cast<uint32_t>(kt.lanes);
    const uint32_t* offa = big.offsets();
    const uint32_t* offb = small.offsets();
    const uint32_t* ra = big.reordered();
    const uint32_t* rb = small.reordered();
    const uint32_t kmax = static_cast<uint32_t>(kt.max_size);

    uint64_t count = 0;
    for (uint32_t seg0 = seg_begin; seg0 < seg_end; seg0 += kSegsPerChunk) {
      uint32_t bseg0 = seg0 & nb_mask;
      uint64_t mask = BOps::template NonZeroMask<S>(
          wa + static_cast<size_t>(seg0) * S / 64,
          wb + static_cast<size_t>(bseg0) * S / 64);
      while (mask != 0) {
        uint32_t t = static_cast<uint32_t>(CountTrailingZeros64(mask));
        mask = ClearLowestBit(mask);
        uint32_t as = seg0 + t;
        uint32_t bs = bseg0 + t;
        uint32_t sa = offa[as + 1] - offa[as];
        uint32_t sb = offb[bs + 1] - offb[bs];
        const uint32_t* pa = ra + offa[as];
        const uint32_t* pb = rb + offb[bs];
        if (sa <= kmax && sb <= kmax &&
            DispatchSafe(same_m, offa, as, sa, nb_mask + 1, nbig_segs,
                         lanes)) {
          count += kt.At(sa, sb)(pa, pb);
        } else {
          count += ScalarSegmentCount(pa, sa, pb, sb);
        }
      }
    }
    return count;
  }

  template <int S>
  static size_t IntoRange(const FesiaSet& big, const FesiaSet& small,
                          uint32_t seg_begin, uint32_t seg_end, uint32_t* out,
                          size_t (*seg_into)(const uint32_t*, uint32_t,
                                             const uint32_t*, uint32_t,
                                             uint32_t*)) {
    constexpr uint32_t kSegsPerChunk = BOps::kChunkBits / S;
    const uint64_t* wa = big.bitmap_words();
    const uint64_t* wb = small.bitmap_words();
    const uint32_t nb_mask = small.num_segments() - 1;
    const uint32_t* offa = big.offsets();
    const uint32_t* offb = small.offsets();
    const uint32_t* ra = big.reordered();
    const uint32_t* rb = small.reordered();

    size_t produced = 0;
    for (uint32_t seg0 = seg_begin; seg0 < seg_end; seg0 += kSegsPerChunk) {
      uint32_t bseg0 = seg0 & nb_mask;
      uint64_t mask = BOps::template NonZeroMask<S>(
          wa + static_cast<size_t>(seg0) * S / 64,
          wb + static_cast<size_t>(bseg0) * S / 64);
      while (mask != 0) {
        uint32_t t = static_cast<uint32_t>(CountTrailingZeros64(mask));
        mask = ClearLowestBit(mask);
        uint32_t as = seg0 + t;
        uint32_t bs = bseg0 + t;
        produced += seg_into(ra + offa[as], offa[as + 1] - offa[as],
                             rb + offb[bs], offb[bs + 1] - offb[bs],
                             out + produced);
      }
    }
    return produced;
  }

  template <int S>
  static uint64_t CountInstrumented(const FesiaSet& big,
                                    const FesiaSet& small,
                                    const KernelTable& kt,
                                    IntersectBreakdown* bd) {
    constexpr uint32_t kSegsPerChunk = BOps::kChunkBits / S;
    const uint64_t* wa = big.bitmap_words();
    const uint64_t* wb = small.bitmap_words();
    const uint32_t nb_mask = small.num_segments() - 1;
    const uint32_t* offa = big.offsets();
    const uint32_t* offb = small.offsets();
    const uint32_t* ra = big.reordered();
    const uint32_t* rb = small.reordered();
    const uint32_t kmax = static_cast<uint32_t>(kt.max_size);
    const uint32_t seg_end = big.num_segments();

    // Step 1: bitmap AND + index extraction, materialized for timing.
    std::vector<uint32_t> matched;
    matched.reserve(256);
    CycleTimer timer;
    timer.Start();
    for (uint32_t seg0 = 0; seg0 < seg_end; seg0 += kSegsPerChunk) {
      uint32_t bseg0 = seg0 & nb_mask;
      uint64_t mask = BOps::template NonZeroMask<S>(
          wa + static_cast<size_t>(seg0) * S / 64,
          wb + static_cast<size_t>(bseg0) * S / 64);
      while (mask != 0) {
        uint32_t t = static_cast<uint32_t>(CountTrailingZeros64(mask));
        mask = ClearLowestBit(mask);
        matched.push_back(seg0 + t);
      }
    }
    bd->step1_cycles = timer.Stop();
    bd->matched_segments = matched.size();

    // Step 2: segment-level kernels.
    const bool same_m = small.num_segments() == big.num_segments();
    const uint32_t lanes = static_cast<uint32_t>(kt.lanes);
    uint64_t count = 0;
    timer.Start();
    for (uint32_t as : matched) {
      uint32_t bs = as & nb_mask;
      uint32_t sa = offa[as + 1] - offa[as];
      uint32_t sb = offb[bs + 1] - offb[bs];
      const uint32_t* pa = ra + offa[as];
      const uint32_t* pb = rb + offb[bs];
      if (sa <= kmax && sb <= kmax &&
          DispatchSafe(same_m, offa, as, sa, nb_mask + 1, seg_end,
                       lanes)) {
        count += kt.At(sa, sb)(pa, pb);
      } else {
        count += ScalarSegmentCount(pa, sa, pb, sb);
      }
    }
    bd->step2_cycles = timer.Stop();
    bd->result = count;
    return count;
  }
};

/// Shared entry logic: validates inputs, orders the pair, picks the kernel
/// table, and runs the pipeline at the pair's segment width.
template <typename BOps>
uint64_t EntryCount(const FesiaSet& a, const FesiaSet& b,
                    const KernelTable& (*kernels)(bool)) {
  using P = Pipeline<BOps>;
  FESIA_CHECK(P::Compatible(a, b));
  if (a.empty() || b.empty()) return 0;
  const FesiaSet* big;
  const FesiaSet* small;
  P::OrderBySegments(a, b, &big, &small);
  const KernelTable& kt =
      kernels(a.kernel_stride() > 1 || b.kernel_stride() > 1);
  switch (a.segment_bits()) {
    case 8:
      return P::template CountRange<8>(*big, *small, 0, big->num_segments(),
                                       kt);
    case 16:
      return P::template CountRange<16>(*big, *small, 0, big->num_segments(),
                                        kt);
    default:
      return P::template CountRange<32>(*big, *small, 0, big->num_segments(),
                                        kt);
  }
}

template <typename BOps>
uint64_t EntryCountRange(const FesiaSet& a, const FesiaSet& b,
                         uint32_t seg_begin, uint32_t seg_end,
                         const KernelTable& (*kernels)(bool)) {
  using P = Pipeline<BOps>;
  FESIA_CHECK(P::Compatible(a, b));
  if (a.empty() || b.empty()) return 0;
  const FesiaSet* big;
  const FesiaSet* small;
  P::OrderBySegments(a, b, &big, &small);
  seg_end = std::min(seg_end, big->num_segments());
  if (seg_begin >= seg_end) return 0;
  const uint32_t chunk =
      static_cast<uint32_t>(BOps::kChunkBits / a.segment_bits());
  FESIA_CHECK(seg_begin % chunk == 0);
  FESIA_CHECK(seg_end % chunk == 0 || seg_end == big->num_segments());
  const KernelTable& kt =
      kernels(a.kernel_stride() > 1 || b.kernel_stride() > 1);
  switch (a.segment_bits()) {
    case 8:
      return P::template CountRange<8>(*big, *small, seg_begin, seg_end, kt);
    case 16:
      return P::template CountRange<16>(*big, *small, seg_begin, seg_end, kt);
    default:
      return P::template CountRange<32>(*big, *small, seg_begin, seg_end, kt);
  }
}

template <typename BOps>
size_t EntryIntoRange(const FesiaSet& a, const FesiaSet& b,
                      uint32_t seg_begin, uint32_t seg_end, uint32_t* out,
                      size_t (*seg_into)(const uint32_t*, uint32_t,
                                         const uint32_t*, uint32_t,
                                         uint32_t*)) {
  using P = Pipeline<BOps>;
  FESIA_CHECK(P::Compatible(a, b));
  if (a.empty() || b.empty()) return 0;
  const FesiaSet* big;
  const FesiaSet* small;
  P::OrderBySegments(a, b, &big, &small);
  seg_end = std::min(seg_end, big->num_segments());
  if (seg_begin >= seg_end) return 0;
  const uint32_t chunk =
      static_cast<uint32_t>(BOps::kChunkBits / a.segment_bits());
  FESIA_CHECK(seg_begin % chunk == 0);
  FESIA_CHECK(seg_end % chunk == 0 || seg_end == big->num_segments());
  switch (a.segment_bits()) {
    case 8:
      return P::template IntoRange<8>(*big, *small, seg_begin, seg_end, out,
                                      seg_into);
    case 16:
      return P::template IntoRange<16>(*big, *small, seg_begin, seg_end, out,
                                       seg_into);
    default:
      return P::template IntoRange<32>(*big, *small, seg_begin, seg_end, out,
                                       seg_into);
  }
}

template <typename BOps>
size_t EntryInto(const FesiaSet& a, const FesiaSet& b, uint32_t* out,
                 size_t (*seg_into)(const uint32_t*, uint32_t,
                                    const uint32_t*, uint32_t, uint32_t*)) {
  uint32_t total = std::max(a.num_segments(), b.num_segments());
  return EntryIntoRange<BOps>(a, b, 0, total, out, seg_into);
}

template <typename BOps>
uint64_t EntryCountInstrumented(const FesiaSet& a, const FesiaSet& b,
                                IntersectBreakdown* bd,
                                const KernelTable& (*kernels)(bool)) {
  using P = Pipeline<BOps>;
  FESIA_CHECK(P::Compatible(a, b));
  *bd = IntersectBreakdown{};
  if (a.empty() || b.empty()) return 0;
  const FesiaSet* big;
  const FesiaSet* small;
  P::OrderBySegments(a, b, &big, &small);
  const KernelTable& kt =
      kernels(a.kernel_stride() > 1 || b.kernel_stride() > 1);
  switch (a.segment_bits()) {
    case 8:
      return P::template CountInstrumented<8>(*big, *small, kt, bd);
    case 16:
      return P::template CountInstrumented<16>(*big, *small, kt, bd);
    default:
      return P::template CountInstrumented<32>(*big, *small, kt, bd);
  }
}

}  // namespace fesia::internal

#endif  // FESIA_FESIA_INTERSECT_IMPL_H_
