#include "fesia/parallel.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "fesia/backends.h"
#include "util/bits.h"
#include "util/thread_pool.h"

namespace fesia {
namespace {

// Number of chunk-aligned ranges covering [0, total_segs): the remainder is
// routed through the final chunk (count_range/into_range accept a seg_end
// equal to the big set's segment count even when unaligned), so trailing
// segments are never silently dropped.
uint32_t NumChunks(uint32_t total_segs, uint32_t chunk) {
  return (total_segs + chunk - 1) / chunk;
}

uint32_t ChunkBegin(size_t c, uint32_t chunk) {
  return static_cast<uint32_t>(c) * chunk;
}

uint32_t ChunkEnd(size_t c, uint32_t chunk, uint32_t total_segs) {
  return std::min(static_cast<uint32_t>(c + 1) * chunk, total_segs);
}

// Chunk-wise cancellable count over chunk indexes [cb, ce): one fused
// count_fused_range call and one cancel poll per chunk, so the work
// remaining after a stop is at most one chunk (same granularity contract
// as before the count path moved to the fused sweep).
uint64_t CountChunksCancellable(const internal::Backend& backend,
                                const FesiaSet& a, const FesiaSet& b,
                                uint32_t chunk, uint32_t total_segs,
                                size_t cb, size_t ce,
                                const CancelContext& cancel, bool* stopped) {
  uint64_t total = 0;
  for (size_t c = cb; c < ce; ++c) {
    if (cancel.ShouldStop()) {
      *stopped = true;
      return total;
    }
    total += backend.count_fused_range(a, b, ChunkBegin(c, chunk),
                                       ChunkEnd(c, chunk, total_segs));
  }
  return total;
}

// Chunk-wise cancellable materialization over chunk indexes [cb, ce),
// appending into out + written. `out` must have room for one slot past the
// final element count (the branchless emitters may write one past before
// discarding a non-match).
size_t IntoChunksCancellable(const internal::Backend& backend,
                             const FesiaSet& a, const FesiaSet& b,
                             uint32_t chunk, uint32_t total_segs, size_t cb,
                             size_t ce, const CancelContext& cancel,
                             uint32_t* out, bool* stopped) {
  size_t written = 0;
  for (size_t c = cb; c < ce; ++c) {
    if (cancel.ShouldStop()) {
      *stopped = true;
      return written;
    }
    written += backend.into_range(a, b, ChunkBegin(c, chunk),
                                  ChunkEnd(c, chunk, total_segs),
                                  out + written);
  }
  return written;
}

}  // namespace

size_t IntersectCountParallel(const FesiaSet& a, const FesiaSet& b,
                              size_t num_threads, SimdLevel level,
                              const Executor& exec,
                              const CancelContext& cancel, bool* stopped) {
  if (stopped != nullptr) *stopped = false;
  const internal::Backend& backend = internal::GetBackend(level);
  // Mismatched segment widths would make the chunk size (derived from
  // a.segment_bits()) wrong for b; the serial backend validates the
  // precondition instead of this path computing a bogus range. The same
  // degenerate path also serves empty inputs and thread counts <= 1.
  if (a.empty() || b.empty() || a.segment_bits() != b.segment_bits()) {
    if (cancel.active() && cancel.ShouldStop()) {
      if (stopped != nullptr) *stopped = true;
      return 0;
    }
    return backend.count_fused(a, b);
  }
  if (num_threads <= 1) {
    return IntersectCountCancellable(a, b, cancel, level, stopped);
  }
  const uint32_t total_segs = std::max(a.num_segments(), b.num_segments());
  const uint32_t chunk =
      internal::SegmentChunk(backend.level, a.segment_bits());
  const uint32_t num_chunks = NumChunks(total_segs, chunk);
  num_threads = std::min(num_threads, static_cast<size_t>(num_chunks));
  if (num_threads <= 1) {
    return IntersectCountCancellable(a, b, cancel, level, stopped);
  }

  std::atomic<uint64_t> total{0};
  std::atomic<bool> any_stopped{false};
  ParallelFor(
      0, num_chunks, num_threads,
      [&](size_t chunk_begin, size_t chunk_end, size_t /*t*/) {
        uint64_t partial;
        if (cancel.active()) {
          bool st = false;
          partial = CountChunksCancellable(backend, a, b, chunk, total_segs,
                                           chunk_begin, chunk_end, cancel,
                                           &st);
          if (st) any_stopped.store(true, std::memory_order_relaxed);
        } else {
          partial = backend.count_fused_range(
              a, b, ChunkBegin(chunk_begin, chunk),
              std::min(ChunkBegin(chunk_end, chunk), total_segs));
        }
        total.fetch_add(partial, std::memory_order_relaxed);
      },
      exec);
  if (stopped != nullptr) {
    *stopped = any_stopped.load(std::memory_order_relaxed);
  }
  return total.load(std::memory_order_relaxed);
}

size_t IntersectIntoParallel(const FesiaSet& a, const FesiaSet& b,
                             std::vector<uint32_t>* out, size_t num_threads,
                             bool sort_output, SimdLevel level,
                             const Executor& exec,
                             const CancelContext& cancel, bool* stopped) {
  if (stopped != nullptr) *stopped = false;
  const internal::Backend& backend = internal::GetBackend(level);
  out->clear();
  if (a.empty() || b.empty()) return 0;
  const bool mismatched = a.segment_bits() != b.segment_bits();
  const uint32_t total_segs = std::max(a.num_segments(), b.num_segments());
  const uint32_t chunk =
      mismatched ? 0
                 : internal::SegmentChunk(backend.level, a.segment_bits());
  const uint32_t num_chunks = mismatched ? 0 : NumChunks(total_segs, chunk);
  num_threads = std::min(num_threads, static_cast<size_t>(num_chunks));
  if (num_threads <= 1) {
    if (mismatched) {
      // Cannot chunk across mismatched widths; cancellation granularity
      // degrades to the whole call (checked once up front).
      if (cancel.active() && cancel.ShouldStop()) {
        if (stopped != nullptr) *stopped = true;
        return 0;
      }
      out->resize(std::min(a.size(), b.size()) + 1);
      size_t r = backend.into(a, b, out->data());
      out->resize(r);
      if (sort_output) std::sort(out->begin(), out->end());
      return r;
    }
    return IntersectIntoCancellable(a, b, out, cancel, sort_output, level,
                                    stopped);
  }

  // The pipeline walks the input with more segments (ties favor `a`,
  // matching internal::Pipeline::OrderBySegments); its per-segment offsets
  // bound how many elements a segment range can emit. Capping each slice by
  // that span — instead of min(|A|,|B|)+1 per slice — keeps the peak across
  // all T slices at O(min(|A|,|B|)) total rather than O(T·min(|A|,|B|)).
  const FesiaSet& big = a.num_segments() >= b.num_segments() ? a : b;
  const uint32_t* big_offsets = big.offsets();
  const uint32_t min_size = std::min(a.size(), b.size());

  std::vector<std::vector<uint32_t>> slices(num_threads);
  std::atomic<bool> any_stopped{false};
  ParallelFor(
      0, num_chunks, num_threads,
      [&](size_t chunk_begin, size_t chunk_end, size_t t) {
        const uint32_t seg_begin = ChunkBegin(chunk_begin, chunk);
        const uint32_t seg_end =
            std::min(ChunkBegin(chunk_end, chunk), total_segs);
        // +1: the branchless segment emitters may write one slot past the
        // final count before discarding a non-match.
        const uint32_t cap = std::min(
            big_offsets[seg_end] - big_offsets[seg_begin], min_size);
        std::vector<uint32_t>& slice = slices[t];
        slice.resize(cap + 1);
        size_t r;
        if (cancel.active()) {
          bool st = false;
          r = IntoChunksCancellable(backend, a, b, chunk, total_segs,
                                    chunk_begin, chunk_end, cancel,
                                    slice.data(), &st);
          if (st) any_stopped.store(true, std::memory_order_relaxed);
        } else {
          r = backend.into_range(a, b, seg_begin, seg_end, slice.data());
        }
        slice.resize(r);
      },
      exec);
  size_t total = 0;
  for (const auto& slice : slices) total += slice.size();
  out->reserve(total);
  for (const auto& slice : slices) {
    out->insert(out->end(), slice.begin(), slice.end());
  }
  if (sort_output) std::sort(out->begin(), out->end());
  if (stopped != nullptr) {
    *stopped = any_stopped.load(std::memory_order_relaxed);
  }
  return out->size();
}

size_t IntersectCountCancellable(const FesiaSet& a, const FesiaSet& b,
                                 const CancelContext& cancel, SimdLevel level,
                                 bool* stopped) {
  if (stopped != nullptr) *stopped = false;
  const internal::Backend& backend = internal::GetBackend(level);
  if (!cancel.active()) return backend.count_fused(a, b);
  if (a.empty() || b.empty()) return 0;
  if (a.segment_bits() != b.segment_bits()) {
    // Serial fallback: the backend validates the precondition; granularity
    // degrades to the whole call.
    if (cancel.ShouldStop()) {
      if (stopped != nullptr) *stopped = true;
      return 0;
    }
    return backend.count_fused(a, b);
  }
  const uint32_t total_segs = std::max(a.num_segments(), b.num_segments());
  const uint32_t chunk =
      internal::SegmentChunk(backend.level, a.segment_bits());
  bool st = false;
  uint64_t r =
      CountChunksCancellable(backend, a, b, chunk, total_segs, 0,
                             NumChunks(total_segs, chunk), cancel, &st);
  if (st && stopped != nullptr) *stopped = true;
  return static_cast<size_t>(r);
}

size_t IntersectIntoCancellable(const FesiaSet& a, const FesiaSet& b,
                                std::vector<uint32_t>* out,
                                const CancelContext& cancel, bool sort_output,
                                SimdLevel level, bool* stopped) {
  if (stopped != nullptr) *stopped = false;
  const internal::Backend& backend = internal::GetBackend(level);
  out->clear();
  if (a.empty() || b.empty()) return 0;
  out->resize(std::min(a.size(), b.size()) + 1);
  if (!cancel.active() || a.segment_bits() != b.segment_bits()) {
    if (cancel.active() && cancel.ShouldStop()) {
      out->clear();
      if (stopped != nullptr) *stopped = true;
      return 0;
    }
    size_t r = backend.into(a, b, out->data());
    out->resize(r);
    if (sort_output) std::sort(out->begin(), out->end());
    return r;
  }
  const uint32_t total_segs = std::max(a.num_segments(), b.num_segments());
  const uint32_t chunk =
      internal::SegmentChunk(backend.level, a.segment_bits());
  bool st = false;
  size_t written =
      IntoChunksCancellable(backend, a, b, chunk, total_segs, 0,
                            NumChunks(total_segs, chunk), cancel,
                            out->data(), &st);
  out->resize(written);
  if (sort_output) std::sort(out->begin(), out->end());
  if (st && stopped != nullptr) *stopped = true;
  return written;
}

}  // namespace fesia
