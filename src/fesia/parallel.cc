#include "fesia/parallel.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "fesia/backends.h"
#include "util/bits.h"
#include "util/thread_pool.h"

namespace fesia {
namespace {

// Number of chunk-aligned ranges covering [0, total_segs): the remainder is
// routed through the final chunk (count_range/into_range accept a seg_end
// equal to the big set's segment count even when unaligned), so trailing
// segments are never silently dropped.
uint32_t NumChunks(uint32_t total_segs, uint32_t chunk) {
  return (total_segs + chunk - 1) / chunk;
}

}  // namespace

size_t IntersectCountParallel(const FesiaSet& a, const FesiaSet& b,
                              size_t num_threads, SimdLevel level,
                              const Executor& exec) {
  const internal::Backend& backend = internal::GetBackend(level);
  // Mismatched segment widths would make the chunk size (derived from
  // a.segment_bits()) wrong for b; the serial backend validates the
  // precondition instead of this path computing a bogus range.
  if (num_threads <= 1 || a.empty() || b.empty() ||
      a.segment_bits() != b.segment_bits()) {
    return backend.count(a, b);
  }
  const uint32_t total_segs = std::max(a.num_segments(), b.num_segments());
  const uint32_t chunk =
      internal::SegmentChunk(backend.level, a.segment_bits());
  const uint32_t num_chunks = NumChunks(total_segs, chunk);
  num_threads = std::min(num_threads, static_cast<size_t>(num_chunks));
  if (num_threads <= 1) return backend.count(a, b);

  std::atomic<uint64_t> total{0};
  ParallelFor(
      0, num_chunks, num_threads,
      [&](size_t chunk_begin, size_t chunk_end, size_t /*t*/) {
        uint64_t partial = backend.count_range(
            a, b, static_cast<uint32_t>(chunk_begin) * chunk,
            std::min(static_cast<uint32_t>(chunk_end) * chunk, total_segs));
        total.fetch_add(partial, std::memory_order_relaxed);
      },
      exec);
  return total.load(std::memory_order_relaxed);
}

size_t IntersectIntoParallel(const FesiaSet& a, const FesiaSet& b,
                             std::vector<uint32_t>* out, size_t num_threads,
                             bool sort_output, SimdLevel level,
                             const Executor& exec) {
  const internal::Backend& backend = internal::GetBackend(level);
  out->clear();
  if (a.empty() || b.empty()) return 0;
  const bool mismatched = a.segment_bits() != b.segment_bits();
  const uint32_t total_segs = std::max(a.num_segments(), b.num_segments());
  const uint32_t chunk =
      mismatched ? 0
                 : internal::SegmentChunk(backend.level, a.segment_bits());
  const uint32_t num_chunks = mismatched ? 0 : NumChunks(total_segs, chunk);
  num_threads = std::min(num_threads, static_cast<size_t>(num_chunks));
  if (num_threads <= 1) {
    out->resize(std::min(a.size(), b.size()) + 1);
    size_t r = backend.into(a, b, out->data());
    out->resize(r);
    if (sort_output) std::sort(out->begin(), out->end());
    return r;
  }

  // The pipeline walks the input with more segments (ties favor `a`,
  // matching internal::Pipeline::OrderBySegments); its per-segment offsets
  // bound how many elements a segment range can emit. Capping each slice by
  // that span — instead of min(|A|,|B|)+1 per slice — keeps the peak across
  // all T slices at O(min(|A|,|B|)) total rather than O(T·min(|A|,|B|)).
  const FesiaSet& big = a.num_segments() >= b.num_segments() ? a : b;
  const uint32_t* big_offsets = big.offsets();
  const uint32_t min_size = std::min(a.size(), b.size());

  std::vector<std::vector<uint32_t>> slices(num_threads);
  ParallelFor(
      0, num_chunks, num_threads,
      [&](size_t chunk_begin, size_t chunk_end, size_t t) {
        const uint32_t seg_begin = static_cast<uint32_t>(chunk_begin) * chunk;
        const uint32_t seg_end =
            std::min(static_cast<uint32_t>(chunk_end) * chunk, total_segs);
        // +1: the branchless segment emitters may write one slot past the
        // final count before discarding a non-match.
        const uint32_t cap = std::min(
            big_offsets[seg_end] - big_offsets[seg_begin], min_size);
        std::vector<uint32_t>& slice = slices[t];
        slice.resize(cap + 1);
        size_t r =
            backend.into_range(a, b, seg_begin, seg_end, slice.data());
        slice.resize(r);
      },
      exec);
  size_t total = 0;
  for (const auto& slice : slices) total += slice.size();
  out->reserve(total);
  for (const auto& slice : slices) {
    out->insert(out->end(), slice.begin(), slice.end());
  }
  if (sort_output) std::sort(out->begin(), out->end());
  return out->size();
}

}  // namespace fesia
