#include "fesia/parallel.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "fesia/backends.h"
#include "util/bits.h"
#include "util/thread_pool.h"

namespace fesia {

size_t IntersectCountParallel(const FesiaSet& a, const FesiaSet& b,
                              size_t num_threads, SimdLevel level) {
  const internal::Backend& backend = internal::GetBackend(level);
  if (num_threads <= 1 || a.empty() || b.empty()) {
    return backend.count(a, b);
  }
  const uint32_t total_segs = std::max(a.num_segments(), b.num_segments());
  const uint32_t chunk =
      internal::SegmentChunk(backend.level, a.segment_bits());
  const uint32_t num_chunks = total_segs / chunk;
  num_threads = std::min(num_threads, static_cast<size_t>(num_chunks));
  if (num_threads <= 1) return backend.count(a, b);

  std::atomic<uint64_t> total{0};
  ParallelFor(0, num_chunks, num_threads,
              [&](size_t chunk_begin, size_t chunk_end, size_t /*t*/) {
                uint64_t partial = backend.count_range(
                    a, b, static_cast<uint32_t>(chunk_begin) * chunk,
                    static_cast<uint32_t>(chunk_end) * chunk);
                total.fetch_add(partial, std::memory_order_relaxed);
              });
  return total.load(std::memory_order_relaxed);
}

size_t IntersectIntoParallel(const FesiaSet& a, const FesiaSet& b,
                             std::vector<uint32_t>* out, size_t num_threads,
                             bool sort_output, SimdLevel level) {
  const internal::Backend& backend = internal::GetBackend(level);
  out->clear();
  if (a.empty() || b.empty()) return 0;
  const uint32_t total_segs = std::max(a.num_segments(), b.num_segments());
  const uint32_t chunk =
      internal::SegmentChunk(backend.level, a.segment_bits());
  const uint32_t num_chunks = total_segs / chunk;
  num_threads = std::min(num_threads, static_cast<size_t>(num_chunks));
  if (num_threads <= 1) {
    out->resize(std::min(a.size(), b.size()) + 1);
    size_t r = backend.into(a, b, out->data());
    out->resize(r);
    if (sort_output) std::sort(out->begin(), out->end());
    return r;
  }

  std::vector<std::vector<uint32_t>> slices(num_threads);
  ParallelFor(0, num_chunks, num_threads,
              [&](size_t chunk_begin, size_t chunk_end, size_t t) {
                std::vector<uint32_t>& slice = slices[t];
                slice.resize(std::min(a.size(), b.size()) + 1);
                size_t r = backend.into_range(
                    a, b, static_cast<uint32_t>(chunk_begin) * chunk,
                    static_cast<uint32_t>(chunk_end) * chunk, slice.data());
                slice.resize(r);
              });
  size_t total = 0;
  for (const auto& slice : slices) total += slice.size();
  out->reserve(total);
  for (const auto& slice : slices) {
    out->insert(out->end(), slice.begin(), slice.end());
  }
  if (sort_output) std::sort(out->begin(), out->end());
  return out->size();
}

}  // namespace fesia
