// Template machinery generating the specialized kernels for one ISA.
//
// This header is included ONLY by the per-ISA kernels_*.cc translation
// units, each of which supplies an `Ops` policy wrapping its intrinsics and
// is compiled with the matching -m flags. The same generator thus emits
// SSE, AVX2, and AVX-512 kernel families from one specification, mirroring
// the paper's macro-generated kernels.
//
// Kernel structure (paper Sec. V-C), for lane count V = Ops::kLanes:
//  * small-by-small / small-by-large (Sa <= V or Sb <= V): broadcast each
//    element of one side and compare against whole vectors of the other;
//    the broadcast side is chosen by static cost comparison, which
//    reproduces both the 2-by-7 and the 4-by-5 layouts of Fig. 3.
//  * large-by-large (both > V): compare the leading V-by-V blocks, then
//    recurse on the side whose leading block finished first (runtime branch
//    on a[V-1] <= b[V-1], exactly the paper's 6-by-6 scheme); sortedness of
//    the runs makes the skipped comparisons provably empty.
//
// Over-read safety: a kernel for (Sa, Sb) loads whole vectors from both
// runs, so it may read elements beyond the run. Those lanes belong to later
// segments; a value equal to a broadcast element would have hashed into the
// *same* segment, so matches there are impossible and the count stays exact.
// The only exception is padding sentinels matching each other, which the
// guarded kernel variants mask out.
#ifndef FESIA_FESIA_KERNELS_IMPL_H_
#define FESIA_FESIA_KERNELS_IMPL_H_

#include <array>
#include <cstdint>
#include <utility>

#include "fesia/kernels.h"

namespace fesia::internal {

inline constexpr uint32_t kSentinelValue = 0xFFFFFFFFu;

template <typename Ops>
struct KernelGen {
  static constexpr int kV = Ops::kLanes;
  /// Tables cover sizes 0..2V so the vector-rounded "general" kernel of
  /// Figs. 4-6 is also a table entry.
  static constexpr int kMaxSize = 2 * kV;
  static constexpr int kN = kMaxSize + 1;

  using Vec = typename Ops::Vec;
  using Cmp = typename Ops::Cmp;

  /// All-pairs compare: broadcasts bcast[0..SBCAST) against the
  /// ceil(SVEC / V) vectors starting at vecs, OR-combining equality masks
  /// per vector, and counts matched vector-side lanes.
  template <int SBCAST, int SVEC, bool kGuard>
  static inline uint32_t BroadcastCompare(const uint32_t* bcast,
                                          const uint32_t* vecs) {
    constexpr int kNumVec = (SVEC + kV - 1) / kV;
    Vec vb[kNumVec];
    for (int v = 0; v < kNumVec; ++v) vb[v] = Ops::Load(vecs + v * kV);
    Cmp acc[kNumVec];
    for (int v = 0; v < kNumVec; ++v) acc[v] = Ops::EmptyCmp();
    for (int i = 0; i < SBCAST; ++i) {
      Vec va = Ops::Broadcast(bcast[i]);
      for (int v = 0; v < kNumVec; ++v) {
        acc[v] = Ops::OrCmp(acc[v], Ops::CmpEq(va, vb[v]));
      }
    }
    uint32_t count = 0;
    Vec sentinel = Ops::Broadcast(kSentinelValue);
    for (int v = 0; v < kNumVec; ++v) {
      Cmp m = acc[v];
      if constexpr (kGuard) {
        // Drop lanes whose *vector-side* value is the padding sentinel;
        // they can only have matched a broadcast sentinel.
        m = Ops::AndNotCmp(Ops::CmpEq(sentinel, vb[v]), m);
      }
      count += Ops::CountCmp(m);
    }
    return count;
  }

  /// The specialized kernel for exact sizes (SA, SB).
  template <int SA, int SB, bool kGuard>
  static uint32_t Kernel(const uint32_t* a, const uint32_t* b) {
    if constexpr (SA == 0 || SB == 0) {
      (void)a;
      (void)b;
      return 0;
    } else if constexpr (SA > kV && SB > kV) {
      // Large-by-large: leading V-by-V blocks, then recurse on the side
      // whose block was exhausted first (paper Fig. 3, right).
      uint32_t count = BroadcastCompare<kV, kV, kGuard>(a, b);
      if (a[kV - 1] <= b[kV - 1]) {
        count += Kernel<SA - kV, SB, kGuard>(a + kV, b);
      } else {
        count += Kernel<SA, SB - kV, kGuard>(a, b + kV);
      }
      return count;
    } else {
      // Pick the cheaper broadcast side: broadcasts cost one op per element,
      // compares cost (broadcast count) x (vector count of the other side).
      constexpr int kCostA = SA * ((SB + kV - 1) / kV);
      constexpr int kCostB = SB * ((SA + kV - 1) / kV);
      if constexpr (kCostA <= kCostB) {
        return BroadcastCompare<SA, SB, kGuard>(a, b);
      } else {
        return BroadcastCompare<SB, SA, kGuard>(b, a);
      }
    }
  }

  template <bool kGuard, size_t... I>
  static constexpr std::array<SegKernelFn, sizeof...(I)> MakeFns(
      std::index_sequence<I...>) {
    return {(&Kernel<static_cast<int>(I) / kN, static_cast<int>(I) % kN,
                     kGuard>)...};
  }

  /// Dense (kN x kN) jump table of kernel pointers.
  template <bool kGuard>
  static constexpr std::array<SegKernelFn, kN * kN> MakeTable() {
    return MakeFns<kGuard>(std::make_index_sequence<kN * kN>{});
  }

  /// Runtime-size materializing intersection of two runs; used by the
  /// result-producing API and by k-way cascades. Sentinel-aware.
  static size_t SegmentInto(const uint32_t* a, uint32_t sa, const uint32_t* b,
                            uint32_t sb, uint32_t* out) {
    size_t k = 0;
    for (uint32_t i = 0; i < sa; ++i) {
      uint32_t v = a[i];
      if (v == kSentinelValue) break;  // padding starts; runs are ascending
      Vec va = Ops::Broadcast(v);
      Cmp any = Ops::EmptyCmp();
      for (uint32_t j = 0; j < sb; j += static_cast<uint32_t>(kV)) {
        any = Ops::OrCmp(any, Ops::CmpEq(va, Ops::Load(b + j)));
      }
      out[k] = v;
      k += Ops::CountCmp(any) != 0 ? 1 : 0;
    }
    return k;
  }

  /// Runtime-size membership probe of one run (the FESIAhash primitive).
  static bool ProbeRun(const uint32_t* run, uint32_t len, uint32_t key) {
    Vec vkey = Ops::Broadcast(key);
    for (uint32_t j = 0; j < len; j += static_cast<uint32_t>(kV)) {
      if (Ops::CountCmp(Ops::CmpEq(vkey, Ops::Load(run + j))) != 0) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace fesia::internal

#endif  // FESIA_FESIA_KERNELS_IMPL_H_
