// FesiaSet serialization: a flat little-endian layout with a magic tag,
// version, and (since v2) a CRC32C integrity footer so services can persist
// the offline phase and trust what they load back.
//
// v2 layout (all integers little-endian; current writer):
//   u64 magic "FESIASET"        u32 version = 2
//   u32 n                       u32 bitmap_bits
//   u32 segment_bits            u32 kernel_stride
//   f64 bitmap_scale            u32 simd_level
//   u64 bitmap_word_count       u64 offsets_count
//   u64 reordered_count
//   bitmap words...  offsets...  reordered elements...   (raw, no counts)
//   u32 crc32c over every preceding byte
//
// v1 layout (read-compatible; no checksum, counts inline):
//   u64 magic  u32 version = 1
//   u32 n  u32 bitmap_bits  u32 segment_bits  u32 kernel_stride
//   f64 bitmap_scale  u32 simd_level
//   u64 count + bitmap words...  u64 count + offsets...
//   u64 count + reordered...
//
// Both versions pass the same deep validation after parsing: every stored
// element is re-hashed to confirm segment membership, runs must be strictly
// ascending with sentinel padding only at the tail, offsets must be
// consistent with kernel_stride, and the bitmap must equal the bitmap
// recomputed from the elements. A v1 blob therefore loads with full
// structural guarantees; only the checksum is v2-exclusive.
#include <cmath>
#include <cstring>
#include <string>
#include <type_traits>

#include "fesia/fesia_set.h"
#include "fesia/hashing.h"
#include "util/bits.h"
#include "util/byte_io.h"
#include "util/crc32c.h"
#include "util/status.h"

namespace fesia {
namespace {

constexpr uint64_t kMagic = 0x5445534149534546ull;  // "FESIASET" LE
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;

/// Header fields common to v1 and v2, validated to the ranges Build()
/// guarantees before anything is cast to an enum or used as a size.
struct Header {
  uint32_t n = 0;
  uint32_t bitmap_bits = 0;
  uint32_t segment_bits = 0;
  uint32_t kernel_stride = 0;
  double bitmap_scale = 0;
  uint32_t simd_level = 0;
};

Status ReadAndValidateHeader(ByteReader& r, Header* h) {
  if (!r.Get(&h->n) || !r.Get(&h->bitmap_bits) || !r.Get(&h->segment_bits) ||
      !r.Get(&h->kernel_stride) || !r.Get(&h->bitmap_scale) ||
      !r.Get(&h->simd_level)) {
    return Status::Corruption("truncated snapshot header");
  }
  // Floor matches ChooseBitmapBits: one 64-bit word. Snapshots written when
  // the floor was 512 bits validate unchanged (the bitmap is recomputed
  // from the stored bitmap_bits, not re-chosen).
  if (!IsPow2(h->bitmap_bits) || h->bitmap_bits < 64) {
    return Status::Corruption("bitmap_bits " + std::to_string(h->bitmap_bits) +
                              " is not a power of two >= 64");
  }
  if (h->segment_bits != 8 && h->segment_bits != 16 &&
      h->segment_bits != 32) {
    return Status::Corruption("segment_bits " +
                              std::to_string(h->segment_bits) +
                              " not in {8, 16, 32}");
  }
  if (h->kernel_stride != 1 && h->kernel_stride != 2 &&
      h->kernel_stride != 4 && h->kernel_stride != 8) {
    return Status::Corruption("kernel_stride " +
                              std::to_string(h->kernel_stride) +
                              " not in {1, 2, 4, 8}");
  }
  // Range-check before any static_cast<SimdLevel>: a hostile u32 must not
  // become an out-of-enum value.
  if (h->simd_level > static_cast<uint32_t>(SimdLevel::kAvx512) &&
      h->simd_level != static_cast<uint32_t>(SimdLevel::kAuto)) {
    return Status::Corruption("simd_level " + std::to_string(h->simd_level) +
                              " out of range");
  }
  if (!std::isfinite(h->bitmap_scale)) {
    return Status::Corruption("bitmap_scale is not finite");
  }
  return Status::Ok();
}

/// Deep structural validation of parsed sections: everything Build()
/// guarantees is re-derived and compared, so a blob that passes loads into
/// a state indistinguishable from a freshly built set.
Status ValidateStructure(const Header& h,
                         const std::vector<uint64_t>& bitmap_words,
                         const std::vector<uint32_t>& offsets,
                         const std::vector<uint32_t>& reordered) {
  const uint32_t s = h.segment_bits;
  const uint32_t num_segments = h.bitmap_bits / s;
  const uint32_t m_mask = h.bitmap_bits - 1;
  const uint32_t stride = h.kernel_stride;

  if (bitmap_words.size() != CeilDiv(h.bitmap_bits, 64)) {
    return Status::Corruption("bitmap word count mismatch");
  }
  if (offsets.size() != static_cast<size_t>(num_segments) + 1) {
    return Status::Corruption("offsets count mismatch");
  }
  if (offsets.front() != 0 ||
      offsets.back() != static_cast<uint32_t>(reordered.size())) {
    return Status::Corruption("offsets endpoints inconsistent");
  }

  std::vector<uint64_t> expected_bitmap(bitmap_words.size(), 0);
  uint64_t real_elements = 0;
  for (uint32_t seg = 0; seg < num_segments; ++seg) {
    if (offsets[seg + 1] < offsets[seg]) {
      return Status::Corruption("offsets not monotone at segment " +
                                std::to_string(seg));
    }
    const uint32_t run_size = offsets[seg + 1] - offsets[seg];
    if (run_size == 0) continue;

    // Non-sentinel prefix, strictly ascending, each element re-hashed into
    // this segment; sentinel padding only at the tail.
    uint32_t count = 0;
    uint32_t prev = 0;
    for (uint32_t i = offsets[seg]; i < offsets[seg + 1]; ++i) {
      const uint32_t v = reordered[i];
      if (v == FesiaSet::kSentinel) break;
      if (count > 0 && v <= prev) {
        return Status::Corruption("segment " + std::to_string(seg) +
                                  " run not strictly ascending");
      }
      const uint32_t bit = HashToBit(v, m_mask);
      if (bit / s != seg) {
        return Status::Corruption("element " + std::to_string(v) +
                                  " re-hashes to segment " +
                                  std::to_string(bit / s) + ", stored in " +
                                  std::to_string(seg));
      }
      expected_bitmap[bit >> 6] |= uint64_t{1} << (bit & 63);
      prev = v;
      ++count;
    }
    for (uint32_t i = offsets[seg] + count; i < offsets[seg + 1]; ++i) {
      if (reordered[i] != FesiaSet::kSentinel) {
        return Status::Corruption("segment " + std::to_string(seg) +
                                  " has elements after sentinel padding");
      }
    }
    if (count == 0 || CeilDiv(count, stride) * stride != run_size) {
      return Status::Corruption("segment " + std::to_string(seg) +
                                " size inconsistent with kernel_stride");
    }
    real_elements += count;
  }

  if (real_elements != h.n) {
    return Status::Corruption(
        "element count mismatch: header says " + std::to_string(h.n) +
        ", runs hold " + std::to_string(real_elements));
  }
  if (std::memcmp(expected_bitmap.data(), bitmap_words.data(),
                  bitmap_words.size() * sizeof(uint64_t)) != 0) {
    return Status::Corruption(
        "bitmap does not match one recomputed from the elements");
  }
  return Status::Ok();
}

/// Parsed-and-validated sections of a snapshot, ready to install.
struct Sections {
  Header header;
  std::vector<uint64_t> bitmap_words;
  std::vector<uint32_t> offsets;
  std::vector<uint32_t> reordered;
};

Status ParseV1(ByteReader& r, Sections* s) {
  FESIA_RETURN_IF_ERROR(ReadAndValidateHeader(r, &s->header));
  FESIA_RETURN_IF_ERROR(r.GetCountedArray(&s->bitmap_words));
  FESIA_RETURN_IF_ERROR(r.GetCountedArray(&s->offsets));
  FESIA_RETURN_IF_ERROR(r.GetCountedArray(&s->reordered));
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after snapshot");
  return ValidateStructure(s->header, s->bitmap_words, s->offsets,
                           s->reordered);
}

Status ParseV2(ByteReader& r, std::span<const uint8_t> bytes, Sections* s) {
  // Checksum first: a failed CRC pinpoints storage corruption regardless of
  // which field the damage landed in.
  if (bytes.size() < r.pos() + sizeof(uint32_t)) {
    return Status::Corruption("snapshot too short for checksum footer");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t actual_crc =
      Crc32c(bytes.data(), bytes.size() - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::Corruption("checksum mismatch: snapshot is corrupted");
  }

  FESIA_RETURN_IF_ERROR(ReadAndValidateHeader(r, &s->header));
  uint64_t bitmap_count = 0, offsets_count = 0, reordered_count = 0;
  if (!r.Get(&bitmap_count) || !r.Get(&offsets_count) ||
      !r.Get(&reordered_count)) {
    return Status::Corruption("truncated section table");
  }
  FESIA_RETURN_IF_ERROR(r.GetRawArray(&s->bitmap_words, bitmap_count));
  FESIA_RETURN_IF_ERROR(r.GetRawArray(&s->offsets, offsets_count));
  FESIA_RETURN_IF_ERROR(r.GetRawArray(&s->reordered, reordered_count));
  if (r.pos() + sizeof(uint32_t) != bytes.size()) {
    return Status::Corruption("section lengths inconsistent with size");
  }
  return ValidateStructure(s->header, s->bitmap_words, s->offsets,
                           s->reordered);
}

}  // namespace

std::vector<uint8_t> FesiaSet::Serialize() const {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.Put(kMagic);
  w.Put(kVersionV2);
  w.Put(n_);
  w.Put(bitmap_bits_);
  w.Put(static_cast<uint32_t>(segment_bits_));
  w.Put(static_cast<uint32_t>(kernel_stride_));
  w.Put(params_.bitmap_scale);
  w.Put(static_cast<uint32_t>(params_.simd_level));
  w.Put(static_cast<uint64_t>(bitmap_.size()));
  w.Put(static_cast<uint64_t>(offsets_.size()));
  w.Put(static_cast<uint64_t>(reordered_size()));
  w.PutRaw(bitmap_.data(), bitmap_.size());
  w.PutRaw(offsets_.data(), offsets_.size());
  w.PutRaw(reordered_.data(), reordered_size());
  w.Put(Crc32c(out.data(), out.size()));
  return out;
}

Status FesiaSet::Deserialize(std::span<const uint8_t> bytes, FesiaSet* out) {
  FESIA_CHECK(out != nullptr);
  ByteReader r(bytes);
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!r.Get(&magic)) return Status::Corruption("snapshot shorter than magic");
  if (magic != kMagic) return Status::Corruption("bad magic tag");
  if (!r.Get(&version)) return Status::Corruption("snapshot missing version");

  Sections s;
  switch (version) {
    case kVersionV1:
      FESIA_RETURN_IF_ERROR(ParseV1(r, &s));
      break;
    case kVersionV2:
      FESIA_RETURN_IF_ERROR(ParseV2(r, bytes, &s));
      break;
    default:
      return Status::Corruption("unsupported snapshot version " +
                                std::to_string(version));
  }

  // Install the validated sections. `out` is only overwritten on success.
  const Header& h = s.header;
  FesiaSet set;
  set.n_ = h.n;
  set.bitmap_bits_ = h.bitmap_bits;
  set.segment_bits_ = static_cast<int>(h.segment_bits);
  set.kernel_stride_ = static_cast<int>(h.kernel_stride);
  set.params_.segment_bits = set.segment_bits_;
  set.params_.kernel_stride = set.kernel_stride_;
  set.params_.bitmap_scale = h.bitmap_scale;
  set.params_.simd_level = static_cast<SimdLevel>(h.simd_level);

  if (!set.bitmap_.TryReset(s.bitmap_words.size())) {
    return Status::ResourceExhausted("bitmap allocation failed");
  }
  std::memcpy(set.bitmap_.data(), s.bitmap_words.data(),
              s.bitmap_words.size() * sizeof(uint64_t));
  if (!set.reordered_.TryReset(s.reordered.size(), /*pad_elements=*/32)) {
    return Status::ResourceExhausted("reordered allocation failed");
  }
  for (size_t i = 0; i < set.reordered_.padded_size(); ++i) {
    set.reordered_[i] = kSentinel;
  }
  if (!s.reordered.empty()) {
    std::memcpy(set.reordered_.data(), s.reordered.data(),
                s.reordered.size() * sizeof(uint32_t));
  }
  set.offsets_ = std::move(s.offsets);
  *out = std::move(set);
  return Status::Ok();
}

}  // namespace fesia
