// FesiaSet serialization: a flat little-endian layout with a magic tag and
// version so services can persist the offline phase.
//
// Layout (all integers little-endian):
//   u64 magic "FESIASET"        u32 version
//   u32 n                       u32 bitmap_bits
//   u32 segment_bits            u32 kernel_stride
//   f64 bitmap_scale            u32 simd_level
//   u64 bitmap_word_count       u64 bitmap words...
//   u64 offsets_count           u32 offsets...
//   u64 reordered_count         u32 reordered elements...
#include <cstring>
#include <type_traits>

#include "fesia/fesia_set.h"
#include "util/bits.h"

namespace fesia {
namespace {

constexpr uint64_t kMagic = 0x5445534149534546ull;  // "FESIASET" LE
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t pos = out_->size();
    out_->resize(pos + sizeof(T));
    std::memcpy(out_->data() + pos, &v, sizeof(T));
  }

  template <typename T>
  void PutArray(const T* data, size_t count) {
    Put<uint64_t>(count);
    size_t pos = out_->size();
    out_->resize(pos + count * sizeof(T));
    std::memcpy(out_->data() + pos, data, count * sizeof(T));
  }

 private:
  std::vector<uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  bool Get(T* v) {
    if (pos_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool GetArray(std::vector<T>* out, uint64_t max_count) {
    uint64_t count = 0;
    if (!Get(&count) || count > max_count) return false;
    if (pos_ + count * sizeof(T) > bytes_.size()) return false;
    out->resize(count);
    std::memcpy(out->data(), bytes_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> FesiaSet::Serialize() const {
  std::vector<uint8_t> out;
  Writer w(&out);
  w.Put(kMagic);
  w.Put(kVersion);
  w.Put(n_);
  w.Put(bitmap_bits_);
  w.Put(static_cast<uint32_t>(segment_bits_));
  w.Put(static_cast<uint32_t>(kernel_stride_));
  w.Put(params_.bitmap_scale);
  w.Put(static_cast<uint32_t>(params_.simd_level));
  w.PutArray(bitmap_.data(), bitmap_.size());
  w.PutArray(offsets_.data(), offsets_.size());
  w.PutArray(reordered_.data(), reordered_size());
  return out;
}

bool FesiaSet::Deserialize(std::span<const uint8_t> bytes, FesiaSet* out) {
  Reader r(bytes);
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!r.Get(&magic) || magic != kMagic) return false;
  if (!r.Get(&version) || version != kVersion) return false;

  FesiaSet set;
  uint32_t segment_bits = 0, kernel_stride = 0, simd_level = 0;
  if (!r.Get(&set.n_) || !r.Get(&set.bitmap_bits_) || !r.Get(&segment_bits) ||
      !r.Get(&kernel_stride) || !r.Get(&set.params_.bitmap_scale) ||
      !r.Get(&simd_level)) {
    return false;
  }
  // Structural sanity: the invariants Build() guarantees.
  if (!IsPow2(set.bitmap_bits_) || set.bitmap_bits_ < 512) return false;
  if (segment_bits != 8 && segment_bits != 16 && segment_bits != 32) {
    return false;
  }
  if (kernel_stride != 1 && kernel_stride != 2 && kernel_stride != 4 &&
      kernel_stride != 8) {
    return false;
  }
  set.segment_bits_ = static_cast<int>(segment_bits);
  set.kernel_stride_ = static_cast<int>(kernel_stride);
  set.params_.segment_bits = set.segment_bits_;
  set.params_.kernel_stride = set.kernel_stride_;
  set.params_.simd_level = static_cast<SimdLevel>(simd_level);

  std::vector<uint64_t> bitmap_words;
  std::vector<uint32_t> offsets;
  std::vector<uint32_t> reordered;
  constexpr uint64_t kMaxWords = (uint64_t{1} << 31) / 64;
  if (!r.GetArray(&bitmap_words, kMaxWords)) return false;
  if (!r.GetArray(&offsets, uint64_t{1} << 32)) return false;
  if (!r.GetArray(&reordered, uint64_t{1} << 32)) return false;
  if (!r.AtEnd()) return false;

  uint32_t num_segments = set.bitmap_bits_ / segment_bits;
  if (bitmap_words.size() != CeilDiv(set.bitmap_bits_, 64)) return false;
  if (offsets.size() != static_cast<size_t>(num_segments) + 1) return false;
  if (offsets.front() != 0 || offsets.back() != reordered.size()) {
    return false;
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }

  set.bitmap_.Reset(bitmap_words.size());
  std::memcpy(set.bitmap_.data(), bitmap_words.data(),
              bitmap_words.size() * sizeof(uint64_t));
  set.offsets_ = std::move(offsets);
  set.reordered_.Reset(reordered.size(), /*pad_elements=*/32);
  for (size_t i = 0; i < set.reordered_.padded_size(); ++i) {
    set.reordered_[i] = kSentinel;
  }
  std::memcpy(set.reordered_.data(), reordered.data(),
              reordered.size() * sizeof(uint32_t));
  *out = std::move(set);
  return true;
}

}  // namespace fesia
