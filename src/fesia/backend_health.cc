#include "fesia/backend_health.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "fesia/backends.h"
#include "fesia/fesia_set.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace fesia {
namespace {

std::mutex g_mutex;
bool g_valid = false;
BackendHealth g_health;

// Seeded sample pair used as the cross-validation workload: two overlapping
// sets large enough that every kernel family (small-run lookup kernels,
// galloping fallbacks, bitmap chunk loop) executes at least once.
void MakeSamplePair(std::vector<uint32_t>* a, std::vector<uint32_t>* b) {
  Rng rng(0xFE51A5E1Full);
  a->clear();
  b->clear();
  for (int i = 0; i < 2048; ++i) {
    uint32_t shared = static_cast<uint32_t>(rng.Below(1u << 20));
    a->push_back(shared);
    b->push_back(shared);
  }
  for (int i = 0; i < 2048; ++i) {
    a->push_back(static_cast<uint32_t>(rng.Below(1u << 20)));
    b->push_back(static_cast<uint32_t>(rng.Below(1u << 20)));
  }
}

BackendHealth RunSelfCheck() {
  BackendHealth h;
  h.detected = DetectSimdLevel();

  std::vector<uint32_t> a, b;
  MakeSamplePair(&a, &b);
  FesiaSet fa = FesiaSet::Build(a);
  FesiaSet fb = FesiaSet::Build(b);

  const uint64_t expected =
      internal::GetBackendRaw(SimdLevel::kScalar).count(fa, fb);
  BackendCheckResult& scalar_check =
      h.checks[static_cast<int>(SimdLevel::kScalar)];
  scalar_check = {SimdLevel::kScalar, /*supported=*/true, /*checked=*/false,
                  /*healthy=*/true, expected, expected};
  h.effective = SimdLevel::kScalar;

  // Widest level first, so an armed backend-downgrade fault quarantines the
  // level that would otherwise serve dispatch.
  for (int l = static_cast<int>(h.detected); l >= 1; --l) {
    const SimdLevel level = static_cast<SimdLevel>(l);
    BackendCheckResult& check = h.checks[l];
    check.level = level;
    check.supported = true;
    check.checked = true;
    check.expected = expected;
    check.observed = internal::GetBackendRaw(level).count(fa, fb);
    if (fault::ShouldFail(fault::FaultPoint::kBackendDowngrade)) {
      // Simulate a miscompiled backend: report a count mismatch.
      check.observed = expected + 1;
    }
    check.healthy = check.observed == expected;
  }
  for (int l = static_cast<int>(h.detected); l >= 1; --l) {
    if (h.checks[l].healthy) {
      h.effective = static_cast<SimdLevel>(l);
      break;
    }
  }
  h.degraded = h.effective != h.detected;
  return h;
}

}  // namespace

std::string BackendHealth::ToString() const {
  std::string s = "backend health: detected ";
  s += SimdLevelName(detected);
  s += ", effective ";
  s += SimdLevelName(effective);
  s += degraded ? " (DEGRADED)\n" : "\n";
  for (int l = 3; l >= 0; --l) {
    const BackendCheckResult& c = checks[l];
    if (!c.supported) continue;
    s += "  ";
    s += SimdLevelName(static_cast<SimdLevel>(l));
    if (!c.checked) {
      s += ": reference\n";
    } else if (c.healthy) {
      s += ": ok (count " + std::to_string(c.observed) + ")\n";
    } else {
      s += ": QUARANTINED (expected " + std::to_string(c.expected) +
           ", observed " + std::to_string(c.observed) + ")\n";
    }
  }
  return s;
}

const BackendHealth& GetBackendHealth() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_valid) {
    g_health = RunSelfCheck();
    g_valid = true;
  }
  return g_health;
}

SimdLevel EffectiveSimdLevel() { return GetBackendHealth().effective; }

namespace internal {

void ResetBackendHealthForTest() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_valid = false;
}

}  // namespace internal
}  // namespace fesia
