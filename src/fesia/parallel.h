// Multicore pairwise intersection (paper Sec. VI "Multicore parallelism").
//
// There are no cross-segment dependencies in either step, so the segment
// range is statically partitioned across threads; each thread runs the full
// two-step pipeline on its slice and the partial counts are summed. Work is
// dispatched onto the shared process-wide pool (util/thread_pool.h) by
// default; pass an Executor to use a caller-owned pool.
#ifndef FESIA_FESIA_PARALLEL_H_
#define FESIA_FESIA_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fesia/fesia_set.h"
#include "util/cpu.h"
#include "util/thread_pool.h"

namespace fesia {

/// Intersection size computed with `num_threads` worker threads
/// (num_threads <= 1 degenerates to the sequential path, as do pairs with
/// mismatched segment_bits, whose precondition the serial backend checks).
size_t IntersectCountParallel(const FesiaSet& a, const FesiaSet& b,
                              size_t num_threads,
                              SimdLevel level = SimdLevel::kAuto,
                              const Executor& exec = {});

/// Materializing parallel intersection: each thread fills a private buffer
/// for its segment slice — sized by the number of elements that slice can
/// actually emit, so peak memory stays O(min(|A|,|B|)) across all threads —
/// slices are concatenated (segment order) and optionally sorted. Returns
/// the intersection size.
size_t IntersectIntoParallel(const FesiaSet& a, const FesiaSet& b,
                             std::vector<uint32_t>* out, size_t num_threads,
                             bool sort_output = true,
                             SimdLevel level = SimdLevel::kAuto,
                             const Executor& exec = {});

}  // namespace fesia

#endif  // FESIA_FESIA_PARALLEL_H_
