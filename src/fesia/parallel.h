// Multicore pairwise intersection (paper Sec. VI "Multicore parallelism"),
// plus the deadline-supervised variants the serving layer uses.
//
// There are no cross-segment dependencies in either step, so the segment
// range is statically partitioned across threads; each thread runs the full
// two-step pipeline on its slice and the partial counts are summed. Work is
// dispatched onto the shared process-wide pool (util/thread_pool.h) by
// default; pass an Executor to use a caller-owned pool.
//
// Cancellation: every entry point takes an optional CancelContext and polls
// it at segment-chunk granularity, so after a deadline fires or a token is
// cancelled, at most one chunk of work remains in flight per thread. A
// stopped call returns a partial value; callers must treat the result as
// garbage whenever `*stopped` was set and report deadline-exceeded instead.
#ifndef FESIA_FESIA_PARALLEL_H_
#define FESIA_FESIA_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fesia/fesia_set.h"
#include "util/cpu.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace fesia {

/// Intersection size computed with `num_threads` worker threads
/// (num_threads <= 1 degenerates to the sequential path, as do pairs with
/// mismatched segment_bits, whose precondition the serial backend checks).
/// When `cancel` is active, every thread polls it between segment chunks
/// and `*stopped` (if non-null) reports whether any work was skipped — a
/// stopped call's return value is a meaningless partial count.
size_t IntersectCountParallel(const FesiaSet& a, const FesiaSet& b,
                              size_t num_threads,
                              SimdLevel level = SimdLevel::kAuto,
                              const Executor& exec = {},
                              const CancelContext& cancel = {},
                              bool* stopped = nullptr);

/// Materializing parallel intersection: each thread fills a private buffer
/// for its segment slice — sized by the number of elements that slice can
/// actually emit, so peak memory stays O(min(|A|,|B|)) across all threads —
/// slices are concatenated (segment order) and optionally sorted. Returns
/// the intersection size. Same cancellation contract as
/// IntersectCountParallel: when `*stopped` is set, `out` holds a partial
/// result the caller must discard.
size_t IntersectIntoParallel(const FesiaSet& a, const FesiaSet& b,
                             std::vector<uint32_t>* out, size_t num_threads,
                             bool sort_output = true,
                             SimdLevel level = SimdLevel::kAuto,
                             const Executor& exec = {},
                             const CancelContext& cancel = {},
                             bool* stopped = nullptr);

/// Single-threaded count that walks the segment range chunk by chunk,
/// polling `cancel` between chunks — the cancellable analogue of
/// IntersectCount for callers (the batch executor's workers) that cannot
/// fan out but still need bounded cancellation latency. With an inert
/// context this is one backend call, identical in cost to IntersectCount.
size_t IntersectCountCancellable(const FesiaSet& a, const FesiaSet& b,
                                 const CancelContext& cancel,
                                 SimdLevel level = SimdLevel::kAuto,
                                 bool* stopped = nullptr);

/// Cancellable materializing intersection (single-threaded, chunk-wise).
/// When `*stopped` is set, `out` holds a partial result to discard.
size_t IntersectIntoCancellable(const FesiaSet& a, const FesiaSet& b,
                                std::vector<uint32_t>* out,
                                const CancelContext& cancel,
                                bool sort_output = true,
                                SimdLevel level = SimdLevel::kAuto,
                                bool* stopped = nullptr);

}  // namespace fesia

#endif  // FESIA_FESIA_PARALLEL_H_
