#include "fesia/auto.h"

#include <algorithm>

#include "fesia/intersect.h"
#include "fesia/intersect_hash.h"

namespace fesia {

IntersectStrategy ChooseStrategy(const FesiaSet& a, const FesiaSet& b) {
  // An empty side makes the intersection empty: without this check a zero
  // size computes ratio 0 and routes into the hash probe path, building
  // probe state for a result that is known to be empty.
  if (a.empty() || b.empty()) return IntersectStrategy::kMerge;
  double small = static_cast<double>(std::min(a.size(), b.size()));
  double large = static_cast<double>(std::max<uint32_t>(
      1, std::max(a.size(), b.size())));
  return (small / large) < kHashStrategySkewThreshold
             ? IntersectStrategy::kHash
             : IntersectStrategy::kMerge;
}

size_t IntersectCountAuto(const FesiaSet& a, const FesiaSet& b,
                          SimdLevel level) {
  if (a.empty() || b.empty()) return 0;
  // The merge branch is count-only here, so it takes the fused
  // AND+popcount sweep; results are byte-identical to IntersectCount.
  return ChooseStrategy(a, b) == IntersectStrategy::kHash
             ? IntersectCountHash(a, b, level)
             : IntersectCountFused(a, b, level);
}

}  // namespace fesia
