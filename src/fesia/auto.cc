#include "fesia/auto.h"

#include <algorithm>

#include "fesia/intersect.h"
#include "fesia/intersect_hash.h"

namespace fesia {

IntersectStrategy ChooseStrategy(const FesiaSet& a, const FesiaSet& b) {
  double small = static_cast<double>(std::min(a.size(), b.size()));
  double large = static_cast<double>(std::max<uint32_t>(
      1, std::max(a.size(), b.size())));
  return (small / large) < kHashStrategySkewThreshold
             ? IntersectStrategy::kHash
             : IntersectStrategy::kMerge;
}

size_t IntersectCountAuto(const FesiaSet& a, const FesiaSet& b,
                          SimdLevel level) {
  return ChooseStrategy(a, b) == IntersectStrategy::kHash
             ? IntersectCountHash(a, b, level)
             : IntersectCount(a, b, level);
}

}  // namespace fesia
