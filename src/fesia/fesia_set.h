// The segmented-bitmap set representation (paper Sec. III-B, Fig. 1).
//
// A FesiaSet encodes a sorted, duplicate-free set of 32-bit values as:
//   bitmap    — m bits; bit h(x) is set for every element x,
//   offsets   — (m/s + 1) prefix sums: where each segment's element run
//               starts inside `reordered` (per-segment sizes are the deltas),
//   reordered — every element, grouped by segment, ascending inside each
//               segment, padded so SIMD kernels may over-read safely.
//
// m is a power of two (paper Sec. III-C), chosen as roughly
// bitmap_scale * n and rounded up, with bitmap_scale defaulting to √w for
// the resolved SIMD width w — the paper's optimum m = n·√w.
#ifndef FESIA_FESIA_FESIA_SET_H_
#define FESIA_FESIA_FESIA_SET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/cpu.h"
#include "util/status.h"

namespace fesia {

/// Build-time parameters of the segmented bitmap.
struct FesiaParams {
  /// Segment width s in bits: 8, 16, or 32. Smaller segments mean more,
  /// smaller segment lists (cheaper step 2, costlier step 1); see Fig. 14.
  int segment_bits = 16;

  /// Bitmap bits per element before power-of-two rounding; <= 0 selects the
  /// paper's optimum √w for the resolved `simd_level` width w.
  double bitmap_scale = 0.0;

  /// Kernel-table sampling stride (1, 2, 4, or 8). Strides > 1 pad each
  /// segment's element run with sentinels up to the next stride multiple so
  /// that only kernels at sampled sizes are ever dispatched (paper Sec. VI,
  /// Table II).
  int kernel_stride = 1;

  /// ISA level used (a) to resolve the default bitmap_scale and (b) by
  /// intersection calls that take their level from the build parameters.
  SimdLevel simd_level = SimdLevel::kAuto;
};

/// Immutable segmented-bitmap representation of one set.
class FesiaSet {
 public:
  /// Reserved padding value; elements must be < kSentinel.
  static constexpr uint32_t kSentinel = 0xFFFFFFFFu;

  /// Builds the representation. `elements` need not be sorted; duplicates
  /// and kSentinel values are dropped. O(n log n).
  static FesiaSet Build(std::span<const uint32_t> elements,
                        const FesiaParams& params = {});

  FesiaSet() = default;
  FesiaSet(const FesiaSet&) = default;
  FesiaSet& operator=(const FesiaSet&) = default;
  FesiaSet(FesiaSet&&) noexcept = default;
  FesiaSet& operator=(FesiaSet&&) noexcept = default;

  /// Number of distinct elements stored.
  uint32_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Bitmap size m in bits (a power of two, >= segment_bits()).
  uint32_t bitmap_bits() const { return bitmap_bits_; }
  /// Segment width s in bits.
  int segment_bits() const { return segment_bits_; }
  /// Number of segments N = m / s.
  uint32_t num_segments() const { return bitmap_bits_ / segment_bits_; }
  /// Stride the reordered runs were padded to (1 = exact sizes).
  int kernel_stride() const { return kernel_stride_; }
  /// Parameters the set was built with.
  const FesiaParams& params() const { return params_; }

  /// Bitmap storage as 64-bit words (num_segments * s / 64 words, rounded up,
  /// vector-aligned and zero-padded).
  const uint64_t* bitmap_words() const { return bitmap_.data(); }
  size_t bitmap_word_count() const { return bitmap_.size(); }

  /// Prefix offsets into reordered(): num_segments() + 1 entries.
  const uint32_t* offsets() const { return offsets_.data(); }
  /// Elements grouped by segment (plus sentinel padding).
  const uint32_t* reordered() const { return reordered_.data(); }
  /// Length of the reordered array including stride padding (excludes the
  /// vector-safety tail).
  uint32_t reordered_size() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  /// Stored (possibly stride-padded) size of segment `seg`.
  uint32_t SegmentSize(uint32_t seg) const {
    return offsets_[seg + 1] - offsets_[seg];
  }
  /// Start of segment `seg`'s run inside reordered().
  const uint32_t* SegmentData(uint32_t seg) const {
    return reordered_.data() + offsets_[seg];
  }

  /// True iff bit `pos` of the bitmap is set.
  bool TestBit(uint32_t pos) const {
    return (bitmap_[pos >> 6] >> (pos & 63)) & 1;
  }

  /// Membership test: bitmap probe, then a scan of one segment run.
  /// O(1) expected — this is the primitive FESIAhash builds on.
  bool Contains(uint32_t value) const;

  /// Copies the elements out in fully sorted order (drops padding).
  std::vector<uint32_t> ToSortedVector() const;

  /// Serializes the structure to a portable little-endian byte buffer
  /// (snapshot format v2: CRC32C-checksummed, see docs/ROBUSTNESS.md).
  /// The offline phase (paper Sec. III-A) is the expensive part; persisting
  /// it lets services build once and map/load at query time.
  std::vector<uint8_t> Serialize() const;

  /// Reconstructs a set from Serialize() output (v2) or a legacy v1 blob.
  /// On any malformed, truncated, or corrupted input returns a non-OK
  /// Status (kCorruption / kResourceExhausted) and leaves `out` untouched;
  /// a blob that passes is structurally indistinguishable from a freshly
  /// built set (every element is re-hashed and the bitmap recomputed).
  static Status Deserialize(std::span<const uint8_t> bytes, FesiaSet* out);

  /// Diagnostics used by tests and benches.
  struct Stats {
    uint32_t nonempty_segments = 0;
    uint32_t max_segment_size = 0;
    uint32_t padded_elements = 0;  // sentinel slots added by kernel_stride
    size_t memory_bytes = 0;       // bitmap + offsets + reordered
  };
  Stats ComputeStats() const;

 private:
  uint32_t n_ = 0;
  uint32_t bitmap_bits_ = 0;
  int segment_bits_ = 16;
  int kernel_stride_ = 1;
  FesiaParams params_;
  AlignedBuffer<uint64_t> bitmap_;
  std::vector<uint32_t> offsets_;
  AlignedBuffer<uint32_t> reordered_;
};

}  // namespace fesia

#endif  // FESIA_FESIA_FESIA_SET_H_
