// One-time startup self-check of the SIMD backends, with graceful
// degradation.
//
// Before the first dispatched intersection, every backend the CPU supports
// is cross-validated against the scalar reference on a seeded sample pair.
// A backend whose count disagrees (broken build flags, miscompiled kernel,
// or an injected fault::kBackendDowngrade) is quarantined and dispatch
// falls back to the widest level that did pass — correctness degrades to a
// narrower ISA instead of silently returning wrong counts. The decision is
// observable through GetBackendHealth().
#ifndef FESIA_FESIA_BACKEND_HEALTH_H_
#define FESIA_FESIA_BACKEND_HEALTH_H_

#include <cstdint>
#include <string>

#include "util/cpu.h"

namespace fesia {

/// Outcome of one backend's self-check.
struct BackendCheckResult {
  SimdLevel level = SimdLevel::kScalar;
  bool supported = false;   // the CPU can execute this level
  bool checked = false;     // the self-check ran (scalar is the reference)
  bool healthy = false;     // count matched the scalar reference
  uint64_t expected = 0;    // scalar reference count
  uint64_t observed = 0;    // this backend's count
};

/// Aggregate report of the startup self-check.
struct BackendHealth {
  SimdLevel detected = SimdLevel::kScalar;   // cpuid (possibly env-capped)
  SimdLevel effective = SimdLevel::kScalar;  // widest healthy level
  bool degraded = false;                     // effective < detected
  BackendCheckResult checks[4];              // indexed by SimdLevel 0..3

  /// Multi-line human-readable summary for logs/CLI.
  std::string ToString() const;
};

/// Runs the self-check on first call (thread-safe) and returns the cached
/// report.
const BackendHealth& GetBackendHealth();

/// Widest SIMD level whose backend passed the self-check. Dispatch clamps
/// to this, so a quarantined backend can never execute.
SimdLevel EffectiveSimdLevel();

namespace internal {
/// Discards the cached report so the next GetBackendHealth() re-runs the
/// self-check. Test-only: lets fault-injection tests rehearse quarantine
/// and then restore full dispatch.
void ResetBackendHealthForTest();
}  // namespace internal

}  // namespace fesia

#endif  // FESIA_FESIA_BACKEND_HEALTH_H_
