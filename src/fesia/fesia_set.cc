#include "fesia/fesia_set.h"

#include <algorithm>
#include <cmath>

#include "fesia/hashing.h"
#include "util/bits.h"
#include "util/check.h"

namespace fesia {
namespace {

// Default bitmap_scale: the paper's optimum m = n·√w for SIMD width w bits.
double DefaultScale(SimdLevel level) {
  return std::sqrt(static_cast<double>(SimdWidthBits(ResolveSimdLevel(level))));
}

uint32_t ChooseBitmapBits(size_t n, const FesiaParams& params) {
  double scale = params.bitmap_scale > 0 ? params.bitmap_scale
                                         : DefaultScale(params.simd_level);
  double target = scale * static_cast<double>(n);
  // At least one 64-bit word of bitmap, so at least one segment exists and
  // whole-word wrap logic (the pipeline's sub-chunk lane tiling, the k-way
  // word loop) stays exact. Bitmaps narrower than a SIMD chunk are handled
  // by intersect_impl.h's SmallChunk tiling, so tiny Zipf-tail sets no
  // longer pay a 512-bit floor.
  uint64_t bits = RoundUpPow2(static_cast<uint64_t>(std::llround(
      std::max(target, 64.0))));
  FESIA_CHECK(bits <= (uint64_t{1} << 31));
  return static_cast<uint32_t>(bits);
}

}  // namespace

FesiaSet FesiaSet::Build(std::span<const uint32_t> elements,
                         const FesiaParams& params) {
  FESIA_CHECK(params.segment_bits == 8 || params.segment_bits == 16 ||
              params.segment_bits == 32);
  FESIA_CHECK(params.kernel_stride == 1 || params.kernel_stride == 2 ||
              params.kernel_stride == 4 || params.kernel_stride == 8);

  // Sort + dedupe (and drop reserved sentinel values).
  std::vector<uint32_t> sorted(elements.begin(), elements.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  while (!sorted.empty() && sorted.back() == kSentinel) sorted.pop_back();

  FesiaSet set;
  set.n_ = static_cast<uint32_t>(sorted.size());
  set.segment_bits_ = params.segment_bits;
  set.kernel_stride_ = params.kernel_stride;
  set.params_ = params;
  set.bitmap_bits_ = ChooseBitmapBits(sorted.size(), params);

  const uint32_t m_mask = set.bitmap_bits_ - 1;
  const uint32_t s = static_cast<uint32_t>(params.segment_bits);
  const uint32_t num_segments = set.bitmap_bits_ / s;
  const uint32_t stride = static_cast<uint32_t>(params.kernel_stride);

  // Pass 1: per-segment exact sizes + bitmap bits.
  set.bitmap_.Reset(CeilDiv(set.bitmap_bits_, 64));
  std::vector<uint32_t> seg_size(num_segments, 0);
  for (uint32_t v : sorted) {
    uint32_t bit = HashToBit(v, m_mask);
    set.bitmap_[bit >> 6] |= uint64_t{1} << (bit & 63);
    ++seg_size[bit / s];
  }

  // Pass 2: offsets over stride-padded sizes.
  set.offsets_.assign(num_segments + 1, 0);
  uint32_t total = 0;
  for (uint32_t i = 0; i < num_segments; ++i) {
    set.offsets_[i] = total;
    uint32_t padded =
        seg_size[i] == 0 ? 0 : CeilDiv(seg_size[i], stride) * stride;
    total += padded;
  }
  set.offsets_[num_segments] = total;

  // Pass 3: scatter elements into their runs; pad with sentinels. The
  // buffer also carries a sentinel tail of two full vectors so any kernel
  // may load a whole register starting at the last element.
  set.reordered_.Reset(total, /*pad_elements=*/32);
  for (uint32_t i = 0; i < set.reordered_.padded_size(); ++i) {
    set.reordered_[i] = kSentinel;
  }
  std::vector<uint32_t> cursor(num_segments);
  for (uint32_t i = 0; i < num_segments; ++i) cursor[i] = set.offsets_[i];
  for (uint32_t v : sorted) {
    uint32_t seg = HashToBit(v, m_mask) / s;
    set.reordered_[cursor[seg]++] = v;
  }
  // Elements within a segment arrive in globally sorted order (the input is
  // sorted and scatter is stable), so each run is already ascending.
  return set;
}

bool FesiaSet::Contains(uint32_t value) const {
  if (n_ == 0 || value == kSentinel) return false;
  uint32_t bit = HashToBit(value, bitmap_bits_ - 1);
  if (!TestBit(bit)) return false;
  uint32_t seg = bit / static_cast<uint32_t>(segment_bits_);
  const uint32_t* run = SegmentData(seg);
  uint32_t len = SegmentSize(seg);
  for (uint32_t i = 0; i < len; ++i) {
    if (run[i] == value) return true;
    if (run[i] > value) return false;  // runs are ascending; sentinel is max
  }
  return false;
}

std::vector<uint32_t> FesiaSet::ToSortedVector() const {
  std::vector<uint32_t> out;
  out.reserve(n_);
  for (uint32_t i = 0; i < reordered_size(); ++i) {
    if (reordered_[i] != kSentinel) out.push_back(reordered_[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

FesiaSet::Stats FesiaSet::ComputeStats() const {
  Stats st;
  uint32_t n_seg = num_segments();
  for (uint32_t i = 0; i < n_seg; ++i) {
    uint32_t sz = SegmentSize(i);
    if (sz > 0) ++st.nonempty_segments;
    st.max_segment_size = std::max(st.max_segment_size, sz);
  }
  st.padded_elements = reordered_size() - n_;
  st.memory_bytes = bitmap_.size() * sizeof(uint64_t) +
                    offsets_.size() * sizeof(uint32_t) +
                    reordered_.padded_size() * sizeof(uint32_t);
  return st;
}

}  // namespace fesia
