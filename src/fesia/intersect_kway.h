// k-way FESIA intersection (paper Sec. VI, Proposition 2).
//
// Step 1 ANDs all k bitmaps (segments of larger bitmaps wrap onto smaller
// ones); only segments whose AND survives across every set reach step 2,
// where the per-segment runs are intersected by a cascade of SIMD run
// intersections. Expected cost O(kn/√w + r): the expensive k-way element
// comparisons run only on segments that pass the k-way bitmap filter.
#ifndef FESIA_FESIA_INTERSECT_KWAY_H_
#define FESIA_FESIA_INTERSECT_KWAY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fesia/fesia_set.h"
#include "util/cpu.h"

namespace fesia {

/// Size of the k-way intersection. All sets must share segment_bits.
/// k = 0 yields 0; k = 1 yields the set's size.
size_t IntersectCountKWay(std::span<const FesiaSet* const> sets,
                          SimdLevel level = SimdLevel::kAuto);

/// Materializing k-way intersection, ascending when sort_output is set.
size_t IntersectIntoKWay(std::span<const FesiaSet* const> sets,
                         std::vector<uint32_t>* out, bool sort_output = true,
                         SimdLevel level = SimdLevel::kAuto);

}  // namespace fesia

#endif  // FESIA_FESIA_INTERSECT_KWAY_H_
