// k-way FESIA intersection (paper Sec. VI, Proposition 2).
//
// Step 1 ANDs all k bitmaps (segments of larger bitmaps wrap onto smaller
// ones); only segments whose AND survives across every set reach step 2,
// where the per-segment runs are intersected by a cascade of SIMD run
// intersections. Expected cost O(kn/√w + r): the expensive k-way element
// comparisons run only on segments that pass the k-way bitmap filter.
#ifndef FESIA_FESIA_INTERSECT_KWAY_H_
#define FESIA_FESIA_INTERSECT_KWAY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fesia/fesia_set.h"
#include "util/cpu.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace fesia {

/// Size of the k-way intersection. All sets must share segment_bits.
/// k = 0 yields 0; k = 1 yields the set's size.
size_t IntersectCountKWay(std::span<const FesiaSet* const> sets,
                          SimdLevel level = SimdLevel::kAuto);

/// Materializing k-way intersection, ascending when sort_output is set.
size_t IntersectIntoKWay(std::span<const FesiaSet* const> sets,
                         std::vector<uint32_t>* out, bool sort_output = true,
                         SimdLevel level = SimdLevel::kAuto);

/// Multicore k-way intersection (paper Sec. VI applied to Proposition 2):
/// the largest input's bitmap-word range is partitioned across threads and
/// each worker runs the full AND-then-cascade pipeline on its slice.
/// num_threads <= 1, k <= 1, or a word range too small to split all
/// degenerate to the sequential path. Runs on the shared process-wide pool
/// unless `exec` names another.
///
/// When `cancel` is active, workers poll it between bitmap-word groups
/// (kKWayCancelWords words at a time), so cancellation latency is bounded
/// by one group, not one query; `*stopped` (if non-null) reports whether
/// any work was skipped, in which case the returned count is a meaningless
/// partial value the caller must discard.
size_t IntersectCountKWayParallel(std::span<const FesiaSet* const> sets,
                                  size_t num_threads,
                                  SimdLevel level = SimdLevel::kAuto,
                                  const Executor& exec = {},
                                  const CancelContext& cancel = {},
                                  bool* stopped = nullptr);

/// Materializing multicore k-way intersection; each thread emits into a
/// private slice bounded by its word range, slices are concatenated in
/// segment order and optionally sorted. Same cancellation contract as
/// IntersectCountKWayParallel (a stopped call leaves a partial `out`).
size_t IntersectIntoKWayParallel(std::span<const FesiaSet* const> sets,
                                 std::vector<uint32_t>* out,
                                 size_t num_threads, bool sort_output = true,
                                 SimdLevel level = SimdLevel::kAuto,
                                 const Executor& exec = {},
                                 const CancelContext& cancel = {},
                                 bool* stopped = nullptr);

/// Single-threaded cancellable k-way count: runs the AND-then-cascade
/// pipeline over bitmap-word groups, polling `cancel` between groups — the
/// cancellable analogue of IntersectCountKWay for batch-executor workers.
/// With an inert context the cost is identical to IntersectCountKWay.
size_t IntersectCountKWayCancellable(std::span<const FesiaSet* const> sets,
                                     const CancelContext& cancel,
                                     SimdLevel level = SimdLevel::kAuto,
                                     bool* stopped = nullptr);

/// Cancellable materializing k-way intersection (single-threaded,
/// group-wise). When `*stopped` is set, `out` holds a partial result.
size_t IntersectIntoKWayCancellable(std::span<const FesiaSet* const> sets,
                                    std::vector<uint32_t>* out,
                                    const CancelContext& cancel,
                                    bool sort_output = true,
                                    SimdLevel level = SimdLevel::kAuto,
                                    bool* stopped = nullptr);

/// Bitmap words per cancellation poll in the k-way pipeline: the bound on
/// work remaining after a deadline fires inside one worker.
inline constexpr size_t kKWayCancelWords = 32;

}  // namespace fesia

#endif  // FESIA_FESIA_INTERSECT_KWAY_H_
