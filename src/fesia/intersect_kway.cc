#include "fesia/intersect_kway.h"

#include <algorithm>
#include <atomic>

#include "fesia/backends.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace fesia {
namespace {

// Step-2 k-way intersection over one surviving segment.
//
// Fast path: with the paper's default m = n·√w almost every surviving run
// holds only a couple of elements, so the cheapest k-way "kernel" drives
// with the smallest run and probes every other run per element — no
// scratch buffers, no cascading. Long runs fall back to a materializing
// cascade (run ∩ run -> scratch -> ∩ next run ...).
inline constexpr uint32_t kKWayProbeDriverMax = 8;

template <typename Emit>
size_t ProbeSegment(std::span<const FesiaSet* const> sets, uint32_t base_seg,
                    size_t driver, const internal::Backend& backend,
                    Emit emit) {
  const FesiaSet& d = *sets[driver];
  uint32_t dseg = base_seg & (d.num_segments() - 1);
  const uint32_t* run = d.SegmentData(dseg);
  uint32_t len = d.SegmentSize(dseg);
  size_t count = 0;
  for (uint32_t i = 0; i < len; ++i) {
    uint32_t v = run[i];
    if (v == FesiaSet::kSentinel) break;  // stride padding; runs ascend
    bool in_all = true;
    for (size_t s = 0; s < sets.size(); ++s) {
      if (s == driver) continue;
      const FesiaSet& sk = *sets[s];
      uint32_t segk = base_seg & (sk.num_segments() - 1);
      if (!backend.probe_run(sk.SegmentData(segk), sk.SegmentSize(segk),
                             v)) {
        in_all = false;
        break;
      }
    }
    if (in_all) {
      emit(v);
      ++count;
    }
  }
  return count;
}

template <typename Emit>
size_t CascadeSegment(std::span<const FesiaSet* const> sets,
                      uint32_t base_seg, const internal::Backend& backend,
                      std::vector<uint32_t>* scratch_a,
                      std::vector<uint32_t>* scratch_b, Emit emit) {
  // Pick the smallest run as the driver.
  size_t driver = 0;
  uint32_t min_size = 0xFFFFFFFFu;
  for (size_t s = 0; s < sets.size(); ++s) {
    const FesiaSet& sk = *sets[s];
    uint32_t sz = sk.SegmentSize(base_seg & (sk.num_segments() - 1));
    if (sz < min_size) {
      min_size = sz;
      driver = s;
    }
  }
  if (min_size == 0) return 0;
  if (min_size <= kKWayProbeDriverMax) {
    return ProbeSegment(sets, base_seg, driver, backend, emit);
  }

  const FesiaSet& s0 = *sets[0];
  const FesiaSet& s1 = *sets[1];
  uint32_t seg0 = base_seg & (s0.num_segments() - 1);
  uint32_t seg1 = base_seg & (s1.num_segments() - 1);
  uint32_t cap = std::min(s0.SegmentSize(seg0), s1.SegmentSize(seg1));
  scratch_a->resize(cap + 1);
  size_t len =
      backend.segment_into(s0.SegmentData(seg0), s0.SegmentSize(seg0),
                           s1.SegmentData(seg1), s1.SegmentSize(seg1),
                           scratch_a->data());
  for (size_t k = 2; k < sets.size() && len > 0; ++k) {
    const FesiaSet& sk = *sets[k];
    uint32_t segk = base_seg & (sk.num_segments() - 1);
    scratch_b->resize(len + 1);
    len = backend.segment_into(scratch_a->data(),
                               static_cast<uint32_t>(len),
                               sk.SegmentData(segk), sk.SegmentSize(segk),
                               scratch_b->data());
    scratch_a->swap(*scratch_b);
  }
  for (size_t i = 0; i < len; ++i) emit((*scratch_a)[i]);
  return len;
}

// Runs the full two-step k-way pipeline over bitmap words [word_begin,
// word_end) of the largest input `base`. A word always covers whole
// segments (s >= 8 divides 64 and bitmaps are at least one 64-bit word), so a word
// range is a segment range — this is the unit the multicore extension
// partitions across threads.
template <typename Emit>
size_t ProcessWordRange(std::span<const FesiaSet* const> sets,
                        const internal::Backend& backend,
                        const FesiaSet& base, size_t word_begin,
                        size_t word_end, Emit emit) {
  const uint32_t s = static_cast<uint32_t>(base.segment_bits());
  const size_t num_words = word_end - word_begin;
  const size_t base_words = base.bitmap_bits() / 64;

  // Step 1 (paper Sec. VI): AND all k bitmaps. We materialize the combined
  // bitmap over the largest input's segment space first — each equal-size
  // AND pass is a straight-line loop the compiler vectorizes to full-width
  // SIMD — and wrap smaller bitmaps word-wise.
  std::vector<uint64_t> and_words(base.bitmap_words() + word_begin,
                                  base.bitmap_words() + word_end);
  for (const FesiaSet* set : sets) {
    if (set == &base) continue;
    const uint64_t* words = set->bitmap_words();
    const size_t set_words = set->bitmap_bits() / 64;
    if (set_words == base_words) {
      for (size_t w = 0; w < num_words; ++w) {
        and_words[w] &= words[word_begin + w];
      }
    } else {
      const size_t wrap_mask = set_words - 1;
      for (size_t w = 0; w < num_words; ++w) {
        and_words[w] &= words[(word_begin + w) & wrap_mask];
      }
    }
  }

  // Step 2: extract surviving segments and intersect their runs.
  const uint32_t segs_per_word = 64 / s;
  const uint64_t seg_mask = s == 64 ? ~uint64_t{0} : (uint64_t{1} << s) - 1;
  std::vector<uint32_t> scratch_a;
  std::vector<uint32_t> scratch_b;
  size_t total = 0;
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t word = and_words[w];
    if (word == 0) continue;
    for (uint32_t g = 0; g < segs_per_word; ++g) {
      if (((word >> (g * s)) & seg_mask) == 0) continue;
      uint32_t base_seg =
          static_cast<uint32_t>(word_begin + w) * segs_per_word + g;
      total += CascadeSegment(sets, base_seg, backend, &scratch_a,
                              &scratch_b, emit);
    }
  }
  return total;
}

// Cancellable wrapper over ProcessWordRange: walks [word_begin, word_end)
// in groups of kKWayCancelWords, polling `cancel` between groups, so the
// work remaining after a stop is bounded by one group. Each group runs the
// full two-step pipeline on its word slice (word ranges are independent).
template <typename Emit>
size_t ProcessWordRangeCancellable(std::span<const FesiaSet* const> sets,
                                   const internal::Backend& backend,
                                   const FesiaSet& base, size_t word_begin,
                                   size_t word_end,
                                   const CancelContext& cancel,
                                   bool* stopped, Emit emit) {
  size_t total = 0;
  for (size_t w = word_begin; w < word_end; w += kKWayCancelWords) {
    if (cancel.ShouldStop()) {
      *stopped = true;
      return total;
    }
    total += ProcessWordRange(sets, backend, base, w,
                              std::min(w + kKWayCancelWords, word_end), emit);
  }
  return total;
}

// Precondition checks shared by every entry; returns false when any input
// is empty (the intersection is empty, no pipeline needed).
bool ValidateKWay(std::span<const FesiaSet* const> sets) {
  for (const FesiaSet* s : sets) {
    FESIA_CHECK(s != nullptr);
    FESIA_CHECK(s->segment_bits() == sets[0]->segment_bits());
  }
  for (const FesiaSet* s : sets) {
    if (s->empty()) return false;
  }
  return true;
}

// Largest input: its segment space hosts the combined bitmap.
const FesiaSet* KWayBase(std::span<const FesiaSet* const> sets) {
  const FesiaSet* base = sets[0];
  for (const FesiaSet* set : sets) {
    if (set->num_segments() > base->num_segments()) base = set;
  }
  return base;
}

template <typename Emit>
size_t KWayImpl(std::span<const FesiaSet* const> sets, SimdLevel level,
                Emit emit) {
  if (sets.empty()) return 0;
  if (!ValidateKWay(sets)) return 0;
  if (sets.size() == 1) {
    for (uint32_t i = 0; i < sets[0]->reordered_size(); ++i) {
      uint32_t v = sets[0]->reordered()[i];
      if (v != FesiaSet::kSentinel) emit(v);
    }
    return sets[0]->size();
  }

  const internal::Backend& backend = internal::GetBackend(level);
  const FesiaSet* base = KWayBase(sets);
  return ProcessWordRange(sets, backend, *base, 0, base->bitmap_bits() / 64,
                          emit);
}

}  // namespace

size_t IntersectCountKWay(std::span<const FesiaSet* const> sets,
                          SimdLevel level) {
  return KWayImpl(sets, level, [](uint32_t) {});
}

size_t IntersectIntoKWay(std::span<const FesiaSet* const> sets,
                         std::vector<uint32_t>* out, bool sort_output,
                         SimdLevel level) {
  FESIA_CHECK(out != nullptr);
  out->clear();
  size_t r =
      KWayImpl(sets, level, [out](uint32_t v) { out->push_back(v); });
  if (sort_output) std::sort(out->begin(), out->end());
  return r;
}

size_t IntersectCountKWayParallel(std::span<const FesiaSet* const> sets,
                                  size_t num_threads, SimdLevel level,
                                  const Executor& exec,
                                  const CancelContext& cancel,
                                  bool* stopped) {
  if (sets.size() <= 1 || num_threads <= 1) {
    return IntersectCountKWayCancellable(sets, cancel, level, stopped);
  }
  if (stopped != nullptr) *stopped = false;
  if (!ValidateKWay(sets)) return 0;
  const internal::Backend& backend = internal::GetBackend(level);
  const FesiaSet* base = KWayBase(sets);
  const size_t num_words = base->bitmap_bits() / 64;
  num_threads = std::min(num_threads, num_words);
  if (num_threads <= 1) {
    return IntersectCountKWayCancellable(sets, cancel, level, stopped);
  }

  std::atomic<uint64_t> total{0};
  std::atomic<bool> any_stopped{false};
  ParallelFor(
      0, num_words, num_threads,
      [&](size_t word_begin, size_t word_end, size_t /*t*/) {
        uint64_t partial;
        if (cancel.active()) {
          bool st = false;
          partial = ProcessWordRangeCancellable(sets, backend, *base,
                                                word_begin, word_end, cancel,
                                                &st, [](uint32_t) {});
          if (st) any_stopped.store(true, std::memory_order_relaxed);
        } else {
          partial = ProcessWordRange(sets, backend, *base, word_begin,
                                     word_end, [](uint32_t) {});
        }
        total.fetch_add(partial, std::memory_order_relaxed);
      },
      exec);
  if (stopped != nullptr) {
    *stopped = any_stopped.load(std::memory_order_relaxed);
  }
  return total.load(std::memory_order_relaxed);
}

size_t IntersectIntoKWayParallel(std::span<const FesiaSet* const> sets,
                                 std::vector<uint32_t>* out,
                                 size_t num_threads, bool sort_output,
                                 SimdLevel level, const Executor& exec,
                                 const CancelContext& cancel, bool* stopped) {
  FESIA_CHECK(out != nullptr);
  if (sets.size() <= 1 || num_threads <= 1) {
    return IntersectIntoKWayCancellable(sets, out, cancel, sort_output,
                                        level, stopped);
  }
  if (stopped != nullptr) *stopped = false;
  out->clear();
  if (!ValidateKWay(sets)) return 0;
  const internal::Backend& backend = internal::GetBackend(level);
  const FesiaSet* base = KWayBase(sets);
  const size_t num_words = base->bitmap_bits() / 64;
  num_threads = std::min(num_threads, num_words);
  if (num_threads <= 1) {
    return IntersectIntoKWayCancellable(sets, out, cancel, sort_output,
                                        level, stopped);
  }

  std::vector<std::vector<uint32_t>> slices(num_threads);
  std::atomic<bool> any_stopped{false};
  ParallelFor(
      0, num_words, num_threads,
      [&](size_t word_begin, size_t word_end, size_t t) {
        std::vector<uint32_t>& slice = slices[t];
        auto emit = [&slice](uint32_t v) { slice.push_back(v); };
        if (cancel.active()) {
          bool st = false;
          ProcessWordRangeCancellable(sets, backend, *base, word_begin,
                                      word_end, cancel, &st, emit);
          if (st) any_stopped.store(true, std::memory_order_relaxed);
        } else {
          ProcessWordRange(sets, backend, *base, word_begin, word_end, emit);
        }
      },
      exec);
  size_t total = 0;
  for (const auto& slice : slices) total += slice.size();
  out->reserve(total);
  for (const auto& slice : slices) {
    out->insert(out->end(), slice.begin(), slice.end());
  }
  if (sort_output) std::sort(out->begin(), out->end());
  if (stopped != nullptr) {
    *stopped = any_stopped.load(std::memory_order_relaxed);
  }
  return out->size();
}

size_t IntersectCountKWayCancellable(std::span<const FesiaSet* const> sets,
                                     const CancelContext& cancel,
                                     SimdLevel level, bool* stopped) {
  if (stopped != nullptr) *stopped = false;
  if (!cancel.active()) return IntersectCountKWay(sets, level);
  if (sets.empty()) return 0;
  if (!ValidateKWay(sets)) return 0;
  if (sets.size() == 1) return IntersectCountKWay(sets, level);
  const internal::Backend& backend = internal::GetBackend(level);
  const FesiaSet* base = KWayBase(sets);
  bool st = false;
  size_t r = ProcessWordRangeCancellable(sets, backend, *base, 0,
                                         base->bitmap_bits() / 64, cancel,
                                         &st, [](uint32_t) {});
  if (st && stopped != nullptr) *stopped = true;
  return r;
}

size_t IntersectIntoKWayCancellable(std::span<const FesiaSet* const> sets,
                                    std::vector<uint32_t>* out,
                                    const CancelContext& cancel,
                                    bool sort_output, SimdLevel level,
                                    bool* stopped) {
  FESIA_CHECK(out != nullptr);
  if (stopped != nullptr) *stopped = false;
  if (!cancel.active()) {
    return IntersectIntoKWay(sets, out, sort_output, level);
  }
  out->clear();
  if (sets.empty()) return 0;
  if (!ValidateKWay(sets)) return 0;
  if (sets.size() == 1) return IntersectIntoKWay(sets, out, sort_output, level);
  const internal::Backend& backend = internal::GetBackend(level);
  const FesiaSet* base = KWayBase(sets);
  bool st = false;
  ProcessWordRangeCancellable(sets, backend, *base, 0,
                              base->bitmap_bits() / 64, cancel, &st,
                              [out](uint32_t v) { out->push_back(v); });
  if (sort_output) std::sort(out->begin(), out->end());
  if (st && stopped != nullptr) *stopped = true;
  return out->size();
}

}  // namespace fesia
