// Public pairwise FESIA intersection API (paper Sec. III-C, IV, V).
//
// All functions require both sets to have been built with the same
// segment_bits. Bitmap sizes may differ (they are powers of two; segments of
// the larger bitmap pair with segments of the smaller one modulo its size).
#ifndef FESIA_FESIA_INTERSECT_H_
#define FESIA_FESIA_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fesia/fesia_set.h"
#include "util/cpu.h"

namespace fesia {

/// Step-1 / step-2 timing split of one intersection (Fig. 14).
struct IntersectBreakdown {
  uint64_t step1_cycles = 0;       // bitmap AND + segment index extraction
  uint64_t step2_cycles = 0;       // segment-level kernels
  uint64_t matched_segments = 0;   // surviving segment pairs (true + false +)
  uint64_t result = 0;             // intersection size
};

/// Intersection size |a ∩ b| via the two-step FESIA pipeline.
/// `level` picks the SIMD backend; kAuto resolves to the widest available.
size_t IntersectCount(const FesiaSet& a, const FesiaSet& b,
                      SimdLevel level = SimdLevel::kAuto);

/// Intersection size via the count-only kernel family: a cache-blocked
/// fused AND + carry-save popcount sweep over the bitmap pair that skips
/// whole blocks with an empty AND, then extracts surviving segments into a
/// deferred buffer and drains the kernel jump table outside the hot loop.
/// Returns exactly the same value as IntersectCount (enforced by the
/// countpath oracle tests); preferred for cardinality-only traffic.
size_t IntersectCountFused(const FesiaSet& a, const FesiaSet& b,
                           SimdLevel level = SimdLevel::kAuto);

/// Materializes a ∩ b into `out` (overwritten). Elements are emitted in
/// segment-hash order; pass sort_output = true for ascending order.
/// Returns the intersection size.
size_t IntersectInto(const FesiaSet& a, const FesiaSet& b,
                     std::vector<uint32_t>* out, bool sort_output = true,
                     SimdLevel level = SimdLevel::kAuto);

/// IntersectCount with per-step cycle accounting (fills `breakdown`).
size_t IntersectCountInstrumented(const FesiaSet& a, const FesiaSet& b,
                                  IntersectBreakdown* breakdown,
                                  SimdLevel level = SimdLevel::kAuto);

}  // namespace fesia

#endif  // FESIA_FESIA_INTERSECT_H_
