// Umbrella header: the complete public FESIA API.
//
// Quick start:
//   #include "fesia/fesia.h"
//   std::vector<uint32_t> a = ..., b = ...;          // any order, any dupes
//   fesia::FesiaSet fa = fesia::FesiaSet::Build(a);  // offline, O(n log n)
//   fesia::FesiaSet fb = fesia::FesiaSet::Build(b);
//   size_t r = fesia::IntersectCount(fa, fb);        // online, O(n/√w + r)
#ifndef FESIA_FESIA_FESIA_H_
#define FESIA_FESIA_FESIA_H_

#include "fesia/auto.h"
#include "fesia/fesia_set.h"
#include "fesia/intersect.h"
#include "fesia/intersect_hash.h"
#include "fesia/intersect_kway.h"
#include "fesia/parallel.h"
#include "util/cpu.h"

#endif  // FESIA_FESIA_FESIA_H_
