// Internal per-ISA backend interface.
//
// Each SIMD level implements the same entry points in its own
// translation unit (compiled with matching -m flags); GetBackend() returns
// the function table for a resolved level. Public APIs in intersect.h,
// parallel.h, intersect_hash.h and intersect_kway.h route through this.
#ifndef FESIA_FESIA_BACKENDS_H_
#define FESIA_FESIA_BACKENDS_H_

#include <cstddef>
#include <cstdint>

#include "fesia/fesia_set.h"
#include "fesia/intersect.h"
#include "fesia/kernels.h"
#include "util/cpu.h"

namespace fesia::internal {

/// Function table of one ISA backend.
struct Backend {
  SimdLevel level;

  /// Full two-step pairwise intersection count.
  uint64_t (*count)(const FesiaSet& a, const FesiaSet& b);

  /// Count restricted to segments [seg_begin, seg_end) of whichever input
  /// has more segments; the range must be aligned to SegmentChunk(level,
  /// segment_bits). Used by the multicore extension.
  uint64_t (*count_range)(const FesiaSet& a, const FesiaSet& b,
                          uint32_t seg_begin, uint32_t seg_end);

  /// Count-only fast path: cache-blocked fused AND + carry-save popcount
  /// sweep with deferred surviving-segment extraction. Same preconditions
  /// and byte-identical results as `count`; preferred for cardinality-only
  /// traffic (CountBatch).
  uint64_t (*count_fused)(const FesiaSet& a, const FesiaSet& b);

  /// Fused count over a segment slice (same range contract as count_range).
  uint64_t (*count_fused_range)(const FesiaSet& a, const FesiaSet& b,
                                uint32_t seg_begin, uint32_t seg_end);

  /// Materializing intersection; `out` needs room for min(|a|, |b|) + 1
  /// values. Returns the intersection size.
  size_t (*into)(const FesiaSet& a, const FesiaSet& b, uint32_t* out);

  /// Materializing intersection over a segment slice (same range contract
  /// as count_range); `out` needs room for min(|a|, |b|) + 1 values.
  size_t (*into_range)(const FesiaSet& a, const FesiaSet& b,
                       uint32_t seg_begin, uint32_t seg_end, uint32_t* out);

  /// Count with step-1/step-2 cycle split.
  uint64_t (*count_instrumented)(const FesiaSet& a, const FesiaSet& b,
                                 IntersectBreakdown* breakdown);

  /// Kernel jump table at this level (guarded = sentinel-masking variant).
  const KernelTable& (*kernels)(bool guarded);

  /// Runtime-size materializing run intersection (sentinel-aware);
  /// `out` needs room for min(sa, sb) + 1 values.
  size_t (*segment_into)(const uint32_t* a, uint32_t sa, const uint32_t* b,
                         uint32_t sb, uint32_t* out);

  /// Membership probe of one segment run (FESIAhash primitive).
  bool (*probe_run)(const uint32_t* run, uint32_t len, uint32_t key);
};

/// Backend for a SIMD level; kAuto and unsupported levels resolve via
/// ResolveSimdLevel, then clamp to EffectiveSimdLevel() so a backend
/// quarantined by the startup self-check (fesia/backend_health.h) never
/// serves dispatch.
const Backend& GetBackend(SimdLevel level);

/// Function table for a concrete level with no resolution, clamping, or
/// health check. Used by the self-check itself; `level` must be a compiled
/// backend (kScalar..kAvx512), not kAuto.
const Backend& GetBackendRaw(SimdLevel level);

/// Segment-range alignment required by count_range: the number of segments
/// one bitmap chunk covers at this level and segment width.
uint32_t SegmentChunk(SimdLevel level, int segment_bits);

// Per-ISA entry points (implemented in bitmap_intersect_<level>.cc).
#define FESIA_DECLARE_BACKEND(ns)                                           \
  namespace ns {                                                            \
  uint64_t IntersectCount(const FesiaSet& a, const FesiaSet& b);            \
  uint64_t IntersectCountRange(const FesiaSet& a, const FesiaSet& b,        \
                               uint32_t seg_begin, uint32_t seg_end);       \
  uint64_t IntersectCountFused(const FesiaSet& a, const FesiaSet& b);       \
  uint64_t IntersectCountFusedRange(const FesiaSet& a, const FesiaSet& b,   \
                                    uint32_t seg_begin, uint32_t seg_end);  \
  size_t IntersectInto(const FesiaSet& a, const FesiaSet& b,                \
                       uint32_t* out);                                      \
  size_t IntersectIntoRange(const FesiaSet& a, const FesiaSet& b,           \
                            uint32_t seg_begin, uint32_t seg_end,           \
                            uint32_t* out);                                 \
  uint64_t IntersectCountInstrumented(const FesiaSet& a, const FesiaSet& b, \
                                      IntersectBreakdown* breakdown);       \
  }

FESIA_DECLARE_BACKEND(scalar)
FESIA_DECLARE_BACKEND(sse)
FESIA_DECLARE_BACKEND(avx2)
FESIA_DECLARE_BACKEND(avx512)

#undef FESIA_DECLARE_BACKEND

// The scalar backend has no SIMD kernel table; these satisfy the Backend
// interface with the sentinel-aware scalar primitives.
namespace scalar {
const KernelTable& Kernels(bool guarded);
size_t SegmentInto(const uint32_t* a, uint32_t sa, const uint32_t* b,
                   uint32_t sb, uint32_t* out);
bool ProbeRun(const uint32_t* run, uint32_t len, uint32_t key);
}  // namespace scalar

}  // namespace fesia::internal

#endif  // FESIA_FESIA_BACKENDS_H_
