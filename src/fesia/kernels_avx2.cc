// AVX2 (256-bit) kernel family: V = 8, table sizes 0..16.
#include <immintrin.h>

#include "fesia/kernels.h"
#include "fesia/kernels_impl.h"

namespace fesia::internal::avx2 {
namespace {

struct Avx2Ops {
  static constexpr int kLanes = 8;
  using Vec = __m256i;
  using Cmp = __m256i;

  static Vec Load(const uint32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static Vec Broadcast(uint32_t v) {
    return _mm256_set1_epi32(static_cast<int>(v));
  }
  static Cmp CmpEq(Vec a, Vec b) { return _mm256_cmpeq_epi32(a, b); }
  static Cmp OrCmp(Cmp a, Cmp b) { return _mm256_or_si256(a, b); }
  static Cmp EmptyCmp() { return _mm256_setzero_si256(); }
  static Cmp AndNotCmp(Cmp mask, Cmp v) {
    return _mm256_andnot_si256(mask, v);
  }
  static uint32_t CountCmp(Cmp m) {
    return static_cast<uint32_t>(_mm_popcnt_u32(
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(m)))));
  }
};

using Gen = KernelGen<Avx2Ops>;
constexpr auto kUnguarded = Gen::MakeTable<false>();
constexpr auto kGuarded = Gen::MakeTable<true>();

}  // namespace

const KernelTable& Kernels(bool guarded) {
  static constexpr KernelTable kTableUnguarded{Gen::kMaxSize, Gen::kV,
                                               kUnguarded.data()};
  static constexpr KernelTable kTableGuarded{Gen::kMaxSize, Gen::kV,
                                             kGuarded.data()};
  return guarded ? kTableGuarded : kTableUnguarded;
}

namespace {

// kCompressPerm[m] lists the lane indices of the set bits of m (front-
// packed); kPrefixMask[c] enables the first c store lanes. Together they
// emulate AVX-512's vpcompressd on AVX2.
struct CompressLuts {
  alignas(32) uint32_t perm[256][8];
  alignas(32) uint32_t prefix[9][8];
};

constexpr CompressLuts MakeCompressLuts() {
  CompressLuts luts{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((m >> lane) & 1) luts.perm[m][k++] = static_cast<uint32_t>(lane);
    }
    for (; k < 8; ++k) luts.perm[m][k] = 0;
  }
  for (int c = 0; c <= 8; ++c) {
    for (int lane = 0; lane < 8; ++lane) {
      luts.prefix[c][lane] = lane < c ? 0xFFFFFFFFu : 0;
    }
  }
  return luts;
}

constexpr CompressLuts kLuts = MakeCompressLuts();

}  // namespace

size_t SegmentInto(const uint32_t* a, uint32_t sa, const uint32_t* b,
                   uint32_t sb, uint32_t* out) {
  // Emit matched b lanes with a permute-based compress (front-pack the
  // matched lanes, then masked-store exactly that many), the AVX2
  // equivalent of the AVX-512 path's vpcompressd.
  size_t k = 0;
  const __m256i sentinel = _mm256_set1_epi32(-1);
  for (uint32_t j = 0; j < sb; j += 8) {
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i acc = _mm256_setzero_si256();
    for (uint32_t i = 0; i < sa; ++i) {
      uint32_t v = a[i];
      if (v == 0xFFFFFFFFu) break;  // stride padding; runs are ascending
      acc = _mm256_or_si256(
          acc, _mm256_cmpeq_epi32(_mm256_set1_epi32(static_cast<int>(v)),
                                  vb));
    }
    acc = _mm256_andnot_si256(_mm256_cmpeq_epi32(sentinel, vb), acc);
    auto mask = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(acc)));
    if (mask == 0) continue;
    int count = static_cast<int>(_mm_popcnt_u32(mask));
    __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kLuts.perm[mask]));
    __m256i packed = _mm256_permutevar8x32_epi32(vb, perm);
    __m256i store_mask = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kLuts.prefix[count]));
    _mm256_maskstore_epi32(reinterpret_cast<int*>(out + k), store_mask,
                           packed);
    k += static_cast<size_t>(count);
  }
  return k;
}

bool ProbeRun(const uint32_t* run, uint32_t len, uint32_t key) {
  return Gen::ProbeRun(run, len, key);
}

}  // namespace fesia::internal::avx2
