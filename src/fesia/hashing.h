// The universal hash mapping elements to bitmap bit positions.
//
// Requirements (paper Sec. III-B/C):
//  * near-uniform spread, so the false-positive analysis E[IFP] ≈ n²/2m holds;
//  * *prefix compatibility* across power-of-two bitmap sizes: when m2 | m1,
//    h_{m2}(x) == h_{m1}(x) mod m2. This is what lets a segment i of the
//    larger bitmap pair with segment (i mod N2) of the smaller one.
//
// We take the low bits of a fixed 32-bit bijective mixer (the MurmurHash3
// finalizer): masking with (m-1) trivially satisfies prefix compatibility,
// and fmix32 has full avalanche so low bits are well distributed.
#ifndef FESIA_FESIA_HASHING_H_
#define FESIA_FESIA_HASHING_H_

#include <cstdint>

namespace fesia {

/// MurmurHash3 32-bit finalizer: a bijection on uint32 with full avalanche.
constexpr uint32_t Fmix32(uint32_t h) {
  h ^= h >> 16;
  h *= 0x85EBCA6Bu;
  h ^= h >> 13;
  h *= 0xC2B2AE35u;
  h ^= h >> 16;
  return h;
}

/// Bit position of element `x` in a bitmap of `m` bits (m a power of two,
/// mask = m - 1).
constexpr uint32_t HashToBit(uint32_t x, uint32_t bitmap_mask) {
  return Fmix32(x) & bitmap_mask;
}

}  // namespace fesia

#endif  // FESIA_FESIA_HASHING_H_
