// AVX-512 backend: 512-bit bitmap chunks. vptestm produces the non-zero
// segment mask in a single instruction per chunk.
#include <immintrin.h>

#include "fesia/backends.h"
#include "fesia/intersect_impl.h"

namespace fesia::internal {
namespace avx512 {
namespace {

// Nibble-lookup popcount over one 512-bit vector (AVX512BW vpshufb +
// vpsadbw). Deliberately not vpopcntdq: this TU's -m flags stop at the
// Skylake-SP feature set, and runtime dispatch selects this backend on any
// AVX-512F/BW host, where VPOPCNTDQ may be absent.
inline __m512i Popcount512(__m512i v) {
  const __m512i lookup = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m512i low_mask = _mm512_set1_epi8(0x0f);
  __m512i lo = _mm512_and_si512(v, low_mask);
  __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low_mask);
  __m512i cnt = _mm512_add_epi8(_mm512_shuffle_epi8(lookup, lo),
                                _mm512_shuffle_epi8(lookup, hi));
  return _mm512_sad_epu8(cnt, _mm512_setzero_si512());
}

// Carry-save adder: (h, l) = full add of bit-planes a, b, c.
inline void CSA(__m512i* h, __m512i* l, __m512i a, __m512i b, __m512i c) {
  __m512i u = _mm512_xor_si512(a, b);
  *h = _mm512_or_si512(_mm512_and_si512(a, b), _mm512_and_si512(u, c));
  *l = _mm512_xor_si512(u, c);
}

struct Avx512BitmapOps {
  static constexpr int kChunkBits = 512;

  template <int S>
  static uint64_t NonZeroMask(const uint64_t* a, const uint64_t* b) {
    __m512i va = _mm512_loadu_si512(a);
    __m512i vb = _mm512_loadu_si512(b);
    __m512i vand = _mm512_and_si512(va, vb);
    if constexpr (S == 8) {
      return _mm512_test_epi8_mask(vand, vand);
    } else if constexpr (S == 16) {
      return _mm512_test_epi16_mask(vand, vand);
    } else {
      static_assert(S == 32);
      return _mm512_test_epi32_mask(vand, vand);
    }
  }

  // Harley-Seal fused AND+popcount: one lookup popcount per 16 ANDed
  // vectors (1 KiB of bitmap per carry-save round).
  static uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b,
                                   uint32_t nwords, uint64_t* live) {
    const uint32_t nvec = nwords / 8;
    for (uint32_t i = 0; i < (nvec + 63) / 64; ++i) live[i] = 0;
    // Each AND vector is one 512-bit chunk; vptestmq records its live bit
    // on the mask/scalar ports while the CSA chain owns the vector ports.
    auto load_and = [&](uint32_t i) {
      const __m512i v = _mm512_and_si512(_mm512_loadu_si512(a + 8 * i),
                                         _mm512_loadu_si512(b + 8 * i));
      live[i >> 6] |= static_cast<uint64_t>(_mm512_test_epi64_mask(v, v) != 0)
                      << (i & 63);
      return v;
    };
    __m512i total = _mm512_setzero_si512();
    __m512i ones = _mm512_setzero_si512();
    __m512i twos = _mm512_setzero_si512();
    __m512i fours = _mm512_setzero_si512();
    __m512i eights = _mm512_setzero_si512();
    __m512i twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens;
    uint32_t i = 0;
    for (; i + 16 <= nvec; i += 16) {
      CSA(&twosA, &ones, ones, load_and(i), load_and(i + 1));
      CSA(&twosB, &ones, ones, load_and(i + 2), load_and(i + 3));
      CSA(&foursA, &twos, twos, twosA, twosB);
      CSA(&twosA, &ones, ones, load_and(i + 4), load_and(i + 5));
      CSA(&twosB, &ones, ones, load_and(i + 6), load_and(i + 7));
      CSA(&foursB, &twos, twos, twosA, twosB);
      CSA(&eightsA, &fours, fours, foursA, foursB);
      CSA(&twosA, &ones, ones, load_and(i + 8), load_and(i + 9));
      CSA(&twosB, &ones, ones, load_and(i + 10), load_and(i + 11));
      CSA(&foursA, &twos, twos, twosA, twosB);
      CSA(&twosA, &ones, ones, load_and(i + 12), load_and(i + 13));
      CSA(&twosB, &ones, ones, load_and(i + 14), load_and(i + 15));
      CSA(&foursB, &twos, twos, twosA, twosB);
      CSA(&eightsB, &fours, fours, foursA, foursB);
      CSA(&sixteens, &eights, eights, eightsA, eightsB);
      total = _mm512_add_epi64(total, Popcount512(sixteens));
    }
    total = _mm512_slli_epi64(total, 4);
    total =
        _mm512_add_epi64(total, _mm512_slli_epi64(Popcount512(eights), 3));
    total =
        _mm512_add_epi64(total, _mm512_slli_epi64(Popcount512(fours), 2));
    total = _mm512_add_epi64(total, _mm512_slli_epi64(Popcount512(twos), 1));
    total = _mm512_add_epi64(total, Popcount512(ones));
    for (; i < nvec; ++i) {
      total = _mm512_add_epi64(total, Popcount512(load_and(i)));
    }
    return static_cast<uint64_t>(_mm512_reduce_add_epi64(total));
  }
};

}  // namespace

uint64_t IntersectCount(const FesiaSet& a, const FesiaSet& b) {
  return EntryCount<Avx512BitmapOps>(a, b, &Kernels);
}

uint64_t IntersectCountRange(const FesiaSet& a, const FesiaSet& b,
                             uint32_t seg_begin, uint32_t seg_end) {
  return EntryCountRange<Avx512BitmapOps>(a, b, seg_begin, seg_end, &Kernels);
}

uint64_t IntersectCountFused(const FesiaSet& a, const FesiaSet& b) {
  return EntryCountFused<Avx512BitmapOps>(a, b, &Kernels);
}

uint64_t IntersectCountFusedRange(const FesiaSet& a, const FesiaSet& b,
                                  uint32_t seg_begin, uint32_t seg_end) {
  return EntryCountFusedRange<Avx512BitmapOps>(a, b, seg_begin, seg_end,
                                               &Kernels);
}

size_t IntersectInto(const FesiaSet& a, const FesiaSet& b, uint32_t* out) {
  return EntryInto<Avx512BitmapOps>(a, b, out, &SegmentInto);
}

size_t IntersectIntoRange(const FesiaSet& a, const FesiaSet& b,
                          uint32_t seg_begin, uint32_t seg_end,
                          uint32_t* out) {
  return EntryIntoRange<Avx512BitmapOps>(a, b, seg_begin, seg_end, out, &SegmentInto);
}

uint64_t IntersectCountInstrumented(const FesiaSet& a, const FesiaSet& b,
                                    IntersectBreakdown* breakdown) {
  return EntryCountInstrumented<Avx512BitmapOps>(a, b, breakdown, &Kernels);
}

}  // namespace avx512
}  // namespace fesia::internal
