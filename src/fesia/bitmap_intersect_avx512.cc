// AVX-512 backend: 512-bit bitmap chunks. vptestm produces the non-zero
// segment mask in a single instruction per chunk.
#include <immintrin.h>

#include "fesia/backends.h"
#include "fesia/intersect_impl.h"

namespace fesia::internal {
namespace avx512 {
namespace {

struct Avx512BitmapOps {
  static constexpr int kChunkBits = 512;

  template <int S>
  static uint64_t NonZeroMask(const uint64_t* a, const uint64_t* b) {
    __m512i va = _mm512_loadu_si512(a);
    __m512i vb = _mm512_loadu_si512(b);
    __m512i vand = _mm512_and_si512(va, vb);
    if constexpr (S == 8) {
      return _mm512_test_epi8_mask(vand, vand);
    } else if constexpr (S == 16) {
      return _mm512_test_epi16_mask(vand, vand);
    } else {
      static_assert(S == 32);
      return _mm512_test_epi32_mask(vand, vand);
    }
  }
};

}  // namespace

uint64_t IntersectCount(const FesiaSet& a, const FesiaSet& b) {
  return EntryCount<Avx512BitmapOps>(a, b, &Kernels);
}

uint64_t IntersectCountRange(const FesiaSet& a, const FesiaSet& b,
                             uint32_t seg_begin, uint32_t seg_end) {
  return EntryCountRange<Avx512BitmapOps>(a, b, seg_begin, seg_end, &Kernels);
}

size_t IntersectInto(const FesiaSet& a, const FesiaSet& b, uint32_t* out) {
  return EntryInto<Avx512BitmapOps>(a, b, out, &SegmentInto);
}

size_t IntersectIntoRange(const FesiaSet& a, const FesiaSet& b,
                          uint32_t seg_begin, uint32_t seg_end,
                          uint32_t* out) {
  return EntryIntoRange<Avx512BitmapOps>(a, b, seg_begin, seg_end, out, &SegmentInto);
}

uint64_t IntersectCountInstrumented(const FesiaSet& a, const FesiaSet& b,
                                    IntersectBreakdown* breakdown) {
  return EntryCountInstrumented<Avx512BitmapOps>(a, b, breakdown, &Kernels);
}

}  // namespace avx512
}  // namespace fesia::internal
