// Fig. 4: speedups of specialized SSE kernels over the general SSE kernel.
#include "kernel_bench.h"

int main() {
  return fesia::bench::RunKernelFigure(
      fesia::SimdLevel::kSse,
      "Fig. 4 — Speedups of SSE kernels (specialized vs general)",
      "specialized SSE kernels are up to 70% faster (~1.7x) than the "
      "general SIMD intersection, sizes 1x1..7x7",
      /*print_stride=*/1);
}
