// Ablation: cost of the sentinel-masking "guarded" kernel variants.
// Stride > 1 builds must dispatch guarded kernels (padding sentinels on
// both sides could otherwise match each other); this measures the extra
// compare+andnot per vector they pay, per ISA, across kernel sizes.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "fesia/backends.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace fesia;
using namespace fesia::bench;

constexpr uint32_t kPairs = 4096;
constexpr uint32_t kSlot = 48;

void FillRuns(AlignedBuffer<uint32_t>* buf, uint32_t size, uint64_t seed) {
  buf->Reset(kPairs * kSlot, 32);
  for (size_t i = 0; i < buf->padded_size(); ++i) (*buf)[i] = 0xFFFFFFFFu;
  Rng rng(seed);
  for (uint32_t p = 0; p < kPairs; ++p) {
    std::vector<uint32_t> run;
    while (run.size() < size) {
      run.push_back(rng.Next32() & 0x0FFFFFFFu);
      std::sort(run.begin(), run.end());
      run.erase(std::unique(run.begin(), run.end()), run.end());
    }
    std::copy(run.begin(), run.end(), buf->data() + p * kSlot);
  }
}

double CyclesPerPair(internal::SegKernelFn fn, const uint32_t* a,
                     const uint32_t* b) {
  uint64_t sink = 0;
  double cycles = MedianCycles(
      [&] {
        uint64_t sum = 0;
        for (uint32_t p = 0; p < kPairs; ++p) {
          sum += fn(a + p * kSlot, b + p * kSlot);
        }
        sink += sum;
      },
      7);
  DoNotOptimize(sink);
  return cycles / kPairs;
}

}  // namespace

int main() {
  PrintBanner(
      "Ablation — guarded (sentinel-masking) vs unguarded kernels",
      "the guard costs one compare+andnot per loaded vector; stride-1 "
      "builds avoid it entirely, stride>1 builds must pay it");

  TablePrinter table("guarded overhead, cycles/kernel call");
  table.SetHeader({"ISA", "size pair", "unguarded", "guarded", "overhead"});
  for (SimdLevel level :
       {SimdLevel::kSse, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (!HostSupports(level)) continue;
    const internal::Backend& backend = internal::GetBackend(level);
    const internal::KernelTable& unguarded = backend.kernels(false);
    const internal::KernelTable& guarded = backend.kernels(true);
    int v = unguarded.lanes;
    AlignedBuffer<uint32_t> ba, bb;
    for (uint32_t size : {static_cast<uint32_t>(v / 2),
                          static_cast<uint32_t>(v),
                          static_cast<uint32_t>(2 * v)}) {
      FillRuns(&ba, size, size);
      FillRuns(&bb, size, size + 7);
      double un = CyclesPerPair(unguarded.At(size, size), ba.data(),
                                bb.data());
      double gu = CyclesPerPair(guarded.At(size, size), ba.data(),
                                bb.data());
      char pair_label[32];
      std::snprintf(pair_label, sizeof(pair_label), "%ux%u", size, size);
      table.AddRow({SimdLevelName(level), pair_label, Fmt(un, 2), Fmt(gu, 2),
                    Fmt(100.0 * (gu - un) / un, 1) + "%"});
    }
  }
  table.Print();
  return 0;
}
