#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "util/table_printer.h"

namespace fesia::bench {

void PrintBanner(const std::string& title, const std::string& paper_claim) {
  // Benches are usually tee'd to a file; line buffering keeps progress
  // lines visible as they happen.
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("----------------------------------------------------------------\n");
  std::printf("host: %s\n", CpuBrandString().c_str());
  std::printf("simd: widest available = %s, tsc ~ %.2f GHz\n",
              SimdLevelName(DetectSimdLevel()), TscHz() / 1e9);
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
  std::fflush(stdout);
}

double MedianCycles(const std::function<void()>& fn, int reps) {
  fn();  // warmup
  std::vector<double> samples;
  samples.reserve(reps);
  CycleTimer timer;
  for (int i = 0; i < reps; ++i) {
    timer.Start();
    fn();
    samples.push_back(static_cast<double>(timer.Stop()));
  }
  return Summarize(samples).median;
}

double MedianSeconds(const std::function<void()>& fn, int reps) {
  fn();  // warmup
  std::vector<double> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    samples.push_back(timer.Seconds());
  }
  return Summarize(samples).median;
}

bool HostSupports(SimdLevel level) {
  return static_cast<int>(level) <= static_cast<int>(DetectSimdLevel());
}

std::string Fmt(double v, int digits) { return TablePrinter::Fmt(v, digits); }

size_t ScaleParam(size_t quick, size_t full) {
  const char* env = std::getenv("FESIA_BENCH_FULL");
  return (env != nullptr && env[0] == '1') ? full : quick;
}

}  // namespace fesia::bench
