// Fig. 6: speedups of specialized AVX-512 kernels over the general kernel.
#include "kernel_bench.h"

int main() {
  return fesia::bench::RunKernelFigure(
      fesia::SimdLevel::kAvx512,
      "Fig. 6 — Speedups of AVX-512 kernels (specialized vs general)",
      "specialized AVX-512 kernels are up to 6.7x faster than the general "
      "SIMD intersection implementation",
      /*print_stride=*/4);
}
