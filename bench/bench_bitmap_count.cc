// Count-only path: cache-blocked fused AND+popcount (IntersectCountFused)
// vs. the interleaved two-step pipeline (IntersectCount), per ISA level.
//
// Reports bitmap-sweep bandwidth (GB/s over both operands' bitmap bytes)
// and the fused/interleaved speedup, and writes a machine-readable JSON
// summary (default BENCH_bitmap_count.json, overridable via argv[1]) so the
// count-path perf trajectory is tracked per PR. Counts are asserted equal
// in-bench before any timing is reported.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "pair_bench.h"
#include "util/table_printer.h"

namespace {

using namespace fesia;
using namespace fesia::bench;

struct Workload {
  const char* name;
  size_t n1, n2;
  double selectivity;
  double bitmap_scale;  // 0 = library default (sqrt(w))
};

struct Result {
  std::string workload;
  std::string level;
  size_t count = 0;
  double interleaved_s = 0;
  double fused_s = 0;
  double bytes_swept = 0;  // both bitmaps, one full pass
};

double GBps(double bytes, double secs) {
  return bytes / secs / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_bitmap_count.json";
  PrintBanner(
      "Count-only path — fused AND+popcount vs. interleaved pipeline",
      "blocked AND+popcount skips kernel dispatch for dead blocks; the "
      "sparser the segment overlap, the larger the win");

  // Balanced, skewed, and sparse-overlap shapes; the sparse one is where the
  // fused sweep's block-skip pays, the dense one bounds its overhead.
  const size_t kScale = ScaleParam(1, 4);
  const Workload workloads[] = {
      {"balanced_1M_sel0.03", 1000000 * kScale, 1000000 * kScale, 0.03, 0},
      {"skewed_64K_1M", 65536 * kScale, 1000000 * kScale, 0.25, 0},
      {"sparse_300K_sel0.001", 300000 * kScale, 300000 * kScale, 0.001, 0},
      {"dense_200K_scale2", 200000 * kScale, 200000 * kScale, 0.5, 2.0},
      // Low-false-positive configurations: large bitmap_scale makes the AND
      // of the two bitmaps sparse enough that whole blocks die, which is
      // exactly what the fused sweep's popcount filter exploits.
      {"sparse_bm_300K_scale64", 300000 * kScale, 300000 * kScale, 0.01, 64},
      {"sparse_bm_50K_scale512", 50000 * kScale, 50000 * kScale, 0.01, 512},
  };

  std::vector<Result> results;
  TablePrinter table("fused count path");
  table.SetHeader({"Workload", "Level", "Interleaved GB/s", "Fused GB/s",
                   "Speedup"});
  for (const Workload& w : workloads) {
    datagen::SetPair pair = datagen::PairWithSelectivity(
        w.n1, w.n2, w.selectivity, /*seed=*/w.n1 ^ w.n2);
    FesiaParams p;
    if (w.bitmap_scale > 0) p.bitmap_scale = w.bitmap_scale;
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    const double bytes =
        (fa.bitmap_bits() + fb.bitmap_bits()) / 8.0;
    for (SimdLevel level : FesiaBenchLevels()) {
      const size_t old_count = IntersectCount(fa, fb, level);
      const size_t new_count = IntersectCountFused(fa, fb, level);
      if (old_count != new_count || old_count != pair.intersection_size) {
        std::fprintf(stderr,
                     "COUNT MISMATCH %s %s: interleaved=%zu fused=%zu "
                     "expected=%zu\n",
                     w.name, SimdLevelName(level), old_count, new_count,
                     pair.intersection_size);
        return 1;
      }
      volatile size_t sink = 0;
      Result r;
      r.workload = w.name;
      r.level = SimdLevelName(level);
      r.count = new_count;
      r.bytes_swept = bytes;
      r.interleaved_s = MedianSeconds(
          [&] { sink = IntersectCount(fa, fb, level); }, /*reps=*/5);
      r.fused_s = MedianSeconds(
          [&] { sink = IntersectCountFused(fa, fb, level); }, /*reps=*/5);
      (void)sink;
      table.AddRow({w.name, r.level, Fmt(GBps(bytes, r.interleaved_s)),
                    Fmt(GBps(bytes, r.fused_s)),
                    TablePrinter::Speedup(r.interleaved_s / r.fused_s)});
      results.push_back(r);
    }
  }
  table.Print();

  FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bitmap_count\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"level\": \"%s\", \"count\": %zu,\n"
        "     \"interleaved_sec\": %.6e, \"fused_sec\": %.6e,\n"
        "     \"interleaved_gbps\": %.3f, \"fused_gbps\": %.3f,\n"
        "     \"speedup\": %.3f}%s\n",
        r.workload.c_str(), r.level.c_str(), r.count, r.interleaved_s,
        r.fused_s, GBps(r.bytes_swept, r.interleaved_s),
        GBps(r.bytes_swept, r.fused_s), r.interleaved_s / r.fused_s,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path);
  return 0;
}
