// Fig. 13: the triangle-counting task on three SNAP-shaped RMAT graphs
// (stand-ins, see DESIGN.md), including multicore scaling of FESIA.
//
// Default sizes are scaled down so the bench finishes in about a minute on
// a laptop; set FESIA_BENCH_FULL=1 to use the paper's node/edge counts.
#include <cstdio>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "bench_common.h"
#include "graph/generators.h"
#include "graph/triangle.h"
#include "util/table_printer.h"

namespace {

using namespace fesia;
using namespace fesia::bench;

struct Dataset {
  const char* name;
  uint32_t nodes;
  uint64_t edges;
};

}  // namespace

int main() {
  PrintBanner(
      "Fig. 13 — Triangle counting (graph analytics task)",
      "FESIA up to 12x over Scalar and up to 1.7x over SIMD Shuffling on "
      "Patents / HepPh / LiveJournal; near-linear multicore scaling");

  bool full = ScaleParam(0, 1) == 1;
  // Paper (Table III): Patents 3.77M/16.5M, HepPh 34.5K/422K,
  // LiveJournal 4.0M/34.7M. Quick mode scales the two big graphs by 8.
  std::vector<Dataset> datasets = {
      {"Patents", full ? 3774768u : 471846u, full ? 16518948ull : 2064868ull},
      {"HepPh", 34546u, 421578ull},
      {"LiveJournal", full ? 3997962u : 499745u,
       full ? 34681189ull : 4335148ull},
  };
  if (!full) {
    std::printf(
        "note: Patents and LiveJournal stand-ins scaled 1/8 for quick mode "
        "(FESIA_BENCH_FULL=1 for paper-sized graphs)\n");
  }
  unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("hardware threads available: %u\n", hw_threads);

  TablePrinter table("triangle-counting speedup over Scalar");
  table.SetHeader({"Dataset", "triangles", "Scalar", "Shuffling", "FESIA",
                   "FESIA 4-thread", "FESIA 8-thread", "construction s"});
  for (const Dataset& ds : datasets) {
    graph::RmatParams rp;
    rp.num_nodes = ds.nodes;
    rp.num_edges = ds.edges;
    rp.seed = 13;
    std::printf("  generating %s stand-in (%u nodes, %llu edges)...\n",
                ds.name, ds.nodes,
                static_cast<unsigned long long>(ds.edges));
    graph::Graph dag = graph::GenerateRmatGraph(rp).DegreeOrientedDag();

    volatile uint64_t sink = 0;
    double scalar_s = MedianSeconds(
        [&] {
          sink = graph::CountTriangles(
              dag, baselines::FindBaseline("Scalar")->fn);
        },
        1);
    double shuffling_s = MedianSeconds(
        [&] {
          sink = graph::CountTriangles(
              dag, baselines::FindBaseline("Shuffling")->fn);
        },
        1);
    graph::FesiaTriangleCounter counter(&dag, FesiaParams{});
    double fesia_s = MedianSeconds([&] { sink = counter.Count(); }, 1);
    double fesia4_s = MedianSeconds(
        [&] { sink = counter.Count(SimdLevel::kAuto, 4); }, 1);
    double fesia8_s = MedianSeconds(
        [&] { sink = counter.Count(SimdLevel::kAuto, 8); }, 1);
    uint64_t triangles = counter.Count();
    (void)sink;

    table.AddRow({ds.name, std::to_string(triangles), "1.00x",
                  TablePrinter::Speedup(scalar_s / shuffling_s),
                  TablePrinter::Speedup(scalar_s / fesia_s),
                  TablePrinter::Speedup(scalar_s / fesia4_s),
                  TablePrinter::Speedup(scalar_s / fesia8_s),
                  Fmt(counter.construction_seconds(), 2)});
  }
  table.Print();
  if (hw_threads <= 1) {
    std::printf(
        "note: this host exposes a single hardware thread; the 4/8-thread "
        "rows cannot show the paper's near-linear scaling here.\n");
  }
  return 0;
}
