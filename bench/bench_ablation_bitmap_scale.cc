// Ablation: bitmap scale m/n. The paper's analysis (Prop. 1) picks
// m = n·√w to balance the two steps; this sweep measures end-to-end time
// around that optimum, plus memory, validating the choice on this host
// (on bandwidth-starved machines the optimum shifts toward smaller m).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "util/table_printer.h"

int main() {
  using namespace fesia;
  using namespace fesia::bench;
  PrintBanner(
      "Ablation — bitmap scale m/n (paper Prop. 1: optimum m = n*sqrt(w))",
      "m too small -> step 2 blows up in false positives; m too large -> "
      "step 1 scans a huge bitmap; sqrt(w) balances the two");

  const size_t kN = ScaleParam(1000000, 1000000);
  datagen::SetPair pair = datagen::PairWithSelectivity(kN, kN, 0.01, 3);

  TablePrinter table("FESIA end-to-end (n = 1M, selectivity 1%)");
  table.SetHeader({"m/n (pre-round)", "bitmap KB", "memory MB", "cycles (M)",
                   "step1 (M)", "step2 (M)", "matched segs"});
  for (double scale : {1.0, 2.0, 4.0, 8.0, 16.0, 22.6, 32.0, 64.0}) {
    FesiaParams p;
    p.bitmap_scale = scale;
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    volatile size_t sink = 0;
    double cycles = MedianCycles([&] { sink = IntersectCount(fa, fb); }, 7);
    IntersectBreakdown bd;
    std::vector<double> s1, s2;
    for (int rep = 0; rep < 5; ++rep) {
      IntersectCountInstrumented(fa, fb, &bd);
      s1.push_back(static_cast<double>(bd.step1_cycles));
      s2.push_back(static_cast<double>(bd.step2_cycles));
    }
    (void)sink;
    table.AddRow({Fmt(scale, 1), Fmt(fa.bitmap_bits() / 8.0 / 1024, 0),
                  Fmt(static_cast<double>(fa.ComputeStats().memory_bytes) /
                          1e6,
                      1),
                  Fmt(cycles / 1e6, 2), Fmt(Summarize(s1).median / 1e6, 2),
                  Fmt(Summarize(s2).median / 1e6, 2),
                  std::to_string(bd.matched_segments)});
    std::printf("  measured scale=%.1f\n", scale);
  }
  table.Print();
  return 0;
}
