// Table II: kernel-table sub-sampling (stride 1/4/8) vs instruction-cache
// footprint on AVX-512.
//
// The paper generates only the sampled kernels, so it reports static code
// size. Our tables are template-instantiated once, so we report the
// *reachable* code footprint of each stride (the bytes of kernels the
// stride can ever dispatch, measured from the sorted function addresses —
// an approximation, see DESIGN.md) plus hardware L1-icache-miss counters
// when the kernel grants them, plus end-to-end runtime.
#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench_common.h"
#include "datagen/datagen.h"
#include "fesia/backends.h"
#include "fesia/fesia.h"
#include "util/perf_counters.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace fesia;
using namespace fesia::bench;

// Approximate total code bytes of the kernels reachable at `stride`:
// function sizes are estimated as gaps between sorted entry addresses of
// the whole table (compilers lay same-TU functions contiguously).
size_t ReachableCodeBytes(const internal::KernelTable& kt, int stride) {
  std::vector<uintptr_t> all;
  for (size_t i = 0; i < kt.num_entries(); ++i) {
    all.push_back(reinterpret_cast<uintptr_t>(kt.fns[i]));
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  std::set<uintptr_t> reachable;
  for (int sa = 0; sa <= kt.max_size; sa += stride) {
    for (int sb = 0; sb <= kt.max_size; sb += stride) {
      reachable.insert(reinterpret_cast<uintptr_t>(
          kt.At(static_cast<uint32_t>(sa), static_cast<uint32_t>(sb))));
    }
  }
  size_t bytes = 0;
  for (uintptr_t fn : reachable) {
    auto it = std::upper_bound(all.begin(), all.end(), fn);
    // Unknown size for the last function; assume the median gap (128B).
    bytes += (it != all.end()) ? static_cast<size_t>(*it - fn) : 128;
  }
  return bytes;
}

}  // namespace

int main() {
  PrintBanner(
      "Table II — L1 instruction-cache pressure vs kernel-table stride "
      "(AVX-512)",
      "stride 4 cuts code size ~90% and L1i misses ~13%; stride 8 cuts "
      "code ~98% and misses ~30%; instruction count stays roughly equal");
  if (!HostSupports(SimdLevel::kAvx512)) {
    std::printf("SKIPPED: host does not support avx512\n");
    return 1;
  }

  const size_t kPairs = ScaleParam(200, 400);
  const size_t kN = 20000;
  // Many distinct pairs so the kernel working set, not the data, dominates.
  std::vector<datagen::SetPair> pairs;
  for (size_t i = 0; i < kPairs; ++i) {
    pairs.push_back(datagen::PairWithSelectivity(kN, kN, 0.02, 100 + i));
  }

  TablePrinter table("kernel-table stride effects (AVX-512 pipeline)");
  table.SetHeader({"Stride", "reachable kernels", "code bytes (approx)",
                   "L1i misses", "instructions", "cycles (M)"});
  for (int stride : {1, 4, 8}) {
    FesiaParams p;
    p.kernel_stride = stride;
    p.simd_level = SimdLevel::kAvx512;
    std::vector<std::pair<FesiaSet, FesiaSet>> sets;
    sets.reserve(pairs.size());
    for (const auto& pr : pairs) {
      sets.emplace_back(FesiaSet::Build(pr.a, p), FesiaSet::Build(pr.b, p));
    }
    const internal::KernelTable& kt =
        internal::GetBackend(SimdLevel::kAvx512).kernels(stride > 1);
    std::set<const void*> reachable;
    for (int sa = 0; sa <= kt.max_size; sa += stride) {
      for (int sb = 0; sb <= kt.max_size; sb += stride) {
        reachable.insert(reinterpret_cast<const void*>(
            kt.At(static_cast<uint32_t>(sa), static_cast<uint32_t>(sb))));
      }
    }

    auto run_all = [&] {
      size_t total = 0;
      for (const auto& [fa, fb] : sets) {
        total += IntersectCount(fa, fb, SimdLevel::kAvx512);
      }
      DoNotOptimize(total);
    };
    run_all();  // warmup

    PerfCounter icache(PerfEvent::kL1IcacheMisses);
    PerfCounter instructions(PerfEvent::kInstructions);
    CycleTimer timer;
    icache.Start();
    instructions.Start();
    timer.Start();
    run_all();
    double cycles = static_cast<double>(timer.Stop());
    instructions.Stop();
    icache.Stop();

    table.AddRow(
        {std::to_string(stride), std::to_string(reachable.size()),
         std::to_string(ReachableCodeBytes(kt, stride)),
         icache.ok() ? std::to_string(icache.value()) : "n/a (perf denied)",
         instructions.ok() ? std::to_string(instructions.value())
                           : "n/a (perf denied)",
         Fmt(cycles / 1e6, 2)});
    std::printf("  measured stride=%d\n", stride);
  }
  table.Print();
  std::printf(
      "note: counts are for the full two-step pipeline over %zu pair "
      "intersections (n = %zu each); code bytes are approximations from "
      "function-address gaps.\n",
      kPairs, kN);
  return 0;
}
