// Fig. 11: speedup over Scalar at varying skew n1/n2 with n2 = 32K fixed,
// including both FESIA strategies (merge and hash). The paper's crossover:
// FESIAhash wins below skew ~1/4, FESIAmerge above.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datagen/datagen.h"
#include "pair_bench.h"
#include "util/table_printer.h"

int main() {
  using namespace fesia;
  using namespace fesia::bench;
  PrintBanner(
      "Fig. 11 — Speedup vs skew (n1/n2, n2 = 32K, selectivity 0.1)",
      "small skew: FESIAhash best (2-3x over SIMDGalloping, which beats the "
      "SIMD merge methods); skew > 1/4: FESIAmerge takes over as the best");

  const size_t kN2 = ScaleParam(32768, 32768);
  std::vector<size_t> n1s;
  for (size_t n1 = kN2 / 32; n1 <= kN2; n1 *= 2) n1s.push_back(n1);

  std::vector<SimdLevel> widest = {FesiaBenchLevels().back()};
  TablePrinter table("speedup over Scalar");
  bool header_set = false;
  for (size_t n1 : n1s) {
    datagen::SetPair pair =
        datagen::PairWithSelectivity(n1, kN2, 0.1, /*seed=*/n1);
    auto timings = TimePairAllMethods(pair.a, pair.b, widest,
                                      /*include_fesia_hash=*/true,
                                      /*reps=*/9);
    double scalar_cycles = 0;
    for (const auto& t : timings) {
      if (t.name == "Scalar") scalar_cycles = t.cycles;
    }
    if (!header_set) {
      std::vector<std::string> header = {"Skew n1/n2"};
      for (const auto& t : timings) {
        // FESIA<level> is the merge strategy in this figure's terms.
        header.push_back(t.name.rfind("FESIA", 0) == 0 &&
                                 t.name != "FESIAhash"
                             ? "FESIAmerge"
                             : t.name);
      }
      table.SetHeader(header);
      header_set = true;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%zuK/32K", n1 / 1024);
    std::vector<std::string> row = {label};
    for (const auto& t : timings) {
      row.push_back(TablePrinter::Speedup(scalar_cycles / t.cycles));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
