#include "pair_bench.h"

#include <string>

#include "baselines/registry.h"
#include "bench_common.h"
#include "fesia/fesia.h"
#include "util/timer.h"

namespace fesia::bench {

std::vector<SimdLevel> FesiaBenchLevels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel level :
       {SimdLevel::kSse, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (HostSupports(level)) levels.push_back(level);
  }
  return levels;
}

std::vector<MethodTiming> TimePairAllMethods(
    const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
    const std::vector<SimdLevel>& fesia_levels, bool include_fesia_hash,
    int reps) {
  std::vector<MethodTiming> out;
  volatile size_t sink = 0;
  for (const auto& m : baselines::AllBaselines()) {
    if (m.name == "Hash") continue;  // not part of the paper's figure set
    double cycles = MedianCycles(
        [&] { sink = m.fn(a.data(), a.size(), b.data(), b.size()); }, reps);
    out.push_back({m.name, cycles});
  }
  for (SimdLevel level : fesia_levels) {
    FesiaParams p;
    p.simd_level = level;
    FesiaSet fa = FesiaSet::Build(a, p);
    FesiaSet fb = FesiaSet::Build(b, p);
    double cycles =
        MedianCycles([&] { sink = IntersectCount(fa, fb, level); }, reps);
    out.push_back(
        {std::string("FESIA") + SimdLevelName(level), cycles});
  }
  if (include_fesia_hash && !fesia_levels.empty()) {
    SimdLevel level = fesia_levels.back();
    FesiaParams p;
    p.simd_level = level;
    FesiaSet fa = FesiaSet::Build(a, p);
    FesiaSet fb = FesiaSet::Build(b, p);
    double cycles =
        MedianCycles([&] { sink = IntersectCountHash(fa, fb, level); }, reps);
    out.push_back({"FESIAhash", cycles});
  }
  (void)sink;
  return out;
}

}  // namespace fesia::bench
