#include "kernel_bench.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fesia/backends.h"
#include "fesia/kernels.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace fesia::bench {
namespace {

constexpr uint32_t kPairs = 2048;  // segment pairs timed per size pair
constexpr uint32_t kSlot = 48;     // elements reserved per run (> 2V + V)

// Fills `buf` with kPairs sentinel-padded sorted runs of `size` elements.
void FillRuns(AlignedBuffer<uint32_t>* buf, uint32_t size, uint64_t seed) {
  buf->Reset(kPairs * kSlot, /*pad_elements=*/32);
  for (size_t i = 0; i < buf->padded_size(); ++i) {
    (*buf)[i] = 0xFFFFFFFFu;
  }
  Rng rng(seed);
  std::vector<uint32_t> run;
  for (uint32_t p = 0; p < kPairs; ++p) {
    run.clear();
    while (run.size() < size) {
      run.push_back(rng.Next32() & 0x0FFFFFFFu);
      std::sort(run.begin(), run.end());
      run.erase(std::unique(run.begin(), run.end()), run.end());
    }
    std::copy(run.begin(), run.end(), buf->data() + p * kSlot);
  }
}

double CyclesPerPair(internal::SegKernelFn fn, const uint32_t* a,
                     const uint32_t* b) {
  uint64_t sink = 0;
  double cycles = MedianCycles(
      [&] {
        uint64_t sum = 0;
        for (uint32_t p = 0; p < kPairs; ++p) {
          sum += fn(a + p * kSlot, b + p * kSlot);
        }
        sink += sum;
      },
      5);
  DoNotOptimize(sink);
  return cycles / kPairs;
}

}  // namespace

int RunKernelFigure(SimdLevel level, const char* title,
                    const char* paper_claim, int print_stride) {
  PrintBanner(title, paper_claim);
  if (!HostSupports(level)) {
    std::printf("SKIPPED: host does not support %s\n", SimdLevelName(level));
    return 1;
  }
  const internal::Backend& backend = internal::GetBackend(level);
  // Guarded table on both sides: the general kernel reads the sentinel
  // padding by construction, so both variants must mask it; using the same
  // table for both keeps the comparison apples-to-apples.
  const internal::KernelTable& kt = backend.kernels(true);
  const uint32_t v = static_cast<uint32_t>(kt.lanes);
  const uint32_t max_size = static_cast<uint32_t>(kt.max_size);

  auto round_up = [v](uint32_t s) { return (s + v - 1) / v * v; };

  TablePrinter table("speedup of specialized kernel over general " +
                     std::to_string(v) + "-lane kernel (rows Sa, cols Sb)");
  std::vector<std::string> header = {"Sa\\Sb"};
  for (uint32_t sb = 1; sb <= max_size; sb += print_stride) {
    header.push_back(std::to_string(sb));
  }
  table.SetHeader(header);

  AlignedBuffer<uint32_t> bufa;
  AlignedBuffer<uint32_t> bufb;
  double min_speedup = 1e30, max_speedup = 0, sum_speedup = 0;
  int cells = 0;
  for (uint32_t sa = 1; sa <= max_size; sa += print_stride) {
    FillRuns(&bufa, sa, 1000 + sa);
    std::vector<std::string> row = {std::to_string(sa)};
    for (uint32_t sb = 1; sb <= max_size; sb += print_stride) {
      FillRuns(&bufb, sb, 2000 + sb);
      double spec = CyclesPerPair(kt.At(sa, sb), bufa.data(), bufb.data());
      double gen = CyclesPerPair(kt.At(round_up(sa), round_up(sb)),
                                 bufa.data(), bufb.data());
      double speedup = gen / spec;
      row.push_back(Fmt(speedup, 2));
      min_speedup = std::min(min_speedup, speedup);
      max_speedup = std::max(max_speedup, speedup);
      sum_speedup += speedup;
      ++cells;
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "summary: specialized vs general speedup: min %.2fx, avg %.2fx, "
      "max %.2fx over %d size pairs\n",
      min_speedup, sum_speedup / cells, max_speedup, cells);
  return 0;
}

}  // namespace fesia::bench
