// Google-benchmark microbenchmarks of the core primitives: pairwise FESIA
// count vs each baseline at a fixed workload, and the per-call cost of the
// FESIA build. Complements the figure harnesses with ns/op-style numbers.
#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/registry.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"

namespace {

using fesia::FesiaParams;
using fesia::FesiaSet;
using fesia::SimdLevel;

const fesia::datagen::SetPair& SharedPair() {
  static const auto* pair = new fesia::datagen::SetPair(
      fesia::datagen::PairWithSelectivity(100000, 100000, 0.01, 77));
  return *pair;
}

void BM_Baseline(benchmark::State& state, const char* name) {
  const auto& pair = SharedPair();
  const auto* method = fesia::baselines::FindBaseline(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(method->fn(pair.a.data(), pair.a.size(),
                                        pair.b.data(), pair.b.size()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pair.a.size() * 2));
}
BENCHMARK_CAPTURE(BM_Baseline, scalar, "Scalar");
BENCHMARK_CAPTURE(BM_Baseline, shuffling, "Shuffling");
BENCHMARK_CAPTURE(BM_Baseline, bmiss, "BMiss");
BENCHMARK_CAPTURE(BM_Baseline, simd_galloping, "SIMDGalloping");

void BM_FesiaCount(benchmark::State& state, SimdLevel level) {
  if (static_cast<int>(level) >
      static_cast<int>(fesia::DetectSimdLevel())) {
    state.SkipWithError("level unsupported on this host");
    return;
  }
  const auto& pair = SharedPair();
  FesiaParams p;
  p.simd_level = level;
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fesia::IntersectCount(fa, fb, level));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pair.a.size() * 2));
}
BENCHMARK_CAPTURE(BM_FesiaCount, scalar, SimdLevel::kScalar);
BENCHMARK_CAPTURE(BM_FesiaCount, sse, SimdLevel::kSse);
BENCHMARK_CAPTURE(BM_FesiaCount, avx2, SimdLevel::kAvx2);
BENCHMARK_CAPTURE(BM_FesiaCount, avx512, SimdLevel::kAvx512);

void BM_FesiaBuild(benchmark::State& state) {
  const auto& pair = SharedPair();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FesiaSet::Build(pair.a));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pair.a.size()));
}
BENCHMARK(BM_FesiaBuild);

void BM_FesiaHash(benchmark::State& state) {
  auto pair = fesia::datagen::PairWithSelectivity(2000, 200000, 0.3, 5);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fesia::IntersectCountHash(fa, fb));
  }
}
BENCHMARK(BM_FesiaHash);

}  // namespace

BENCHMARK_MAIN();
