// Batched query throughput: the shared-pool executor vs a serial
// CountFesia loop on the Fig. 12 workload (conjunctive AND queries over
// the synthetic WebDocs stand-in).
//
// This is the serving-layer scenario the multicore extension exists for:
// many independent queries amortize pool dispatch across the stream, so
// batched throughput should scale with cores while per-query latency stays
// near the serial cost.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "index/query_gen.h"
#include "util/table_printer.h"

namespace {

using namespace fesia;
using namespace fesia::bench;

}  // namespace

int main() {
  PrintBanner(
      "Batched query execution — shared-pool executor vs serial loop",
      "batched CountBatch >= 2x serial CountFesia throughput at 8 threads "
      "on the Fig. 12 workload");

  index::CorpusParams cp;
  cp.num_docs = static_cast<uint32_t>(ScaleParam(200000, 1700000));
  cp.num_terms = static_cast<uint32_t>(ScaleParam(20000, 100000));
  cp.avg_terms_per_doc = 40;
  std::printf("building synthetic WebDocs stand-in (%u docs, %u terms)...\n",
              cp.num_docs, cp.num_terms);
  index::InvertedIndex idx = index::InvertedIndex::BuildSynthetic(cp);

  FesiaParams params;
  params.bitmap_scale = 16.0;  // host optimum, see bench_ablation_bitmap_scale
  WallTimer serial_build;
  index::QueryEngine serial_engine(&idx, params, Executor{},
                                   /*build_threads=*/1);
  double serial_build_s = serial_build.Seconds();
  WallTimer parallel_build;
  index::QueryEngine engine(&idx, params);
  double parallel_build_s = parallel_build.Seconds();
  std::printf(
      "construction: %.2f s serial, %.2f s parallel fan-out (%.2fx)\n",
      serial_build_s, parallel_build_s, serial_build_s / parallel_build_s);

  // The Fig. 12 mix: balanced 2-set and 3-set low-selectivity queries plus
  // skewed pairs, replicated into one stream large enough to time.
  size_t mid_lo = cp.num_docs / 40;
  size_t mid_hi = cp.num_docs / 4;
  std::vector<index::Query> queries;
  auto add = [&queries](std::vector<index::Query> qs) {
    queries.insert(queries.end(), qs.begin(), qs.end());
  };
  add(index::LowSelectivityQueries(idx, 2, mid_lo, mid_hi, 40, 0.2, 1));
  add(index::LowSelectivityQueries(idx, 3, mid_lo, mid_hi, 40, 0.2, 2));
  add(index::SkewedPairQueries(idx, mid_hi, 0.1, 30, 3));
  add(index::SkewedPairQueries(idx, mid_hi, 0.05, 30, 4));
  const size_t replicate = ScaleParam(8, 32);
  const size_t unique = queries.size();
  queries.reserve(unique * replicate);
  for (size_t rep = 1; rep < replicate; ++rep) {
    for (size_t i = 0; i < unique; ++i) queries.push_back(queries[i]);
  }
  std::printf("query stream: %zu queries (%zu unique)\n\n", queries.size(),
              unique);

  volatile size_t sink = 0;
  double serial_s = MedianSeconds(
      [&] {
        for (const auto& q : queries) sink = engine.CountFesia(q);
      },
      3);
  double serial_qps = static_cast<double>(queries.size()) / serial_s;

  TablePrinter table("batched throughput vs serial CountFesia loop");
  table.SetHeader({"Mode", "Threads", "kQPS", "Speedup", "p50 us", "p95 us",
                   "max us"});
  table.AddRow({"serial loop", "1", Fmt(serial_qps / 1e3), "1.00x", "-", "-",
                "-"});

  double qps_at_8 = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    index::BatchOptions opts;
    opts.num_threads = threads;
    index::BatchStats stats;
    double batch_s = MedianSeconds(
        [&] {
          std::vector<index::QueryResult> results =
              engine.CountBatch(queries, opts, &stats);
          sink = results.empty() ? 0 : results[0].count;
        },
        3);
    double qps = static_cast<double>(queries.size()) / batch_s;
    if (threads == 8) qps_at_8 = qps;
    char tbuf[16];
    std::snprintf(tbuf, sizeof(tbuf), "%zu", threads);
    table.AddRow({"CountBatch", tbuf, Fmt(qps / 1e3),
                  TablePrinter::Speedup(qps / serial_qps),
                  Fmt(stats.latency_p50 * 1e6),
                  Fmt(stats.latency_p95 * 1e6),
                  Fmt(stats.latency_max * 1e6)});
  }
  (void)sink;
  table.Print();

  // Overload rehearsal: the same stream under a 1 ms per-query deadline and
  // a bounded in-flight budget. Shed + timed-out + ok must account for
  // every query; this prints the ladder the serving layer would see.
  {
    index::BatchOptions opts;
    opts.num_threads = 8;
    opts.query_deadline_seconds = 0.001;
    opts.admission_capacity = 16;
    index::BatchStats stats;
    engine.CountBatch(queries, opts, &stats);
    std::printf(
        "\noverload rehearsal (1 ms deadline, capacity 16): "
        "%zu ok, %zu deadline-exceeded, %zu shed, %zu failed, "
        "%zu retries, %zu downgrades\n",
        stats.ok, stats.deadline_exceeded, stats.shed, stats.failed,
        stats.retries, stats.downgrades);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "\nbatched @8 threads: %.2fx serial throughput "
      "(target >= 2x; %u hardware thread%s available)\n",
      qps_at_8 / serial_qps, hw, hw == 1 ? "" : "s");
  if (hw < 2) {
    std::printf(
        "note: single-core host — parallel speedup is not measurable here; "
        "the target applies to hosts with >= 8 cores.\n");
  }
  return 0;
}
