// Shared driver for the pairwise method-comparison figures (Figs. 7-9, 11).
#ifndef FESIA_BENCH_PAIR_BENCH_H_
#define FESIA_BENCH_PAIR_BENCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/cpu.h"

namespace fesia::bench {

/// One method's time on one input pair.
struct MethodTiming {
  std::string name;
  double cycles;
};

/// Times every baseline from the registry plus FESIA at each requested SIMD
/// level (and optionally FESIAhash at the widest level) on the pair (a, b).
/// FESIA structures are built outside the timed region (the paper excludes
/// construction, Sec. VII-A).
std::vector<MethodTiming> TimePairAllMethods(
    const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
    const std::vector<SimdLevel>& fesia_levels, bool include_fesia_hash,
    int reps);

/// SIMD levels to benchmark FESIA at on this host (subset of
/// {sse, avx2, avx512}).
std::vector<SimdLevel> FesiaBenchLevels();

}  // namespace fesia::bench

#endif  // FESIA_BENCH_PAIR_BENCH_H_
