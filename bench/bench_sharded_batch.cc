// Sharded scatter-gather serving: routed batch throughput and tail
// latency vs shard count on the Fig. 12 workload.
//
// The router splits each conjunctive query into per-shard sub-queries over
// document-disjoint partitions, so per-shard work shrinks ~1/N while every
// query pays one gather. This prints where the fan-out overhead crosses
// the smaller-per-shard-index win, and what sharding does to p99 (the
// slowest shard is every query's critical path).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "index/query_gen.h"
#include "shard/shard_map.h"
#include "shard/shard_router.h"
#include "shard/sharded_index.h"
#include "util/table_printer.h"

namespace {

using namespace fesia;
using namespace fesia::bench;

}  // namespace

int main() {
  PrintBanner(
      "Sharded scatter-gather batch — throughput and p99 vs shard count",
      "routed results stay byte-identical to the single engine while "
      "per-shard indexes shrink ~1/N on the Fig. 12 workload");

  index::CorpusParams cp;
  cp.num_docs = static_cast<uint32_t>(ScaleParam(200000, 1700000));
  cp.num_terms = static_cast<uint32_t>(ScaleParam(20000, 100000));
  cp.avg_terms_per_doc = 40;
  std::printf("building synthetic WebDocs stand-in (%u docs, %u terms)...\n",
              cp.num_docs, cp.num_terms);
  index::InvertedIndex idx = index::InvertedIndex::BuildSynthetic(cp);

  FesiaParams params;
  params.bitmap_scale = 16.0;  // host optimum, see bench_ablation_bitmap_scale

  // The Fig. 12 mix: balanced 2-set and 3-set low-selectivity queries plus
  // skewed pairs, replicated into one stream large enough to time.
  size_t mid_lo = cp.num_docs / 40;
  size_t mid_hi = cp.num_docs / 4;
  std::vector<index::Query> queries;
  auto add = [&queries](std::vector<index::Query> qs) {
    queries.insert(queries.end(), qs.begin(), qs.end());
  };
  add(index::LowSelectivityQueries(idx, 2, mid_lo, mid_hi, 40, 0.2, 1));
  add(index::LowSelectivityQueries(idx, 3, mid_lo, mid_hi, 40, 0.2, 2));
  add(index::SkewedPairQueries(idx, mid_hi, 0.1, 30, 3));
  add(index::SkewedPairQueries(idx, mid_hi, 0.05, 30, 4));
  const size_t replicate = ScaleParam(8, 32);
  const size_t unique = queries.size();
  queries.reserve(unique * replicate);
  for (size_t rep = 1; rep < replicate; ++rep) {
    for (size_t i = 0; i < unique; ++i) queries.push_back(queries[i]);
  }
  std::printf("query stream: %zu queries (%zu unique)\n\n", queries.size(),
              unique);

  // Single-engine baseline: the same batch executor without routing.
  index::QueryEngine engine(&idx, params);
  double baseline_qps = 0;
  std::vector<index::QueryResult> reference;
  {
    index::BatchOptions opts;
    opts.num_threads = 8;
    index::BatchStats stats;
    double secs = MedianSeconds(
        [&] { reference = engine.CountBatch(queries, opts, &stats); }, 3);
    baseline_qps = static_cast<double>(queries.size()) / secs;
  }

  TablePrinter table("routed CountBatch vs single engine (8 workers)");
  table.SetHeader({"Layout", "Build s", "kQPS", "vs 1 engine", "p50 us",
                   "p99 us", "max us"});
  table.AddRow({"unsharded", "-", Fmt(baseline_qps / 1e3), "1.00x", "-", "-",
                "-"});

  // Hash layouts spread mass uniformly; the range layouts probe locality
  // (contiguous quarters of the doc space) and the worst case: a universe
  // twice the doc space puts every document in the first two ranges, so
  // two shards carry double load and two sit empty — every gather waits on
  // the stragglers.
  struct LayoutSpec {
    const char* label;
    shard::ShardMap map;
  };
  const LayoutSpec layouts[] = {
      {"hash-1", shard::ShardMap::Hash(1)},
      {"hash-2", shard::ShardMap::Hash(2)},
      {"hash-4", shard::ShardMap::Hash(4)},
      {"hash-8", shard::ShardMap::Hash(8)},
      {"range-4", shard::ShardMap::Range(4, cp.num_docs)},
      {"range-4-skew", shard::ShardMap::Range(4, 2 * cp.num_docs)},
  };

  for (const LayoutSpec& spec : layouts) {
    shard::ShardedIndexOptions sopts;
    sopts.params = params;
    WallTimer build_timer;
    auto sharded = shard::ShardedIndex::Create(&idx, spec.map, sopts);
    if (!sharded.ok() || !sharded->RebuildAll().ok()) {
      std::printf("shard build failed at %s\n", spec.label);
      return 1;
    }
    double build_s = build_timer.Seconds();

    shard::ShardRouter router(&*sharded);
    shard::RouterOptions ropts;
    ropts.num_threads = 8;
    shard::ShardBatchStats stats;
    std::vector<shard::RoutedQueryResult> routed;
    double secs = MedianSeconds(
        [&] { routed = router.CountBatch(queries, ropts, &stats); }, 3);
    double qps = static_cast<double>(queries.size()) / secs;

    // Equivalence guard: a benchmark that drifts from the single-engine
    // counts is measuring a bug, not the router. Every layout — balanced
    // or pathologically skewed — must stay byte-identical.
    size_t mismatches = 0;
    for (size_t q = 0; q < routed.size(); ++q) {
      if (!routed[q].ok() || routed[q].count != reference[q].count) {
        ++mismatches;
      }
    }
    if (mismatches != 0) {
      std::printf("%s: %zu routed results diverge from the engine\n",
                  spec.label, mismatches);
      return 1;
    }

    table.AddRow({spec.label, Fmt(build_s), Fmt(qps / 1e3),
                  TablePrinter::Speedup(qps / baseline_qps),
                  Fmt(stats.latency_p50 * 1e6), Fmt(stats.latency_p99 * 1e6),
                  Fmt(stats.latency_max * 1e6)});
  }
  table.Print();

  // Degraded-service rehearsal: quarantine one of 4 shards and route the
  // stream again — every query must come back an explicit 3/4 partial.
  {
    shard::ShardedIndexOptions sopts;
    sopts.params = params;
    auto sharded =
        shard::ShardedIndex::Create(&idx, shard::ShardMap::Hash(4), sopts);
    if (!sharded.ok() || !sharded->RebuildAll().ok()) return 1;
    sharded->QuarantineShard(2);
    shard::ShardRouter router(&*sharded);
    shard::ShardBatchStats stats;
    auto routed = router.CountBatch(queries, {}, &stats);
    size_t partial = 0;
    for (const auto& r : routed) {
      if (!r.complete() && r.shards_answered == 3) ++partial;
    }
    std::printf(
        "\ndegraded rehearsal (1 of 4 shards quarantined): %zu of %zu "
        "queries answered as explicit 3/4 partials, %.0f q/s\n",
        partial, routed.size(), stats.queries_per_second);
  }

  // Replica-kill rehearsal: with 2 replicas per shard, losing one replica
  // of every shard mid-stream must be invisible — the router fails over
  // to the surviving replica, so completeness stays 100% and every count
  // stays byte-identical to the healthy run. Reported: p99 healthy vs
  // p99 during failover (the price of the rescue pass), plus the
  // anti-entropy repair that brings the killed replicas back.
  {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "fesia_bench_replica")
            .string();
    std::filesystem::remove_all(dir);
    shard::ShardedIndexOptions sopts;
    sopts.params = params;
    sopts.store_dir = dir;
    sopts.replication_factor = 2;
    auto sharded =
        shard::ShardedIndex::Create(&idx, shard::ShardMap::Hash(4), sopts);
    if (!sharded.ok() || !sharded->RebuildAll().ok() ||
        !sharded->SaveAll().ok()) {
      std::printf("replica rehearsal: store build failed\n");
      return 1;
    }
    shard::ShardRouter router(&*sharded);
    shard::RouterOptions ropts;
    ropts.num_threads = 8;

    shard::ShardBatchStats healthy_stats;
    auto healthy = router.CountBatch(queries, ropts, &healthy_stats);

    // Kill the preferred replica of every shard while the batch is in
    // flight: a helper thread quarantines them a moment after the stream
    // starts, so early sub-batches run on the primary and late ones fail
    // over. Whichever side of the kill a query lands on, its answer must
    // not change.
    std::thread killer([&sharded] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      for (uint32_t s = 0; s < sharded->num_shards(); ++s) {
        shard::ReplicaSet* rs = sharded->replica_set(s);
        int preferred = rs->PreferredReplica();
        if (preferred >= 0) {
          rs->QuarantineReplica(static_cast<uint32_t>(preferred));
        }
      }
    });
    shard::ShardBatchStats failover_stats;
    auto failover = router.CountBatch(queries, ropts, &failover_stats);
    killer.join();

    size_t incomplete = 0, diverged = 0;
    for (size_t q = 0; q < failover.size(); ++q) {
      if (!failover[q].complete()) ++incomplete;
      if (!failover[q].ok() || failover[q].count != healthy[q].count) {
        ++diverged;
      }
    }
    std::printf(
        "\nreplica-kill rehearsal (rf=2, preferred replica of all 4 shards "
        "killed mid-stream):\n"
        "  healthy:  p99 %.0f us, %.0f q/s\n"
        "  failover: p99 %.0f us, %.0f q/s, %zu incomplete, %zu diverged "
        "(both must be 0)\n",
        healthy_stats.latency_p99 * 1e6, healthy_stats.queries_per_second,
        failover_stats.latency_p99 * 1e6, failover_stats.queries_per_second,
        incomplete, diverged);
    if (incomplete != 0 || diverged != 0) {
      std::filesystem::remove_all(dir);
      return 1;
    }

    // Anti-entropy repair: re-sync and revive the killed replicas, then
    // confirm the post-repair stream matches the healthy one again.
    WallTimer repair_timer;
    Status repaired = sharded->RepairOnce();
    double repair_s = repair_timer.Seconds();
    shard::ShardBatchStats repaired_stats;
    auto after = router.CountBatch(queries, ropts, &repaired_stats);
    size_t after_diverged = 0;
    for (size_t q = 0; q < after.size(); ++q) {
      if (!after[q].complete() || after[q].count != healthy[q].count) {
        ++after_diverged;
      }
    }
    std::printf(
        "  repaired: %s in %.3f s, p99 %.0f us, %zu diverged (must be 0)\n",
        repaired.ok() ? "all replicas re-synced" : repaired.ToString().c_str(),
        repair_s, repaired_stats.latency_p99 * 1e6, after_diverged);
    std::filesystem::remove_all(dir);
    if (!repaired.ok() || after_diverged != 0) return 1;
  }
  return 0;
}
