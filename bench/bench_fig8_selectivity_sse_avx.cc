// Fig. 8: speedup over the Scalar method at varying selectivity, SSE/AVX
// FESIA variants ("Haswell" configuration of the paper).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datagen/datagen.h"
#include "pair_bench.h"
#include "util/table_printer.h"

int main() {
  using namespace fesia;
  using namespace fesia::bench;
  PrintBanner(
      "Fig. 8 — Speedup vs selectivity, SSE/AVX (higher is better)",
      "up to 7.6x over Scalar and 1.8x over the best SIMD method; FESIA's "
      "advantage grows as selectivity drops (real workloads are < 0.1)");

  const size_t kN = ScaleParam(1000000, 1000000);
  std::vector<double> selectivities = {0.0, 0.01, 0.05, 0.1, 0.2, 0.5};

  // "Haswell" configuration: FESIA limited to SSE and AVX2.
  std::vector<SimdLevel> levels;
  for (SimdLevel level : {SimdLevel::kSse, SimdLevel::kAvx2}) {
    if (HostSupports(level)) levels.push_back(level);
  }

  TablePrinter table("speedup over Scalar (|A| = |B| = 1M)");
  bool header_set = false;
  for (double sel : selectivities) {
    datagen::SetPair pair = datagen::PairWithSelectivity(
        kN, kN, sel, /*seed=*/static_cast<uint64_t>(sel * 1000) + 7);
    auto timings = TimePairAllMethods(pair.a, pair.b, levels,
                                      /*include_fesia_hash=*/false,
                                      /*reps=*/7);
    double scalar_cycles = 0;
    for (const auto& t : timings) {
      if (t.name == "Scalar") scalar_cycles = t.cycles;
    }
    if (!header_set) {
      std::vector<std::string> header = {"Selectivity"};
      for (const auto& t : timings) header.push_back(t.name);
      table.SetHeader(header);
      header_set = true;
    }
    std::vector<std::string> row = {Fmt(sel, 2)};
    for (const auto& t : timings) {
      row.push_back(TablePrinter::Speedup(scalar_cycles / t.cycles));
    }
    table.AddRow(row);
    std::printf("  measured selectivity=%.2f\n", sel);
  }
  table.Print();
  return 0;
}
