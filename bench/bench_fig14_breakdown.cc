// Fig. 14: time split between step 1 (bitmap AND + extraction) and step 2
// (segment kernels) as the bitmap size m and the segment width s vary.
// Input: 200 kB sets (51200 x uint32), selectivity 0 — every surviving
// segment is a false positive, isolating the filtering trade-off.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "util/table_printer.h"

int main() {
  using namespace fesia;
  using namespace fesia::bench;
  PrintBanner(
      "Fig. 14 — Step 1 / step 2 breakdown vs bitmap size m and segment "
      "width s",
      "growing m shrinks step 2 (fewer false positives) but grows step 1 "
      "linearly; smaller s means more segments -> more step-1 time, less "
      "step-2 time");

  const size_t kN = ScaleParam(51200, 51200);  // 200 kB of uint32 keys
  datagen::SetPair pair = datagen::PairWithSelectivity(kN, kN, 0.0, 14);

  TablePrinter table("median cycles per intersection (n = 51200, r = 0)");
  table.SetHeader({"m/n", "s(bits)", "step1 Kcyc", "step2 Kcyc",
                   "total Kcyc", "matched segs"});
  for (double scale : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    for (int s : {8, 16, 32}) {
      FesiaParams p;
      p.bitmap_scale = scale;
      p.segment_bits = s;
      FesiaSet fa = FesiaSet::Build(pair.a, p);
      FesiaSet fb = FesiaSet::Build(pair.b, p);
      // Median over repetitions of the instrumented pipeline.
      std::vector<double> s1, s2;
      IntersectBreakdown bd;
      for (int rep = 0; rep < 7; ++rep) {
        IntersectCountInstrumented(fa, fb, &bd);
        s1.push_back(static_cast<double>(bd.step1_cycles));
        s2.push_back(static_cast<double>(bd.step2_cycles));
      }
      double m1 = Summarize(s1).median;
      double m2 = Summarize(s2).median;
      table.AddRow({Fmt(scale, 0), std::to_string(s), Fmt(m1 / 1e3, 1),
                    Fmt(m2 / 1e3, 1), Fmt((m1 + m2) / 1e3, 1),
                    std::to_string(bd.matched_segments)});
    }
  }
  table.Print();
  return 0;
}
