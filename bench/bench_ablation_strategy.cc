// Ablation: the FESIAmerge / FESIAhash crossover. A fine-grained skew sweep
// validating the 1/4 threshold that IntersectCountAuto hard-codes
// (paper Fig. 11 observes the crossover "as the skew goes up to more
// than 1/4").
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "util/table_printer.h"

int main() {
  using namespace fesia;
  using namespace fesia::bench;
  PrintBanner(
      "Ablation — merge vs hash strategy crossover (auto threshold 1/4)",
      "FESIAhash O(min(n1,n2)) wins under heavy skew; FESIAmerge "
      "O(n/sqrt(w)+r) wins on balanced inputs; crossover near n1/n2 = 1/4");

  const size_t kN2 = ScaleParam(262144, 1048576);
  TablePrinter table("cycles (K) per intersection, n2 = 256K, sel 0.1");
  table.SetHeader({"n1/n2", "FESIAmerge Kcyc", "FESIAhash Kcyc",
                   "hash/merge", "auto picks"});
  for (double frac : {0.015625, 0.03125, 0.0625, 0.125, 0.1875, 0.25, 0.375,
                      0.5, 0.75, 1.0}) {
    size_t n1 = static_cast<size_t>(frac * static_cast<double>(kN2));
    datagen::SetPair pair =
        datagen::PairWithSelectivity(n1, kN2, 0.1, /*seed=*/n1);
    FesiaSet fa = FesiaSet::Build(pair.a);
    FesiaSet fb = FesiaSet::Build(pair.b);
    volatile size_t sink = 0;
    double merge_c = MedianCycles([&] { sink = IntersectCount(fa, fb); }, 9);
    double hash_c =
        MedianCycles([&] { sink = IntersectCountHash(fa, fb); }, 9);
    (void)sink;
    const char* pick =
        ChooseStrategy(fa, fb) == IntersectStrategy::kHash ? "hash" : "merge";
    table.AddRow({Fmt(frac, 4), Fmt(merge_c / 1e3, 1), Fmt(hash_c / 1e3, 1),
                  Fmt(hash_c / merge_c, 2), pick});
  }
  table.Print();
  return 0;
}
