// Table III: dataset statistics and FESIA construction time for the
// graph datasets (RMAT stand-ins) and the WebDocs-shaped index.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/triangle.h"
#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "store/index_manager.h"
#include "store/snapshot_store.h"
#include "util/table_printer.h"

int main() {
  using namespace fesia;
  using namespace fesia::bench;
  PrintBanner(
      "Table III — Dataset details and construction time",
      "paper: Patents 3.77M nodes/16.5M edges 0.25s; HepPh 34.5K/422K "
      "0.004s; LiveJournal 4.0M/34.7M 0.38s; WebDocs index 77.7s");

  bool full = ScaleParam(0, 1) == 1;
  struct Row {
    const char* name;
    uint32_t nodes;
    uint64_t edges;
    const char* paper_time;
  };
  std::vector<Row> rows = {
      {"Patents", full ? 3774768u : 471846u, full ? 16518948ull : 2064868ull,
       "0.25"},
      {"HepPh", 34546u, 421578ull, "0.004"},
      {"LiveJournal", full ? 3997962u : 499745u,
       full ? 34681189ull : 4335148ull, "0.38"},
  };
  if (!full) {
    std::printf("note: quick mode scales Patents/LiveJournal by 1/8 "
                "(FESIA_BENCH_FULL=1 for paper sizes)\n");
  }

  TablePrinter table("per-dataset construction cost");
  table.SetHeader({"Dataset", "nodes", "edges(dedup)", "construction s",
                   "paper s", "FESIA memory MB"});
  for (const Row& r : rows) {
    graph::RmatParams rp;
    rp.num_nodes = r.nodes;
    rp.num_edges = r.edges;
    rp.seed = 13;
    graph::Graph g = graph::GenerateRmatGraph(rp);
    graph::Graph dag = g.DegreeOrientedDag();
    graph::FesiaTriangleCounter counter(&dag, FesiaParams{});
    table.AddRow({r.name, std::to_string(dag.num_nodes()),
                  std::to_string(g.num_edges()),
                  Fmt(counter.construction_seconds(), 3), r.paper_time,
                  Fmt(static_cast<double>(counter.memory_bytes()) / 1e6, 1)});
    std::printf("  built %s\n", r.name);
  }
  table.Print();

  // WebDocs-shaped index construction.
  index::CorpusParams cp;
  cp.num_docs = static_cast<uint32_t>(ScaleParam(200000, 1700000));
  cp.num_terms = static_cast<uint32_t>(ScaleParam(20000, 100000));
  cp.avg_terms_per_doc = 40;
  index::InvertedIndex idx = index::InvertedIndex::BuildSynthetic(cp);
  index::QueryEngine engine(&idx, FesiaParams{});
  std::printf(
      "WebDocs stand-in: %u docs, %u terms, %zu postings -> FESIA "
      "construction %.2f s (paper, full 1.7M-doc corpus: 77.7 s)\n",
      cp.num_docs, idx.num_terms(), idx.total_postings(),
      engine.construction_seconds());

  // Snapshot persistence throughput for the same engine: durable Save
  // (atomic write + fsync + manifest commit) and IndexManager::Reload
  // (read + validate + rebuild the serving engine from the payload).
  // Restart cost is reload, not reconstruction — this is the column that
  // justifies shipping snapshots at all.
  {
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "fesia_table3_store").string();
    fs::remove_all(dir);
    store::SnapshotStoreOptions sopts;
    sopts.dir = dir;
    auto store = store::SnapshotStore::Open(sopts);
    if (!store.ok()) {
      std::printf("snapshot store unavailable: %s\n",
                  store.status().ToString().c_str());
      return 1;
    }
    std::vector<uint8_t> payload = engine.SerializeTermSets();
    const double mb = static_cast<double>(payload.size()) / 1e6;

    double save_s = MedianSeconds(
        [&] {
          if (!store->Save(payload).ok()) std::abort();
        },
        3);
    store::IndexManager mgr(&idx, &*store);
    double load_s = MedianSeconds(
        [&] {
          if (!mgr.Reload().ok()) std::abort();
        },
        3);
    std::printf(
        "snapshot persistence: payload %.1f MB, Save %.2f s (%.0f MB/s), "
        "Reload %.2f s (%.0f MB/s) vs %.2f s cold construction\n",
        mb, save_s, mb / save_s, load_s, mb / load_s,
        engine.construction_seconds());
    fs::remove_all(dir);
  }
  return 0;
}
