// Fig. 12: the database query task — conjunctive keyword queries over an
// inverted index (synthetic WebDocs stand-in, see DESIGN.md), with 2-set
// and 3-set queries plus skewed-pair queries.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "index/query_gen.h"
#include "util/table_printer.h"

namespace {

using namespace fesia;
using namespace fesia::bench;

void RunQuerySet(const index::QueryEngine& engine, const char* label,
                 const std::vector<index::Query>& queries,
                 TablePrinter* table) {
  if (queries.empty()) {
    table->AddRow({label, "-", "-", "-", "-", "-", "0"});
    return;
  }
  volatile size_t sink = 0;
  double scalar_s = MedianSeconds(
      [&] {
        for (const auto& q : queries) sink = engine.CountBaseline(q, "Scalar");
      },
      3);
  auto speedup_of = [&](const char* method) {
    double s = MedianSeconds(
        [&] {
          for (const auto& q : queries) {
            sink = engine.CountBaseline(q, method);
          }
        },
        3);
    return scalar_s / s;
  };
  double shuffling = speedup_of("Shuffling");
  double bmiss = speedup_of("BMiss");
  double gallop = speedup_of("SIMDGalloping");
  double fesia_s = MedianSeconds(
      [&] {
        for (const auto& q : queries) sink = engine.CountFesia(q);
      },
      3);
  (void)sink;
  table->AddRow({label, "1.00x", TablePrinter::Speedup(shuffling),
                 TablePrinter::Speedup(bmiss), TablePrinter::Speedup(gallop),
                 TablePrinter::Speedup(scalar_s / fesia_s),
                 std::to_string(queries.size())});
  std::printf("  measured %s\n", label);
}

}  // namespace

int main() {
  PrintBanner(
      "Fig. 12 — Database query task (inverted-index AND queries)",
      "FESIA ~4x over Scalar, ~2x over Shuffling, ~3.8x over SIMDGalloping "
      "on 2-set and 3-set queries; up to 3x on skewed lists");

  index::CorpusParams cp;
  cp.num_docs = static_cast<uint32_t>(ScaleParam(200000, 1700000));
  cp.num_terms = static_cast<uint32_t>(ScaleParam(20000, 100000));
  cp.avg_terms_per_doc = 40;
  std::printf("building synthetic WebDocs stand-in (%u docs, %u terms)...\n",
              cp.num_docs, cp.num_terms);
  index::InvertedIndex idx = index::InvertedIndex::BuildSynthetic(cp);
  // The paper chooses m to minimize total time (Sec. III-A). On this host
  // the bandwidth-bound optimum sits at m/n = 16 rather than sqrt(w)
  // (see bench_ablation_bitmap_scale).
  FesiaParams params;
  params.bitmap_scale = 16.0;
  index::QueryEngine engine(&idx, params);
  std::printf(
      "index: %u terms, %zu postings; FESIA construction %.2f s "
      "(bitmap_scale tuned to 16)\n",
      idx.num_terms(), idx.total_postings(), engine.construction_seconds());

  TablePrinter table("speedup over Scalar (median of 3 runs per batch)");
  table.SetHeader({"Workload", "Scalar", "Shuffling", "BMiss",
                   "SIMDGalloping", "FESIA", "#queries"});

  // Low-selectivity (< 20% of the shortest list) balanced queries.
  size_t mid_lo = cp.num_docs / 40;
  size_t mid_hi = cp.num_docs / 4;
  RunQuerySet(engine, "2 sets",
              index::LowSelectivityQueries(idx, 2, mid_lo, mid_hi, 40, 0.2,
                                           1),
              &table);
  RunQuerySet(engine, "3 sets",
              index::LowSelectivityQueries(idx, 3, mid_lo, mid_hi, 40, 0.2,
                                           2),
              &table);
  // Skewed pairs: long list vs ~skew x its length.
  for (double skew : {0.1, 0.05}) {
    char label[32];
    std::snprintf(label, sizeof(label), "skew=%.2f", skew);
    RunQuerySet(engine, label,
                index::SkewedPairQueries(idx, mid_hi, skew, 30, 3), &table);
  }
  table.Print();
  return 0;
}
