// Closed-loop load generator for the network front door (src/serve/).
//
// Spins up an in-process epoll Server over a memory-resident sharded index,
// then drives it through real loopback sockets: each client thread keeps
// exactly one batch request in flight (send, block on the response line,
// repeat), sampling term sets from a Zipf distribution so the hot head
// repeats — the shape the epoch-invalidated result cache is built for.
//
// Reports per arm: achieved QPS, request-latency p50/p95/p99 against a p99
// SLO, and the server-side cache hit rate. Arms cover cache-off vs cache-on
// at two skews plus the docs-returning query op, so the JSON summary
// (default BENCH_serve.json, overridable via argv[1]) tracks both raw
// front-door throughput and the cache's skew sensitivity per PR.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "datagen/zipf.h"
#include "index/inverted_index.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "shard/shard_map.h"
#include "shard/shard_router.h"
#include "shard/sharded_index.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace fesia;
using namespace fesia::bench;

// p99 SLO the arms are judged against. Loopback with an in-process backend
// should clear this with room; a regression that breaks it is a serve-path
// problem, not a network one.
constexpr double kSloP99Ms = 50.0;

struct Arm {
  const char* name;
  serve::Op op;
  double theta;     // Zipf skew of the term stream
  bool use_cache;   // "cache":false on every request when off
};

struct ArmResult {
  std::string name;
  uint64_t requests = 0;
  uint64_t queries = 0;
  double wall_s = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double hit_rate = 0;  // server-side cache hits / (hits + misses)
  double qps = 0;       // whole batches per second
  double queries_per_s = 0;
};

/// Blocking loopback client: one request line out, one response line back.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ok_ = fd_ >= 0 &&
          ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    if (ok_) {
      int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return ok_; }

  bool Roundtrip(const std::string& line) {
    size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n =
          ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    while (buf_.find('\n') == std::string::npos) {
      char chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
    const size_t nl = buf_.find('\n');
    const bool ok = buf_.compare(0, 11, "{\"ok\":true,") == 0;
    buf_.erase(0, nl + 1);
    return ok;
  }

 private:
  int fd_ = -1;
  bool ok_ = false;
  std::string buf_;
};

/// One Zipf-sampled batch request line. Term ids are the Zipf ranks
/// directly: BuildSynthetic also assigns frequency by rank, so rank 0 is
/// both the hottest query term and the longest posting list — the same
/// head-heavy coupling a real inverted-index front door sees.
std::string BuildLine(serve::Op op, const datagen::ZipfDistribution& zipf,
                      Rng& rng, size_t batch, bool use_cache) {
  std::string line = "{\"op\":";
  line += op == serve::Op::kCount ? "\"count\"" : "\"query\"";
  if (!use_cache) line += ",\"cache\":false";
  line += ",\"queries\":[";
  for (size_t q = 0; q < batch; ++q) {
    if (q > 0) line += ',';
    line += '[';
    const size_t terms = 2 + rng.Next64() % 3;
    for (size_t t = 0; t < terms; ++t) {
      if (t > 0) line += ',';
      line += std::to_string(zipf.Sample(rng));
    }
    line += ']';
  }
  line += "]}\n";
  return line;
}

double PercentileMs(std::vector<double>& sorted_s, double p) {
  if (sorted_s.empty()) return 0;
  const size_t i = std::min(sorted_s.size() - 1,
                            static_cast<size_t>(p * sorted_s.size()));
  return sorted_s[i] * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  PrintBanner("Network front door — closed-loop socket load",
              "line-JSON batches over loopback TCP; Zipf term streams make "
              "the epoch-invalidated result cache earn its keep");

  // Quick mode keeps the whole sweep in low single-digit seconds so
  // scripts/check.sh can run it as a smoke test; FESIA_BENCH_FULL=1 scales
  // the corpus and the per-client request count for real measurements.
  const size_t kScale = ScaleParam(1, 8);
  const size_t kClients = ScaleParam(3, 8);
  const size_t kRequestsPerClient = 120 * kScale;
  const size_t kBatch = 8;

  index::CorpusParams cp;
  cp.num_docs = 8000 * kScale;
  cp.num_terms = 400;
  cp.avg_terms_per_doc = 24;
  cp.seed = 20260808;
  index::InvertedIndex idx = index::InvertedIndex::BuildSynthetic(cp);

  auto sharded = shard::ShardedIndex::Create(&idx, shard::ShardMap::Hash(2),
                                             shard::ShardedIndexOptions{});
  if (!sharded.ok()) {
    std::fprintf(stderr, "sharded create: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  shard::ShardedIndex index = std::move(sharded).value();
  Status built = index.RebuildAll();
  if (!built.ok()) {
    std::fprintf(stderr, "rebuild: %s\n", built.ToString().c_str());
    return 1;
  }

  serve::RouterBackend backend(&index, serve::RouterBackend::Options{});
  serve::ResultCache::Options cache_options;
  cache_options.max_bytes = 64u << 20;
  serve::ResultCache cache(cache_options);
  serve::ServerOptions server_options;
  server_options.num_workers = 4;
  server_options.cache = &cache;
  serve::Server server(&backend, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    return 1;
  }

  const Arm arms[] = {
      {"count_uncached_z0.99", serve::Op::kCount, 0.99, false},
      {"count_cached_z0.99", serve::Op::kCount, 0.99, true},
      {"count_cached_z1.25", serve::Op::kCount, 1.25, true},
      {"query_cached_z0.99", serve::Op::kQuery, 0.99, true},
  };

  std::vector<ArmResult> results;
  TablePrinter table("front-door load (closed loop)");
  table.SetHeader({"Arm", "QPS", "Queries/s", "p50 ms", "p99 ms",
                   "SLO(" + Fmt(kSloP99Ms, 0) + "ms)", "Hit rate"});
  for (const Arm& arm : arms) {
    // A fresh cache per arm so hit rates aren't cross-contaminated by the
    // previous arm's resident entries.
    cache.Clear();
    const serve::ServerStatsSnapshot before = server.stats();

    std::vector<std::vector<double>> lat(kClients);
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    WallTimer wall;
    for (size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        datagen::ZipfDistribution zipf(cp.num_terms, arm.theta);
        Rng rng(0xC0FFEE + c * 977 + static_cast<uint64_t>(arm.theta * 100));
        Client client(server.port());
        if (!client.ok()) {
          failed.store(true);
          return;
        }
        lat[c].reserve(kRequestsPerClient);
        for (size_t r = 0; r < kRequestsPerClient; ++r) {
          const std::string line =
              BuildLine(arm.op, zipf, rng, kBatch, arm.use_cache);
          WallTimer t;
          if (!client.Roundtrip(line)) {
            failed.store(true);
            return;
          }
          lat[c].push_back(t.Seconds());
        }
      });
    }
    for (auto& th : threads) th.join();
    const double wall_s = wall.Seconds();
    if (failed.load()) {
      std::fprintf(stderr, "arm %s: a client failed mid-run\n", arm.name);
      return 1;
    }

    const serve::ServerStatsSnapshot after = server.stats();
    const uint64_t hits = after.cache_hits - before.cache_hits;
    const uint64_t misses = after.cache_misses - before.cache_misses;

    std::vector<double> all;
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());

    ArmResult r;
    r.name = arm.name;
    r.requests = all.size();
    r.queries = all.size() * kBatch;
    r.wall_s = wall_s;
    r.p50_ms = PercentileMs(all, 0.50);
    r.p95_ms = PercentileMs(all, 0.95);
    r.p99_ms = PercentileMs(all, 0.99);
    r.hit_rate = hits + misses ? static_cast<double>(hits) / (hits + misses)
                               : 0.0;
    r.qps = r.requests / wall_s;
    r.queries_per_s = r.queries / wall_s;
    results.push_back(r);
    table.AddRow({r.name, Fmt(r.qps, 0), Fmt(r.queries_per_s, 0),
                  Fmt(r.p50_ms, 3), Fmt(r.p99_ms, 3),
                  r.p99_ms <= kSloP99Ms ? "met" : "MISSED",
                  Fmt(100 * r.hit_rate, 1) + "%"});
  }
  table.Print();
  server.Shutdown();

  FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"serve\",\n  \"clients\": %llu,\n"
               "  \"batch\": %llu,\n  \"slo_p99_ms\": %.1f,\n"
               "  \"results\": [\n",
               static_cast<unsigned long long>(kClients),
               static_cast<unsigned long long>(kBatch), kSloP99Ms);
  for (size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    std::fprintf(
        f,
        "    {\"arm\": \"%s\", \"requests\": %llu, \"wall_sec\": %.3f,\n"
        "     \"qps\": %.1f, \"queries_per_sec\": %.1f,\n"
        "     \"latency_p50_ms\": %.3f, \"latency_p95_ms\": %.3f, "
        "\"latency_p99_ms\": %.3f,\n"
        "     \"slo_met\": %s, \"cache_hit_rate\": %.4f}%s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.requests), r.wall_s,
        r.qps, r.queries_per_s, r.p50_ms, r.p95_ms, r.p99_ms,
        r.p99_ms <= kSloP99Ms ? "true" : "false", r.hit_rate,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path);
  return 0;
}
