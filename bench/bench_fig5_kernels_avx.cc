// Fig. 5: speedups of specialized AVX2 kernels over the general AVX2 kernel.
#include "kernel_bench.h"

int main() {
  return fesia::bench::RunKernelFigure(
      fesia::SimdLevel::kAvx2,
      "Fig. 5 — Speedups of AVX kernels (specialized vs general)",
      "specialized AVX kernels beat the general AVX kernel at every size up "
      "to 15x15; the advantage grows when one set is much larger",
      /*print_stride=*/2);
}
