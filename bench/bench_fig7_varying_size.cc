// Fig. 7(a)/(b): CPU time (million cycles) of every method as the input
// size grows from 400K to 3.2M elements (equal sizes, selectivity 1%).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datagen/datagen.h"
#include "pair_bench.h"
#include "util/table_printer.h"

int main() {
  using namespace fesia;
  using namespace fesia::bench;
  PrintBanner(
      "Fig. 7 — Performance with varying input size (time, lower is better)",
      "FESIA is 7.6x faster than scalar methods and 1.4-3.5x faster than "
      "SIMD methods across all sizes; Scalar/ScalarGalloping slowest, "
      "SIMDGalloping poor on balanced sizes; wider SIMD -> faster FESIA");

  const size_t kMaxSize = ScaleParam(3200000, 3200000);
  std::vector<size_t> sizes;
  for (size_t n = 400000; n <= kMaxSize; n += 400000) sizes.push_back(n);

  std::vector<SimdLevel> levels = FesiaBenchLevels();
  TablePrinter table("time in million cycles (selectivity 1%, |A| = |B|)");
  bool header_set = false;
  for (size_t n : sizes) {
    datagen::SetPair pair =
        datagen::PairWithSelectivity(n, n, 0.01, /*seed=*/n);
    auto timings = TimePairAllMethods(pair.a, pair.b, levels,
                                      /*include_fesia_hash=*/false,
                                      /*reps=*/7);
    if (!header_set) {
      std::vector<std::string> header = {"Size"};
      for (const auto& t : timings) header.push_back(t.name);
      table.SetHeader(header);
      header_set = true;
    }
    std::vector<std::string> row = {std::to_string(n / 1000) + "K"};
    for (const auto& t : timings) row.push_back(Fmt(t.cycles / 1e6, 2));
    table.AddRow(row);
    std::printf("  measured n=%zu\n", n);
  }
  table.Print();
  return 0;
}
