// Table I, empirically: every intersection approach the paper tabulates,
// run on one canonical workload per regime (balanced low-selectivity,
// balanced high-selectivity, heavily skewed), so the complexity summary can
// be checked against observed behavior.
//
//   FESIA        n/sqrt(w) + r    (SIMD, both strategies, k-way, multicore)
//   BMiss        n1 + n2          (SIMD)
//   Galloping    n1 log n2
//   Hiera        n1 + n2          (STTNI; data-distribution sensitive)
//   Fast [4]     n/sqrt(w) + r    (no SIMD — represented by FESIA's scalar
//                                  backend, which implements exactly that)
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/hiera.h"
#include "baselines/registry.h"
#include "bench_common.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "util/table_printer.h"

namespace {

using namespace fesia;
using namespace fesia::bench;

struct Workload {
  const char* name;
  datagen::SetPair pair;
};

}  // namespace

int main() {
  PrintBanner(
      "Table I — Empirical method summary (time per intersection, Kcycles)",
      "FESIA best in the small-intersection regimes; galloping-style "
      "methods only competitive under skew; merge-based methods degrade "
      "gracefully at high selectivity");

  const size_t kN = ScaleParam(500000, 1000000);
  std::vector<Workload> workloads;
  workloads.push_back(
      {"balanced, r/n=0.01", datagen::PairWithSelectivity(kN, kN, 0.01, 1)});
  workloads.push_back(
      {"balanced, r/n=0.5", datagen::PairWithSelectivity(kN, kN, 0.5, 2)});
  workloads.push_back(
      {"skew 1/64, r=0.5*n1",
       datagen::PairWithSelectivity(kN / 64, kN, 0.5, 3)});

  TablePrinter table("median Kcycles per intersection");
  table.SetHeader({"Method", workloads[0].name, workloads[1].name,
                   workloads[2].name});

  auto add_row = [&](const std::string& name,
                     const std::function<size_t(const datagen::SetPair&)>&
                         run) {
    std::vector<std::string> row = {name};
    for (const auto& w : workloads) {
      volatile size_t sink = 0;
      double cycles = MedianCycles([&] { sink = run(w.pair); }, 5);
      (void)sink;
      row.push_back(Fmt(cycles / 1e3, 1));
    }
    table.AddRow(row);
    std::printf("  measured %s\n", name.c_str());
  };

  for (const auto& m : baselines::AllBaselines()) {
    add_row(m.name, [&m](const datagen::SetPair& p) {
      return m.fn(p.a.data(), p.a.size(), p.b.data(), p.b.size());
    });
  }
  add_row("Hiera", [](const datagen::SetPair& p) {
    return baselines::HieraOneShot(p.a.data(), p.a.size(), p.b.data(),
                                   p.b.size());
  });

  // FESIA variants (structures prebuilt per workload; the paper excludes
  // construction).
  struct Prebuilt {
    FesiaSet a, b;
  };
  std::vector<Prebuilt> merge_sets, scalar_sets;
  for (const auto& w : workloads) {
    merge_sets.push_back({FesiaSet::Build(w.pair.a), FesiaSet::Build(w.pair.b)});
    FesiaParams sp;
    sp.simd_level = SimdLevel::kScalar;
    scalar_sets.push_back(
        {FesiaSet::Build(w.pair.a, sp), FesiaSet::Build(w.pair.b, sp)});
  }
  auto add_fesia_row = [&](const std::string& name,
                           const std::function<size_t(const Prebuilt&)>& run,
                           const std::vector<Prebuilt>& sets) {
    std::vector<std::string> row = {name};
    for (const auto& s : sets) {
      volatile size_t sink = 0;
      double cycles = MedianCycles([&] { sink = run(s); }, 5);
      (void)sink;
      row.push_back(Fmt(cycles / 1e3, 1));
    }
    table.AddRow(row);
    std::printf("  measured %s\n", name.c_str());
  };
  add_fesia_row("FESIA (merge)",
                [](const Prebuilt& s) { return IntersectCount(s.a, s.b); },
                merge_sets);
  add_fesia_row(
      "FESIA (hash)",
      [](const Prebuilt& s) { return IntersectCountHash(s.a, s.b); },
      merge_sets);
  add_fesia_row(
      "FESIA (auto)",
      [](const Prebuilt& s) { return IntersectCountAuto(s.a, s.b); },
      merge_sets);
  add_fesia_row(
      "Fast-like (scalar FESIA)",
      [](const Prebuilt& s) {
        return IntersectCount(s.a, s.b, SimdLevel::kScalar);
      },
      scalar_sets);
  table.Print();
  return 0;
}
