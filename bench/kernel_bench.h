// Shared driver for the specialized-vs-general kernel figures (Figs. 4-6).
#ifndef FESIA_BENCH_KERNEL_BENCH_H_
#define FESIA_BENCH_KERNEL_BENCH_H_

#include "util/cpu.h"

namespace fesia::bench {

/// Benchmarks every (Sa, Sb) specialized kernel at `level` against the
/// general vector-rounded kernel on the same data and prints the speedup
/// matrix (rows/cols subsampled by `print_stride`). Returns 0, or 1 if the
/// host lacks `level`.
int RunKernelFigure(SimdLevel level, const char* title,
                    const char* paper_claim, int print_stride);

}  // namespace fesia::bench

#endif  // FESIA_BENCH_KERNEL_BENCH_H_
