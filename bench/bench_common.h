// Shared helpers for the per-figure benchmark binaries.
//
// Every binary prints (a) an environment banner, (b) the paper's expectation
// for the figure it regenerates, and (c) a table with the measured series,
// so bench output can be read side-by-side with the paper (EXPERIMENTS.md
// records the comparison).
#ifndef FESIA_BENCH_BENCH_COMMON_H_
#define FESIA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/cpu.h"
#include "util/stats.h"
#include "util/timer.h"

namespace fesia::bench {

/// Prints the figure/table banner: title, host CPU, SIMD levels, TSC rate.
void PrintBanner(const std::string& title, const std::string& paper_claim);

/// Median elapsed cycles of `fn` over `reps` timed runs (after one warmup).
double MedianCycles(const std::function<void()>& fn, int reps = 5);

/// Median elapsed seconds of `fn` over `reps` timed runs (after one warmup).
double MedianSeconds(const std::function<void()>& fn, int reps = 3);

/// True when this host can execute `level`.
bool HostSupports(SimdLevel level);

/// "12.34" style fixed formatting (forwarder to TablePrinter::Fmt).
std::string Fmt(double v, int digits = 2);

/// Reads scale overrides: returns `full` when env FESIA_BENCH_FULL=1, else
/// `quick`. Benches default to sizes that finish in tens of seconds.
size_t ScaleParam(size_t quick, size_t full);

}  // namespace fesia::bench

#endif  // FESIA_BENCH_BENCH_COMMON_H_
