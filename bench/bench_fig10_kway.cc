// Fig. 10: three-way intersection speedup over the scalar k-way merge at
// varying set density (selectivity tracks density^(k-1)).
#include <cstdio>
#include <vector>

#include "baselines/kway.h"
#include "bench_common.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main() {
  using namespace fesia;
  using namespace fesia::bench;
  PrintBanner(
      "Fig. 10 — Three-way intersection speedup vs set density",
      "FESIA up to 17.8x over scalar and up to 4.8x over SIMD k-way "
      "merge; speedup is higher at lower density (cheap bitmap AND prunes "
      "the expensive multi-way comparisons)");

  const size_t kN = ScaleParam(1000000, 1000000);
  std::vector<double> densities = {0.01, 0.05, 0.1, 0.2, 0.4, 0.8};

  TablePrinter table("speedup over scalar k-way merge (k = 3, n = 1M)");
  table.SetHeader({"Density", "Scalar", "ScalarGalloping", "Shuffling",
                   "FESIA", "|intersection|"});
  for (double density : densities) {
    auto raw = datagen::KSetsWithDensity(
        3, kN, density, /*seed=*/static_cast<uint64_t>(density * 100));
    std::vector<baselines::SetView> views;
    for (const auto& s : raw) views.push_back({s.data(), s.size()});

    std::vector<FesiaSet> sets;
    for (const auto& s : raw) sets.push_back(FesiaSet::Build(s));
    std::vector<const FesiaSet*> ptrs;
    for (const auto& s : sets) ptrs.push_back(&s);

    volatile size_t sink = 0;
    double scalar_c =
        MedianCycles([&] { sink = baselines::KWayMerge(views); }, 3);
    double gallop_c =
        MedianCycles([&] { sink = baselines::KWayGalloping(views); }, 3);
    double shuffle_c =
        MedianCycles([&] { sink = baselines::KWayShuffling(views); }, 3);
    double fesia_c =
        MedianCycles([&] { sink = IntersectCountKWay(ptrs); }, 3);
    size_t result = IntersectCountKWay(ptrs);
    (void)sink;

    table.AddRow({Fmt(density, 2), "1.00x",
                  TablePrinter::Speedup(scalar_c / gallop_c),
                  TablePrinter::Speedup(scalar_c / shuffle_c),
                  TablePrinter::Speedup(scalar_c / fesia_c),
                  std::to_string(result)});
    std::printf("  measured density=%.2f\n", density);
  }
  table.Print();
  return 0;
}
