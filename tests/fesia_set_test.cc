// Structural invariants of the segmented-bitmap representation.
#include "fesia/fesia_set.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/hashing.h"
#include "util/bits.h"

namespace fesia {
namespace {

using Config = std::tuple<int, int>;  // (segment_bits, kernel_stride)

class FesiaSetBuildTest : public ::testing::TestWithParam<Config> {
 protected:
  FesiaParams Params() const {
    FesiaParams p;
    p.segment_bits = std::get<0>(GetParam());
    p.kernel_stride = std::get<1>(GetParam());
    return p;
  }
};

TEST_P(FesiaSetBuildTest, BasicShape) {
  FesiaParams p = Params();
  std::vector<uint32_t> v = datagen::SortedUniform(1000, 1u << 20, 1);
  FesiaSet set = FesiaSet::Build(v, p);
  EXPECT_EQ(set.size(), 1000u);
  EXPECT_TRUE(IsPow2(set.bitmap_bits()));
  EXPECT_GE(set.bitmap_bits(), 64u);
  EXPECT_EQ(set.segment_bits(), p.segment_bits);
  EXPECT_EQ(set.num_segments(),
            set.bitmap_bits() / static_cast<uint32_t>(p.segment_bits));
}

TEST_P(FesiaSetBuildTest, OffsetsMonotoneAndComplete) {
  FesiaParams p = Params();
  std::vector<uint32_t> v = datagen::SortedUniform(5000, 1u << 22, 2);
  FesiaSet set = FesiaSet::Build(v, p);
  uint32_t n_seg = set.num_segments();
  const uint32_t* off = set.offsets();
  EXPECT_EQ(off[0], 0u);
  for (uint32_t i = 0; i < n_seg; ++i) EXPECT_LE(off[i], off[i + 1]);
  // Total padded size >= n; equal when stride == 1.
  EXPECT_GE(set.reordered_size(), set.size());
  if (p.kernel_stride == 1) EXPECT_EQ(set.reordered_size(), set.size());
}

TEST_P(FesiaSetBuildTest, TinySetsGetSubVectorBitmaps) {
  // The bitmap floor is one 64-bit word, not one 512-bit vector: a handful
  // of elements must not pay for 512 bitmap bits. The intersection pipeline
  // tiles such bitmaps across wider SIMD chunks (countpath wrap tests pin
  // the behavior end to end).
  FesiaParams p = Params();
  for (size_t n : {1u, 2u, 5u}) {
    FesiaSet set = FesiaSet::Build(datagen::SortedUniform(n, 1u << 20, 77 + n), p);
    EXPECT_TRUE(IsPow2(set.bitmap_bits())) << "n=" << n;
    EXPECT_GE(set.bitmap_bits(), 64u) << "n=" << n;
    EXPECT_LT(set.bitmap_bits(), 512u) << "n=" << n;
    EXPECT_EQ(set.num_segments(),
              set.bitmap_bits() / static_cast<uint32_t>(p.segment_bits));
  }
}

TEST_P(FesiaSetBuildTest, SegmentRunsAscendingAndHashConsistent) {
  FesiaParams p = Params();
  std::vector<uint32_t> v = datagen::SortedUniform(3000, 1u << 24, 3);
  FesiaSet set = FesiaSet::Build(v, p);
  const uint32_t m_mask = set.bitmap_bits() - 1;
  const uint32_t s = static_cast<uint32_t>(set.segment_bits());
  for (uint32_t seg = 0; seg < set.num_segments(); ++seg) {
    const uint32_t* run = set.SegmentData(seg);
    uint32_t len = set.SegmentSize(seg);
    bool saw_sentinel = false;
    for (uint32_t i = 0; i < len; ++i) {
      if (run[i] == FesiaSet::kSentinel) {
        saw_sentinel = true;
        continue;
      }
      // Sentinels only at the end of a run.
      EXPECT_FALSE(saw_sentinel);
      if (i > 0 && run[i - 1] != FesiaSet::kSentinel) {
        EXPECT_LT(run[i - 1], run[i]);
      }
      // Element's hash maps into this segment.
      EXPECT_EQ(HashToBit(run[i], m_mask) / s, seg);
    }
  }
}

TEST_P(FesiaSetBuildTest, BitmapBitSetIffElementHashesThere) {
  FesiaParams p = Params();
  std::vector<uint32_t> v = datagen::SortedUniform(500, 1u << 16, 4);
  FesiaSet set = FesiaSet::Build(v, p);
  const uint32_t m_mask = set.bitmap_bits() - 1;
  std::vector<bool> expected_bits(set.bitmap_bits(), false);
  for (uint32_t x : v) expected_bits[HashToBit(x, m_mask)] = true;
  for (uint32_t bit = 0; bit < set.bitmap_bits(); ++bit) {
    EXPECT_EQ(set.TestBit(bit), expected_bits[bit]) << "bit=" << bit;
  }
}

TEST_P(FesiaSetBuildTest, StridePaddingRoundsRunLengths) {
  FesiaParams p = Params();
  std::vector<uint32_t> v = datagen::SortedUniform(2000, 1u << 20, 5);
  FesiaSet set = FesiaSet::Build(v, p);
  uint32_t stride = static_cast<uint32_t>(p.kernel_stride);
  for (uint32_t seg = 0; seg < set.num_segments(); ++seg) {
    EXPECT_EQ(set.SegmentSize(seg) % stride, 0u) << "seg=" << seg;
  }
}

TEST_P(FesiaSetBuildTest, RoundTripsSortedElements) {
  FesiaParams p = Params();
  std::vector<uint32_t> v = datagen::SortedUniform(1234, 1u << 25, 6);
  FesiaSet set = FesiaSet::Build(v, p);
  EXPECT_EQ(set.ToSortedVector(), v);
}

TEST_P(FesiaSetBuildTest, DeduplicatesAndSortsInput) {
  FesiaParams p = Params();
  std::vector<uint32_t> input = {5, 3, 5, 1, 3, 3, 9};
  FesiaSet set = FesiaSet::Build(input, p);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_EQ(set.ToSortedVector(), (std::vector<uint32_t>{1, 3, 5, 9}));
}

TEST_P(FesiaSetBuildTest, DropsSentinelValues) {
  FesiaParams p = Params();
  std::vector<uint32_t> input = {1, 0xFFFFFFFFu, 2};
  FesiaSet set = FesiaSet::Build(input, p);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.Contains(0xFFFFFFFFu));
}

TEST_P(FesiaSetBuildTest, ContainsMatchesMembership) {
  FesiaParams p = Params();
  std::vector<uint32_t> v = datagen::SortedUniform(800, 4000, 7);
  FesiaSet set = FesiaSet::Build(v, p);
  std::vector<bool> member(4000, false);
  for (uint32_t x : v) member[x] = true;
  for (uint32_t x = 0; x < 4000; ++x) {
    EXPECT_EQ(set.Contains(x), member[x]) << "x=" << x;
  }
}

TEST_P(FesiaSetBuildTest, EmptySet) {
  FesiaParams p = Params();
  FesiaSet set = FesiaSet::Build({}, p);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.reordered_size(), 0u);
  EXPECT_FALSE(set.Contains(0));
  EXPECT_TRUE(set.ToSortedVector().empty());
}

TEST_P(FesiaSetBuildTest, StatsConsistent) {
  FesiaParams p = Params();
  std::vector<uint32_t> v = datagen::SortedUniform(2500, 1u << 22, 8);
  FesiaSet set = FesiaSet::Build(v, p);
  FesiaSet::Stats st = set.ComputeStats();
  EXPECT_GT(st.nonempty_segments, 0u);
  EXPECT_LE(st.nonempty_segments, set.num_segments());
  EXPECT_GE(st.max_segment_size, 1u);
  EXPECT_EQ(st.padded_elements, set.reordered_size() - set.size());
  EXPECT_GT(st.memory_bytes, 0u);
  if (p.kernel_stride == 1) EXPECT_EQ(st.padded_elements, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FesiaSetBuildTest,
    ::testing::Combine(::testing::Values(8, 16, 32),
                       ::testing::Values(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_stride" +
             std::to_string(std::get<1>(info.param));
    });

// --- Non-parameterized properties ------------------------------------------

TEST(FesiaSetTest, BitmapScaleControlsBitmapSize) {
  std::vector<uint32_t> v = datagen::SortedUniform(4096, 1u << 20, 9);
  FesiaParams small_p;
  small_p.bitmap_scale = 1.0;
  FesiaParams large_p;
  large_p.bitmap_scale = 32.0;
  FesiaSet small_set = FesiaSet::Build(v, small_p);
  FesiaSet large_set = FesiaSet::Build(v, large_p);
  EXPECT_LT(small_set.bitmap_bits(), large_set.bitmap_bits());
  EXPECT_EQ(small_set.bitmap_bits(), 4096u);
  EXPECT_EQ(large_set.bitmap_bits(), 4096u * 32);
}

TEST(FesiaSetTest, DefaultScaleTracksSimdWidth) {
  // Default m = n * sqrt(w): wider ISAs get proportionally larger bitmaps.
  std::vector<uint32_t> v = datagen::SortedUniform(8192, 1u << 24, 10);
  FesiaParams sse_p;
  sse_p.simd_level = SimdLevel::kSse;  // sqrt(128) ~ 11.3
  FesiaSet s = FesiaSet::Build(v, sse_p);
  // 8192 * 11.3 ~ 92k -> rounds to 128k.
  EXPECT_EQ(s.bitmap_bits(), 131072u);
}

TEST(FesiaSetTest, PowerOfTwoBitmapsNest) {
  // Any two sets' bitmap sizes divide one another (both are powers of two).
  for (size_t n : {10, 100, 1000, 50000}) {
    std::vector<uint32_t> v = datagen::SortedUniform(n, 1u << 26, n);
    FesiaSet set = FesiaSet::Build(v);
    EXPECT_TRUE(IsPow2(set.bitmap_bits()));
  }
}

TEST(FesiaSetTest, CopyAndMoveSemantics) {
  std::vector<uint32_t> v = datagen::SortedUniform(100, 1u << 16, 11);
  FesiaSet a = FesiaSet::Build(v);
  FesiaSet b = a;  // copy
  EXPECT_EQ(b.size(), a.size());
  EXPECT_EQ(b.ToSortedVector(), v);
  FesiaSet c = std::move(a);  // move
  EXPECT_EQ(c.size(), b.size());
  EXPECT_EQ(c.ToSortedVector(), v);
}

}  // namespace
}  // namespace fesia
