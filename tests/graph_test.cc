// CSR graph substrate and generators.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/registry.h"
#include "graph/generators.h"

namespace fesia::graph {
namespace {

TEST(GraphTest, FromEdgesBasic) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}};
  Graph g = Graph::FromEdges(4, edges);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(2), 3u);
  EXPECT_EQ(g.Degree(3), 1u);
  auto n2 = g.Neighbors(2);
  EXPECT_TRUE(std::is_sorted(n2.begin(), n2.end()));
  EXPECT_EQ(std::vector<uint32_t>(n2.begin(), n2.end()),
            (std::vector<uint32_t>{0, 1, 3}));
}

TEST(GraphTest, DropsSelfLoopsAndDuplicates) {
  std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 0}, {0, 1}, {1, 1}};
  Graph g = Graph::FromEdges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphTest, NeighborsAreSymmetric) {
  std::vector<Edge> edges = GenerateUniformEdges(100, 500, 3);
  Graph g = Graph::FromEdges(100, edges);
  for (uint32_t u = 0; u < 100; ++u) {
    for (uint32_t v : g.Neighbors(u)) {
      auto nv = g.Neighbors(v);
      EXPECT_TRUE(std::binary_search(nv.begin(), nv.end(), u))
          << u << "-" << v;
    }
  }
}

TEST(GraphTest, MaxDegree) {
  std::vector<Edge> edges = {{0, 1}, {0, 2}, {0, 3}};
  Graph g = Graph::FromEdges(4, edges);
  EXPECT_EQ(g.MaxDegree(), 3u);
}

TEST(GraphTest, DegreeOrientedDagHalvesAdjacency) {
  std::vector<Edge> edges = GenerateUniformEdges(200, 1000, 5);
  Graph g = Graph::FromEdges(200, edges);
  Graph dag = g.DegreeOrientedDag();
  EXPECT_EQ(dag.num_edges(), g.num_edges());  // one direction per edge
  // DAG property under the degree order: no edge may point "backwards".
  for (uint32_t u = 0; u < dag.num_nodes(); ++u) {
    for (uint32_t v : dag.Neighbors(u)) {
      bool precedes = g.Degree(u) < g.Degree(v) ||
                      (g.Degree(u) == g.Degree(v) && u < v);
      EXPECT_TRUE(precedes) << u << "->" << v;
    }
    auto nu = dag.Neighbors(u);
    EXPECT_TRUE(std::is_sorted(nu.begin(), nu.end()));
  }
}

TEST(GraphTest, EmptyGraph) {
  Graph g = Graph::FromEdges(5, {});
  EXPECT_EQ(g.num_edges(), 0u);
  for (uint32_t v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), 0u);
}

TEST(RmatTest, EdgeCountAndBounds) {
  RmatParams p;
  p.num_nodes = 1 << 10;
  p.num_edges = 5000;
  std::vector<Edge> edges = GenerateRmatEdges(p);
  EXPECT_EQ(edges.size(), 5000u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.first, 1u << 10);
    EXPECT_LT(e.second, 1u << 10);
  }
}

TEST(RmatTest, Deterministic) {
  RmatParams p;
  p.num_nodes = 256;
  p.num_edges = 1000;
  EXPECT_EQ(GenerateRmatEdges(p), GenerateRmatEdges(p));
  p.seed += 1;
  EXPECT_NE(GenerateRmatEdges(p), GenerateRmatEdges(RmatParams{}));
}

TEST(RmatTest, SkewedDegrees) {
  // RMAT with default parameters concentrates edges on low-id vertices;
  // the max degree should far exceed the average.
  RmatParams p;
  p.num_nodes = 1 << 12;
  p.num_edges = 1 << 15;
  Graph g = GenerateRmatGraph(p);
  double avg = 2.0 * static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_GT(g.MaxDegree(), 4 * avg);
}

TEST(BarabasiAlbertTest, ShapeAndConnectivity) {
  auto edges = GenerateBarabasiAlbertEdges(2000, 4, 3);
  Graph g = Graph::FromEdges(2000, edges);
  // Every vertex (except the seed) attached to >= 1 earlier vertex.
  for (uint32_t v = 1; v < 2000; ++v) EXPECT_GE(g.Degree(v), 1u) << v;
  // Preferential attachment yields a heavy tail: the max degree far
  // exceeds the mean (~8).
  EXPECT_GT(g.MaxDegree(), 40u);
}

TEST(BarabasiAlbertTest, Deterministic) {
  EXPECT_EQ(GenerateBarabasiAlbertEdges(500, 3, 1),
            GenerateBarabasiAlbertEdges(500, 3, 1));
  EXPECT_NE(GenerateBarabasiAlbertEdges(500, 3, 1),
            GenerateBarabasiAlbertEdges(500, 3, 2));
}

TEST(BarabasiAlbertTest, DegenerateInputs) {
  EXPECT_TRUE(GenerateBarabasiAlbertEdges(1, 3, 1).empty());
  EXPECT_TRUE(GenerateBarabasiAlbertEdges(100, 0, 1).empty());
}

TEST(GraphTest, DegreeHistogramLog2) {
  // Star graph: one vertex of degree 49, 49 of degree 1.
  std::vector<Edge> edges;
  for (uint32_t v = 1; v < 50; ++v) edges.push_back({0, v});
  Graph g = Graph::FromEdges(50, edges);
  auto hist = g.DegreeHistogramLog2();
  ASSERT_GE(hist.size(), 6u);
  EXPECT_EQ(hist[0], 49u);  // degree 1
  EXPECT_EQ(hist[5], 1u);   // degree 49 in [32, 64)
  uint64_t total = 0;
  for (uint64_t h : hist) total += h;
  EXPECT_EQ(total, 50u);
}

TEST(GraphTest, CommonNeighborCount) {
  // Square 0-1-2-3 plus diagonal 0-2: N(0) = {1,2,3}, N(2) = {0,1,3}.
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  Graph g = Graph::FromEdges(4, edges);
  const auto* scalar = fesia::baselines::FindBaseline("Scalar");
  EXPECT_EQ(g.CommonNeighborCount(0, 2, scalar->fn), 2u);  // {1, 3}
  EXPECT_EQ(g.CommonNeighborCount(1, 3, scalar->fn), 2u);  // {0, 2}
}

TEST(UniformEdgesTest, Bounds) {
  auto edges = GenerateUniformEdges(50, 200, 7);
  EXPECT_EQ(edges.size(), 200u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.first, 50u);
    EXPECT_LT(e.second, 50u);
  }
}

}  // namespace
}  // namespace fesia::graph
