// Adversarial inputs: because fmix32 is a bijection we can invert it and
// construct element sets that collide into a single bitmap segment (or a
// single bit), driving the data structure into its worst cases — oversized
// runs beyond the kernel table, maximal false-positive rates, and the
// scalar fallback paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "fesia/hashing.h"
// Internal pipeline header: pulled in directly (like kernels_test does for
// per-ISA kernels) to pin the DispatchSafe alias-boundary predicate exactly.
#include "fesia/intersect_impl.h"
#include "test_util.h"

namespace fesia {
namespace {

using ::fesia::testing::AvailableLevels;

// Inverse of the murmur3 finalizer (each step is invertible).
uint32_t InverseFmix32(uint32_t h) {
  // Inverse of h ^= h >> 16 is itself (applied twice reaches fixpoint for
  // 16-bit shifts); inverse multipliers are the modular inverses.
  h ^= h >> 16;
  h *= 0x7ED1B41Du;  // inverse of 0xC2B2AE35 mod 2^32
  h ^= (h >> 13) ^ (h >> 26);
  h *= 0xA5CB9243u;  // inverse of 0x85EBCA6B mod 2^32
  h ^= h >> 16;
  return h;
}

TEST(AdversarialHashTest, InverseFmixRoundTrips) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    uint32_t x = rng.Next32();
    ASSERT_EQ(InverseFmix32(Fmix32(x)), x) << x;
    ASSERT_EQ(Fmix32(InverseFmix32(x)), x) << x;
  }
}

// Values whose hash lands on the given bit position for a bitmap of
// `m_bits`, with distinct high hash bits so the values are distinct.
std::vector<uint32_t> CollidingValues(uint32_t bit, uint32_t m_bits,
                                      size_t count) {
  std::vector<uint32_t> out;
  for (uint32_t hi = 0; out.size() < count; ++hi) {
    uint32_t hash = (hi * m_bits) | bit;
    uint32_t value = InverseFmix32(hash);
    if (value == FesiaSet::kSentinel) continue;
    out.push_back(value);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// All elements hash to ONE bit: a single segment run of size n (far beyond
// the kernel tables) and a single surviving segment pair.
TEST(AdversarialHashTest, AllElementsOnOneBit) {
  // Force a known bitmap size by fixing bitmap_scale so that m is stable.
  FesiaParams p;
  p.bitmap_scale = 2.0;
  // n = 512 -> m = RoundUpPow2(1024) = 1024 for both sets.
  std::vector<uint32_t> a = CollidingValues(/*bit=*/37, 1024, 512);
  std::vector<uint32_t> b = CollidingValues(/*bit=*/37, 1024, 512);
  // Half-overlap: drop alternating elements from each side.
  std::vector<uint32_t> a2, b2;
  for (size_t i = 0; i < a.size(); ++i) {
    if (i % 2 == 0) a2.push_back(a[i]);
    if (i % 3 != 0) b2.push_back(b[i]);
  }
  FesiaSet fa = FesiaSet::Build(a2, p);
  FesiaSet fb = FesiaSet::Build(b2, p);
  // The collision property survives any power-of-two mask <= 1024, so each
  // set still occupies exactly one segment.
  ASSERT_EQ(fa.ComputeStats().nonempty_segments, 1u);
  ASSERT_EQ(fb.ComputeStats().nonempty_segments, 1u);
  size_t expected = datagen::ReferenceIntersectionSize(a2, b2);
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(IntersectCount(fa, fb, level), expected)
        << SimdLevelName(level);
    EXPECT_EQ(IntersectCountHash(fa, fb, level), expected)
        << SimdLevelName(level);
  }
}

// Elements spread over exactly one segment per set but DIFFERENT segments:
// the bitmap step must prune everything.
TEST(AdversarialHashTest, DisjointSegmentsPruneEverything) {
  FesiaParams p;
  p.bitmap_scale = 2.0;
  std::vector<uint32_t> a = CollidingValues(16, 1024, 256);
  std::vector<uint32_t> b = CollidingValues(48, 1024, 256);
  FesiaSet fa = FesiaSet::Build(a, p);
  FesiaSet fb = FesiaSet::Build(b, p);
  IntersectBreakdown bd;
  EXPECT_EQ(IntersectCountInstrumented(fa, fb, &bd), 0u);
  EXPECT_EQ(bd.matched_segments, 0u);
}

// Maximal false positives: same bit pattern, zero common elements. Every
// segment pair survives the filter yet contributes nothing.
TEST(AdversarialHashTest, AllFalsePositives) {
  FesiaParams p;
  p.bitmap_scale = 2.0;
  std::vector<uint32_t> all = CollidingValues(5, 1024, 600);
  std::vector<uint32_t> a(all.begin(), all.begin() + 300);
  std::vector<uint32_t> b(all.begin() + 300, all.end());
  FesiaSet fa = FesiaSet::Build(a, p);
  FesiaSet fb = FesiaSet::Build(b, p);
  IntersectBreakdown bd;
  EXPECT_EQ(IntersectCountInstrumented(fa, fb, &bd), 0u);
  EXPECT_EQ(bd.matched_segments, 1u);  // the filter cannot prune this one
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(IntersectCount(fa, fb, level), 0u) << SimdLevelName(level);
  }
}

// Oversized runs with stride padding (guarded kernels + scalar fallback).
TEST(AdversarialHashTest, OversizedRunsWithStride) {
  FesiaParams p;
  p.bitmap_scale = 2.0;
  p.kernel_stride = 8;
  std::vector<uint32_t> a = CollidingValues(7, 1024, 100);
  std::vector<uint32_t> b = CollidingValues(7, 1024, 100);
  b.erase(b.begin(), b.begin() + 25);
  size_t expected = datagen::ReferenceIntersectionSize(a, b);
  FesiaSet fa = FesiaSet::Build(a, p);
  FesiaSet fb = FesiaSet::Build(b, p);
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(IntersectCount(fa, fb, level), expected)
        << SimdLevelName(level);
  }
}

// --- DispatchSafe alias boundary --------------------------------------------
//
// For different-m pairs, a kernel may over-read the big run up to
// offa[as] + roundup(sa, lanes); if segment as + N_small starts inside that
// window, a real element there (which pairs with the SAME small segment)
// would be double-counted. DispatchSafe must allow equality — window ending
// exactly where the alias segment begins — and reject one element less.

// DispatchSafe ignores the bitmap policy; any chunk width instantiates it.
struct DummyBitmapOps {
  static constexpr int kChunkBits = 64;
};
using BoundaryPipeline = internal::Pipeline<DummyBitmapOps>;

TEST(DispatchSafeBoundaryTest, EqualityIsSafeOneLessIsNot) {
  constexpr uint32_t kNSmall = 4;
  constexpr uint32_t kNBig = 16;
  for (uint32_t lanes : {4u, 8u, 16u}) {
    for (uint32_t sa : {1u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u}) {
      const uint32_t as = 0;
      const uint32_t load_end = ((sa + lanes - 1) / lanes) * lanes;
      std::vector<uint32_t> offa(kNBig + 1, 1000);
      offa[as] = 0;
      // load_end == offa[alias_seg]: window ends exactly where the alias
      // segment begins -> safe.
      offa[as + kNSmall] = load_end;
      EXPECT_TRUE(BoundaryPipeline::DispatchSafe(
          /*same_m=*/false, offa.data(), as, sa, kNSmall, kNBig, lanes))
          << "lanes=" << lanes << " sa=" << sa;
      // load_end == offa[alias_seg] + 1: the window's last lane overlaps the
      // alias segment's first element -> must fall back to scalar.
      offa[as + kNSmall] = load_end - 1;
      EXPECT_FALSE(BoundaryPipeline::DispatchSafe(
          /*same_m=*/false, offa.data(), as, sa, kNSmall, kNBig, lanes))
          << "lanes=" << lanes << " sa=" << sa;
    }
  }
}

TEST(DispatchSafeBoundaryTest, SameMAndTailAliasAlwaysSafe) {
  std::vector<uint32_t> offa(17, 0);  // alias segment starts AT the window
  for (uint32_t lanes : {4u, 8u, 16u}) {
    // Equal bitmap sizes: a later big segment never pairs with the same
    // small segment again, so over-read lanes can't alias.
    EXPECT_TRUE(BoundaryPipeline::DispatchSafe(/*same_m=*/true, offa.data(),
                                               0, 5, 4, 16, lanes));
    // Alias segment past the big set: the window ends in the tail pad.
    EXPECT_TRUE(BoundaryPipeline::DispatchSafe(/*same_m=*/false, offa.data(),
                                               14, 5, 4, 16, lanes));
  }
}

// End-to-end alias-boundary construction. Big set (m = 1024, s = 8):
//   segment 0   : `sa` home elements (bit 0)
//   segment 1   : `filler` elements (bit 8) — padding between home and alias
//   segment 64  : 8 alias elements (bit 512) — 64 = N_small, so under
//                 m_small = 512 these pair with small segment 0 TOO
//   segment 87  : ballast (bit 700) pushing |big| past 256 so m stays 1024
// Small set (m = 512): 2 home + 4 alias elements (all map to small bit 0)
// plus ballast at bit 300. Expected intersection is exactly 6. Sweeping
// (sa, filler) walks offa[alias] across the over-read window boundary for
// every kernel lane count, with and without stride padding; any
// DispatchSafe off-by-one double-counts an alias element.
TEST(DispatchSafeBoundaryTest, AliasSegmentNeverDoubleCounted) {
  std::vector<uint32_t> group_a = CollidingValues(0, 1024, 20);
  std::vector<uint32_t> fillers = CollidingValues(8, 1024, 20);
  std::vector<uint32_t> group_b = CollidingValues(512, 1024, 8);
  std::vector<uint32_t> big_ballast = CollidingValues(700, 1024, 260);
  std::vector<uint32_t> small_ballast = CollidingValues(300, 512, 140);

  for (int stride : {1, 8}) {
    for (uint32_t sa : {1u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u}) {
      for (uint32_t filler : {0u, 1u, 3u, 7u, 8u, 15u, 16u}) {
        std::vector<uint32_t> big(group_a.begin(), group_a.begin() + sa);
        big.insert(big.end(), fillers.begin(), fillers.begin() + filler);
        big.insert(big.end(), group_b.begin(), group_b.end());
        big.insert(big.end(), big_ballast.begin(), big_ballast.end());

        std::vector<uint32_t> small(group_a.begin(), group_a.begin() + 2);
        small.insert(small.end(), group_b.begin(), group_b.begin() + 4);
        small.insert(small.end(), small_ballast.begin(), small_ballast.end());

        std::sort(big.begin(), big.end());
        std::sort(small.begin(), small.end());
        size_t expected = datagen::ReferenceIntersectionSize(big, small);
        ASSERT_EQ(expected, std::min<size_t>(2, sa) + 4);

        FesiaParams p;
        p.segment_bits = 8;  // the construction places bits per 8-bit segment
        p.bitmap_scale = 2.0;
        p.kernel_stride = stride;
        FesiaSet fbig = FesiaSet::Build(big, p);
        FesiaSet fsmall = FesiaSet::Build(small, p);
        ASSERT_EQ(fbig.bitmap_bits(), 1024u);
        ASSERT_EQ(fsmall.bitmap_bits(), 512u);

        for (SimdLevel level : AvailableLevels()) {
          EXPECT_EQ(IntersectCount(fbig, fsmall, level), expected)
              << "stride=" << stride << " sa=" << sa
              << " filler=" << filler << " level=" << SimdLevelName(level);
          EXPECT_EQ(IntersectCountFused(fbig, fsmall, level), expected)
              << "stride=" << stride << " sa=" << sa
              << " filler=" << filler << " level=" << SimdLevelName(level);
        }
      }
    }
  }
}

// k-way with one colliding set and uniform others.
TEST(AdversarialHashTest, KWayWithCollidingSet) {
  FesiaParams p;
  std::vector<uint32_t> collide = CollidingValues(3, 8192, 500);
  std::vector<uint32_t> u1 = datagen::SortedUniform(3000, 1u << 20, 1);
  // Make sure there is some real overlap.
  u1.insert(u1.end(), collide.begin(), collide.begin() + 50);
  std::sort(u1.begin(), u1.end());
  u1.erase(std::unique(u1.begin(), u1.end()), u1.end());
  std::vector<std::vector<uint32_t>> raw = {collide, u1, collide};
  size_t expected = datagen::ReferenceIntersection(raw).size();
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r, p));
  std::vector<const FesiaSet*> ptrs = {&sets[0], &sets[1], &sets[2]};
  EXPECT_EQ(IntersectCountKWay(ptrs), expected);
}

// Parallel execution with a single monster segment: one thread gets all
// the work, the others none; the total must not change.
TEST(AdversarialHashTest, ParallelWithMonsterSegment) {
  FesiaParams p;
  p.bitmap_scale = 2.0;
  std::vector<uint32_t> a = CollidingValues(9, 2048, 800);
  std::vector<uint32_t> b = CollidingValues(9, 2048, 700);
  size_t expected = datagen::ReferenceIntersectionSize(a, b);
  FesiaSet fa = FesiaSet::Build(a, p);
  FesiaSet fb = FesiaSet::Build(b, p);
  for (size_t threads : {1, 2, 4, 8}) {
    EXPECT_EQ(IntersectCountParallel(fa, fb, threads), expected)
        << threads;
  }
}

}  // namespace
}  // namespace fesia
