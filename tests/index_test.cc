// Inverted-index substrate and query-engine agreement across methods.
#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "baselines/registry.h"
#include "index/query_engine.h"
#include "index/query_gen.h"

namespace fesia::index {
namespace {

CorpusParams SmallCorpus() {
  CorpusParams p;
  p.num_docs = 20000;
  p.num_terms = 2000;
  p.avg_terms_per_doc = 20;
  p.seed = 5;
  return p;
}

TEST(InvertedIndexTest, PostingsSortedUniqueBounded) {
  InvertedIndex idx = InvertedIndex::BuildSynthetic(SmallCorpus());
  ASSERT_GT(idx.num_terms(), 0u);
  for (uint32_t t = 0; t < idx.num_terms(); ++t) {
    auto p = idx.Postings(t);
    ASSERT_GE(p.size(), 4u);  // min_posting_length default
    for (size_t i = 1; i < p.size(); ++i) ASSERT_LT(p[i - 1], p[i]);
    ASSERT_LT(p.back(), idx.num_docs());
  }
}

TEST(InvertedIndexTest, ZipfHead) {
  InvertedIndex idx = InvertedIndex::BuildSynthetic(SmallCorpus());
  // Lists are sorted by length descending; head must dominate tail.
  EXPECT_GT(idx.Postings(0).size(),
            idx.Postings(idx.num_terms() - 1).size());
}

TEST(InvertedIndexTest, TotalPostingsNearTarget) {
  CorpusParams p = SmallCorpus();
  InvertedIndex idx = InvertedIndex::BuildSynthetic(p);
  double target = p.avg_terms_per_doc * p.num_docs;
  EXPECT_GT(static_cast<double>(idx.total_postings()), 0.5 * target);
  EXPECT_LT(static_cast<double>(idx.total_postings()), 1.5 * target);
}

TEST(InvertedIndexTest, Deterministic) {
  InvertedIndex a = InvertedIndex::BuildSynthetic(SmallCorpus());
  InvertedIndex b = InvertedIndex::BuildSynthetic(SmallCorpus());
  ASSERT_EQ(a.num_terms(), b.num_terms());
  for (uint32_t t = 0; t < a.num_terms(); ++t) {
    auto pa = a.Postings(t);
    auto pb = b.Postings(t);
    ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
  }
}

TEST(InvertedIndexTest, TermsWithPostingLengthFilters) {
  InvertedIndex idx = InvertedIndex::BuildSynthetic(SmallCorpus());
  auto terms = idx.TermsWithPostingLength(100, 1000);
  for (uint32_t t : terms) {
    EXPECT_GE(idx.Postings(t).size(), 100u);
    EXPECT_LE(idx.Postings(t).size(), 1000u);
  }
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    idx_ = InvertedIndex::BuildSynthetic(SmallCorpus());
    engine_ = std::make_unique<QueryEngine>(&idx_, FesiaParams{});
  }

  InvertedIndex idx_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryEngineTest, ConstructionTimeRecorded) {
  EXPECT_GT(engine_->construction_seconds(), 0.0);
}

TEST_F(QueryEngineTest, TwoTermAgreementAcrossMethods) {
  std::vector<uint32_t> terms = {0, 1};
  size_t fesia_count = engine_->CountFesia(terms);
  for (const auto& m : baselines::AllBaselines()) {
    EXPECT_EQ(engine_->CountBaseline(terms, m.name), fesia_count) << m.name;
  }
}

TEST_F(QueryEngineTest, ThreeTermAgreement) {
  std::vector<uint32_t> terms = {0, 2, 5};
  size_t fesia_count = engine_->CountFesia(terms);
  for (const char* name : {"Scalar", "Shuffling", "BMiss", "SIMDGalloping",
                           "ScalarGalloping"}) {
    EXPECT_EQ(engine_->CountBaseline(terms, name), fesia_count) << name;
  }
}

TEST_F(QueryEngineTest, SkewedTermPair) {
  // Longest list with a short one.
  auto shorts = idx_.TermsWithPostingLength(10, 50);
  ASSERT_FALSE(shorts.empty());
  std::vector<uint32_t> terms = {0, shorts.front()};
  size_t expected = engine_->CountBaseline(terms, "Scalar");
  EXPECT_EQ(engine_->CountFesia(terms), expected);
}

TEST_F(QueryEngineTest, QueryFesiaReturnsActualDocs) {
  std::vector<uint32_t> terms = {0, 1};
  std::vector<uint32_t> docs = engine_->QueryFesia(terms);
  auto p0 = idx_.Postings(terms[0]);
  auto p1 = idx_.Postings(terms[1]);
  std::vector<uint32_t> expected;
  std::set_intersection(p0.begin(), p0.end(), p1.begin(), p1.end(),
                        std::back_inserter(expected));
  EXPECT_EQ(docs, expected);
}

TEST_F(QueryEngineTest, SingleAndEmptyQueries) {
  EXPECT_EQ(engine_->CountFesia({}), 0u);
  std::vector<uint32_t> one = {3};
  EXPECT_EQ(engine_->CountFesia(one), idx_.Postings(3).size());
}

// --- Batched execution -------------------------------------------------------

TEST_F(QueryEngineTest, CountBatchMatchesSerialOnRandomWorkload) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 25, 0.5, 11);
  std::vector<Query> three =
      LowSelectivityQueries(idx_, 3, 50, 2000, 15, 0.5, 12);
  queries.insert(queries.end(), three.begin(), three.end());
  ASSERT_FALSE(queries.empty());

  for (size_t threads : {0, 1, 2, 4, 8}) {
    BatchOptions opts;
    opts.num_threads = threads;
    std::vector<size_t> counts = engine_->CountBatch(queries, opts);
    ASSERT_EQ(counts.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(counts[i], engine_->CountFesia(queries[i]))
          << "query " << i << " threads=" << threads;
    }
  }
}

TEST_F(QueryEngineTest, QueryBatchMatchesSerialResults) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 20, 0.5, 21);
  ASSERT_FALSE(queries.empty());
  BatchOptions opts;
  opts.num_threads = 4;
  std::vector<std::vector<uint32_t>> results =
      engine_->QueryBatch(queries, opts);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[i], engine_->QueryFesia(queries[i])) << "query " << i;
  }
}

TEST_F(QueryEngineTest, BatchStatsArePopulated) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 10, 0.5, 31);
  ASSERT_FALSE(queries.empty());
  BatchStats stats;
  engine_->CountBatch(queries, BatchOptions{}, &stats);
  EXPECT_EQ(stats.latency_seconds.size(), queries.size());
  for (double l : stats.latency_seconds) EXPECT_GE(l, 0.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.queries_per_second, 0.0);
  EXPECT_LE(stats.latency_p50, stats.latency_p95);
  EXPECT_LE(stats.latency_p95, stats.latency_max);
}

TEST_F(QueryEngineTest, EmptyBatch) {
  BatchStats stats;
  std::vector<Query> none;
  EXPECT_TRUE(engine_->CountBatch(none, BatchOptions{}, &stats).empty());
  EXPECT_TRUE(stats.latency_seconds.empty());
  EXPECT_TRUE(engine_->QueryBatch(none).empty());
}

TEST_F(QueryEngineTest, BatchMixedAritiesIncludingDegenerate) {
  std::vector<Query> queries = {{}, {3}, {0, 1}, {0, 2, 5}};
  std::vector<size_t> counts = engine_->CountBatch(queries);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], idx_.Postings(3).size());
  EXPECT_EQ(counts[2], engine_->CountFesia(queries[2]));
  EXPECT_EQ(counts[3], engine_->CountFesia(queries[3]));
}

TEST_F(QueryEngineTest, BatchOnCustomExecutorPool) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 10, 0.5, 41);
  ASSERT_FALSE(queries.empty());
  ThreadPool pool(2);
  BatchOptions opts;
  opts.executor = Executor(&pool);
  std::vector<size_t> counts = engine_->CountBatch(queries, opts);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(counts[i], engine_->CountFesia(queries[i])) << i;
  }
}

TEST(QueryEngineConstructionTest, ParallelBuildMatchesSerialBuild) {
  InvertedIndex idx = InvertedIndex::BuildSynthetic(SmallCorpus());
  QueryEngine serial(&idx, FesiaParams{}, Executor{}, /*build_threads=*/1);
  QueryEngine parallel(&idx, FesiaParams{}, Executor{}, /*build_threads=*/8);
  // FesiaSet::Build is deterministic, so the two engines must be
  // byte-identical — the fan-out may only change who builds which term.
  EXPECT_EQ(serial.SerializeTermSets(), parallel.SerializeTermSets());
}

// --- Query workload generators ----------------------------------------------

TEST_F(QueryEngineTest, LowSelectivityQueriesHonorTheBound) {
  auto queries =
      LowSelectivityQueries(idx_, 2, 200, 2000, 20, /*max_selectivity=*/0.2,
                            /*seed=*/5);
  ASSERT_FALSE(queries.empty());
  for (const auto& q : queries) {
    ASSERT_EQ(q.size(), 2u);
    size_t min_list =
        std::min(idx_.Postings(q[0]).size(), idx_.Postings(q[1]).size());
    size_t result = ReferenceQueryCount(idx_, q);
    EXPECT_LE(result, min_list / 5 + 1) << q[0] << "," << q[1];
    // Query counts must agree with the engine across strategies.
    EXPECT_EQ(engine_->CountFesia(q), result);
  }
}

TEST_F(QueryEngineTest, SkewedPairQueriesHaveRequestedSkew) {
  auto queries = SkewedPairQueries(idx_, 2000, 0.1, 10, 7);
  ASSERT_FALSE(queries.empty());
  for (const auto& q : queries) {
    size_t l0 = idx_.Postings(q[0]).size();
    size_t l1 = idx_.Postings(q[1]).size();
    double skew = static_cast<double>(std::min(l0, l1)) /
                  static_cast<double>(std::max(l0, l1));
    EXPECT_GE(skew, 0.05);
    EXPECT_LE(skew, 0.15);
  }
}

TEST_F(QueryEngineTest, ReferenceQueryCountMatchesEngine) {
  std::vector<uint32_t> q = {0, 1, 2};
  EXPECT_EQ(ReferenceQueryCount(idx_, q), engine_->CountFesia(q));
  EXPECT_EQ(ReferenceQueryCount(idx_, {}), 0u);
}

TEST(InvertedIndexPersistTest, RoundTrip) {
  InvertedIndex idx = InvertedIndex::BuildSynthetic(SmallCorpus());
  std::vector<uint8_t> bytes = idx.Serialize();
  auto restored = InvertedIndex::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_docs(), idx.num_docs());
  EXPECT_EQ(restored->num_terms(), idx.num_terms());
  EXPECT_EQ(restored->total_postings(), idx.total_postings());
  for (uint32_t t = 0; t < idx.num_terms(); ++t) {
    auto a = idx.Postings(t);
    auto b = restored->Postings(t);
    ASSERT_EQ(std::vector<uint32_t>(a.begin(), a.end()),
              std::vector<uint32_t>(b.begin(), b.end()))
        << "term " << t;
  }
}

TEST(InvertedIndexPersistTest, RejectsCorruption) {
  CorpusParams p = SmallCorpus();
  p.num_terms = 100;
  InvertedIndex idx = InvertedIndex::BuildSynthetic(p);
  std::vector<uint8_t> bytes = idx.Serialize();

  // Any single-byte flip is caught (by the CRC at minimum).
  for (size_t pos : {size_t{0}, size_t{9}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::vector<uint8_t> bad = bytes;
    bad[pos] ^= 0xFF;
    EXPECT_FALSE(InvertedIndex::Deserialize(bad).ok()) << "pos=" << pos;
  }
  // So is truncation, at every boundary class.
  for (size_t cut : {size_t{0}, size_t{11}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_FALSE(InvertedIndex::Deserialize(
        std::span<const uint8_t>(bytes.data(), cut)).ok())
        << "cut=" << cut;
  }
}

TEST_F(QueryEngineTest, TermSetsRoundTrip) {
  std::vector<uint8_t> bytes = engine_->SerializeTermSets();
  auto loaded = QueryEngine::Load(&idx_, bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The reloaded engine answers queries identically to the built one.
  std::vector<uint32_t> q2 = {0, 1};
  std::vector<uint32_t> q3 = {0, 1, 2};
  EXPECT_EQ(loaded->CountFesia(q2), engine_->CountFesia(q2));
  EXPECT_EQ(loaded->CountFesia(q3), engine_->CountFesia(q3));
  EXPECT_EQ(loaded->QueryFesia(q2), engine_->QueryFesia(q2));
}

TEST_F(QueryEngineTest, LoadRejectsCorruptContainer) {
  std::vector<uint8_t> bytes = engine_->SerializeTermSets();
  for (size_t pos : {size_t{0}, size_t{40}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::vector<uint8_t> bad = bytes;
    bad[pos] ^= 0xFF;
    EXPECT_FALSE(QueryEngine::Load(&idx_, bad).ok()) << "pos=" << pos;
  }
  EXPECT_FALSE(QueryEngine::Load(
      &idx_, std::span<const uint8_t>(bytes.data(), bytes.size() / 3)).ok());
}

TEST_F(QueryEngineTest, LoadRejectsMismatchedIndex) {
  // A container built for one corpus must not load against another.
  std::vector<uint8_t> bytes = engine_->SerializeTermSets();
  CorpusParams p = SmallCorpus();
  p.num_terms = 500;
  p.seed = 77;
  InvertedIndex other = InvertedIndex::BuildSynthetic(p);
  ASSERT_NE(other.num_terms(), idx_.num_terms());
  auto loaded = QueryEngine::Load(&other, bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition)
      << loaded.status().ToString();
}

}  // namespace
}  // namespace fesia::index
