// Inverted-index substrate and query-engine agreement across methods.
#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <span>
#include <vector>

#include "baselines/registry.h"
#include "index/query_engine.h"
#include "index/query_gen.h"
#include "util/fault_injection.h"

namespace fesia::index {
namespace {

CorpusParams SmallCorpus() {
  CorpusParams p;
  p.num_docs = 20000;
  p.num_terms = 2000;
  p.avg_terms_per_doc = 20;
  p.seed = 5;
  return p;
}

TEST(InvertedIndexTest, PostingsSortedUniqueBounded) {
  InvertedIndex idx = InvertedIndex::BuildSynthetic(SmallCorpus());
  ASSERT_GT(idx.num_terms(), 0u);
  for (uint32_t t = 0; t < idx.num_terms(); ++t) {
    auto p = idx.Postings(t);
    ASSERT_GE(p.size(), 4u);  // min_posting_length default
    for (size_t i = 1; i < p.size(); ++i) ASSERT_LT(p[i - 1], p[i]);
    ASSERT_LT(p.back(), idx.num_docs());
  }
}

TEST(InvertedIndexTest, ZipfHead) {
  InvertedIndex idx = InvertedIndex::BuildSynthetic(SmallCorpus());
  // Lists are sorted by length descending; head must dominate tail.
  EXPECT_GT(idx.Postings(0).size(),
            idx.Postings(idx.num_terms() - 1).size());
}

TEST(InvertedIndexTest, TotalPostingsNearTarget) {
  CorpusParams p = SmallCorpus();
  InvertedIndex idx = InvertedIndex::BuildSynthetic(p);
  double target = p.avg_terms_per_doc * p.num_docs;
  EXPECT_GT(static_cast<double>(idx.total_postings()), 0.5 * target);
  EXPECT_LT(static_cast<double>(idx.total_postings()), 1.5 * target);
}

TEST(InvertedIndexTest, Deterministic) {
  InvertedIndex a = InvertedIndex::BuildSynthetic(SmallCorpus());
  InvertedIndex b = InvertedIndex::BuildSynthetic(SmallCorpus());
  ASSERT_EQ(a.num_terms(), b.num_terms());
  for (uint32_t t = 0; t < a.num_terms(); ++t) {
    auto pa = a.Postings(t);
    auto pb = b.Postings(t);
    ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
  }
}

TEST(InvertedIndexTest, TermsWithPostingLengthFilters) {
  InvertedIndex idx = InvertedIndex::BuildSynthetic(SmallCorpus());
  auto terms = idx.TermsWithPostingLength(100, 1000);
  for (uint32_t t : terms) {
    EXPECT_GE(idx.Postings(t).size(), 100u);
    EXPECT_LE(idx.Postings(t).size(), 1000u);
  }
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    idx_ = InvertedIndex::BuildSynthetic(SmallCorpus());
    engine_ = std::make_unique<QueryEngine>(&idx_, FesiaParams{});
  }

  InvertedIndex idx_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryEngineTest, ConstructionTimeRecorded) {
  EXPECT_GT(engine_->construction_seconds(), 0.0);
}

TEST_F(QueryEngineTest, TwoTermAgreementAcrossMethods) {
  std::vector<uint32_t> terms = {0, 1};
  size_t fesia_count = engine_->CountFesia(terms);
  for (const auto& m : baselines::AllBaselines()) {
    EXPECT_EQ(engine_->CountBaseline(terms, m.name), fesia_count) << m.name;
  }
}

TEST_F(QueryEngineTest, ThreeTermAgreement) {
  std::vector<uint32_t> terms = {0, 2, 5};
  size_t fesia_count = engine_->CountFesia(terms);
  for (const char* name : {"Scalar", "Shuffling", "BMiss", "SIMDGalloping",
                           "ScalarGalloping"}) {
    EXPECT_EQ(engine_->CountBaseline(terms, name), fesia_count) << name;
  }
}

TEST_F(QueryEngineTest, SkewedTermPair) {
  // Longest list with a short one.
  auto shorts = idx_.TermsWithPostingLength(10, 50);
  ASSERT_FALSE(shorts.empty());
  std::vector<uint32_t> terms = {0, shorts.front()};
  size_t expected = engine_->CountBaseline(terms, "Scalar");
  EXPECT_EQ(engine_->CountFesia(terms), expected);
}

TEST_F(QueryEngineTest, QueryFesiaReturnsActualDocs) {
  std::vector<uint32_t> terms = {0, 1};
  std::vector<uint32_t> docs = engine_->QueryFesia(terms);
  auto p0 = idx_.Postings(terms[0]);
  auto p1 = idx_.Postings(terms[1]);
  std::vector<uint32_t> expected;
  std::set_intersection(p0.begin(), p0.end(), p1.begin(), p1.end(),
                        std::back_inserter(expected));
  EXPECT_EQ(docs, expected);
}

TEST_F(QueryEngineTest, SingleAndEmptyQueries) {
  EXPECT_EQ(engine_->CountFesia({}), 0u);
  std::vector<uint32_t> one = {3};
  EXPECT_EQ(engine_->CountFesia(one), idx_.Postings(3).size());
}

// --- Batched execution -------------------------------------------------------

TEST_F(QueryEngineTest, CountBatchMatchesSerialOnRandomWorkload) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 25, 0.5, 11);
  std::vector<Query> three =
      LowSelectivityQueries(idx_, 3, 50, 2000, 15, 0.5, 12);
  queries.insert(queries.end(), three.begin(), three.end());
  ASSERT_FALSE(queries.empty());

  for (size_t threads : {0, 1, 2, 4, 8}) {
    BatchOptions opts;
    opts.num_threads = threads;
    std::vector<QueryResult> results = engine_->CountBatch(queries, opts);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status.ToString();
      EXPECT_EQ(results[i].count, engine_->CountFesia(queries[i]))
          << "query " << i << " threads=" << threads;
    }
  }
}

TEST_F(QueryEngineTest, QueryBatchMatchesSerialResults) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 20, 0.5, 21);
  ASSERT_FALSE(queries.empty());
  BatchOptions opts;
  opts.num_threads = 4;
  std::vector<QueryResult> results = engine_->QueryBatch(queries, opts);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status.ToString();
    EXPECT_EQ(results[i].docs, engine_->QueryFesia(queries[i]))
        << "query " << i;
    EXPECT_EQ(results[i].count, results[i].docs.size()) << "query " << i;
  }
}

TEST_F(QueryEngineTest, BatchStatsArePopulated) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 10, 0.5, 31);
  ASSERT_FALSE(queries.empty());
  BatchStats stats;
  engine_->CountBatch(queries, BatchOptions{}, &stats);
  EXPECT_EQ(stats.latency_seconds.size(), queries.size());
  for (double l : stats.latency_seconds) EXPECT_GE(l, 0.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.queries_per_second, 0.0);
  EXPECT_LE(stats.latency_p50, stats.latency_p95);
  EXPECT_LE(stats.latency_p95, stats.latency_max);
  // No deadline, no cap, no faults: every query completes first try.
  EXPECT_EQ(stats.ok, queries.size());
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.slow_queries, 0u);
}

TEST_F(QueryEngineTest, EmptyBatch) {
  BatchStats stats;
  std::vector<Query> none;
  EXPECT_TRUE(engine_->CountBatch(none, BatchOptions{}, &stats).empty());
  EXPECT_TRUE(stats.latency_seconds.empty());
  EXPECT_TRUE(engine_->QueryBatch(none).empty());
}

TEST_F(QueryEngineTest, BatchMixedAritiesIncludingDegenerate) {
  std::vector<Query> queries = {{}, {3}, {0, 1}, {0, 2, 5}};
  std::vector<QueryResult> results = engine_->CountBatch(queries);
  ASSERT_EQ(results.size(), 4u);
  for (const QueryResult& r : results) ASSERT_TRUE(r.ok());
  EXPECT_EQ(results[0].count, 0u);
  EXPECT_EQ(results[1].count, idx_.Postings(3).size());
  EXPECT_EQ(results[2].count, engine_->CountFesia(queries[2]));
  EXPECT_EQ(results[3].count, engine_->CountFesia(queries[3]));
}

TEST_F(QueryEngineTest, BatchOnCustomExecutorPool) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 10, 0.5, 41);
  ASSERT_FALSE(queries.empty());
  ThreadPool pool(2);
  BatchOptions opts;
  opts.executor = Executor(&pool);
  std::vector<QueryResult> results = engine_->CountBatch(queries, opts);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i;
    EXPECT_EQ(results[i].count, engine_->CountFesia(queries[i])) << i;
  }
}

// --- Deadlines, overload, and degradation ------------------------------------

TEST_F(QueryEngineTest, OutOfRangeTermsYieldEmptyResults) {
  const uint32_t bad = static_cast<uint32_t>(engine_->num_terms()) + 7;
  EXPECT_EQ(engine_->CountFesia(std::vector<uint32_t>{bad}), 0u);
  EXPECT_EQ(engine_->CountFesia(std::vector<uint32_t>{0, bad}), 0u);
  EXPECT_TRUE(engine_->QueryFesia(std::vector<uint32_t>{bad, 1}).empty());

  std::vector<Query> queries = {{0, bad}, {bad}, {0, 1}};
  std::vector<QueryResult> results = engine_->QueryBatch(queries);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[0].count, 0u);
  EXPECT_TRUE(results[0].docs.empty());
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(results[1].count, 0u);
  EXPECT_EQ(results[2].count, engine_->CountFesia(queries[2]));
}

TEST_F(QueryEngineTest, ExpiredQueryDeadlineTimesOutEveryQuery) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 10, 0.5, 51);
  ASSERT_FALSE(queries.empty());
  BatchOptions opts;
  opts.query_deadline_seconds = 1e-12;  // expired before the first poll
  BatchStats stats;
  std::vector<QueryResult> results =
      engine_->CountBatch(queries, opts, &stats);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.outcome, QueryOutcome::kDeadlineExceeded);
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
        << r.status.ToString();
    EXPECT_EQ(r.attempts, 1);  // admitted, stopped at the first poll
    EXPECT_EQ(r.count, 0u);
  }
  EXPECT_EQ(stats.deadline_exceeded, queries.size());
  EXPECT_EQ(stats.ok, 0u);
}

TEST_F(QueryEngineTest, ExpiredBatchDeadlineDrainsWithoutRunning) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 10, 0.5, 52);
  ASSERT_FALSE(queries.empty());
  BatchOptions opts;
  opts.batch_deadline_seconds = 1e-12;
  BatchStats stats;
  std::vector<QueryResult> results =
      engine_->CountBatch(queries, opts, &stats);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.outcome, QueryOutcome::kDeadlineExceeded);
    EXPECT_EQ(r.attempts, 0);  // drained before admission
  }
  EXPECT_EQ(stats.deadline_exceeded, queries.size());
}

TEST_F(QueryEngineTest, CancelledTokenDrainsBatch) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 8, 0.5, 53);
  ASSERT_FALSE(queries.empty());
  BatchOptions opts;
  opts.cancel = CancellationToken::Create();
  opts.cancel.Cancel();
  BatchStats stats;
  std::vector<QueryResult> results =
      engine_->QueryBatch(queries, opts, &stats);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.outcome, QueryOutcome::kDeadlineExceeded);
    EXPECT_TRUE(r.docs.empty());
  }
  EXPECT_EQ(stats.deadline_exceeded, queries.size());
  EXPECT_EQ(engine_->InFlightQueries(), 0u);
}

TEST_F(QueryEngineTest, GenerousDeadlineMatchesSerialResults) {
  // Exercises the cancellable (chunk-polling) execution path end to end:
  // an active but generous deadline must not change any result.
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 15, 0.5, 54);
  std::vector<Query> three =
      LowSelectivityQueries(idx_, 3, 50, 2000, 10, 0.5, 55);
  queries.insert(queries.end(), three.begin(), three.end());
  ASSERT_FALSE(queries.empty());
  BatchOptions opts;
  opts.query_deadline_seconds = 60;
  opts.batch_deadline_seconds = 120;
  opts.num_threads = 4;
  BatchStats stats;
  std::vector<QueryResult> results =
      engine_->CountBatch(queries, opts, &stats);
  EXPECT_EQ(stats.ok, queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status.ToString();
    EXPECT_EQ(results[i].count, engine_->CountFesia(queries[i])) << i;
  }
}

TEST_F(QueryEngineTest, AdmissionCapShedsConcurrentQueries) {
  std::vector<Query> queries(8, Query{0, 1});
  BatchOptions opts;
  opts.num_threads = 2;
  opts.admission_capacity = 1;
  // Pin the first admitted query for 100 ms: the other worker must shed
  // everything else instead of queueing behind the stall.
  fault::ScopedFault stall(fault::FaultPoint::kQueryDelay, 0, 100000);
  BatchStats stats;
  std::vector<QueryResult> results =
      engine_->CountBatch(queries, opts, &stats);
  EXPECT_EQ(stats.ok + stats.shed, queries.size());
  EXPECT_GE(stats.ok, 1u);
  EXPECT_GE(stats.shed, 1u);
  for (const QueryResult& r : results) {
    if (r.outcome == QueryOutcome::kShed) {
      EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
      EXPECT_EQ(r.attempts, 0);
    } else {
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.count, engine_->CountFesia(queries[0]));
    }
  }
  EXPECT_EQ(engine_->InFlightQueries(), 0u);
}

TEST_F(QueryEngineTest, RetryRecoversFromInjectedAllocFailure) {
  std::vector<Query> queries = {{0, 1}};
  BatchOptions opts;
  opts.num_threads = 1;
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff_seconds = 1e-4;
  fault::ScopedFault alloc(fault::FaultPoint::kAllocation);
  BatchStats stats;
  std::vector<QueryResult> results =
      engine_->CountBatch(queries, opts, &stats);
  ASSERT_TRUE(results[0].ok()) << results[0].status.ToString();
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(results[0].count, engine_->CountFesia(queries[0]));
  // The retry stepped one rung down the degradation ladder.
  EXPECT_TRUE(results[0].downgraded);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_GE(stats.downgrades, 1u);
  EXPECT_EQ(stats.ok, 1u);
}

TEST_F(QueryEngineTest, FailsOnceRetryBudgetIsExhausted) {
  std::vector<Query> queries = {{0, 1}};
  BatchOptions opts;
  opts.num_threads = 1;  // default retry: 1 attempt, no retry
  fault::ScopedFault alloc(fault::FaultPoint::kAllocation);
  BatchStats stats;
  std::vector<QueryResult> results =
      engine_->CountBatch(queries, opts, &stats);
  EXPECT_EQ(results[0].outcome, QueryOutcome::kFailed);
  EXPECT_EQ(results[0].status.code(), StatusCode::kResourceExhausted)
      << results[0].status.ToString();
  EXPECT_EQ(results[0].attempts, 1);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.ok, 0u);
}

TEST_F(QueryEngineTest, SlowQueryHookFiresAndIsCounted) {
  std::vector<Query> queries =
      LowSelectivityQueries(idx_, 2, 50, 2000, 6, 0.5, 56);
  ASSERT_FALSE(queries.empty());
  std::atomic<size_t> hook_calls{0};
  BatchOptions opts;
  opts.slow_query_seconds = 1e-12;  // every query qualifies
  opts.slow_query_hook = [&](const SlowQueryRecord& rec) {
    hook_calls.fetch_add(1, std::memory_order_relaxed);
    EXPECT_LT(rec.query_index, queries.size());
    EXPECT_EQ(rec.outcome, QueryOutcome::kOk);
    EXPECT_GT(rec.latency_seconds, 0.0);
  };
  BatchStats stats;
  engine_->CountBatch(queries, opts, &stats);
  EXPECT_EQ(hook_calls.load(), queries.size());
  EXPECT_EQ(stats.slow_queries, queries.size());
}

TEST_F(QueryEngineTest, ParallelTierInsideThreadedBatchCountsAsDowngrade) {
  std::vector<Query> queries(6, Query{0, 1});
  BatchOptions opts;
  opts.num_threads = 2;          // multi-threaded batch...
  opts.intra_query_threads = 4;  // ...cannot honor the parallel tier
  BatchStats stats;
  std::vector<QueryResult> results =
      engine_->CountBatch(queries, opts, &stats);
  EXPECT_EQ(stats.ok, queries.size());
  EXPECT_EQ(stats.downgrades, queries.size());
  for (const QueryResult& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.downgraded);
    EXPECT_EQ(r.count, engine_->CountFesia(queries[0]));
  }
}

TEST_F(QueryEngineTest, SerialBatchHonorsParallelTier) {
  std::vector<Query> queries(4, Query{0, 1});
  BatchOptions opts;
  opts.num_threads = 1;
  opts.intra_query_threads = 4;
  opts.query_deadline_seconds = 60;  // active context through the parallel path
  BatchStats stats;
  std::vector<QueryResult> results =
      engine_->CountBatch(queries, opts, &stats);
  EXPECT_EQ(stats.ok, queries.size());
  EXPECT_EQ(stats.downgrades, 0u);
  for (const QueryResult& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.downgraded);
    EXPECT_EQ(r.count, engine_->CountFesia(queries[0]));
  }
}

TEST(QueryEngineConstructionTest, ParallelBuildMatchesSerialBuild) {
  InvertedIndex idx = InvertedIndex::BuildSynthetic(SmallCorpus());
  QueryEngine serial(&idx, FesiaParams{}, Executor{}, /*build_threads=*/1);
  QueryEngine parallel(&idx, FesiaParams{}, Executor{}, /*build_threads=*/8);
  // FesiaSet::Build is deterministic, so the two engines must be
  // byte-identical — the fan-out may only change who builds which term.
  EXPECT_EQ(serial.SerializeTermSets(), parallel.SerializeTermSets());
}

// --- Query workload generators ----------------------------------------------

TEST_F(QueryEngineTest, LowSelectivityQueriesHonorTheBound) {
  auto queries =
      LowSelectivityQueries(idx_, 2, 200, 2000, 20, /*max_selectivity=*/0.2,
                            /*seed=*/5);
  ASSERT_FALSE(queries.empty());
  for (const auto& q : queries) {
    ASSERT_EQ(q.size(), 2u);
    size_t min_list =
        std::min(idx_.Postings(q[0]).size(), idx_.Postings(q[1]).size());
    size_t result = ReferenceQueryCount(idx_, q);
    EXPECT_LE(result, min_list / 5 + 1) << q[0] << "," << q[1];
    // Query counts must agree with the engine across strategies.
    EXPECT_EQ(engine_->CountFesia(q), result);
  }
}

TEST_F(QueryEngineTest, SkewedPairQueriesHaveRequestedSkew) {
  auto queries = SkewedPairQueries(idx_, 2000, 0.1, 10, 7);
  ASSERT_FALSE(queries.empty());
  for (const auto& q : queries) {
    size_t l0 = idx_.Postings(q[0]).size();
    size_t l1 = idx_.Postings(q[1]).size();
    double skew = static_cast<double>(std::min(l0, l1)) /
                  static_cast<double>(std::max(l0, l1));
    EXPECT_GE(skew, 0.05);
    EXPECT_LE(skew, 0.15);
  }
}

TEST_F(QueryEngineTest, ReferenceQueryCountMatchesEngine) {
  std::vector<uint32_t> q = {0, 1, 2};
  EXPECT_EQ(ReferenceQueryCount(idx_, q), engine_->CountFesia(q));
  EXPECT_EQ(ReferenceQueryCount(idx_, {}), 0u);
}

TEST(InvertedIndexPersistTest, RoundTrip) {
  InvertedIndex idx = InvertedIndex::BuildSynthetic(SmallCorpus());
  std::vector<uint8_t> bytes = idx.Serialize();
  auto restored = InvertedIndex::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_docs(), idx.num_docs());
  EXPECT_EQ(restored->num_terms(), idx.num_terms());
  EXPECT_EQ(restored->total_postings(), idx.total_postings());
  for (uint32_t t = 0; t < idx.num_terms(); ++t) {
    auto a = idx.Postings(t);
    auto b = restored->Postings(t);
    ASSERT_EQ(std::vector<uint32_t>(a.begin(), a.end()),
              std::vector<uint32_t>(b.begin(), b.end()))
        << "term " << t;
  }
}

TEST(InvertedIndexPersistTest, RejectsCorruption) {
  CorpusParams p = SmallCorpus();
  p.num_terms = 100;
  InvertedIndex idx = InvertedIndex::BuildSynthetic(p);
  std::vector<uint8_t> bytes = idx.Serialize();

  // Any single-byte flip is caught (by the CRC at minimum).
  for (size_t pos : {size_t{0}, size_t{9}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::vector<uint8_t> bad = bytes;
    bad[pos] ^= 0xFF;
    EXPECT_FALSE(InvertedIndex::Deserialize(bad).ok()) << "pos=" << pos;
  }
  // So is truncation, at every boundary class.
  for (size_t cut : {size_t{0}, size_t{11}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_FALSE(InvertedIndex::Deserialize(
        std::span<const uint8_t>(bytes.data(), cut)).ok())
        << "cut=" << cut;
  }
}

TEST_F(QueryEngineTest, TermSetsRoundTrip) {
  std::vector<uint8_t> bytes = engine_->SerializeTermSets();
  auto loaded = QueryEngine::Load(&idx_, bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The reloaded engine answers queries identically to the built one.
  std::vector<uint32_t> q2 = {0, 1};
  std::vector<uint32_t> q3 = {0, 1, 2};
  EXPECT_EQ(loaded->CountFesia(q2), engine_->CountFesia(q2));
  EXPECT_EQ(loaded->CountFesia(q3), engine_->CountFesia(q3));
  EXPECT_EQ(loaded->QueryFesia(q2), engine_->QueryFesia(q2));
}

TEST_F(QueryEngineTest, LoadRejectsCorruptContainer) {
  std::vector<uint8_t> bytes = engine_->SerializeTermSets();
  for (size_t pos : {size_t{0}, size_t{40}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::vector<uint8_t> bad = bytes;
    bad[pos] ^= 0xFF;
    EXPECT_FALSE(QueryEngine::Load(&idx_, bad).ok()) << "pos=" << pos;
  }
  EXPECT_FALSE(QueryEngine::Load(
      &idx_, std::span<const uint8_t>(bytes.data(), bytes.size() / 3)).ok());
}

TEST_F(QueryEngineTest, LoadRejectsMismatchedIndex) {
  // A container built for one corpus must not load against another.
  std::vector<uint8_t> bytes = engine_->SerializeTermSets();
  CorpusParams p = SmallCorpus();
  p.num_terms = 500;
  p.seed = 77;
  InvertedIndex other = InvertedIndex::BuildSynthetic(p);
  ASSERT_NE(other.num_terms(), idx_.num_terms());
  auto loaded = QueryEngine::Load(&other, bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition)
      << loaded.status().ToString();
}

}  // namespace
}  // namespace fesia::index
