// The fault-injection contract: every injected fault surfaces as a clean
// non-OK Status (or a degraded-but-correct backend), never as an abort.
#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "util/aligned_buffer.h"
#include "util/file_io.h"
#include "util/status.h"

namespace fesia {
namespace {

using fault::FaultPoint;
using fault::ScopedFault;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }
};

TEST_F(FaultInjectionTest, ArmDisarmLifecycle) {
  EXPECT_FALSE(fault::IsArmed(FaultPoint::kAllocation));
  fault::Arm(FaultPoint::kAllocation);
  EXPECT_TRUE(fault::IsArmed(FaultPoint::kAllocation));
  fault::Disarm(FaultPoint::kAllocation);
  EXPECT_FALSE(fault::IsArmed(FaultPoint::kAllocation));
  EXPECT_FALSE(fault::ShouldFail(FaultPoint::kAllocation));
}

TEST_F(FaultInjectionTest, FiresExactlyOnce) {
  fault::Arm(FaultPoint::kAllocation);
  EXPECT_TRUE(fault::ShouldFail(FaultPoint::kAllocation));
  // Self-disarmed after firing.
  EXPECT_FALSE(fault::ShouldFail(FaultPoint::kAllocation));
  EXPECT_FALSE(fault::IsArmed(FaultPoint::kAllocation));
}

TEST_F(FaultInjectionTest, SkipCountsPassingHits) {
  fault::Arm(FaultPoint::kAllocation, /*skip=*/2);
  EXPECT_FALSE(fault::ShouldFail(FaultPoint::kAllocation));
  EXPECT_FALSE(fault::ShouldFail(FaultPoint::kAllocation));
  EXPECT_TRUE(fault::ShouldFail(FaultPoint::kAllocation));
  EXPECT_FALSE(fault::ShouldFail(FaultPoint::kAllocation));
}

TEST_F(FaultInjectionTest, ParamIsDelivered) {
  fault::Arm(FaultPoint::kSnapshotBitFlip, /*skip=*/0, /*param=*/1234);
  uint64_t param = 0;
  EXPECT_TRUE(fault::ShouldFail(FaultPoint::kSnapshotBitFlip, &param));
  EXPECT_EQ(param, 1234u);
}

TEST_F(FaultInjectionTest, HitCountTracksReaches) {
  uint64_t before = fault::HitCount(FaultPoint::kSnapshotTruncate);
  (void)fault::ShouldFail(FaultPoint::kSnapshotTruncate);
  (void)fault::ShouldFail(FaultPoint::kSnapshotTruncate);
  EXPECT_EQ(fault::HitCount(FaultPoint::kSnapshotTruncate), before + 2);
}

TEST_F(FaultInjectionTest, SpecParsing) {
  EXPECT_TRUE(fault::ArmFromSpec("alloc"));
  EXPECT_TRUE(fault::IsArmed(FaultPoint::kAllocation));
  fault::DisarmAll();

  EXPECT_TRUE(fault::ArmFromSpec("snapshot-truncate:3:16,backend-downgrade"));
  EXPECT_TRUE(fault::IsArmed(FaultPoint::kSnapshotTruncate));
  EXPECT_TRUE(fault::IsArmed(FaultPoint::kBackendDowngrade));
  fault::DisarmAll();

  EXPECT_TRUE(fault::ArmFromSpec("wal-append-short-write"));
  EXPECT_TRUE(fault::IsArmed(FaultPoint::kWalAppendShortWrite));
  fault::DisarmAll();

  EXPECT_TRUE(fault::ArmFromSpec("crash-before-wal-truncate:1"));
  EXPECT_TRUE(fault::IsArmed(FaultPoint::kCrashBeforeWalTruncate));
  fault::DisarmAll();

  EXPECT_FALSE(fault::ArmFromSpec("no-such-fault"));
  EXPECT_FALSE(fault::ArmFromSpec("alloc:notanumber"));
  fault::DisarmAll();
}

TEST_F(FaultInjectionTest, QueryDelaySpecDeliversMicroseconds) {
  EXPECT_TRUE(fault::ArmFromSpec("query-delay:0:5000"));
  ASSERT_TRUE(fault::IsArmed(FaultPoint::kQueryDelay));
  uint64_t param = 0;
  EXPECT_TRUE(fault::ShouldFail(FaultPoint::kQueryDelay, &param));
  EXPECT_EQ(param, 5000u);
  // Fires once, like every fault point.
  EXPECT_FALSE(fault::ShouldFail(FaultPoint::kQueryDelay));
}

TEST_F(FaultInjectionTest, FaultPointNamesRoundTrip) {
  for (int i = 0; i < static_cast<int>(FaultPoint::kNumPoints); ++i) {
    auto point = static_cast<FaultPoint>(i);
    EXPECT_TRUE(fault::ArmFromSpec(fault::FaultPointName(point)))
        << fault::FaultPointName(point);
    EXPECT_TRUE(fault::IsArmed(point));
    fault::DisarmAll();
  }
}

TEST_F(FaultInjectionTest, AllocationFaultMakesTryResetRecoverable) {
  AlignedBuffer<uint32_t> buf;
  {
    ScopedFault fault(FaultPoint::kAllocation);
    EXPECT_FALSE(buf.TryReset(1024));
    EXPECT_EQ(buf.size(), 0u);
  }
  // Next attempt succeeds and the buffer is usable.
  ASSERT_TRUE(buf.TryReset(1024));
  EXPECT_EQ(buf.size(), 1024u);
  buf[1023] = 7;
  EXPECT_EQ(buf[1023], 7u);
}

TEST_F(FaultInjectionTest, TruncateFaultSurfacesAsCorruption) {
  // Write a valid snapshot, read it back with an injected truncation: the
  // loader must reject it cleanly.
  FesiaSet set = FesiaSet::Build(datagen::SortedUniform(500, 10000, 21));
  std::vector<uint8_t> blob = set.Serialize();
  std::string path = ::testing::TempDir() + "/fault_truncate.fesia";
  ASSERT_TRUE(WriteFileBytes(path, blob.data(), blob.size()).ok());

  ScopedFault fault(FaultPoint::kSnapshotTruncate, /*skip=*/0, /*param=*/8);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
  EXPECT_EQ(bytes.size(), blob.size() - 8);
  FesiaSet out;
  EXPECT_FALSE(FesiaSet::Deserialize(bytes, &out).ok());
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, BitFlipFaultSurfacesAsCorruption) {
  FesiaSet set = FesiaSet::Build(datagen::SortedUniform(500, 10000, 22));
  std::vector<uint8_t> blob = set.Serialize();
  std::string path = ::testing::TempDir() + "/fault_bitflip.fesia";
  ASSERT_TRUE(WriteFileBytes(path, blob.data(), blob.size()).ok());

  // Flip a bit deep in the payload (past the magic tag).
  ScopedFault fault(FaultPoint::kSnapshotBitFlip, /*skip=*/0,
                    /*param=*/1000);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
  FesiaSet out;
  Status s = FesiaSet::Deserialize(bytes, &out);
  ASSERT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();

  // Unfaulted re-read loads fine: the file itself was never damaged.
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
  EXPECT_TRUE(FesiaSet::Deserialize(bytes, &out).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fesia
