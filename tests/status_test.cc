// Status / StatusOr semantics: the error vocabulary every recoverable
// path in the library speaks.
#include "util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace fesia {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "invalid-argument"},
      {Status::Corruption("b"), StatusCode::kCorruption, "corruption"},
      {Status::IoError("c"), StatusCode::kIoError, "io-error"},
      {Status::ResourceExhausted("d"), StatusCode::kResourceExhausted,
       "resource-exhausted"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "failed-precondition"},
      {Status::Unimplemented("f"), StatusCode::kUnimplemented,
       "unimplemented"},
      {Status::Internal("g"), StatusCode::kInternal, "internal"},
      {Status::Unavailable("h"), StatusCode::kUnavailable, "unavailable"},
      {Status::DeadlineExceeded("i"), StatusCode::kDeadlineExceeded,
       "deadline-exceeded"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.ToString().rfind(c.name, 0), 0u)
        << c.status.ToString();
    EXPECT_NE(c.status.ToString().find(c.status.message()),
              std::string::npos);
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::Corruption("inner failed");
    return Status::Ok();
  };
  auto outer = [&](bool fail) -> Status {
    FESIA_RETURN_IF_ERROR(inner(fail));
    return Status::InvalidArgument("reached the end");
  };
  EXPECT_EQ(outer(true).code(), StatusCode::kCorruption);
  EXPECT_EQ(outer(false).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::IoError("disk on fire");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kIoError);
  EXPECT_EQ(v.status().message(), "disk on fire");
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  std::vector<int> taken = *std::move(v);
  EXPECT_EQ(taken.size(), 3u);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto source = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::Corruption("no value");
    return 7;
  };
  auto consumer = [&](bool fail) -> Status {
    FESIA_ASSIGN_OR_RETURN(int got, source(fail));
    return got == 7 ? Status::Ok() : Status::Internal("wrong value");
  };
  EXPECT_TRUE(consumer(false).ok());
  EXPECT_EQ(consumer(true).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace fesia
