// Multicore intersection correctness: thread counts must not change counts.
#include "fesia/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/intersect.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace fesia {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::SetPair;
using ::fesia::testing::AvailableLevels;

TEST(ParallelTest, ThreadCountsAgreeWithSequential) {
  SetPair pair = PairWithSelectivity(50000, 50000, 0.02, 1);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  size_t expected = pair.intersection_size;
  ASSERT_EQ(IntersectCount(fa, fb), expected);
  for (size_t threads : {1, 2, 3, 4, 8}) {
    EXPECT_EQ(IntersectCountParallel(fa, fb, threads), expected)
        << "threads=" << threads;
  }
}

TEST(ParallelTest, AllLevelsAllThreadCounts) {
  SetPair pair = PairWithSelectivity(20000, 20000, 0.1, 2);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  for (SimdLevel level : AvailableLevels()) {
    for (size_t threads : {1, 2, 4}) {
      EXPECT_EQ(IntersectCountParallel(fa, fb, threads, level),
                pair.intersection_size)
          << SimdLevelName(level) << " threads=" << threads;
    }
  }
}

TEST(ParallelTest, MoreThreadsThanChunksClamps) {
  // A tiny set has few bitmap chunks; excess threads must be harmless.
  SetPair pair = PairWithSelectivity(50, 50, 0.5, 3);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  EXPECT_EQ(IntersectCountParallel(fa, fb, 64), pair.intersection_size);
}

TEST(ParallelTest, SkewedBitmapSizes) {
  SetPair pair = PairWithSelectivity(500, 80000, 0.2, 4);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  for (size_t threads : {2, 4}) {
    EXPECT_EQ(IntersectCountParallel(fa, fb, threads),
              pair.intersection_size)
        << "threads=" << threads;
  }
}

TEST(ParallelTest, IntoParallelMatchesReferenceElements) {
  SetPair pair = PairWithSelectivity(30000, 30000, 0.05, 6);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  std::vector<uint32_t> expected;
  std::set_intersection(pair.a.begin(), pair.a.end(), pair.b.begin(),
                        pair.b.end(), std::back_inserter(expected));
  for (size_t threads : {1, 2, 4, 7}) {
    std::vector<uint32_t> out;
    size_t r = IntersectIntoParallel(fa, fb, &out, threads);
    ASSERT_EQ(r, expected.size()) << "threads=" << threads;
    EXPECT_EQ(out, expected) << "threads=" << threads;
  }
}

TEST(ParallelTest, IntoParallelUnsortedHasSameElements) {
  SetPair pair = PairWithSelectivity(10000, 10000, 0.1, 7);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  std::vector<uint32_t> out;
  IntersectIntoParallel(fa, fb, &out, 4, /*sort_output=*/false);
  std::sort(out.begin(), out.end());
  std::vector<uint32_t> expected;
  std::set_intersection(pair.a.begin(), pair.a.end(), pair.b.begin(),
                        pair.b.end(), std::back_inserter(expected));
  EXPECT_EQ(out, expected);
}

TEST(ParallelTest, IntoParallelAllLevels) {
  SetPair pair = PairWithSelectivity(20000, 20000, 0.02, 8);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  for (SimdLevel level : AvailableLevels()) {
    std::vector<uint32_t> out;
    size_t r = IntersectIntoParallel(fa, fb, &out, 3, true, level);
    EXPECT_EQ(r, pair.intersection_size) << SimdLevelName(level);
  }
}

TEST(ParallelTest, IntoParallelEmpty) {
  FesiaSet empty = FesiaSet::Build({});
  FesiaSet some = FesiaSet::Build(datagen::SortedUniform(100, 1000, 9));
  std::vector<uint32_t> out = {1, 2, 3};
  EXPECT_EQ(IntersectIntoParallel(empty, some, &out, 4), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(ParallelTest, EmptyInputs) {
  FesiaSet empty = FesiaSet::Build({});
  FesiaSet some = FesiaSet::Build(datagen::SortedUniform(100, 1000, 5));
  EXPECT_EQ(IntersectCountParallel(empty, some, 4), 0u);
  EXPECT_EQ(IntersectCountParallel(some, empty, 4), 0u);
}

// --- ThreadPool / ParallelFor unit tests -----------------------------------

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, 4, [&](size_t lo, size_t hi, size_t) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, 4, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace fesia
